// Reproduces paper Fig. 5: HBM scaling potential. For each benchmark, the
// memory throughput a hypothetical design with N SPN cores would require
// (N x single-core end-to-end rate x bytes/sample), compared against
//   * the measured single-channel throughput (Fig. 2 plateau),
//   * the practical aggregate limit HBM max_p = 32 channels x channel rate,
//   * the vendor's theoretical limit HBM max_t = 460 GB/s (~428 GiB/s).
// Paper conclusions to reproduce: 64 instances are HBM-feasible for every
// benchmark (8x over the 8-PE designs); NIPS10/NIPS20 could even go to
// 128; 128 NIPS10 cores need ~285 GiB/s, well under max_p = 384 GiB/s.
#include "bench_common.hpp"

#include "spnhbm/hbm/hbm.hpp"

int main() {
  using namespace spnhbm;
  using namespace spnhbm::bench;
  print_header("Fig. 5 — HBM scaling potential",
               "required memory throughput by core count vs HBM limits");

  const auto backend = arith::make_cfp_backend(arith::paper_cfp_format());
  const double channel_gib = 12.0;  // Fig. 2 plateau (measured)
  const double max_practical_gib = 32.0 * channel_gib;  // 384 GiB/s
  const double max_theoretical_gib =
      hbm::HbmDevice::theoretical_peak().as_gib_per_second();  // ~428 GiB/s

  Table table({"benchmark", "B/sample", "1-core rate [Ms/s]",
               "1-core [GiB/s]", "64 cores [GiB/s]", "128 cores [GiB/s]",
               "max cores (HBM max_p)"});
  std::printf("limits: single channel %.1f GiB/s, HBM max_p %.0f GiB/s, "
              "HBM max_t %.0f GiB/s\n",
              channel_gib, max_practical_gib, max_theoretical_gib);

  for (const std::size_t size : workload::nips_benchmark_sizes()) {
    const auto model = workload::make_nips_model(size);
    const auto module = compiler::compile_spn(model.spn, *backend);
    // Single-core end-to-end rate (the paper derives per-core bandwidth
    // from the measured single-accelerator rate, e.g. NIPS10: 133.1 Ms/s
    // x 18 B = 2.23 GiB/s).
    const double rate = simulate_hbm_throughput(module, *backend, 1, 1, true,
                                                2'000'000);
    const double bytes = static_cast<double>(model.total_bytes_per_sample());
    const double one_core_gib = rate * bytes / static_cast<double>(kGiB);
    const auto max_cores = static_cast<int>(max_practical_gib / one_core_gib);
    table.add_row({model.name, strformat("%zu", model.total_bytes_per_sample()),
                   msamples(rate), strformat("%.2f", one_core_gib),
                   strformat("%.1f", 64.0 * one_core_gib),
                   strformat("%.1f", 128.0 * one_core_gib),
                   strformat("%d", max_cores)});
  }
  print_table(table);
  std::printf(
      "\npaper reference: NIPS10 needs 2.23 GiB/s per core -> 128 cores = "
      "~285 GiB/s < max_p; 64 cores are feasible for ALL benchmarks (an 8x\n"
      "boost over the 8-PE designs), 128 for NIPS10/NIPS20 (paper §V-C).\n");
  return 0;
}
