// Micro-benchmarks (google-benchmark) of the bit-accurate arithmetic
// kernels — the software-model cost of the operators the datapath
// generator instantiates.
#include <benchmark/benchmark.h>

#include "spnhbm/arith/backend.hpp"
#include "spnhbm/util/rng.hpp"

namespace {

using namespace spnhbm;

std::vector<std::uint64_t> random_operands(const arith::ArithBackend& backend,
                                           std::size_t count) {
  Rng rng(42);
  std::vector<std::uint64_t> operands(count);
  for (auto& bits : operands) {
    bits = backend.encode(rng.next_uniform(0.01, 1.0));
  }
  return operands;
}

void BM_CfpMul(benchmark::State& state) {
  const auto backend = arith::make_cfp_backend(arith::paper_cfp_format());
  const auto ops = random_operands(*backend, 1024);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        backend->mul(ops[i % 1024], ops[(i + 1) % 1024]));
    ++i;
  }
}
BENCHMARK(BM_CfpMul);

void BM_CfpAdd(benchmark::State& state) {
  const auto backend = arith::make_cfp_backend(arith::paper_cfp_format());
  const auto ops = random_operands(*backend, 1024);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        backend->add(ops[i % 1024], ops[(i + 1) % 1024]));
    ++i;
  }
}
BENCHMARK(BM_CfpAdd);

void BM_LnsMul(benchmark::State& state) {
  const auto backend = arith::make_lns_backend(arith::paper_lns_format());
  const auto ops = random_operands(*backend, 1024);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        backend->mul(ops[i % 1024], ops[(i + 1) % 1024]));
    ++i;
  }
}
BENCHMARK(BM_LnsMul);

void BM_LnsAdd(benchmark::State& state) {
  const auto backend = arith::make_lns_backend(arith::paper_lns_format());
  const auto ops = random_operands(*backend, 1024);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        backend->add(ops[i % 1024], ops[(i + 1) % 1024]));
    ++i;
  }
}
BENCHMARK(BM_LnsAdd);

void BM_CfpEncode(benchmark::State& state) {
  const auto backend = arith::make_cfp_backend(arith::paper_cfp_format());
  Rng rng(7);
  std::vector<double> values(1024);
  for (auto& v : values) v = rng.next_uniform(0.001, 1.0);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(backend->encode(values[i % 1024]));
    ++i;
  }
}
BENCHMARK(BM_CfpEncode);

}  // namespace

BENCHMARK_MAIN();
