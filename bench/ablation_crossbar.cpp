// Ablation (paper §II-B): the optional HBM crossbar.
// The crossbar lets every AXI port reach the whole HBM space but costs
// latency and throughput; the paper disables it and gives each PE a
// dedicated channel. The cost only shows when a client actually needs the
// channel's full bandwidth, so this sweep measures
//   (a) raw channel throughput under saturating linear traffic, and
//   (b) the bandwidth-hungriest accelerator (NIPS80: ~10 GiB/s per PE,
//       compute-only) — where the crossbar's effective-bandwidth loss
//       bites — plus NIPS10 end-to-end, where it does not (slack).
#include "bench_common.hpp"

#include "spnhbm/sim/process.hpp"

namespace {

using namespace spnhbm;

double raw_channel_throughput(bool crossbar) {
  sim::Scheduler scheduler;
  sim::ProcessRunner runner(scheduler);
  hbm::HbmDeviceConfig config;
  config.crossbar_enabled = crossbar;
  hbm::HbmDevice device(scheduler, config);
  runner.spawn([&device]() -> sim::Process {
    co_await axi::linear_transfer(device.port(0), 0, 64 * kMiB, false);
  });
  scheduler.run();
  runner.check();
  return static_cast<double>(64 * kMiB) / to_seconds(scheduler.now()) /
         static_cast<double>(kGiB);
}

double accel_throughput(const compiler::DatapathModule& module,
                        const arith::ArithBackend& backend, int pes,
                        bool crossbar, bool include_transfers) {
  sim::Scheduler scheduler;
  sim::ProcessRunner runner(scheduler);
  tapasco::CompositionConfig composition;
  composition.pe_count = pes;
  composition.compute_results = false;
  composition.hbm_crossbar = crossbar;
  tapasco::Device device(runner, module, backend, composition);
  runtime::RuntimeConfig config;
  config.include_transfers = include_transfers;
  runtime::InferenceRuntime rt(runner, device, module, config);
  return rt.run(static_cast<std::uint64_t>(pes) * 2'000'000)
      .samples_per_second;
}

}  // namespace

int main() {
  using namespace spnhbm::bench;
  print_header("Ablation — HBM crossbar on/off",
               "paper §II-B: the crossbar costs latency and bandwidth, so "
               "it is disabled and each PE gets a dedicated channel");

  std::printf("\nraw single-channel linear read throughput:\n");
  Table raw({"config", "GiB/s"});
  const double direct_raw = raw_channel_throughput(false);
  const double crossbar_raw = raw_channel_throughput(true);
  raw.add_row({"direct (no crossbar)", strformat("%.2f", direct_raw)});
  raw.add_row({"through crossbar", strformat("%.2f", crossbar_raw)});
  raw.add_row({"penalty",
               strformat("%.1f%%", (1 - crossbar_raw / direct_raw) * 100)});
  print_table(raw);

  const auto backend = arith::make_cfp_backend(arith::paper_cfp_format());
  struct Case {
    std::size_t size;
    bool include_transfers;
    const char* label;
  };
  for (const Case c : {Case{80, false, "NIPS80 compute-only (bandwidth-"
                                       "hungry: crossbar visible)"},
                       Case{10, true, "NIPS10 end-to-end (bandwidth slack: "
                                      "crossbar hidden)"}}) {
    const auto module = compiler::compile_spn(
        workload::make_nips_model(c.size).spn, *backend);
    std::printf("\n%s:\n", c.label);
    Table table({"PEs", "direct [Ms/s]", "crossbar [Ms/s]", "penalty"});
    for (const int pes : {1, 4, 8}) {
      const double direct = accel_throughput(module, *backend, pes, false,
                                             c.include_transfers);
      const double crossbar = accel_throughput(module, *backend, pes, true,
                                               c.include_transfers);
      table.add_row({strformat("%d", pes), msamples(direct),
                     msamples(crossbar),
                     strformat("%.1f%%", (1 - crossbar / direct) * 100)});
    }
    print_table(table);
  }
  return 0;
}
