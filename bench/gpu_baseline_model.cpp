// Companion to Fig. 6's GPU column: a mechanistic explanation of WHY the
// Tesla V100 loses at batch-wise SPN inference. The model prices the
// SPFlow/TensorFlow execution style of the prior-work baseline (one
// batched kernel per SPN node + a DRAM round-trip per intermediate column
// + PCIe transfers) and compares against the curve reconstructed from the
// paper's published speedups.
#include "bench_common.hpp"

#include "spnhbm/baselines/reference_platforms.hpp"
#include "spnhbm/gpu/execution_model.hpp"

int main() {
  using namespace spnhbm;
  using namespace spnhbm::bench;
  print_header("GPU baseline — mechanistic V100 model vs reconstruction",
               "per-node kernel execution (SPFlow/TF style), batch 512Ki");

  const auto f64 = arith::make_float64_backend();
  const gpu::GpuExecutionModel model;
  const auto reference = baselines::tesla_v100_curve();

  Table table({"benchmark", "ops", "model [Ms/s]", "reconstructed [Ms/s]",
               "launch %", "gather %", "elementwise %", "PCIe %"});
  for (const std::size_t size : workload::nips_benchmark_sizes()) {
    const auto module = compiler::compile_spn(
        workload::make_nips_model(size).spn, *f64);
    const auto breakdown =
        model.batch_breakdown(module, model.config().batch_samples);
    const double total = static_cast<double>(breakdown.total());
    table.add_row(
        {strformat("NIPS%zu", size), strformat("%zu", module.ops().size()),
         msamples(model.throughput(module)), msamples(reference.at(size)),
         strformat("%.0f%%", breakdown.launch_time / total * 100),
         strformat("%.0f%%", breakdown.gather_time / total * 100),
         strformat("%.0f%%", breakdown.elementwise_time / total * 100),
         strformat("%.0f%%", breakdown.transfer_time / total * 100)});
  }
  print_table(table);

  std::printf("\nbatch-size sweep (NIPS20): launch amortisation\n");
  const auto module = compiler::compile_spn(
      workload::make_nips_model(20).spn, *f64);
  Table sweep({"batch", "model [Ms/s]"});
  for (const std::uint64_t batch :
       {1u << 12, 1u << 14, 1u << 16, 1u << 19, 1u << 22}) {
    sweep.add_row({strformat("%llu", static_cast<unsigned long long>(batch)),
                   msamples(model.throughput(module, batch))});
  }
  print_table(sweep);
  std::printf(
      "\ninterpretation: even at large batches the per-node DRAM round\n"
      "trips cap the GPU far below the FPGA's single-pass pipeline — the\n"
      "'low arithmetic intensity' argument of the paper's §V-D, priced.\n");
  return 0;
}
