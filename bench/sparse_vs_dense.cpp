// Sparse-vs-dense evidence transfer: the byte-level payoff of the CSR
// sparse-evidence path, measured mechanistically on the simulated HBM
// card. For a 32-variable marginal model the dense path moves 32 bytes
// per sample over PCIe and the PE's HBM channel regardless of how little
// is observed; the sparse path moves 2 + 3*K bytes for K observed
// variables, so it wins below the crossover (K <= 10 here) and loses
// above it — the sweep shows both sides honestly. Both paths must return bit-identical results — the bench
// aborts if they ever diverge — so the record is a pure transfer story:
// modelled PCIe DMA bytes, payload bytes and end-to-end virtual time per
// active-variable level.
#include "bench_common.hpp"

#include "spnhbm/compiler/sparse_evidence.hpp"
#include "spnhbm/spn/random_spn.hpp"
#include "spnhbm/telemetry/bench_report.hpp"
#include "spnhbm/util/rng.hpp"

namespace spnhbm::bench {
namespace {

constexpr std::size_t kVariables = 32;
constexpr std::size_t kSamples = 4096;

struct RunResult {
  std::vector<double> results;
  std::uint64_t pcie_bytes = 0;
  double virtual_us = 0.0;
};

/// One fresh card + runtime per run, so the DMA byte counters and the
/// virtual clock cover exactly this payload.
RunResult run_once(const compiler::DatapathModule& module,
                   const arith::ArithBackend& backend,
                   std::span<const std::uint8_t> payload,
                   std::size_t sample_count, bool sparse) {
  sim::Scheduler scheduler;
  sim::ProcessRunner runner(scheduler);
  tapasco::CompositionConfig composition;
  composition.pe_count = 1;
  tapasco::Device device(runner, module, backend, composition);
  runtime::InferenceRuntime rt(runner, device, module);
  RunResult out;
  out.results =
      sparse ? rt.infer_sparse(payload, sample_count) : rt.infer(payload);
  out.pcie_bytes =
      device.dma().bytes_to_device() + device.dma().bytes_to_host();
  out.virtual_us = to_seconds(scheduler.now()) * 1e6;
  return out;
}

/// kSamples samples with exactly `active` observed variables each
/// (selection-sampled, so indices are distinct and ascending).
compiler::SparseBatch make_batch(std::size_t active, std::uint64_t seed) {
  compiler::SparseBatch batch;
  batch.features = kVariables;
  Rng rng(seed);
  std::vector<std::uint16_t> indices;
  std::vector<std::uint8_t> values;
  for (std::size_t s = 0; s < kSamples; ++s) {
    indices.clear();
    values.clear();
    std::size_t needed = active;
    for (std::size_t w = 0; w < kVariables && needed > 0; ++w) {
      if (rng.next_below(kVariables - w) < needed) {
        indices.push_back(static_cast<std::uint16_t>(w));
        values.push_back(
            static_cast<std::uint8_t>(rng.next_below(compiler::kMissingByte)));
        --needed;
      }
    }
    batch.add_sample(indices, values);
  }
  return batch;
}

}  // namespace
}  // namespace spnhbm::bench

int main() {
  using namespace spnhbm;
  using namespace spnhbm::bench;
  print_header(
      "Sparse vs dense evidence transfer (32-variable marginal model)",
      "CSR evidence stream vs dense rows through the full PCIe/HBM path; "
      "expected: payload and DMA bytes shrink with the observed-variable "
      "count, results bit-identical");

  spn::RandomSpnConfig spn_config;
  spn_config.variables = kVariables;
  spn_config.leaf_domain = compiler::kMissingByte;
  spn_config.seed = 64;
  const spn::Spn spn = spn::make_random_spn(spn_config);
  const auto backend = arith::make_cfp_backend(arith::paper_cfp_format());
  compiler::CompileOptions options;
  options.query = compiler::QueryKind::kMarginal;
  options.input_domain = compiler::kMissingByte;
  const auto module = compiler::compile_spn(spn, *backend, options);

  Table table({"observed vars", "dense payload", "sparse payload",
               "dense PCIe", "sparse PCIe", "PCIe saved", "virtual time"});
  telemetry::BenchReport report("sparse_vs_dense");
  for (const std::size_t active : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const compiler::SparseBatch batch = make_batch(active, 1000 + active);
    const auto stream = compiler::encode_sparse(batch);
    const auto dense = batch.densify(module.default_evidence());

    const RunResult dense_run =
        run_once(module, *backend, dense, kSamples, false);
    const RunResult sparse_run =
        run_once(module, *backend, stream, kSamples, true);
    for (std::size_t i = 0; i < kSamples; ++i) {
      if (dense_run.results[i] != sparse_run.results[i]) {
        std::fprintf(stderr,
                     "FATAL: sparse result diverges from dense at sample "
                     "%zu (%.17g vs %.17g)\n",
                     i, sparse_run.results[i], dense_run.results[i]);
        return 1;
      }
    }

    const double saved =
        1.0 - static_cast<double>(sparse_run.pcie_bytes) /
                  static_cast<double>(dense_run.pcie_bytes);
    table.add_row(
        {strformat("%zu/%zu", active, kVariables),
         format_bytes(dense.size()), format_bytes(stream.size()),
         format_bytes(dense_run.pcie_bytes),
         format_bytes(sparse_run.pcie_bytes),
         strformat("%.1f%%", saved * 100),
         strformat("%.0f vs %.0f us", sparse_run.virtual_us,
                   dense_run.virtual_us)});
    report.add()
        .field("active_vars", static_cast<double>(active))
        .field("dense_payload_bytes", static_cast<double>(dense.size()))
        .field("sparse_payload_bytes", static_cast<double>(stream.size()))
        .field("dense_pcie_bytes",
               static_cast<double>(dense_run.pcie_bytes))
        .field("sparse_pcie_bytes",
               static_cast<double>(sparse_run.pcie_bytes))
        .field("dense_virtual_us", dense_run.virtual_us)
        .field("sparse_virtual_us", sparse_run.virtual_us);
  }
  print_table(table);
  report.write();
  std::printf("\nmachine-readable records written to %s\n",
              report.output_path().c_str());
  std::printf(
      "\nresults are bit-identical between the two paths by construction\n"
      "(the bench aborts otherwise); the transfer saving is the point.\n");
  return 0;
}
