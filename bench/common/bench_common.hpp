// Shared helpers for the benchmark harness binaries.
//
// Each binary regenerates one table or figure of the paper: it prints the
// same rows/series the paper reports, alongside the published values where
// available, so shape deviations are visible at a glance.
#pragma once

#include <cstdio>
#include <string>

#include "spnhbm/arith/backend.hpp"
#include "spnhbm/compiler/datapath.hpp"
#include "spnhbm/runtime/inference_runtime.hpp"
#include "spnhbm/tapasco/device.hpp"
#include "spnhbm/util/strings.hpp"
#include "spnhbm/util/table.hpp"
#include "spnhbm/workload/model_zoo.hpp"

namespace spnhbm::bench {

inline void print_header(const std::string& title, const std::string& what) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("%s\n", what.c_str());
  std::printf("================================================================\n");
}

inline void print_table(const Table& table) {
  std::fputs(table.render().c_str(), stdout);
}

/// End-to-end (or compute-only) throughput of an N-PE HBM design, timed on
/// the simulator. `samples_per_pe` controls simulation effort.
inline double simulate_hbm_throughput(const compiler::DatapathModule& module,
                                      const arith::ArithBackend& backend,
                                      int pe_count, int threads_per_pe,
                                      bool include_transfers,
                                      std::uint64_t samples_per_pe = 3'000'000,
                                      bool skip_placement = false) {
  sim::Scheduler scheduler;
  sim::ProcessRunner runner(scheduler);
  tapasco::CompositionConfig composition;
  composition.pe_count = pe_count;
  composition.compute_results = false;
  composition.skip_placement_check = skip_placement;
  tapasco::Device device(runner, module, backend, composition);
  runtime::RuntimeConfig config;
  config.threads_per_pe = threads_per_pe;
  config.include_transfers = include_transfers;
  runtime::InferenceRuntime rt(runner, device, module, config);
  return rt.run(static_cast<std::uint64_t>(pe_count) * samples_per_pe)
      .samples_per_second;
}

/// Simulated prior-work F1 throughput ([8]'s architecture: float64
/// datapaths, shared DDR4, EDMA-class DMA).
inline double simulate_f1_throughput(const compiler::DatapathModule& module,
                                     const arith::ArithBackend& backend,
                                     int pe_count, int memory_channels,
                                     std::uint64_t samples_per_pe = 2'000'000) {
  sim::Scheduler scheduler;
  sim::ProcessRunner runner(scheduler);
  tapasco::CompositionConfig composition;
  composition.platform = fpga::Platform::kF1;
  composition.pe_count = pe_count;
  composition.memory_channels = memory_channels;
  composition.compute_results = false;
  tapasco::Device device(runner, module, backend, composition);
  runtime::RuntimeConfig config;
  config.threads_per_pe = 2;  // [8] overlapped with multiple threads
  runtime::InferenceRuntime rt(runner, device, module, config);
  return rt.run(static_cast<std::uint64_t>(pe_count) * samples_per_pe)
      .samples_per_second;
}

inline std::string msamples(double per_second) {
  return strformat("%.1f", per_second / 1e6);
}

}  // namespace spnhbm::bench
