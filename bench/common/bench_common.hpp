// Shared helpers for the benchmark harness binaries.
//
// Each binary regenerates one table or figure of the paper: it prints the
// same rows/series the paper reports, alongside the published values where
// available, so shape deviations are visible at a glance.
#pragma once

#include <cstdio>
#include <string>

#include "spnhbm/arith/backend.hpp"
#include "spnhbm/compiler/datapath.hpp"
#include "spnhbm/engine/fpga_engine.hpp"
#include "spnhbm/runtime/inference_runtime.hpp"
#include "spnhbm/tapasco/device.hpp"
#include "spnhbm/util/strings.hpp"
#include "spnhbm/util/table.hpp"
#include "spnhbm/workload/model_zoo.hpp"

namespace spnhbm::bench {

inline void print_header(const std::string& title, const std::string& what) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("%s\n", what.c_str());
  std::printf("================================================================\n");
}

inline void print_table(const Table& table) {
  std::fputs(table.render().c_str(), stdout);
}

/// End-to-end (or compute-only) throughput of an N-PE HBM design, timed on
/// the simulator through the unified engine interface. `samples_per_pe`
/// controls simulation effort.
inline double simulate_hbm_throughput(const compiler::DatapathModule& module,
                                      const arith::ArithBackend& backend,
                                      int pe_count, int threads_per_pe,
                                      bool include_transfers,
                                      std::uint64_t samples_per_pe = 3'000'000,
                                      bool skip_placement = false) {
  engine::FpgaEngineConfig config;
  config.pe_count = pe_count;
  config.threads_per_pe = threads_per_pe;
  config.include_transfers = include_transfers;
  config.compute_results = false;
  config.skip_placement_check = skip_placement;
  engine::FpgaSimEngine fpga(module, backend, config);
  return fpga.measure_throughput(static_cast<std::uint64_t>(pe_count) *
                                 samples_per_pe);
}

/// Simulated prior-work F1 throughput ([8]'s architecture: float64
/// datapaths, shared DDR4, EDMA-class DMA), through the same interface.
inline double simulate_f1_throughput(const compiler::DatapathModule& module,
                                     const arith::ArithBackend& backend,
                                     int pe_count, int memory_channels,
                                     std::uint64_t samples_per_pe = 2'000'000) {
  engine::FpgaEngineConfig config;
  config.platform = fpga::Platform::kF1;
  config.pe_count = pe_count;
  config.memory_channels = memory_channels;
  config.threads_per_pe = 2;  // [8] overlapped with multiple threads
  config.compute_results = false;
  engine::FpgaSimEngine fpga(module, backend, config);
  return fpga.measure_throughput(static_cast<std::uint64_t>(pe_count) *
                                 samples_per_pe);
}

inline std::string msamples(double per_second) {
  return strformat("%.1f", per_second / 1e6);
}

}  // namespace spnhbm::bench
