// Ablation (paper §III-B, building on [4]/[11]): arithmetic number format.
// Compares the CFP and LNS datapaths of this work against the prior-work
// float64 datapaths on four axes:
//   * per-PE resources (NIPS20),
//   * numeric accuracy vs the double reference (NIPS10, whose joint
//     probabilities stay inside every format's range),
//   * underflow rate on the deep NIPS80 model — the tiny-probability
//     regime that motivated the LNS format in [11],
//   * how many NIPS80 PEs the VU37P can hold — the replication headroom
//     behind the paper's Table I and §V-A.
#include "bench_common.hpp"

#include <cmath>

#include "spnhbm/fpga/resource_model.hpp"
#include "spnhbm/spn/evaluate.hpp"
#include "spnhbm/util/rng.hpp"

namespace {

using namespace spnhbm;

struct Accuracy {
  double mean_relative_error = 0.0;
  double underflow_fraction = 0.0;  ///< reference > 0 but datapath == 0
};

Accuracy measure_accuracy(const compiler::DatapathModule& module,
                          const arith::ArithBackend& backend,
                          const spn::Spn& spn, double comparable_floor) {
  spn::Evaluator reference(spn);
  Rng rng(99);
  double total_error = 0.0;
  int compared = 0;
  int underflows = 0;
  int trials = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::vector<std::uint8_t> sample(module.input_features());
    for (auto& b : sample) b = static_cast<std::uint8_t>(rng.next_below(64));
    const double want = reference.evaluate_bytes(sample);
    if (want <= 0.0) continue;
    ++trials;
    const double got = module.evaluate(backend, sample);
    if (got == 0.0) {
      ++underflows;
      continue;
    }
    if (want >= comparable_floor) {
      total_error += std::fabs(got - want) / want;
      ++compared;
    }
  }
  Accuracy result;
  if (compared > 0) result.mean_relative_error = total_error / compared;
  if (trials > 0) {
    result.underflow_fraction =
        static_cast<double>(underflows) / static_cast<double>(trials);
  }
  return result;
}

}  // namespace

int main() {
  using namespace spnhbm::bench;
  print_header("Ablation — arithmetic number formats",
               "CFP/LNS (this work, [4]/[11]) vs float64 (prior work [8]); "
               "resources on NIPS20, accuracy on NIPS10, underflow on "
               "NIPS80");

  const auto nips20 = workload::make_nips_model(20);
  const auto nips10 = workload::make_nips_model(10);
  const auto nips80 = workload::make_nips_model(80);

  struct Candidate {
    std::string name;
    std::unique_ptr<arith::ArithBackend> backend;
  };
  std::vector<Candidate> candidates;
  candidates.push_back({"CFP e8m22 (paper)",
                        arith::make_cfp_backend(arith::paper_cfp_format())});
  candidates.push_back({"LNS i8f22 (paper)",
                        arith::make_lns_backend(arith::paper_lns_format())});
  arith::LnsFormat deep_lns = arith::paper_lns_format();
  deep_lns.integer_bits = 12;  // the [11] configuration for deep SPNs
  candidates.push_back({"LNS i12f22 (deep)",
                        arith::make_lns_backend(deep_lns)});
  candidates.push_back({"posit<32,2> ([4])",
                        arith::make_posit_backend(arith::paper_posit_format())});
  candidates.push_back({"float64 ([8])", arith::make_float64_backend()});

  Table table({"format", "width", "kLUT/PE", "kRegs/PE", "DSP/PE", "depth",
               "rel. error (NIPS10)", "underflow (NIPS80)",
               "max NIPS80 PEs"});
  for (const auto& candidate : candidates) {
    const auto module20 = compiler::compile_spn(nips20.spn, *candidate.backend);
    const auto module10 = compiler::compile_spn(nips10.spn, *candidate.backend);
    const auto module80 = compiler::compile_spn(nips80.spn, *candidate.backend);
    const auto pe = fpga::estimate_pe(module20, candidate.backend->kind());
    const auto accuracy10 =
        measure_accuracy(module10, *candidate.backend, nips10.spn, 1e-30);
    const auto accuracy80 =
        measure_accuracy(module80, *candidate.backend, nips80.spn, 1e-300);
    const int max_pes = fpga::max_placeable_pes(
        module80, candidate.backend->kind(), fpga::Platform::kHbmXupVvh);
    table.add_row({candidate.name,
                   strformat("%d b", candidate.backend->width_bits()),
                   strformat("%.1f", pe.kluts_logic),
                   strformat("%.1f", pe.kregs), strformat("%.0f", pe.dsp),
                   strformat("%u", module20.pipeline_depth()),
                   strformat("%.2e", accuracy10.mean_relative_error),
                   strformat("%.0f%%", accuracy80.underflow_fraction * 100),
                   strformat("%d", max_pes)});
  }
  print_table(table);
  std::printf(
      "\ninterpretation: CFP/LNS cut DSPs ~3x and shorten pipelines vs the\n"
      "float64 cores of [8] at ~1e-6 relative error (the Table I headroom);\n"
      "the widened-integer LNS additionally survives the deep NIPS80 joint\n"
      "probabilities that underflow the CFP exponent range ([11]).\n");
  return 0;
}
