// Ablation (paper §IV-B / §V-B): control threads per PE.
// The paper found that two threads per PE saturate the DMA engine, and
// that more than one control thread only improves throughput below four
// PEs — beyond that the shared DMA engine is the bottleneck either way.
#include "bench_common.hpp"

int main() {
  using namespace spnhbm;
  using namespace spnhbm::bench;
  print_header("Ablation — control threads per PE (NIPS10, end-to-end)",
               "paper: >1 thread helps only below 4 PEs; 2 threads saturate "
               "the DMA engine");

  const auto backend = arith::make_cfp_backend(arith::paper_cfp_format());
  const auto module = compiler::compile_spn(
      workload::make_nips_model(10).spn, *backend);

  Table table({"PEs", "1 thread [Ms/s]", "2 threads [Ms/s]",
               "4 threads [Ms/s]", "2t vs 1t"});
  for (const int pes : {1, 2, 3, 4, 6, 8}) {
    const double one = simulate_hbm_throughput(module, *backend, pes, 1, true,
                                               2'000'000);
    const double two = simulate_hbm_throughput(module, *backend, pes, 2, true,
                                               2'000'000);
    const double four = simulate_hbm_throughput(module, *backend, pes, 4, true,
                                                2'000'000);
    table.add_row({strformat("%d", pes), msamples(one), msamples(two),
                   msamples(four), strformat("%+.1f%%", (two / one - 1) * 100)});
  }
  print_table(table);
  return 0;
}
