// Ablation (paper §IV-B): the runtime's sub-job block size.
// "each compute job is broken down into multiple sub-jobs, according to an
// user-specified block-size". The choice trades per-block overheads
// (launch, DMA setup, staging) against pipelining granularity: blocks that
// are too small drown in overhead, blocks that are too large serialise
// badly around the shared DMA engine and push the scaling knee down.
// This repo's default (256 Ki samples) was calibrated on exactly this
// sweep (see EXPERIMENTS.md).
#include "bench_common.hpp"

namespace {

double run_with_block(const spnhbm::compiler::DatapathModule& module,
                      const spnhbm::arith::ArithBackend& backend, int pes,
                      std::size_t block_samples) {
  using namespace spnhbm;
  sim::Scheduler scheduler;
  sim::ProcessRunner runner(scheduler);
  tapasco::CompositionConfig composition;
  composition.pe_count = pes;
  composition.compute_results = false;
  tapasco::Device device(runner, module, backend, composition);
  runtime::RuntimeConfig config;
  config.block_samples = block_samples;
  runtime::InferenceRuntime rt(runner, device, module, config);
  return rt.run(static_cast<std::uint64_t>(pes) * 4'000'000)
      .samples_per_second;
}

}  // namespace

int main() {
  using namespace spnhbm;
  using namespace spnhbm::bench;
  print_header("Ablation — runtime block size (NIPS10, end-to-end)",
               "paper §IV-B: jobs split into user-sized sub-jobs; small "
               "blocks drown in per-block overhead, huge blocks serialise "
               "around the DMA engine");

  const auto backend = arith::make_cfp_backend(arith::paper_cfp_format());
  const auto module = compiler::compile_spn(
      workload::make_nips_model(10).spn, *backend);

  Table table({"block [samples]", "1 PE [Ms/s]", "5 PEs [Ms/s]",
               "8 PEs [Ms/s]"});
  for (const std::size_t block :
       {std::size_t{1} << 14, std::size_t{1} << 16, std::size_t{1} << 18,
        std::size_t{1} << 20, std::size_t{1} << 22}) {
    table.add_row({strformat("%zu Ki", block >> 10),
                   msamples(run_with_block(module, *backend, 1, block)),
                   msamples(run_with_block(module, *backend, 5, block)),
                   msamples(run_with_block(module, *backend, 8, block))});
  }
  print_table(table);
  std::printf(
      "\ninterpretation: the 256 Ki default keeps the multi-PE knee sharp\n"
      "(best 5-PE rate); tiny 16 Ki blocks halve 1-PE throughput through\n"
      "per-block overheads, while 4 Mi blocks cost ~18%% at 5 PEs through\n"
      "coarse-grained DMA serialisation.\n");
  return 0;
}
