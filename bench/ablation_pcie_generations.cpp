// Outlook study (paper §V-C): what PCIe 4.0/5.0/6.0 would buy.
// The paper argues the host<->device DMA link is the hard bottleneck and
// projects single-direction engine rates of ~23/46/92 GiB/s for the next
// generations. This sweep re-runs the end-to-end scaling with those link
// rates (placement check relaxed beyond 8 PEs for the what-if points, as
// the paper's projection also ignores logic/routing limits).
#include "bench_common.hpp"

#include "spnhbm/pcie/pcie.hpp"

namespace {

double run_with_generation(const spnhbm::compiler::DatapathModule& module,
                           const spnhbm::arith::ArithBackend& backend,
                           int pes, int generation) {
  using namespace spnhbm;
  sim::Scheduler scheduler;
  sim::ProcessRunner runner(scheduler);
  tapasco::CompositionConfig composition;
  composition.pe_count = pes;
  composition.compute_results = false;
  composition.pcie_generation = generation;
  composition.skip_placement_check = pes > fpga::cal::kMaxRoutablePes;
  tapasco::Device device(runner, module, backend, composition);
  runtime::RuntimeConfig config;
  config.threads_per_pe = 2;
  runtime::InferenceRuntime rt(runner, device, module, config);
  return rt.run(static_cast<std::uint64_t>(pes) * 1'500'000)
      .samples_per_second;
}

}  // namespace

int main() {
  using namespace spnhbm;
  using namespace spnhbm::bench;
  print_header("Ablation — PCIe generation outlook (paper §V-C)",
               "end-to-end samples/s; >8 PEs are what-if points beyond the "
               "routable design");

  const auto backend = arith::make_cfp_backend(arith::paper_cfp_format());
  for (const std::size_t size : {std::size_t{10}, std::size_t{80}}) {
    const auto module = compiler::compile_spn(
        workload::make_nips_model(size).spn, *backend);
    std::printf("\nNIPS%zu:\n", size);
    Table table({"PEs", "gen3 (11.6 GiB/s)", "gen4 (23 GiB/s)",
                 "gen5 (46 GiB/s)", "gen6 (92 GiB/s)"});
    for (const int pes : {4, 8, 16, 32}) {
      std::vector<std::string> row{strformat("%d%s", pes,
                                             pes > 8 ? " (what-if)" : "")};
      for (const int generation : {3, 4, 5, 6}) {
        row.push_back(
            msamples(run_with_generation(module, *backend, pes, generation)));
      }
      table.add_row(row);
    }
    print_table(table);
  }
  std::printf(
      "\npaper reference: with PCIe 3.0 the DMA engine caps the system; "
      "each following generation roughly doubles the ceiling, letting the\n"
      "HBM channels (32 x ~12 GiB/s) be exploited much further (§V-C).\n");
  return 0;
}
