// Reproduces paper Fig. 6: end-to-end peak inference throughput
// (samples/s, host<->device transfers included) of the HBM architecture
// against the prior-work AWS F1 design [8], a 12-core Xeon E5-2680 v3 and
// an NVIDIA Tesla V100, for every benchmark SPN — plus the published
// speedup aggregates:
//   vs CPU:  geo 1.6x, max 2.46x (NIPS80), CPU wins NIPS10;
//   vs V100: geo 6.9x, max 8.4x;
//   vs F1:   geo 1.29x, max 1.50x (NIPS80).
//
// Platform sources: HBM and F1 are simulated by this repo; Xeon and V100
// are reconstructed reference curves (see baselines/reference_platforms);
// the native CPU throughput measured on THIS machine is reported as an
// extra informational row.
#include "bench_common.hpp"

#include "spnhbm/baselines/reference_platforms.hpp"
#include "spnhbm/engine/cpu_engine.hpp"
#include "spnhbm/telemetry/bench_report.hpp"
#include "spnhbm/util/stats.hpp"

int main() {
  using namespace spnhbm;
  using namespace spnhbm::bench;
  print_header("Fig. 6 — end-to-end peak performance by platform",
               "samples/s including host<->device transfers (HBM, F1)");

  const auto cfp = arith::make_cfp_backend(arith::paper_cfp_format());
  const auto f64 = arith::make_float64_backend();
  const auto cpu_ref = baselines::xeon_e5_2680v3_curve();
  const auto gpu_ref = baselines::tesla_v100_curve();
  const auto f1_ref = baselines::aws_f1_curve();
  const auto hbm_ref = baselines::paper_hbm_curve();

  Table table({"benchmark", "HBM sim [Ms/s]", "HBM paper", "F1 sim",
               "F1 paper[8]", "Xeon ref", "V100 ref", "native CPU here"});
  telemetry::BenchReport report("fig6_end_to_end");
  std::vector<double> vs_cpu, vs_gpu, vs_f1_sim, vs_f1_ref;
  double max_cpu = 0, max_gpu = 0, max_f1 = 0;
  bool cpu_wins_nips10 = false;

  for (const std::size_t size : workload::nips_benchmark_sizes()) {
    const auto model = workload::make_nips_model(size);
    const auto module = compiler::compile_spn(model.spn, *cfp);
    const auto module_f64 = compiler::compile_spn(model.spn, *f64);

    // Best-case HBM configuration: the largest placeable design.
    const int hbm_pes = fpga::max_placeable_pes(module, arith::FormatKind::kCfp,
                                                fpga::Platform::kHbmXupVvh);
    const double hbm = simulate_hbm_throughput(module, *cfp, hbm_pes, 1, true,
                                               1'500'000);

    // Prior-work F1 configuration: 4 PEs/4 controllers up to NIPS40,
    // 2 PEs/2 controllers for NIPS80 — the configurations [8] actually
    // deployed (paper §V-A/§V-D).
    const int f1_pes = std::min(
        {fpga::max_placeable_pes(module_f64, arith::FormatKind::kFloat64,
                                 fpga::Platform::kF1),
         size == 80 ? 2 : 4});
    const double f1 = simulate_f1_throughput(module_f64, *f64, f1_pes, f1_pes,
                                             1'000'000);

    engine::CpuEngine cpu(module_f64);
    const double native_cpu = cpu.measure_throughput(200'000);

    table.add_row({model.name, msamples(hbm), msamples(hbm_ref.at(size)),
                   msamples(f1), msamples(f1_ref.at(size)),
                   msamples(cpu_ref.at(size)), msamples(gpu_ref.at(size)),
                   msamples(native_cpu)});

    report.add()
        .field("benchmark", model.name)
        .field("nips_size", static_cast<double>(size))
        .field("hbm_sim_samples_per_s", hbm)
        .field("hbm_paper_samples_per_s", hbm_ref.at(size))
        .field("f1_sim_samples_per_s", f1)
        .field("f1_paper_samples_per_s", f1_ref.at(size))
        .field("xeon_ref_samples_per_s", cpu_ref.at(size))
        .field("v100_ref_samples_per_s", gpu_ref.at(size))
        .field("native_cpu_samples_per_s", native_cpu);

    vs_cpu.push_back(hbm / cpu_ref.at(size));
    vs_gpu.push_back(hbm / gpu_ref.at(size));
    vs_f1_sim.push_back(hbm / f1);
    vs_f1_ref.push_back(hbm / f1_ref.at(size));
    max_cpu = std::max(max_cpu, vs_cpu.back());
    max_gpu = std::max(max_gpu, vs_gpu.back());
    max_f1 = std::max(max_f1, vs_f1_ref.back());
    if (size == 10 && vs_cpu.back() < 1.0) cpu_wins_nips10 = true;
  }
  print_table(table);

  std::printf("\nspeedups of the simulated HBM architecture:\n");
  Table speedups({"vs platform", "geo-mean (sim)", "geo-mean (paper)",
                  "max (sim)", "max (paper)"});
  speedups.add_row({"Xeon E5-2680 v3", strformat("%.2fx", geometric_mean(vs_cpu)),
                    "1.60x", strformat("%.2fx", max_cpu), "2.46x"});
  speedups.add_row({"Tesla V100", strformat("%.2fx", geometric_mean(vs_gpu)),
                    "6.90x", strformat("%.2fx", max_gpu), "8.40x"});
  speedups.add_row({"AWS F1 [8] (reference)",
                    strformat("%.2fx", geometric_mean(vs_f1_ref)), "1.29x",
                    strformat("%.2fx", max_f1), "1.50x"});
  speedups.add_row({"AWS F1 [8] (simulated)",
                    strformat("%.2fx", geometric_mean(vs_f1_sim)), "1.29x",
                    strformat("%.2fx",
                              *std::max_element(vs_f1_sim.begin(),
                                                vs_f1_sim.end())),
                    "1.50x"});
  print_table(speedups);
  std::printf("CPU outperforms HBM on NIPS10 (paper: yes): %s\n",
              cpu_wins_nips10 ? "yes" : "no");

  report.add()
      .field("benchmark", "speedup_summary")
      .field("geo_mean_vs_xeon", geometric_mean(vs_cpu))
      .field("max_vs_xeon", max_cpu)
      .field("geo_mean_vs_v100", geometric_mean(vs_gpu))
      .field("max_vs_v100", max_gpu)
      .field("geo_mean_vs_f1_ref", geometric_mean(vs_f1_ref))
      .field("max_vs_f1_ref", max_f1)
      .field("geo_mean_vs_f1_sim", geometric_mean(vs_f1_sim))
      .field("cpu_wins_nips10", cpu_wins_nips10 ? 1.0 : 0.0);
  report.write();
  std::printf("machine-readable records written to %s\n",
              report.output_path().c_str());
  return 0;
}
