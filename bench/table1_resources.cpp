// Reproduces paper Table I: resource utilisation of four-accelerator
// designs, this work ("New": CFP datapaths on the HBM platform, hardened
// memory controllers) versus the prior work "[8]" (float64 datapaths on
// AWS F1 with soft DDR4 controllers), for NIPS10..NIPS40, plus the
// device "Available" row. Published values are printed alongside.
#include "bench_common.hpp"

#include "spnhbm/fpga/resource_model.hpp"

namespace {

struct PaperRow {
  std::size_t size;
  double new_lut, old_lut;
  double new_lutmem, old_lutmem;
  double new_regs, old_regs;
  double new_bram, old_bram;
  double new_dsp, old_dsp;
};

// Table I of the paper, verbatim.
constexpr PaperRow kPaperRows[] = {
    {10, 169.8, 376.0, 66.9, 45.4, 275.1, 530.2, 122, 360, 200, 612},
    {20, 180.5, 467.0, 69.6, 54.4, 320.7, 650.6, 126, 388, 448, 1356},
    {30, 230.9, 577.3, 70.4, 62.6, 354.4, 765.4, 122, 364, 696, 2100},
    {40, 241.2, 664.1, 72.9, 75.1, 401.6, 907.1, 132, 380, 976, 2940},
};

}  // namespace

int main() {
  using namespace spnhbm;
  using namespace spnhbm::bench;
  print_header("Table I — resource utilisation, 4-PE designs",
               "New = this work (CFP + HBM), [8] = prior work (float64 + "
               "soft DDR on F1); 'paper' columns are the published values");

  const auto cfp = arith::make_cfp_backend(arith::paper_cfp_format());
  const auto f64 = arith::make_float64_backend();

  Table table({"Example", "resource", "New (sim)", "New (paper)", "[8] (sim)",
               "[8] (paper)"});
  for (const auto& row : kPaperRows) {
    const auto model = workload::make_nips_model(row.size);
    const auto module_new = compiler::compile_spn(model.spn, *cfp);
    const auto module_old = compiler::compile_spn(model.spn, *f64);
    const auto design_new = fpga::estimate_design(
        module_new, arith::FormatKind::kCfp,
        fpga::DesignSpec{fpga::Platform::kHbmXupVvh, 4, 1});
    const auto design_old = fpga::estimate_design(
        module_old, arith::FormatKind::kFloat64,
        fpga::DesignSpec{fpga::Platform::kF1, 4, 4});
    const std::string name = strformat("NIPS%zu", row.size);
    table.add_row({name, "kLUT logic", strformat("%.1f", design_new.kluts_logic),
                   strformat("%.1f", row.new_lut),
                   strformat("%.1f", design_old.kluts_logic),
                   strformat("%.1f", row.old_lut)});
    table.add_row({name, "kLUT mem", strformat("%.1f", design_new.kluts_mem),
                   strformat("%.1f", row.new_lutmem),
                   strformat("%.1f", design_old.kluts_mem),
                   strformat("%.1f", row.old_lutmem)});
    table.add_row({name, "kRegs", strformat("%.1f", design_new.kregs),
                   strformat("%.1f", row.new_regs),
                   strformat("%.1f", design_old.kregs),
                   strformat("%.1f", row.old_regs)});
    table.add_row({name, "BRAM", strformat("%.0f", design_new.bram36),
                   strformat("%.0f", row.new_bram),
                   strformat("%.0f", design_old.bram36),
                   strformat("%.0f", row.old_bram)});
    table.add_row({name, "DSP", strformat("%.0f", design_new.dsp),
                   strformat("%.0f", row.new_dsp),
                   strformat("%.0f", design_old.dsp),
                   strformat("%.0f", row.old_dsp)});
  }
  const auto vu37p = fpga::vu37p_budget();
  const auto vu9p = fpga::f1_vu9p_budget();
  table.add_row({"Available", "kLUT logic", strformat("%.1f", vu37p.kluts_logic),
                 "1304.0", strformat("%.1f", vu9p.kluts_logic), "1182.0"});
  table.add_row({"Available", "DSP", strformat("%.0f", vu37p.dsp), "9024",
                 strformat("%.0f", vu9p.dsp), "6840"});
  print_table(table);

  // The headline claims of §V-A.
  const auto nips80 = workload::make_nips_model(80);
  const auto module80_new = compiler::compile_spn(nips80.spn, *cfp);
  const auto module80_old = compiler::compile_spn(nips80.spn, *f64);
  std::printf(
      "\nreplication: NIPS80 fits %d PEs on the HBM platform (paper: 8) vs "
      "%d PEs on F1 (paper: 2)\n",
      fpga::max_placeable_pes(module80_new, arith::FormatKind::kCfp,
                              fpga::Platform::kHbmXupVvh),
      fpga::max_placeable_pes(module80_old, arith::FormatKind::kFloat64,
                              fpga::Platform::kF1));
  return 0;
}
