// Micro-benchmarks (google-benchmark) of the host-side runtime components:
// the device memory manager (hot allocate/free path taken per sub-job), the
// native CPU inference engine driven through the unified InferenceEngine
// interface, and the InferenceServer's batching/dispatch overhead.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "spnhbm/engine/cpu_engine.hpp"
#include "spnhbm/engine/server.hpp"
#include "spnhbm/runtime/memory_manager.hpp"
#include "spnhbm/spn/evaluate.hpp"
#include "spnhbm/util/rng.hpp"
#include "spnhbm/workload/model_zoo.hpp"

namespace {

using namespace spnhbm;

void BM_MemoryManagerAllocFree(benchmark::State& state) {
  runtime::DeviceMemoryManager manager(1, 256ull << 20);
  for (auto _ : state) {
    const auto a = manager.allocate(0, 10 << 20);
    const auto b = manager.allocate(0, 2 << 20);
    manager.free(0, a);
    manager.free(0, b);
  }
}
BENCHMARK(BM_MemoryManagerAllocFree);

void BM_MemoryManagerFragmented(benchmark::State& state) {
  runtime::DeviceMemoryManager manager(1, 256ull << 20);
  // Build a fragmented arena first.
  std::vector<std::uint64_t> held;
  for (int i = 0; i < 128; ++i) held.push_back(manager.allocate(0, 1 << 20));
  for (std::size_t i = 0; i < held.size(); i += 2) manager.free(0, held[i]);
  for (auto _ : state) {
    const auto address = manager.allocate(0, 512 << 10);
    manager.free(0, address);
  }
  for (std::size_t i = 1; i < held.size(); i += 2) manager.free(0, held[i]);
}
BENCHMARK(BM_MemoryManagerFragmented);

void BM_ReferenceEvaluator(benchmark::State& state) {
  const auto model =
      workload::make_nips_model(static_cast<std::size_t>(state.range(0)));
  spn::Evaluator evaluator(model.spn);
  Rng rng(5);
  std::vector<double> sample(model.variables);
  for (auto& v : sample) v = static_cast<double>(rng.next_below(256));
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.evaluate(sample));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReferenceEvaluator)->Arg(10)->Arg(40)->Arg(80);

void BM_CpuEngineBatch(benchmark::State& state) {
  const auto model =
      workload::make_nips_model(static_cast<std::size_t>(state.range(0)));
  const auto backend = arith::make_float64_backend();
  const auto module = compiler::compile_spn(model.spn, *backend);
  engine::CpuEngine cpu(module);
  Rng rng(5);
  const std::size_t count = 8192;
  std::vector<std::uint8_t> samples(count * model.variables);
  for (auto& b : samples) b = static_cast<std::uint8_t>(rng.next_below(256));
  std::vector<double> results(count);
  for (auto _ : state) {
    cpu.wait(cpu.submit(samples, results));
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_CpuEngineBatch)->Arg(10)->Arg(80);

// Full server path: small independent requests coalesced into engine
// batches — measures the scheduler's per-request overhead, not the math.
void BM_ServerSmallRequests(benchmark::State& state) {
  const auto model = workload::make_nips_model(10);
  const auto backend = arith::make_float64_backend();
  const auto module = compiler::compile_spn(model.spn, *backend);
  engine::ServerConfig config;
  config.batch_samples = 1024;
  config.max_latency = std::chrono::microseconds(200);
  engine::InferenceServer server(config);
  server.register_engine(std::make_shared<engine::CpuEngine>(module));
  server.start();
  Rng rng(5);
  const std::size_t requests = 64;
  const std::size_t request_samples = 16;
  std::vector<std::uint8_t> sample(request_samples * model.variables);
  for (auto& b : sample) b = static_cast<std::uint8_t>(rng.next_below(256));
  for (auto _ : state) {
    std::vector<std::future<std::vector<double>>> futures;
    futures.reserve(requests);
    for (std::size_t r = 0; r < requests; ++r) {
      futures.push_back(server.submit(sample));
    }
    for (auto& f : futures) benchmark::DoNotOptimize(f.get());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(requests));
  server.stop();
}
BENCHMARK(BM_ServerSmallRequests);

}  // namespace

// Like BENCHMARK_MAIN(), but defaults --benchmark_out to the same
// BENCH_<name>.json location the fig benches use (overridable via
// SPNHBM_BENCH_JSON_DIR), unless the caller passed their own --benchmark_out.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  std::string format_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).starts_with("--benchmark_out=")) {
      has_out = true;
    }
  }
  if (!has_out) {
    std::string path = "BENCH_micro_runtime.json";
    if (const char* dir = std::getenv("SPNHBM_BENCH_JSON_DIR");
        dir != nullptr && *dir != '\0') {
      path = std::string(dir) + "/" + path;
    }
    out_flag = "--benchmark_out=" + path;
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
