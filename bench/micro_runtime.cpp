// Micro-benchmarks (google-benchmark) of the host-side runtime components:
// the device memory manager (hot allocate/free path taken per sub-job) and
// the native CPU inference engine (baseline throughput on this machine).
#include <benchmark/benchmark.h>

#include <thread>

#include "spnhbm/baselines/cpu_engine.hpp"
#include "spnhbm/runtime/memory_manager.hpp"
#include "spnhbm/spn/evaluate.hpp"
#include "spnhbm/util/rng.hpp"
#include "spnhbm/workload/model_zoo.hpp"

namespace {

using namespace spnhbm;

void BM_MemoryManagerAllocFree(benchmark::State& state) {
  runtime::DeviceMemoryManager manager(1, 256ull << 20);
  for (auto _ : state) {
    const auto a = manager.allocate(0, 10 << 20);
    const auto b = manager.allocate(0, 2 << 20);
    manager.free(0, a);
    manager.free(0, b);
  }
}
BENCHMARK(BM_MemoryManagerAllocFree);

void BM_MemoryManagerFragmented(benchmark::State& state) {
  runtime::DeviceMemoryManager manager(1, 256ull << 20);
  // Build a fragmented arena first.
  std::vector<std::uint64_t> held;
  for (int i = 0; i < 128; ++i) held.push_back(manager.allocate(0, 1 << 20));
  for (std::size_t i = 0; i < held.size(); i += 2) manager.free(0, held[i]);
  for (auto _ : state) {
    const auto address = manager.allocate(0, 512 << 10);
    manager.free(0, address);
  }
  for (std::size_t i = 1; i < held.size(); i += 2) manager.free(0, held[i]);
}
BENCHMARK(BM_MemoryManagerFragmented);

void BM_ReferenceEvaluator(benchmark::State& state) {
  const auto model =
      workload::make_nips_model(static_cast<std::size_t>(state.range(0)));
  spn::Evaluator evaluator(model.spn);
  Rng rng(5);
  std::vector<double> sample(model.variables);
  for (auto& v : sample) v = static_cast<double>(rng.next_below(256));
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.evaluate(sample));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReferenceEvaluator)->Arg(10)->Arg(40)->Arg(80);

void BM_CpuEngineBatch(benchmark::State& state) {
  const auto model =
      workload::make_nips_model(static_cast<std::size_t>(state.range(0)));
  const auto backend = arith::make_float64_backend();
  const auto module = compiler::compile_spn(model.spn, *backend);
  baselines::CpuInferenceEngine engine(
      module, std::max(1u, std::thread::hardware_concurrency()));
  Rng rng(5);
  const std::size_t count = 8192;
  std::vector<std::uint8_t> samples(count * model.variables);
  for (auto& b : samples) b = static_cast<std::uint8_t>(rng.next_below(256));
  std::vector<double> results(count);
  for (auto _ : state) {
    engine.infer(samples, results);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_CpuEngineBatch)->Arg(10)->Arg(80);

}  // namespace

BENCHMARK_MAIN();
