// Reproduces paper Fig. 4: samples/s versus PE count (1..8) for every
// benchmark SPN, (a) excluding host-to-device transfers (left subplot:
// near-linear scaling, the embarrassingly-parallel case) and (b) including
// them (right subplot: scaling flattens once the shared DMA engine
// saturates — around five PEs for NIPS10).
//
// Published anchors: NIPS10 1 PE = 133.1 Msamples/s end-to-end; NIPS10
// 5 PEs = 614.7 Msamples/s end-to-end.
#include "bench_common.hpp"

int main() {
  using namespace spnhbm;
  using namespace spnhbm::bench;
  print_header("Fig. 4 — throughput scaling by PE count",
               "left block: w/o host<->device transfers; right block: "
               "end-to-end (1 control thread per PE, as in the paper)");

  const auto backend = arith::make_cfp_backend(arith::paper_cfp_format());

  for (const bool include_transfers : {false, true}) {
    std::printf("\n--- %s ---\n", include_transfers
                                      ? "WITH host<->device transfers"
                                      : "WITHOUT transfers (compute only)");
    std::vector<std::string> header{"PEs"};
    for (const std::size_t size : workload::nips_benchmark_sizes()) {
      header.push_back(strformat("NIPS%zu [Ms/s]", size));
    }
    Table table(header);

    std::vector<compiler::DatapathModule> modules;
    for (const std::size_t size : workload::nips_benchmark_sizes()) {
      modules.push_back(compiler::compile_spn(
          workload::make_nips_model(size).spn, *backend));
    }
    for (int pes = 1; pes <= 8; ++pes) {
      std::vector<std::string> row{strformat("%d", pes)};
      for (const auto& module : modules) {
        const double rate = simulate_hbm_throughput(
            module, *backend, pes, /*threads_per_pe=*/1, include_transfers,
            /*samples_per_pe=*/1'500'000);
        row.push_back(msamples(rate));
      }
      table.add_row(row);
    }
    print_table(table);
  }
  std::printf(
      "\npaper anchors (end-to-end NIPS10): 1 PE = 133.1 Ms/s, 5 PEs = "
      "614.7 Ms/s, little gain beyond 5 PEs; without transfers scaling is\n"
      "almost linear to 8 PEs for every benchmark (paper Fig. 4).\n");
  return 0;
}
