// Autotuned serving configuration vs hand-picked defaults on the NIPS80
// serving workload.
//
// Runs the src/tune search (grid seed + hill climb, simulator cost model)
// on the paper's largest benchmark model under a compute-bound request
// mix — arrivals offer far more samples per second than one card serves,
// so block size, PE count and batching genuinely move the needle — and
// reports the winning config's simulated throughput next to the
// defaults a careful operator would pick by hand (calibrated block size,
// max routable PEs, dedicated HBM channels, batch=1024, 1 ms flush).
//
// The run is deterministic (fixed seed -> byte-identical search
// trajectory), and the bench FAILS (exit 1) if the tuned config does not
// at least match the default's throughput: the tuner must never make
// things worse, because the baseline config is inside its search space.
#include "bench_common.hpp"

#include "spnhbm/arith/cfp.hpp"
#include "spnhbm/model/artifact.hpp"
#include "spnhbm/telemetry/bench_report.hpp"
#include "spnhbm/tune/tuner.hpp"
#include "spnhbm/workload/model_zoo.hpp"

int main() {
  using namespace spnhbm;
  using namespace spnhbm::bench;
  print_header("Autotuning — tuned vs default serving configuration",
               "NIPS80, compute-bound open-loop workload; the tuner must "
               "match or beat the hand-picked defaults");

  auto nips80 = workload::make_nips_model(80);
  const auto model = model::ModelArtifact::compile(
      "nips80", "1", std::move(nips80.spn),
      arith::make_cfp_backend(arith::paper_cfp_format()));

  tune::TuneOptions options;
  options.workload.requests = 24;
  options.workload.mean_request_samples = 8192;
  options.workload.mean_interarrival_us = 50;
  options.workload.seed = 20220530;
  options.max_evaluations = 32;
  const tune::TuneResult result = tune::tune(model, options);

  Table table({"series", "config", "samples/s", "mean latency [us]"});
  telemetry::BenchReport report("tuned_vs_default");
  const struct {
    const char* series;
    const model::TunedConfig& config;
    const tune::CandidateScore& score;
  } rows[] = {
      {"default", result.baseline, result.baseline_score},
      {"tuned", result.best, result.best_score},
  };
  for (const auto& row : rows) {
    table.add_row({row.series, row.config.describe(),
                   strformat("%.0f", row.score.samples_per_second),
                   strformat("%.1f", row.score.mean_latency_us)});
    report.add()
        .field("series", row.series)
        .field("samples_per_s", row.score.samples_per_second)
        .field("mean_latency_us", row.score.mean_latency_us)
        .field("block_samples", static_cast<double>(row.config.block_samples))
        .field("pe_count", static_cast<double>(row.config.pe_count))
        .field("batch_samples", static_cast<double>(row.config.batch_samples))
        .field("flush_deadline_us",
               static_cast<double>(row.config.flush_deadline_us));
  }
  print_table(table);
  report.write();
  std::printf("\nmachine-readable records written to %s\n",
              report.output_path().c_str());
  std::printf("\nsearch: %llu candidates evaluated, speedup %+.1f%%\n",
              static_cast<unsigned long long>(result.candidates_evaluated),
              100.0 * (result.best_score.samples_per_second /
                           result.baseline_score.samples_per_second -
                       1.0));

  if (result.best_score.samples_per_second <
      result.baseline_score.samples_per_second) {
    std::printf("FAIL: tuned config is slower than the default\n");
    return 1;
  }
  return 0;
}
