// Reproduces paper Fig. 2: maximum throughput of ONE HBM memory channel
// under parallel linear reads and writes, as a function of request size,
// for two attachment configurations:
//   (a) traffic generator at the native 450 MHz / 256-bit HBM interface;
//   (b) generator at 225 MHz / 512-bit behind an AXI SmartConnect doing
//       clock-, width- and protocol-conversion.
// Expected shape: throughput rises with request size, capping at ~1 MiB
// around ~12 GiB/s combined, with both configurations on top of each
// other.
#include "bench_common.hpp"

#include "spnhbm/axi/smart_connect.hpp"
#include "spnhbm/hbm/hbm.hpp"
#include "spnhbm/sim/process.hpp"
#include "spnhbm/telemetry/bench_report.hpp"

namespace spnhbm::bench {
namespace {

/// One direction of the traffic-generator block: issues linear requests of
/// `request_bytes` with a descriptor re-arm gap between requests.
sim::Process traffic_stream(sim::Scheduler& scheduler, axi::AxiPort& port,
                            std::uint64_t region_base,
                            std::uint64_t request_bytes, bool is_write,
                            std::uint64_t total_bytes) {
  constexpr Picoseconds kRearmGap = microseconds(2);
  std::uint64_t moved = 0;
  while (moved < total_bytes) {
    co_await sim::delay(scheduler, kRearmGap);
    co_await axi::linear_transfer(port, region_base + (moved % (64 * kMiB)),
                                  request_bytes, is_write);
    moved += request_bytes;
  }
}

double measure(std::uint64_t request_bytes, bool use_smart_connect) {
  sim::Scheduler scheduler;
  sim::ProcessRunner runner(scheduler);
  hbm::HbmChannel channel(scheduler);
  axi::SmartConnect smart_connect(scheduler, channel.port());
  axi::AxiPort& port = use_smart_connect
                           ? static_cast<axi::AxiPort&>(smart_connect)
                           : static_cast<axi::AxiPort&>(channel.port());
  const std::uint64_t per_direction = 48 * kMiB;
  runner.spawn(traffic_stream(scheduler, port, 0, request_bytes, false,
                              per_direction));
  runner.spawn(traffic_stream(scheduler, port, 128 * kMiB, request_bytes,
                              true, per_direction));
  scheduler.run();
  runner.check();
  return static_cast<double>(2 * per_direction) /
         to_seconds(scheduler.now()) / static_cast<double>(kGiB);
}

}  // namespace
}  // namespace spnhbm::bench

int main() {
  using namespace spnhbm;
  using namespace spnhbm::bench;
  print_header("Fig. 2 — single HBM channel throughput vs request size",
               "parallel linear read+write; paper plateau: ~12 GiB/s "
               "combined at >= 1 MiB requests, both configs equal");

  Table table({"request size", "native 450MHz/256b [GiB/s]",
               "SmartConnect 225MHz/512b [GiB/s]", "delta"});
  telemetry::BenchReport report("fig2_hbm_channel");
  for (const std::uint64_t request :
       {4 * kKiB, 16 * kKiB, 64 * kKiB, 256 * kKiB, 1 * kMiB, 4 * kMiB}) {
    const double native = measure(request, false);
    const double converted = measure(request, true);
    table.add_row({format_bytes(request), strformat("%.2f", native),
                   strformat("%.2f", converted),
                   strformat("%+.1f%%", (converted / native - 1.0) * 100)});
    report.add()
        .field("request_bytes", static_cast<double>(request))
        .field("native_gib_per_s", native)
        .field("smart_connect_gib_per_s", converted);
  }
  print_table(table);
  report.write();
  std::printf("\nmachine-readable records written to %s\n",
              report.output_path().c_str());
  std::printf(
      "\npaper reference: plateau ~12 GiB/s reached at 1 MiB requests; the\n"
      "half-clock/double-width SmartConnect attachment matches the native\n"
      "attachment within measurement noise (paper Fig. 2).\n");
  return 0;
}
