#include "spnhbm/model/registry.hpp"

#include <algorithm>
#include <cctype>
#include <utility>

namespace spnhbm::model {

namespace {

/// Splits a version string into maximal digit / non-digit chunks.
std::vector<std::string> version_chunks(const std::string& version) {
  std::vector<std::string> chunks;
  std::size_t i = 0;
  while (i < version.size()) {
    const bool digits = std::isdigit(static_cast<unsigned char>(version[i]));
    std::size_t j = i;
    while (j < version.size() &&
           std::isdigit(static_cast<unsigned char>(version[j])) == digits) {
      ++j;
    }
    chunks.push_back(version.substr(i, j - i));
    i = j;
  }
  return chunks;
}

bool all_digits(const std::string& chunk) {
  return !chunk.empty() &&
         std::all_of(chunk.begin(), chunk.end(), [](char c) {
           return std::isdigit(static_cast<unsigned char>(c));
         });
}

}  // namespace

bool version_less(const std::string& a, const std::string& b) {
  const auto chunks_a = version_chunks(a);
  const auto chunks_b = version_chunks(b);
  const std::size_t n = std::min(chunks_a.size(), chunks_b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::string& ca = chunks_a[i];
    const std::string& cb = chunks_b[i];
    if (ca == cb) continue;
    if (all_digits(ca) && all_digits(cb)) {
      // Compare as numbers: strip leading zeros, then by length, then
      // lexicographically (equal-length digit strings compare correctly).
      const std::string na = ca.substr(std::min(ca.find_first_not_of('0'),
                                                ca.size() - 1));
      const std::string nb = cb.substr(std::min(cb.find_first_not_of('0'),
                                                cb.size() - 1));
      if (na.size() != nb.size()) return na.size() < nb.size();
      if (na != nb) return na < nb;
      continue;  // numerically equal (e.g. "07" vs "7"): keep scanning
    }
    return ca < cb;
  }
  return chunks_a.size() < chunks_b.size();
}

ModelHandle ModelRegistry::add(ModelHandle artifact) {
  if (!artifact) throw ModelError("cannot register a null model artifact");
  const std::string id = artifact->id();
  std::lock_guard<std::mutex> lock(mutex_);
  if (by_id_.count(id) != 0) {
    throw ModelError("model " + id + " is already registered");
  }
  if (aliases_.count(id) != 0) {
    throw ModelError("model id " + id + " collides with an alias");
  }
  by_id_.emplace(id, artifact);
  return artifact;
}

ModelHandle ModelRegistry::resolve_locked(const std::string& ref) const {
  const auto alias_it = aliases_.find(ref);
  const std::string& id = alias_it != aliases_.end() ? alias_it->second : ref;
  const auto exact = by_id_.find(id);
  if (exact != by_id_.end()) return exact->second;
  // Bare-name lookup: pick the highest version among "ref@*".
  ModelHandle best;
  for (const auto& [key, handle] : by_id_) {
    if (handle->name() != ref) continue;
    if (!best || version_less(best->version(), handle->version())) {
      best = handle;
    }
  }
  if (!best) return best;
  // Versions can tie under the numeric-aware ordering while having
  // distinct ids (e.g. "7" vs "07"). Picking one silently would make the
  // lookup depend on registration order; refuse and name the candidates.
  std::vector<std::string> tied;
  for (const auto& [key, handle] : by_id_) {
    if (handle->name() != ref) continue;
    if (!version_less(handle->version(), best->version())) {
      tied.push_back(handle->id());  // by_id_ is ordered: ids come sorted
    }
  }
  if (tied.size() > 1) {
    std::string candidates;
    for (const std::string& candidate : tied) {
      candidates += candidates.empty() ? candidate : ", " + candidate;
    }
    throw ModelError("model name '" + ref +
                     "' is ambiguous; use an exact id (candidates: " +
                     candidates + ")");
  }
  return best;
}

ModelHandle ModelRegistry::get(const std::string& ref) const {
  ModelHandle handle = try_get(ref);
  if (!handle) throw ModelError("unknown model: " + ref);
  return handle;
}

ModelHandle ModelRegistry::try_get(const std::string& ref) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return resolve_locked(ref);
}

void ModelRegistry::alias(const std::string& alias, const std::string& ref) {
  std::lock_guard<std::mutex> lock(mutex_);
  ModelHandle target = resolve_locked(ref);
  if (!target) throw ModelError("unknown model: " + ref);
  if (by_id_.count(alias) != 0) {
    throw ModelError("alias " + alias + " collides with a registered id");
  }
  aliases_[alias] = target->id();
}

bool ModelRegistry::unload(const std::string& ref) {
  std::lock_guard<std::mutex> lock(mutex_);
  ModelHandle handle = resolve_locked(ref);
  if (!handle) throw ModelError("unknown model: " + ref);
  const std::string id = handle->id();
  by_id_.erase(id);
  for (auto it = aliases_.begin(); it != aliases_.end();) {
    it = it->second == id ? aliases_.erase(it) : std::next(it);
  }
  // `handle` is now the only registry-side pin. use_count == 1 means no
  // engine or caller still holds the artifact: it dies right here.
  if (handle.use_count() == 1) return true;
  pending_unloads_.push_back(handle);
  return false;
}

std::size_t ModelRegistry::pending_unload_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  pending_unloads_.erase(
      std::remove_if(pending_unloads_.begin(), pending_unloads_.end(),
                     [](const std::weak_ptr<const ModelArtifact>& weak) {
                       return weak.expired();
                     }),
      pending_unloads_.end());
  return pending_unloads_.size();
}

std::vector<std::string> ModelRegistry::ids() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(by_id_.size());
  for (const auto& [id, handle] : by_id_) out.push_back(id);
  return out;
}

std::size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return by_id_.size();
}

}  // namespace spnhbm::model
