// Model artifacts: the unit of deployment for multi-model serving.
//
// A ModelArtifact bundles everything a serving engine needs to host one
// SPN — the (optional) source graph, the compiled DatapathModule, the
// arithmetic backend it was compiled for, a name/version identity, and a
// content hash over the serialised design + backend so two artifacts with
// the same bits are recognisably the same model. Artifacts are immutable
// after construction and shared by `ModelHandle` (shared_ptr<const ...>):
// every engine holding a handle pins the artifact alive, which is what
// makes deferred unload in the ModelRegistry safe.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "spnhbm/arith/backend.hpp"
#include "spnhbm/compiler/datapath.hpp"
#include "spnhbm/spn/graph.hpp"
#include "spnhbm/util/error.hpp"

namespace spnhbm::model {

/// Model-layer failures (unknown model, duplicate id, bad artifact file).
class ModelError : public Error {
 public:
  using Error::Error;
};

class ModelArtifact;
struct TuningManifest;
using ModelHandle = std::shared_ptr<const ModelArtifact>;

class ModelArtifact {
 public:
  /// Compiles `spn` with `backend` (ownership taken) into an artifact.
  static ModelHandle compile(std::string name, std::string version,
                             spn::Spn spn,
                             std::unique_ptr<arith::ArithBackend> backend,
                             const compiler::CompileOptions& options = {});

  /// Loads an artifact from `path`: a serialised design file (SPND magic)
  /// is deserialised directly, anything else is parsed as a textual SPN
  /// description and compiled with `backend`. Throws ModelError when the
  /// file cannot be read, ParseError when its contents are malformed.
  static ModelHandle load_file(std::string name, std::string version,
                               const std::string& path,
                               std::unique_ptr<arith::ArithBackend> backend,
                               const compiler::CompileOptions& options = {});

  /// Wraps an already-compiled module into an artifact for the legacy
  /// single-model engine constructors. The backend is *borrowed*: the
  /// caller guarantees it outlives the artifact (the same contract the
  /// legacy constructors already imposed). Version is "0".
  static ModelHandle wrap(std::string name,
                          const compiler::DatapathModule& module,
                          const arith::ArithBackend& backend);

  /// As above, but takes ownership of the backend (for wrappers that have
  /// no caller-owned backend to borrow).
  static ModelHandle wrap(std::string name,
                          const compiler::DatapathModule& module,
                          std::unique_ptr<arith::ArithBackend> backend);

  const std::string& name() const { return name_; }
  const std::string& version() const { return version_; }
  /// Canonical identity: "name@version".
  std::string id() const { return name_ + "@" + version_; }

  /// FNV-1a over the serialised design bytes and the backend description:
  /// two artifacts with equal hashes hold bit-identical compiled designs.
  std::uint64_t content_hash() const { return content_hash_; }
  /// The hash as 16 lowercase hex characters.
  std::string content_hash_hex() const;

  const compiler::DatapathModule& module() const { return module_; }
  const arith::ArithBackend& backend() const { return *backend_; }
  std::size_t input_features() const { return module_.input_features(); }

  /// The source graph, when the artifact was compiled from one (absent
  /// for artifacts loaded from a serialised design).
  bool has_spn() const { return spn_.has_value(); }
  const spn::Spn& spn() const;

  /// "name@version [hash] 10 features, <backend>".
  std::string describe() const;

  /// Attaches a tuning manifest so every consumer of this handle (engines,
  /// serving lanes, fleet placement) sees the tuned knobs. The manifest
  /// must match this artifact — TuningManifest::require_matches runs here,
  /// so a manifest produced for different compiled bits is rejected with
  /// TuningError before it can influence anything. The manifest is serving
  /// metadata, not model content: attaching one does not change the
  /// content hash, and re-attaching replaces the previous manifest.
  void attach_tuning(std::shared_ptr<const TuningManifest> manifest) const;
  /// The attached manifest, or nullptr when the artifact is untuned.
  std::shared_ptr<const TuningManifest> tuning() const;

 private:
  ModelArtifact(std::string name, std::string version,
                std::optional<spn::Spn> spn, compiler::DatapathModule module,
                std::unique_ptr<arith::ArithBackend> owned,
                const arith::ArithBackend* borrowed);

  std::string name_;
  std::string version_;
  std::optional<spn::Spn> spn_;
  compiler::DatapathModule module_;
  std::unique_ptr<arith::ArithBackend> owned_backend_;
  const arith::ArithBackend* backend_;  ///< owned_backend_.get() or borrowed
  std::uint64_t content_hash_ = 0;
  /// Mutable serving metadata on an otherwise immutable artifact: the
  /// manifest binds to the content hash, so it cannot change what the
  /// artifact *is*, only how deployments configure themselves for it.
  mutable std::mutex tuning_mutex_;
  mutable std::shared_ptr<const TuningManifest> tuning_;
};

/// Builds an arithmetic backend by format name: "f64", "cfp", "lns" or
/// "posit" (the paper configurations). Throws ModelError on anything else.
std::unique_ptr<arith::ArithBackend> make_backend(const std::string& format);

}  // namespace spnhbm::model
