// Tuning manifests: the durable output of the autotuner (src/tune).
//
// A TunedConfig is one point in the deployment configuration space the
// tuner searches — host-runtime block size, composed PE count, HBM channel
// assignment (PEs per channel + crossbar routing) and the serving layer's
// coalescing target / flush deadline. A TuningManifest wraps the winning
// TunedConfig with provenance: which model (content hash + id), which
// query kind the datapath answers, the search seed, and the scores that
// justified the choice. Manifests are versioned JSON files keyed by the
// model's content hash, so a manifest tuned for one compiled design can
// never be applied to a different one (hash mismatch is a typed error).
//
// The manifest lives in the model layer — not in src/tune — because
// ModelArtifact carries it (attach_tuning) and every consumer of tuned
// knobs (FpgaSimEngine, InferenceServer lanes, FleetRouter placement)
// already depends on the model layer; only the *search* needs the
// simulator and lives in src/tune.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "spnhbm/util/error.hpp"

namespace spnhbm::model {

class ModelArtifact;

/// A manifest that cannot be parsed, fails validation, or does not match
/// the artifact it is applied to.
class TuningError : public Error {
 public:
  explicit TuningError(const std::string& what)
      : Error("tuning error: " + what) {}
};

/// One candidate deployment configuration (the tuner's search point).
struct TunedConfig {
  /// Host-runtime block size per PE job (InferenceRuntime sub-jobs).
  std::size_t block_samples = 0;
  /// PEs composed into the design (placement-checked by the consumer).
  int pe_count = 0;
  /// PEs sharing one HBM channel: 1 = the paper's dedicated-channel
  /// architecture, k > 1 packs k PEs onto one channel (they contend for
  /// its bandwidth but the design frees channels for other tenants).
  int hbm_pes_per_channel = 1;
  /// Route PEs through the global crossbar instead of direct SmartConnect.
  bool hbm_crossbar = false;
  /// Serving-layer coalescing target (InferenceServer lane batch size).
  std::size_t batch_samples = 0;
  /// Flush a partial serving batch once its oldest request waited this
  /// long (microseconds of wall time at the serving layer).
  std::uint64_t flush_deadline_us = 0;

  /// Throws ConfigError for values outside the valid space: zero block or
  /// batch size, non-positive PE count, a channel packing below 1 — and
  /// the edge the tuner probes deliberately, a zero batch target next to
  /// a nonzero flush deadline (a deadline with nothing to flush).
  void validate() const;

  /// "block=262144 pes=8 pes/ch=1 xbar=off batch=65536 flush=500us"
  std::string describe() const;

  bool operator==(const TunedConfig& other) const = default;
};

/// Versioned, content-addressed record of a tuning run's winner.
struct TuningManifest {
  /// Bumped when the JSON schema changes; load() rejects other versions.
  static constexpr int kFormatVersion = 1;

  std::string model_id;          ///< "name@version" (informational)
  std::string content_hash_hex;  ///< the binding key (artifact hash)
  std::string query;             ///< query kind name ("joint", ...)
  std::uint64_t seed = 0;        ///< search seed (reproducibility)
  TunedConfig config;            ///< the winning configuration
  double tuned_samples_per_second = 0.0;
  double baseline_samples_per_second = 0.0;
  std::uint64_t candidates_evaluated = 0;

  /// Serialises to a stable, human-diffable JSON document.
  std::string to_json() const;
  /// Parses and validates a manifest document. Throws TuningError for
  /// malformed JSON, a wrong format version or missing fields, and
  /// ConfigError (via TunedConfig::validate) for out-of-range knobs.
  static TuningManifest from_json(const std::string& text);

  void save(const std::string& path) const;
  static TuningManifest load(const std::string& path);

  /// Throws TuningError unless the manifest was produced for exactly this
  /// artifact (content hash) and its compiled query kind.
  void require_matches(const ModelArtifact& artifact) const;
};

}  // namespace spnhbm::model
