// Thread-safe, refcounted model registry.
//
// The registry is the serving stack's catalogue: artifacts are added under
// their "name@version" id, looked up by id, by bare name (highest version
// wins) or by alias, and unloaded. Unload is *deferred* when the artifact
// is still pinned elsewhere — an engine serving in-flight batches holds a
// ModelHandle, so the registry merely drops its own pin and remembers the
// artifact as pending; the memory is reclaimed when the last engine pin
// drops, never under a live batch. `pending_unload_count()` reports how
// many unloaded-but-still-pinned artifacts remain.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "spnhbm/model/artifact.hpp"

namespace spnhbm::model {

class ModelRegistry {
 public:
  /// Registers the artifact under its id. Throws ModelError when the id is
  /// already taken or the handle is null. Returns the handle for chaining.
  ModelHandle add(ModelHandle artifact);

  /// Resolves `ref` — an alias, an exact "name@version" id, or a bare name
  /// (highest version by numeric-aware comparison). Throws ModelError when
  /// nothing matches, or when the bare name's highest version is tied
  /// between several ids (the message lists the candidate name@version
  /// ids to disambiguate with).
  ModelHandle get(const std::string& ref) const;

  /// Like get(), but returns nullptr instead of throwing on no match
  /// (an ambiguous bare name still throws — it is a caller error, not a
  /// missing model).
  ModelHandle try_get(const std::string& ref) const;

  /// Points `alias` at the model `ref` resolves to (re-pointing an existing
  /// alias is allowed). Throws ModelError when `ref` is unknown or `alias`
  /// collides with a registered id.
  void alias(const std::string& alias, const std::string& ref);

  /// Unregisters the model `ref` resolves to and removes aliases pointing
  /// at it. Returns true when the artifact was freed immediately, false
  /// when external pins (engines with in-flight batches) defer the free.
  bool unload(const std::string& ref);

  /// Artifacts unloaded from the registry but still pinned externally.
  /// Expired entries are pruned as a side effect.
  std::size_t pending_unload_count() const;

  /// Registered ids, sorted.
  std::vector<std::string> ids() const;
  std::size_t size() const;

 private:
  ModelHandle resolve_locked(const std::string& ref) const;

  mutable std::mutex mutex_;
  std::map<std::string, ModelHandle> by_id_;
  std::map<std::string, std::string> aliases_;  ///< alias -> id
  mutable std::vector<std::weak_ptr<const ModelArtifact>> pending_unloads_;
};

/// Numeric-aware version ordering: "2" < "10", "1.2" < "1.10", and ties
/// fall back to lexicographic comparison.
bool version_less(const std::string& a, const std::string& b);

}  // namespace spnhbm::model
