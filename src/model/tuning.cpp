#include "spnhbm/model/tuning.hpp"

#include <fstream>
#include <sstream>

#include "spnhbm/compiler/datapath.hpp"
#include "spnhbm/model/artifact.hpp"
#include "spnhbm/telemetry/json.hpp"
#include "spnhbm/util/strings.hpp"

namespace spnhbm::model {

void TunedConfig::validate() const {
  if (block_samples == 0) {
    throw ConfigError("block_samples must be positive");
  }
  if (pe_count <= 0) {
    throw ConfigError(strformat("pe_count must be positive, got %d",
                                pe_count));
  }
  if (hbm_pes_per_channel < 1) {
    throw ConfigError(strformat("hbm_pes_per_channel must be >= 1, got %d",
                                hbm_pes_per_channel));
  }
  if (batch_samples == 0 && flush_deadline_us != 0) {
    throw ConfigError(
        "batch_samples == 0 with a nonzero flush deadline: a deadline "
        "without a batch target flushes nothing");
  }
  if (batch_samples == 0) {
    throw ConfigError("batch_samples must be positive");
  }
}

std::string TunedConfig::describe() const {
  return strformat("block=%zu pes=%d pes/ch=%d xbar=%s batch=%zu flush=%lluus",
                   block_samples, pe_count, hbm_pes_per_channel,
                   hbm_crossbar ? "on" : "off", batch_samples,
                   static_cast<unsigned long long>(flush_deadline_us));
}

std::string TuningManifest::to_json() const {
  telemetry::JsonWriter w;
  w.begin_object();
  w.key("format_version").value(std::int64_t{kFormatVersion});
  w.key("model_id").value(model_id);
  w.key("content_hash").value(content_hash_hex);
  w.key("query").value(query);
  w.key("seed").value(static_cast<std::uint64_t>(seed));
  w.key("config").begin_object();
  w.key("block_samples").value(static_cast<std::uint64_t>(config.block_samples));
  w.key("pe_count").value(config.pe_count);
  w.key("hbm_pes_per_channel").value(config.hbm_pes_per_channel);
  w.key("hbm_crossbar").value(config.hbm_crossbar);
  w.key("batch_samples").value(static_cast<std::uint64_t>(config.batch_samples));
  w.key("flush_deadline_us")
      .value(static_cast<std::uint64_t>(config.flush_deadline_us));
  w.end_object();
  w.key("tuned_samples_per_second").value(tuned_samples_per_second);
  w.key("baseline_samples_per_second").value(baseline_samples_per_second);
  w.key("candidates_evaluated")
      .value(static_cast<std::uint64_t>(candidates_evaluated));
  w.end_object();
  return w.str() + "\n";
}

namespace {

const telemetry::JsonValue& require_field(const telemetry::JsonValue& object,
                                          const std::string& name) {
  if (!object.has(name)) {
    throw TuningError("manifest is missing field '" + name + "'");
  }
  return object.at(name);
}

double number_field(const telemetry::JsonValue& object,
                    const std::string& name) {
  const auto& value = require_field(object, name);
  if (!value.is_number()) {
    throw TuningError("manifest field '" + name + "' must be a number");
  }
  return value.number;
}

std::string string_field(const telemetry::JsonValue& object,
                         const std::string& name) {
  const auto& value = require_field(object, name);
  if (!value.is_string()) {
    throw TuningError("manifest field '" + name + "' must be a string");
  }
  return value.string;
}

}  // namespace

TuningManifest TuningManifest::from_json(const std::string& text) {
  telemetry::JsonValue doc;
  try {
    doc = telemetry::parse_json(text);
  } catch (const Error& e) {
    throw TuningError(std::string("manifest is not valid JSON: ") + e.what());
  }
  if (!doc.is_object()) throw TuningError("manifest must be a JSON object");
  const int version = static_cast<int>(number_field(doc, "format_version"));
  if (version != kFormatVersion) {
    throw TuningError(strformat(
        "manifest format version %d is not the supported version %d",
        version, kFormatVersion));
  }
  TuningManifest manifest;
  manifest.model_id = string_field(doc, "model_id");
  manifest.content_hash_hex = string_field(doc, "content_hash");
  manifest.query = string_field(doc, "query");
  manifest.seed = static_cast<std::uint64_t>(number_field(doc, "seed"));
  const auto& config = require_field(doc, "config");
  if (!config.is_object()) {
    throw TuningError("manifest field 'config' must be an object");
  }
  manifest.config.block_samples =
      static_cast<std::size_t>(number_field(config, "block_samples"));
  manifest.config.pe_count =
      static_cast<int>(number_field(config, "pe_count"));
  manifest.config.hbm_pes_per_channel =
      static_cast<int>(number_field(config, "hbm_pes_per_channel"));
  const auto& crossbar = require_field(config, "hbm_crossbar");
  if (crossbar.kind != telemetry::JsonValue::Kind::kBool) {
    throw TuningError("manifest field 'hbm_crossbar' must be a boolean");
  }
  manifest.config.hbm_crossbar = crossbar.boolean;
  manifest.config.batch_samples =
      static_cast<std::size_t>(number_field(config, "batch_samples"));
  manifest.config.flush_deadline_us =
      static_cast<std::uint64_t>(number_field(config, "flush_deadline_us"));
  manifest.tuned_samples_per_second =
      number_field(doc, "tuned_samples_per_second");
  manifest.baseline_samples_per_second =
      number_field(doc, "baseline_samples_per_second");
  manifest.candidates_evaluated =
      static_cast<std::uint64_t>(number_field(doc, "candidates_evaluated"));
  manifest.config.validate();
  return manifest;
}

void TuningManifest::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw TuningError("cannot write manifest to " + path);
  out << to_json();
  if (!out) throw TuningError("write to " + path + " failed");
}

TuningManifest TuningManifest::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw TuningError("cannot open manifest " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_json(buffer.str());
}

void TuningManifest::require_matches(const ModelArtifact& artifact) const {
  if (content_hash_hex != artifact.content_hash_hex()) {
    throw TuningError(strformat(
        "manifest was tuned for content hash %s (model '%s') but artifact "
        "%s has hash %s — retune or load the matching design",
        content_hash_hex.c_str(), model_id.c_str(), artifact.id().c_str(),
        artifact.content_hash_hex().c_str()));
  }
  const std::string artifact_query =
      compiler::query_kind_name(artifact.module().query());
  if (query != artifact_query) {
    throw TuningError(strformat(
        "manifest was tuned for query '%s' but artifact %s answers '%s'",
        query.c_str(), artifact.id().c_str(), artifact_query.c_str()));
  }
}

}  // namespace spnhbm::model
