#include "spnhbm/model/artifact.hpp"

#include <fstream>
#include <sstream>
#include <utility>

#include "spnhbm/compiler/serialize.hpp"
#include "spnhbm/model/tuning.hpp"
#include "spnhbm/spn/text_format.hpp"
#include "spnhbm/util/strings.hpp"

namespace spnhbm::model {

namespace {

std::uint64_t fnv1a(std::uint64_t hash, const char* data, std::size_t size) {
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= kPrime;
  }
  return hash;
}

std::uint64_t hash_artifact(const compiler::DatapathModule& module,
                            const arith::ArithBackend& backend) {
  std::ostringstream design;
  compiler::save_design(module, design);
  const std::string bytes = design.str();
  std::uint64_t hash = 0xcbf29ce484222325ull;  // FNV offset basis
  hash = fnv1a(hash, bytes.data(), bytes.size());
  const std::string format = backend.describe();
  hash = fnv1a(hash, format.data(), format.size());
  return hash;
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ModelError("cannot open model file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

ModelArtifact::ModelArtifact(std::string name, std::string version,
                             std::optional<spn::Spn> spn,
                             compiler::DatapathModule module,
                             std::unique_ptr<arith::ArithBackend> owned,
                             const arith::ArithBackend* borrowed)
    : name_(std::move(name)),
      version_(std::move(version)),
      spn_(std::move(spn)),
      module_(std::move(module)),
      owned_backend_(std::move(owned)),
      backend_(owned_backend_ ? owned_backend_.get() : borrowed) {
  if (name_.empty()) throw ModelError("model name must not be empty");
  if (version_.empty()) throw ModelError("model version must not be empty");
  if (backend_ == nullptr) throw ModelError("model backend must not be null");
  content_hash_ = hash_artifact(module_, *backend_);
}

ModelHandle ModelArtifact::compile(std::string name, std::string version,
                                   spn::Spn spn,
                                   std::unique_ptr<arith::ArithBackend> backend,
                                   const compiler::CompileOptions& options) {
  if (!backend) throw ModelError("model backend must not be null");
  compiler::DatapathModule module = compiler::compile_spn(spn, *backend, options);
  return ModelHandle(new ModelArtifact(std::move(name), std::move(version),
                                       std::move(spn), std::move(module),
                                       std::move(backend), nullptr));
}

ModelHandle ModelArtifact::load_file(std::string name, std::string version,
                                     const std::string& path,
                                     std::unique_ptr<arith::ArithBackend> backend,
                                     const compiler::CompileOptions& options) {
  bool design = false;
  try {
    design = compiler::is_design_file(path);
  } catch (const Error& error) {
    throw ModelError(error.what());
  }
  if (design) {
    if (!backend) throw ModelError("model backend must not be null");
    compiler::DatapathModule module = compiler::load_design_file(path);
    return ModelHandle(new ModelArtifact(std::move(name), std::move(version),
                                         std::nullopt, std::move(module),
                                         std::move(backend), nullptr));
  }
  return compile(std::move(name), std::move(version),
                 spn::parse_spn(read_text_file(path)), std::move(backend),
                 options);
}

ModelHandle ModelArtifact::wrap(std::string name,
                                const compiler::DatapathModule& module,
                                const arith::ArithBackend& backend) {
  return ModelHandle(new ModelArtifact(std::move(name), "0", std::nullopt,
                                       module, nullptr, &backend));
}

ModelHandle ModelArtifact::wrap(std::string name,
                                const compiler::DatapathModule& module,
                                std::unique_ptr<arith::ArithBackend> backend) {
  return ModelHandle(new ModelArtifact(std::move(name), "0", std::nullopt,
                                       module, std::move(backend), nullptr));
}

const spn::Spn& ModelArtifact::spn() const {
  if (!spn_.has_value()) {
    throw ModelError("artifact " + id() + " carries no source SPN");
  }
  return *spn_;
}

std::string ModelArtifact::content_hash_hex() const {
  return strformat("%016llx",
                         static_cast<unsigned long long>(content_hash_));
}

std::string ModelArtifact::describe() const {
  return strformat("%s [%s] %zu features, %s", id().c_str(),
                         content_hash_hex().c_str(), input_features(),
                         backend_->describe().c_str());
}

void ModelArtifact::attach_tuning(
    std::shared_ptr<const TuningManifest> manifest) const {
  SPNHBM_REQUIRE(manifest != nullptr, "attach_tuning requires a manifest");
  manifest->require_matches(*this);
  std::lock_guard<std::mutex> lock(tuning_mutex_);
  tuning_ = std::move(manifest);
}

std::shared_ptr<const TuningManifest> ModelArtifact::tuning() const {
  std::lock_guard<std::mutex> lock(tuning_mutex_);
  return tuning_;
}

std::unique_ptr<arith::ArithBackend> make_backend(const std::string& format) {
  if (format == "f64" || format == "float64") {
    return arith::make_float64_backend();
  }
  if (format == "cfp") return arith::make_cfp_backend(arith::paper_cfp_format());
  if (format == "lns") return arith::make_lns_backend(arith::paper_lns_format());
  if (format == "posit") {
    return arith::make_posit_backend(arith::paper_posit_format());
  }
  throw ModelError("unknown arithmetic format: " + format +
                   " (expected f64, cfp, lns or posit)");
}

}  // namespace spnhbm::model
