#include "spnhbm/engine/fpga_device.hpp"

#include <utility>

#include "spnhbm/util/strings.hpp"

namespace spnhbm::engine {

FpgaSimDevice::FpgaSimDevice(FpgaDeviceConfig config)
    : config_(std::move(config)), partitions_(config_.budget) {
  SPNHBM_REQUIRE(!config_.name.empty(), "device needs a name");
}

FpgaSimEngine& FpgaSimDevice::add_tenant(const std::string& partition,
                                         ModelHandle model, int pe_slots) {
  SPNHBM_REQUIRE(model != nullptr, "add_tenant requires a model");
  std::lock_guard<std::mutex> lock(mutex_);
  // Reserve first: a tenant that does not fit must fail with the
  // per-resource deficits before any engine state exists.
  const fpga::Partition& reserved = partitions_.reserve(
      partition, model->module(), model->backend().kind(), pe_slots);

  FpgaEngineConfig engine_config;
  engine_config.platform = fpga::Platform::kHbmXupVvh;
  engine_config.pe_count = reserved.pe_slots;
  engine_config.threads_per_pe = config_.threads_per_pe;
  engine_config.pcie_generation = config_.pcie_generation;
  engine_config.include_transfers = config_.include_transfers;
  engine_config.compute_results = config_.compute_results;
  engine_config.dma_failure_rate = config_.dma_failure_rate;
  // The table already placement-checked the *combined* design (shared
  // shell + every tenant); re-checking the tenant alone against the full
  // budget would be both redundant and too lenient.
  engine_config.skip_placement_check = true;
  engine_config.partition_bitstream_fraction =
      partitions_.bitstream_fraction(partition);
  engine_config.partition_label = config_.name + "/" + partition;
  engine_config.charge_initial_program = true;

  std::shared_ptr<FpgaSimEngine> engine;
  try {
    engine = std::make_shared<FpgaSimEngine>(std::move(model), engine_config);
  } catch (...) {
    partitions_.release(partition);
    throw;
  }
  stats_.tenants_added += 1;
  stats_.reconfiguration_seconds += engine->stats().reconfiguration_seconds;
  auto [it, inserted] = tenants_.emplace(partition, std::move(engine));
  SPNHBM_REQUIRE(inserted, "partition table admitted a duplicate partition");
  return *it->second;
}

void FpgaSimDevice::evict_tenant(const std::string& partition) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tenants_.find(partition);
  if (it == tenants_.end()) {
    throw PlacementError(
        strformat("device %s has no tenant in partition '%s'",
                  config_.name.c_str(), partition.c_str()));
  }
  // Blanking a partition streams the same partial bitstream through the
  // ICAP as programming it; charge it to the device before the tenant's
  // timeline disappears with its engine.
  stats_.reconfiguration_seconds +=
      partial_program_seconds(partitions_.bitstream_fraction(partition));
  stats_.tenants_evicted += 1;
  tenants_.erase(it);
  partitions_.release(partition);
}

bool FpgaSimDevice::has_tenant(const std::string& partition) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tenants_.count(partition) > 0;
}

FpgaSimEngine& FpgaSimDevice::tenant(const std::string& partition) {
  return *tenant_engine(partition);
}

std::shared_ptr<FpgaSimEngine> FpgaSimDevice::tenant_engine(
    const std::string& partition) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tenants_.find(partition);
  if (it == tenants_.end()) {
    throw PlacementError(
        strformat("device %s has no tenant in partition '%s'",
                  config_.name.c_str(), partition.c_str()));
  }
  return it->second;
}

std::vector<std::string> FpgaSimDevice::tenant_partitions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, engine] : tenants_) names.push_back(name);
  return names;
}

std::size_t FpgaSimDevice::tenant_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tenants_.size();
}

int FpgaSimDevice::free_pe_slots() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return partitions_.free_pe_slots();
}

int FpgaSimDevice::free_channels() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return partitions_.free_channels();
}

FpgaDeviceStats FpgaSimDevice::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::string FpgaSimDevice::describe() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string text = strformat("device %s: %zu tenant(s)\n",
                               config_.name.c_str(), tenants_.size());
  text += partitions_.describe();
  for (const auto& [name, engine] : tenants_) {
    text += strformat("  %s serves %s\n", name.c_str(),
                      engine->loaded_model()->id().c_str());
  }
  return text;
}

double FpgaSimDevice::partial_program_seconds(double fraction) const {
  return fpga::cal::kBitstreamBytesHbm * fraction /
         fpga::cal::kIcapBytesPerSecond;
}

}  // namespace spnhbm::engine
