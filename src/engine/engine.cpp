#include "spnhbm/engine/engine.hpp"

#include "spnhbm/util/strings.hpp"
#include "spnhbm/util/units.hpp"

namespace spnhbm::engine {

std::string EngineStats::describe() const {
  std::string text = strformat(
      "%llu batches, %llu samples, %.3f ms busy -> %s",
      static_cast<unsigned long long>(batches),
      static_cast<unsigned long long>(samples), busy_seconds * 1e3,
      format_rate(samples_per_second()).c_str());
  if (batch_latency_us.count > 0) {
    text += strformat(
        ", batch latency us p50/p95/p99=%.1f/%.1f/%.1f",
        batch_latency_us.p50(), batch_latency_us.p95(),
        batch_latency_us.p99());
  }
  if (reconfigurations > 0) {
    text += strformat(", %llu reconfigurations (%.3f ms)",
                      static_cast<unsigned long long>(reconfigurations),
                      reconfiguration_seconds * 1e3);
  }
  return text;
}

std::size_t InferenceEngine::check_batch(std::span<const std::uint8_t> samples,
                                         std::span<double> results) const {
  const auto& caps = capabilities();
  SPNHBM_REQUIRE(caps.functional,
                 "engine '" + caps.name +
                     "' is configured timing-only and cannot run functional "
                     "batches");
  SPNHBM_REQUIRE(caps.input_features > 0 &&
                     samples.size() == results.size() * caps.input_features,
                 "samples/results size mismatch");
  return results.size();
}

std::vector<double> InferenceEngine::infer(
    std::span<const std::uint8_t> samples) {
  const std::size_t features = capabilities().input_features;
  SPNHBM_REQUIRE(features > 0 && samples.size() % features == 0,
                 "input is not a whole number of samples");
  std::vector<double> results(samples.size() / features);
  wait(submit(samples, results));
  return results;
}

}  // namespace spnhbm::engine
