#include "spnhbm/engine/engine.hpp"

#include "spnhbm/compiler/datapath.hpp"
#include "spnhbm/compiler/sparse_evidence.hpp"
#include "spnhbm/util/strings.hpp"
#include "spnhbm/util/units.hpp"

namespace spnhbm::engine {

std::string query_lane_suffix(compiler::QueryKind query) {
  switch (query) {
    case compiler::QueryKind::kJoint:
      return "";
    case compiler::QueryKind::kMarginal:
      return "#marginal";
    case compiler::QueryKind::kMpe:
      return "#mpe";
  }
  return "";
}

std::string lane_id_for(const std::string& model_id,
                        compiler::QueryKind query) {
  return model_id + query_lane_suffix(query);
}

std::pair<std::string, std::string> split_lane_ref(const std::string& ref) {
  const std::size_t hash = ref.rfind('#');
  if (hash == std::string::npos) return {ref, ""};
  std::string suffix = ref.substr(hash);
  if (suffix != "#marginal" && suffix != "#mpe") return {ref, ""};
  return {ref.substr(0, hash), std::move(suffix)};
}

std::string EngineStats::describe() const {
  std::string text = strformat(
      "%llu batches, %llu samples, %.3f ms busy -> %s",
      static_cast<unsigned long long>(batches),
      static_cast<unsigned long long>(samples), busy_seconds * 1e3,
      format_rate(samples_per_second()).c_str());
  if (batch_latency_us.count > 0) {
    text += strformat(
        ", batch latency us p50/p95/p99=%.1f/%.1f/%.1f",
        batch_latency_us.p50(), batch_latency_us.p95(),
        batch_latency_us.p99());
  }
  if (reconfigurations > 0) {
    text += strformat(", %llu reconfigurations (%.3f ms)",
                      static_cast<unsigned long long>(reconfigurations),
                      reconfiguration_seconds * 1e3);
  }
  return text;
}

std::size_t InferenceEngine::check_batch(std::span<const std::uint8_t> samples,
                                         std::span<double> results) const {
  const auto& caps = capabilities();
  SPNHBM_REQUIRE(caps.functional,
                 "engine '" + caps.name +
                     "' is configured timing-only and cannot run functional "
                     "batches");
  SPNHBM_REQUIRE(caps.input_features > 0 &&
                     samples.size() == results.size() * caps.input_features,
                 "samples/results size mismatch");
  return results.size();
}

std::vector<double> InferenceEngine::infer(
    std::span<const std::uint8_t> samples) {
  const std::size_t features = capabilities().input_features;
  SPNHBM_REQUIRE(features > 0 && samples.size() % features == 0,
                 "input is not a whole number of samples");
  std::vector<double> results(samples.size() / features);
  wait(submit(samples, results));
  return results;
}

std::vector<double> InferenceEngine::infer_sparse(
    std::span<const std::uint8_t> stream, std::size_t sample_count) {
  std::vector<double> results(sample_count);
  wait(submit_sparse(stream, sample_count, results));
  return results;
}

void InferenceEngine::check_sparse_batch(std::span<const std::uint8_t> stream,
                                         std::size_t sample_count,
                                         std::span<double> results) const {
  const auto& caps = capabilities();
  SPNHBM_REQUIRE(caps.functional,
                 "engine '" + caps.name +
                     "' is configured timing-only and cannot run functional "
                     "batches");
  SPNHBM_REQUIRE(sample_count > 0 && results.size() == sample_count,
                 "sparse sample_count/results size mismatch");
  // Full decode: bounds, ordering, duplicates, truncation. Rejection
  // happens before the engine touches the batch.
  compiler::decode_sparse(stream, caps.input_features, sample_count);
}

}  // namespace spnhbm::engine
