#include "spnhbm/engine/chaos_engine.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "spnhbm/fault/fault.hpp"

namespace spnhbm::engine {

namespace {
// Hard cap on injected wall-clock sleeps: long enough to trip any
// realistic request deadline, short enough that server shutdown joins
// the worker thread promptly. A "hang" is a bounded stall, not a real
// wedge — the server's deadline/quarantine machinery is what turns it
// into a client-visible behaviour.
constexpr double kMaxSleepUs = 500'000.0;
}  // namespace

ChaosEngine::ChaosEngine(std::shared_ptr<InferenceEngine> inner)
    : inner_(std::move(inner)) {
  SPNHBM_REQUIRE(inner_ != nullptr, "chaos engine needs an inner engine");
  track_ = telemetry::tracer().register_track(
      "chaos/" + inner_->capabilities().name, telemetry::TraceClock::kWall);
}

const EngineCapabilities& ChaosEngine::capabilities() const {
  return inner_->capabilities();
}

const ModelHandle& ChaosEngine::loaded_model() const {
  return inner_->loaded_model();
}

void ChaosEngine::activate(ModelHandle next) {
  apply("engine.activate");
  inner_->activate(std::move(next));
}

void ChaosEngine::apply(const char* site) {
  if (!fault::injector().armed()) return;
  const fault::FaultDecision decision =
      fault::injector().decide(site, inner_->capabilities().name);
  if (decision.kind != fault::FaultKind::kNone) {
    // Mark the fired fault on the chaos lane before acting on it, so a
    // fail/corrupt throw still leaves its annotation in the trace.
    telemetry::tracer().instant_wall(track_, fault::trace_label(decision.kind));
  }
  switch (decision.kind) {
    case fault::FaultKind::kFail:
    case fault::FaultKind::kCorrupt:
      throw EngineFaultError(inner_->capabilities().name + " " + site +
                             " (injected)");
    case fault::FaultKind::kStall:
    case fault::FaultKind::kDelay:
    case fault::FaultKind::kHang: {
      const double sleep_us = std::min(decision.duration_us, kMaxSleepUs);
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::micro>(sleep_us));
      break;
    }
    case fault::FaultKind::kNone:
      break;
  }
}

BatchHandle ChaosEngine::submit(std::span<const std::uint8_t> samples,
                                std::span<double> results) {
  apply("engine.submit");
  return inner_->submit(samples, results);
}

BatchHandle ChaosEngine::submit_sparse(std::span<const std::uint8_t> stream,
                                       std::size_t sample_count,
                                       std::span<double> results) {
  // Same chaos site as dense submit: a fault plan targeting an engine's
  // submit boundary covers both encodings.
  apply("engine.submit");
  return inner_->submit_sparse(stream, sample_count, results);
}

void ChaosEngine::wait(BatchHandle handle) {
  apply("engine.wait");
  inner_->wait(handle);
}

double ChaosEngine::measure_throughput(std::uint64_t sample_count) {
  return inner_->measure_throughput(sample_count);
}

EngineStats ChaosEngine::stats() const { return inner_->stats(); }

}  // namespace spnhbm::engine
