#include "spnhbm/engine/server.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "spnhbm/util/strings.hpp"

namespace spnhbm::engine {

namespace {

/// Wall-clock delta in microseconds (for the latency histograms).
double elapsed_us(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

std::string ServerStats::describe() const {
  std::string text = strformat(
      "%llu requests (%llu rejected) -> %llu batches / %llu samples "
      "(%.1f samples/batch, %llu deadline flushes, peak %zu outstanding)",
      static_cast<unsigned long long>(requests),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(batches),
      static_cast<unsigned long long>(samples), mean_batch_samples(),
      static_cast<unsigned long long>(deadline_flushes),
      peak_outstanding_samples);
  if (request_latency_us.count > 0) {
    text += strformat(
        "; latency us p50/p95/p99=%.1f/%.1f/%.1f, queue wait us "
        "p50/p99=%.1f/%.1f",
        request_latency_us.p50(), request_latency_us.p95(),
        request_latency_us.p99(), queue_wait_us.p50(), queue_wait_us.p99());
  }
  return text;
}

InferenceServer::InferenceServer(ServerConfig config)
    : config_(config) {
  SPNHBM_REQUIRE(config_.max_queue_samples > 0, "queue bound must be positive");
  queue_wait_us_ = std::make_shared<telemetry::Histogram>();
  request_latency_us_ = std::make_shared<telemetry::Histogram>();
  batch_fill_samples_ = std::make_shared<telemetry::Histogram>();
  auto& registry = telemetry::metrics();
  registry.attach_histogram("server.queue_wait_us", queue_wait_us_);
  registry.attach_histogram("server.request_latency_us", request_latency_us_);
  registry.attach_histogram("server.batch_fill_samples", batch_fill_samples_);
  ctr_requests_ = registry.counter("server.requests");
  ctr_rejected_ = registry.counter("server.rejected");
  ctr_batches_ = registry.counter("server.batches");
  ctr_samples_ = registry.counter("server.samples");
  ctr_deadline_flushes_ = registry.counter("server.deadline_flushes");
}

InferenceServer::~InferenceServer() { stop(); }

void InferenceServer::register_engine(std::shared_ptr<InferenceEngine> engine) {
  SPNHBM_REQUIRE(engine != nullptr, "null engine");
  std::lock_guard<std::mutex> lock(mutex_);
  SPNHBM_REQUIRE(!started_, "register_engine after start");
  const auto& caps = engine->capabilities();
  SPNHBM_REQUIRE(caps.functional,
                 "engine '" + caps.name + "' is timing-only; the server needs "
                 "functional backends");
  if (workers_.empty()) {
    input_features_ = caps.input_features;
  } else {
    SPNHBM_REQUIRE(caps.input_features == input_features_,
                   "engine '" + caps.name +
                       "' expects a different input width than the engines "
                       "already registered");
  }
  auto worker = std::make_unique<Worker>();
  worker->engine = std::move(engine);
  worker->nominal_throughput = caps.nominal_throughput;
  if (config_.batch_samples == 0) {
    batch_samples_ = batch_samples_ == 0
                         ? caps.preferred_batch_samples
                         : std::min(batch_samples_,
                                    caps.preferred_batch_samples);
  } else {
    batch_samples_ = config_.batch_samples;
  }
  workers_.push_back(std::move(worker));
}

void InferenceServer::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  SPNHBM_REQUIRE(!workers_.empty(), "no engines registered");
  SPNHBM_REQUIRE(!started_, "server already started");
  SPNHBM_REQUIRE(batch_samples_ > 0, "batch size must be positive");
  started_ = true;
  auto& tracer = telemetry::tracer();
  dispatcher_track_ =
      tracer.register_track("server/dispatcher", telemetry::TraceClock::kWall);
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    workers_[i]->track = tracer.register_track(
        "server/worker" + std::to_string(i), telemetry::TraceClock::kWall);
  }
  for (auto& worker : workers_) {
    worker->thread = std::thread([this, &worker = *worker] {
      worker_loop(worker);
    });
  }
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

void InferenceServer::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_ || stopped_) return;
    stopping_ = true;
    cv_dispatch_.notify_all();
  }
  dispatcher_.join();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    workers_stopping_ = true;
    for (auto& worker : workers_) worker->cv.notify_all();
  }
  for (auto& worker : workers_) worker->thread.join();
  std::lock_guard<std::mutex> lock(mutex_);
  stopped_ = true;
  cv_space_.notify_all();
}

std::future<std::vector<double>> InferenceServer::enqueue_locked(
    std::unique_lock<std::mutex>& lock, std::vector<std::uint8_t> samples) {
  (void)lock;
  auto request = std::make_shared<PendingRequest>();
  request->count = samples.size() / input_features_;
  request->remaining = request->count;
  request->samples = std::move(samples);
  request->results.resize(request->count);
  request->enqueue_time = std::chrono::steady_clock::now();
  auto future = request->promise.get_future();
  queued_samples_ += request->count;
  outstanding_samples_ += request->count;
  stats_.requests += 1;
  ctr_requests_->add(1);
  stats_.peak_outstanding_samples =
      std::max(stats_.peak_outstanding_samples, outstanding_samples_);
  queue_.push_back(std::move(request));
  cv_dispatch_.notify_one();
  return future;
}

std::future<std::vector<double>> InferenceServer::submit(
    std::vector<std::uint8_t> samples) {
  SPNHBM_REQUIRE(input_features_ > 0, "no engines registered");
  SPNHBM_REQUIRE(!samples.empty() && samples.size() % input_features_ == 0,
                 "input is not a whole number of samples");
  const std::size_t count = samples.size() / input_features_;
  SPNHBM_REQUIRE(count <= config_.max_queue_samples,
                 "request larger than the whole queue bound");
  std::unique_lock<std::mutex> lock(mutex_);
  cv_space_.wait(lock, [&] {
    return stopped_ ||
           outstanding_samples_ + count <= config_.max_queue_samples;
  });
  SPNHBM_REQUIRE(!stopped_, "submit on a stopped server");
  return enqueue_locked(lock, std::move(samples));
}

std::optional<std::future<std::vector<double>>> InferenceServer::try_submit(
    std::vector<std::uint8_t> samples) {
  SPNHBM_REQUIRE(input_features_ > 0, "no engines registered");
  SPNHBM_REQUIRE(!samples.empty() && samples.size() % input_features_ == 0,
                 "input is not a whole number of samples");
  const std::size_t count = samples.size() / input_features_;
  std::unique_lock<std::mutex> lock(mutex_);
  SPNHBM_REQUIRE(!stopped_, "submit on a stopped server");
  if (outstanding_samples_ + count > config_.max_queue_samples) {
    stats_.rejected += 1;
    ctr_rejected_->add(1);
    return std::nullopt;
  }
  return enqueue_locked(lock, std::move(samples));
}

std::size_t InferenceServer::outstanding_samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return outstanding_samples_;
}

ServerStats InferenceServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServerStats stats = stats_;
  stats.queue_wait_us = queue_wait_us_->snapshot();
  stats.request_latency_us = request_latency_us_->snapshot();
  stats.batch_fill_samples = batch_fill_samples_->snapshot();
  return stats;
}

std::uint64_t InferenceServer::dispatched_samples(std::size_t index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return workers_[index]->dispatched_samples;
}

InferenceServer::Batch InferenceServer::form_batch_locked() {
  Batch batch;
  batch.samples.reserve(std::min(queued_samples_, batch_samples_) *
                        input_features_);
  while (batch.sample_count < batch_samples_ && !queue_.empty()) {
    auto& request = queue_.front();
    if (request->cursor == 0) {
      // First slice of this request leaves the queue: its queue wait ends.
      queue_wait_us_->record(elapsed_us(request->enqueue_time));
    }
    const std::size_t take =
        std::min(batch_samples_ - batch.sample_count,
                 request->count - request->cursor);
    const auto* begin =
        request->samples.data() + request->cursor * input_features_;
    batch.samples.insert(batch.samples.end(), begin,
                         begin + take * input_features_);
    batch.slices.push_back(
        {request, request->cursor, batch.sample_count, take});
    request->cursor += take;
    batch.sample_count += take;
    queued_samples_ -= take;
    if (request->cursor == request->count) queue_.pop_front();
  }
  batch.results.resize(batch.sample_count);
  stats_.batches += 1;
  stats_.samples += batch.sample_count;
  ctr_batches_->add(1);
  ctr_samples_->add(batch.sample_count);
  batch_fill_samples_->record(static_cast<double>(batch.sample_count));
  return batch;
}

std::size_t InferenceServer::pick_engine_locked(
    std::size_t batch_sample_count) {
  if (config_.policy == DispatchPolicy::kRoundRobin || workers_.size() == 1) {
    const std::size_t index = round_robin_next_;
    round_robin_next_ = (round_robin_next_ + 1) % workers_.size();
    return index;
  }
  // Least expected completion time of this batch per engine, using the
  // measured rate once available and the engine's nominal claim before.
  // An engine with neither gets probed optimistically while idle (cold
  // start), but never accumulates a backlog before its first measurement.
  std::size_t best = 0;
  double best_eta = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const auto& worker = *workers_[i];
    const double rate = worker.busy_seconds > 0.0
                            ? static_cast<double>(worker.completed_samples) /
                                  worker.busy_seconds
                            : worker.nominal_throughput;
    double eta;
    if (rate > 0.0) {
      eta = static_cast<double>(worker.outstanding_samples +
                                batch_sample_count) /
            rate;
    } else {
      eta = worker.outstanding_samples == 0
                ? 0.0
                : std::numeric_limits<double>::infinity();
    }
    if (eta < best_eta) {
      best_eta = eta;
      best = i;
    }
  }
  return best;
}

void InferenceServer::dispatch_batch_locked(Batch batch) {
  const std::size_t target = pick_engine_locked(batch.sample_count);
  auto& worker = *workers_[target];
  worker.outstanding_samples += batch.sample_count;
  worker.dispatched_samples += batch.sample_count;
  worker.queue.push_back(std::move(batch));
  worker.cv.notify_one();
}

void InferenceServer::dispatcher_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (queue_.empty()) {
      if (stopping_) return;
      cv_dispatch_.wait(lock);
      continue;
    }
    if (queued_samples_ < batch_samples_ && !stopping_) {
      // Partial batch: hold it open for more coalescing until the oldest
      // request's latency budget runs out.
      const auto deadline = queue_.front()->enqueue_time + config_.max_latency;
      if (std::chrono::steady_clock::now() < deadline) {
        cv_dispatch_.wait_until(lock, deadline);
        continue;  // re-evaluate: new requests, stop, or deadline hit
      }
      stats_.deadline_flushes += 1;
      ctr_deadline_flushes_->add(1);
      telemetry::tracer().instant_wall(dispatcher_track_, "deadline_flush");
    }
    telemetry::tracer().instant_wall(dispatcher_track_, "dispatch");
    dispatch_batch_locked(form_batch_locked());
  }
}

void InferenceServer::complete_slice_locked(const BatchSlice& slice) {
  auto& request = *slice.request;
  request.remaining -= slice.count;
  if (request.remaining > 0) return;
  request_latency_us_->record(elapsed_us(request.enqueue_time));
  if (request.error) {
    request.promise.set_exception(request.error);
  } else {
    request.promise.set_value(std::move(request.results));
  }
}

void InferenceServer::worker_loop(Worker& worker) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (worker.queue.empty()) {
      if (workers_stopping_) return;
      worker.cv.wait(lock);
      continue;
    }
    Batch batch = std::move(worker.queue.front());
    worker.queue.pop_front();
    lock.unlock();

    std::exception_ptr error;
    double busy_before = 0.0;
    try {
      const telemetry::Tracer::WallSpan span(telemetry::tracer(), worker.track,
                                             "batch");
      busy_before = worker.engine->stats().busy_seconds;
      worker.engine->wait(
          worker.engine->submit(batch.samples, batch.results));
    } catch (...) {
      error = std::current_exception();
    }
    const double busy_delta =
        error ? 0.0 : worker.engine->stats().busy_seconds - busy_before;
    if (!error) {
      // Scatter outside the lock: every slice targets a distinct result
      // range of its request.
      for (const auto& slice : batch.slices) {
        std::copy_n(batch.results.data() + slice.batch_offset, slice.count,
                    slice.request->results.data() + slice.request_offset);
      }
    }

    lock.lock();
    for (const auto& slice : batch.slices) {
      if (error) slice.request->error = error;
      complete_slice_locked(slice);
    }
    worker.outstanding_samples -= batch.sample_count;
    worker.completed_samples += batch.sample_count;
    worker.busy_seconds += busy_delta;
    outstanding_samples_ -= batch.sample_count;
    cv_space_.notify_all();
  }
}

}  // namespace spnhbm::engine
