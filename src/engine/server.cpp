#include "spnhbm/engine/server.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "spnhbm/compiler/sparse_evidence.hpp"
#include "spnhbm/model/tuning.hpp"
#include "spnhbm/util/strings.hpp"

namespace spnhbm::engine {

namespace {

/// Wall-clock delta in microseconds (for the latency histograms).
double elapsed_us(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - since)
      .count();
}

/// Lane id an artifact serves under: model id plus the query-kind suffix
/// of its compiled module. One engine hosts one module with one kind, so
/// a lane never mixes query kinds and batches inherit that property.
std::string lane_id_of(const model::ModelHandle& model) {
  return lane_id_for(model->id(), model->module().query());
}

}  // namespace

std::string to_string(EngineHealth health) {
  switch (health) {
    case EngineHealth::kHealthy:
      return "healthy";
    case EngineHealth::kDegraded:
      return "degraded";
    case EngineHealth::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

std::string ServerStats::describe() const {
  std::string text = strformat(
      "%llu requests (%llu rejected) -> %llu batches / %llu samples "
      "(%.1f samples/batch, %llu deadline flushes, peak %zu outstanding)",
      static_cast<unsigned long long>(requests),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(batches),
      static_cast<unsigned long long>(samples), mean_batch_samples(),
      static_cast<unsigned long long>(deadline_flushes),
      peak_outstanding_samples);
  if (batch_retries || failovers || quarantines || probes || readmissions ||
      deadline_expirations || failed_requests) {
    text += strformat(
        "; recovery: %llu retries, %llu failovers, %llu quarantines, "
        "%llu probes, %llu readmissions, %llu deadline expirations, "
        "%llu failed requests",
        static_cast<unsigned long long>(batch_retries),
        static_cast<unsigned long long>(failovers),
        static_cast<unsigned long long>(quarantines),
        static_cast<unsigned long long>(probes),
        static_cast<unsigned long long>(readmissions),
        static_cast<unsigned long long>(deadline_expirations),
        static_cast<unsigned long long>(failed_requests));
  }
  if (activations || failed_activations) {
    text += strformat("; %llu activations (%llu failed)",
                      static_cast<unsigned long long>(activations),
                      static_cast<unsigned long long>(failed_activations));
  }
  if (per_model.size() > 1) {
    text += "; models:";
    for (const auto& [id, model] : per_model) {
      text += strformat(" %s=%llu req/%llu samples/%llu batches",
                        id.c_str(),
                        static_cast<unsigned long long>(model.requests),
                        static_cast<unsigned long long>(model.samples),
                        static_cast<unsigned long long>(model.batches));
    }
  }
  if (request_latency_us.count > 0) {
    text += strformat(
        "; latency us p50/p95/p99=%.1f/%.1f/%.1f, queue wait us "
        "p50/p99=%.1f/%.1f",
        request_latency_us.p50(), request_latency_us.p95(),
        request_latency_us.p99(), queue_wait_us.p50(), queue_wait_us.p99());
  }
  return text;
}

InferenceServer::InferenceServer(ServerConfig config)
    : config_(config), jitter_rng_(config.retry.seed) {
  SPNHBM_REQUIRE(config_.max_queue_samples > 0, "queue bound must be positive");
  SPNHBM_REQUIRE(config_.retry.max_attempts >= 1,
                 "retry budget must allow at least one attempt");
  SPNHBM_REQUIRE(config_.retry.backoff_multiplier >= 1.0,
                 "backoff multiplier must be >= 1");
  SPNHBM_REQUIRE(config_.retry.jitter >= 0.0 && config_.retry.jitter < 1.0,
                 "jitter must be in [0, 1)");
  SPNHBM_REQUIRE(config_.health.degraded_after >= 1 &&
                     config_.health.quarantine_after >=
                         config_.health.degraded_after,
                 "health thresholds must satisfy 1 <= degraded <= quarantine");
  SPNHBM_REQUIRE(config_.health.probe_backoff_multiplier >= 1.0,
                 "probe backoff multiplier must be >= 1");
  queue_wait_us_ = std::make_shared<telemetry::Histogram>();
  request_latency_us_ = std::make_shared<telemetry::Histogram>();
  batch_fill_samples_ = std::make_shared<telemetry::Histogram>();
  auto& registry = telemetry::metrics();
  registry.attach_histogram("server.queue_wait_us", queue_wait_us_);
  registry.attach_histogram("server.request_latency_us", request_latency_us_);
  registry.attach_histogram("server.batch_fill_samples", batch_fill_samples_);
  ctr_requests_ = registry.counter("server.requests");
  ctr_rejected_ = registry.counter("server.rejected");
  ctr_batches_ = registry.counter("server.batches");
  ctr_samples_ = registry.counter("server.samples");
  ctr_deadline_flushes_ = registry.counter("server.deadline_flushes");
  ctr_batch_retries_ = registry.counter("server.batch_retries");
  ctr_failovers_ = registry.counter("server.failovers");
  ctr_quarantines_ = registry.counter("server.quarantines");
  ctr_probes_ = registry.counter("server.probes");
  ctr_readmissions_ = registry.counter("server.readmissions");
  ctr_deadline_expirations_ =
      registry.counter("server.deadline_expirations");
  ctr_failed_requests_ = registry.counter("server.failed_requests");
  ctr_activations_ = registry.counter("server.activations");
  ctr_failed_activations_ = registry.counter("server.failed_activations");
}

InferenceServer::~InferenceServer() { stop(); }

InferenceServer::ModelLane& InferenceServer::ensure_lane_locked(
    const std::string& model, std::size_t input_features,
    const ModelHandle& artifact) {
  const auto apply_tuning = [&](ModelLane& lane) -> ModelLane& {
    if (artifact != nullptr) {
      if (const auto tuning = artifact->tuning()) {
        // Per-lane overrides from the model's manifest: this lane
        // coalesces to the tuned batch target and flushes on the tuned
        // deadline while other lanes keep the server-wide settings.
        lane.batch_samples = tuning->config.batch_samples;
        lane.max_latency =
            std::chrono::microseconds(tuning->config.flush_deadline_us);
      }
    }
    return lane;
  };
  auto it = lanes_.find(model);
  if (it != lanes_.end()) {
    SPNHBM_REQUIRE(it->second.input_features == input_features,
                   "engines serving model '" + model +
                       "' disagree on its input width");
    return apply_tuning(it->second);
  }
  ModelLane lane;
  lane.input_features = input_features;
  auto& registry = telemetry::metrics();
  lane.ctr_requests = registry.counter("server.model." + model + ".requests");
  lane.ctr_samples = registry.counter("server.model." + model + ".samples");
  lane.ctr_batches = registry.counter("server.model." + model + ".batches");
  return apply_tuning(lanes_.emplace(model, std::move(lane)).first->second);
}

std::size_t InferenceServer::register_engine(
    std::shared_ptr<InferenceEngine> engine, int priority,
    std::string device) {
  SPNHBM_REQUIRE(engine != nullptr, "null engine");
  SPNHBM_REQUIRE(priority >= 0, "priority tier must be >= 0");
  std::lock_guard<std::mutex> lock(mutex_);
  SPNHBM_REQUIRE(!stopping_ && !stopped_,
                 "register_engine on a stopped server");
  const auto& caps = engine->capabilities();
  SPNHBM_REQUIRE(caps.functional,
                 "engine '" + caps.name + "' is timing-only; the server needs "
                 "functional backends");
  SPNHBM_REQUIRE(caps.input_features > 0,
                 "engine '" + caps.name + "' announces zero input features");
  const ModelHandle& model = engine->loaded_model();
  SPNHBM_REQUIRE(model != nullptr,
                 "engine '" + caps.name + "' has no loaded model");
  const std::string model_id = lane_id_of(model);
  ensure_lane_locked(model_id, caps.input_features, model);
  auto worker = std::make_unique<Worker>();
  worker->engine = std::move(engine);
  worker->index = workers_.size();
  worker->priority = priority;
  worker->device = std::move(device);
  worker->model_id = model_id;
  worker->input_features = caps.input_features;
  worker->nominal_throughput = caps.nominal_throughput;
  worker->probe_interval = config_.health.probe_interval;
  if (config_.batch_samples == 0) {
    batch_samples_ = batch_samples_ == 0
                         ? caps.preferred_batch_samples
                         : std::min(batch_samples_,
                                    caps.preferred_batch_samples);
  } else {
    batch_samples_ = config_.batch_samples;
  }
  const std::size_t index = workers_.size();
  workers_.push_back(std::move(worker));
  if (started_) {
    // Dynamic membership: the engine joins a running fleet. Its lane is
    // open already (ensure_lane_locked above); spawn the worker now and
    // wake the dispatcher in case work is queued for its model.
    spawn_worker_locked(*workers_[index]);
    cv_dispatch_.notify_one();
  }
  return index;
}

void InferenceServer::spawn_worker_locked(Worker& worker) {
  worker.track = telemetry::tracer().register_track(
      "server/worker" + std::to_string(worker.index),
      telemetry::TraceClock::kWall);
  worker.thread = std::thread([this, &worker] { worker_loop(worker); });
}

std::shared_ptr<InferenceEngine> InferenceServer::retire_engine(
    std::size_t index) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (index >= workers_.size()) {
    throw RuntimeApiError(strformat("engine index %zu out of range (%zu)",
                                    index, workers_.size()));
  }
  Worker& worker = *workers_[index];
  if (worker.retiring || worker.retired) {
    throw RuntimeApiError("engine " + std::to_string(index) +
                          " is already retired");
  }
  if (worker.pending_activation) {
    throw RuntimeApiError("engine " + std::to_string(index) +
                          " has a pending activation; retire after it");
  }
  worker.retiring = true;
  if (!started_ || stopped_) {
    // No thread exists (or it is already joined): retire in place.
    worker.retiring = false;
    worker.retired = true;
    return std::move(worker.engine);
  }
  // The worker drains its in-flight batches, then flags retired and
  // exits; the dispatcher stops handing it work immediately.
  worker.cv.notify_all();
  cv_dispatch_.notify_one();
  cv_retire_.wait(lock, [&] { return worker.retired; });
  std::thread thread = std::move(worker.thread);
  auto engine = std::move(worker.engine);
  // A model whose last engine just left needs its queued work failed;
  // the dispatcher's drain_dead_lanes pass handles it.
  cv_dispatch_.notify_one();
  lock.unlock();
  thread.join();
  return engine;
}

bool InferenceServer::engine_retired(std::size_t index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (index >= workers_.size()) {
    throw RuntimeApiError(strformat("engine index %zu out of range (%zu)",
                                    index, workers_.size()));
  }
  return workers_[index]->retired;
}

std::string InferenceServer::engine_device(std::size_t index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (index >= workers_.size()) {
    throw RuntimeApiError(strformat("engine index %zu out of range (%zu)",
                                    index, workers_.size()));
  }
  return workers_[index]->device;
}

void InferenceServer::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  SPNHBM_REQUIRE(!workers_.empty(), "no engines registered");
  SPNHBM_REQUIRE(!started_, "server already started");
  SPNHBM_REQUIRE(batch_samples_ > 0, "batch size must be positive");
  started_ = true;
  dispatcher_track_ = telemetry::tracer().register_track(
      "server/dispatcher", telemetry::TraceClock::kWall);
  for (auto& worker : workers_) {
    if (worker->retired) continue;
    spawn_worker_locked(*worker);
  }
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

void InferenceServer::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_ || stopped_) return;
    stopping_ = true;
    cv_dispatch_.notify_all();
  }
  dispatcher_.join();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    workers_stopping_ = true;
    for (auto& worker : workers_) worker->cv.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  stopped_ = true;
  cv_space_.notify_all();
}

std::string InferenceServer::resolve_model_locked(
    const std::string& ref) const {
  if (lanes_.count(ref) > 0) return ref;
  // Bare model name, optionally kind-suffixed ("m", "m#marginal"): unique
  // match over lane ids of the *same* query kind, so "m" still resolves
  // to the joint lane even when marginal/MPE lanes of m are served too.
  const auto [base, suffix] = split_lane_ref(ref);
  std::vector<std::string> matches;
  for (const auto& [id, lane] : lanes_) {
    (void)lane;
    const auto [id_base, id_suffix] = split_lane_ref(id);
    if (id_suffix != suffix) continue;
    const std::size_t at = id_base.rfind('@');
    if (at != std::string::npos && id_base.substr(0, at) == base) {
      matches.push_back(id);  // lanes_ is ordered: candidates come sorted
    }
  }
  if (matches.size() == 1) return matches.front();
  if (matches.size() > 1) {
    std::string candidates;
    for (const std::string& id : matches) {
      candidates += candidates.empty() ? id : ", " + id;
    }
    throw RuntimeApiError("model reference '" + ref +
                          "' is ambiguous; use name@version (candidates: " +
                          candidates + ")");
  }
  throw RuntimeApiError("unknown model: " + ref);
}

std::string InferenceServer::default_model_locked() const {
  std::string sole;
  for (const auto& worker : workers_) {
    if (!worker_active(*worker)) continue;
    const std::string& id = worker->model_id;
    if (sole.empty()) {
      sole = id;
    } else if (id != sole) {
      throw RuntimeApiError(
          "server hosts multiple models; submit with an explicit model");
    }
    if (worker->pending_activation &&
        lane_id_of(worker->pending_activation) != sole) {
      throw RuntimeApiError(
          "server hosts multiple models; submit with an explicit model");
    }
  }
  return sole;
}

bool InferenceServer::lane_served_locked(const std::string& model) const {
  for (const auto& worker : workers_) {
    if (!worker_active(*worker)) continue;
    if (worker->pending_activation) {
      // Mid-swap the worker serves neither model; it counts only towards
      // its activation target.
      if (lane_id_of(worker->pending_activation) == model) return true;
      continue;
    }
    if (worker->model_id == model) return true;
  }
  return false;
}

std::future<std::vector<double>> InferenceServer::enqueue_locked(
    std::unique_lock<std::mutex>& lock, const std::string& model,
    std::vector<std::uint8_t> samples, const telemetry::TraceContext& trace,
    std::size_t sparse_samples) {
  (void)lock;
  ModelLane& lane = lanes_.at(model);
  auto request = std::make_shared<PendingRequest>();
  request->model = model;
  request->trace = trace;
  request->sparse = sparse_samples > 0;
  request->count = request->sparse ? sparse_samples
                                   : samples.size() / lane.input_features;
  request->remaining = request->count;
  request->samples = std::move(samples);
  request->results.resize(request->count);
  request->enqueue_time = std::chrono::steady_clock::now();
  if (config_.request_timeout.count() > 0) {
    request->deadline = request->enqueue_time + config_.request_timeout;
    live_requests_.push_back(request);
  }
  auto future = request->promise.get_future();
  lane.queued_samples += request->count;
  outstanding_samples_ += request->count;
  stats_.requests += 1;
  stats_.per_model[model].requests += 1;
  ctr_requests_->add(1);
  lane.ctr_requests->add(1);
  stats_.peak_outstanding_samples =
      std::max(stats_.peak_outstanding_samples, outstanding_samples_);
  lane.queue.push_back(std::move(request));
  cv_dispatch_.notify_one();
  return future;
}

void InferenceServer::require_admissible_locked(
    const std::string& model) const {
  if (!started_) return;  // queue-before-start is a supported pattern
  const auto now = std::chrono::steady_clock::now();
  bool any_worker = false;
  for (const auto& worker : workers_) {
    if (!worker_active(*worker)) continue;
    if (worker->pending_activation) {
      // The incoming engine: requests for its target model queue in the
      // lane until the swap completes.
      if (lane_id_of(worker->pending_activation) == model) return;
      continue;
    }
    if (worker->model_id != model) continue;
    any_worker = true;
    if (worker->health != EngineHealth::kQuarantined) return;
    // A quarantined engine still admits work if a probe is running or due:
    // the submitted batch is (or follows) the recovery traffic.
    if (worker->probe_in_flight || now >= worker->quarantined_until) return;
  }
  if (!any_worker) {
    throw RuntimeApiError("model '" + model +
                          "' is not served by any engine");
  }
  throw NoHealthyEngineError(
      "all engines serving model '" + model +
      "' quarantined; back off until a probe readmits one");
}

std::future<std::vector<double>> InferenceServer::submit_locked(
    std::unique_lock<std::mutex>& lock, const std::string& model,
    std::vector<std::uint8_t> samples) {
  const std::size_t features = lanes_.at(model).input_features;
  SPNHBM_REQUIRE(!samples.empty() && samples.size() % features == 0,
                 "input is not a whole number of samples");
  const std::size_t count = samples.size() / features;
  SPNHBM_REQUIRE(count <= config_.max_queue_samples,
                 "request larger than the whole queue bound");
  require_admissible_locked(model);
  cv_space_.wait(lock, [&] {
    return stopped_ ||
           outstanding_samples_ + count <= config_.max_queue_samples;
  });
  if (stopping_ || stopped_) {
    throw RuntimeApiError("submit on a stopped server");
  }
  // The lane can vanish while we wait for space (last engine swapped away).
  if (lanes_.find(model) == lanes_.end()) {
    throw RuntimeApiError("model '" + model + "' is no longer served");
  }
  return enqueue_locked(lock, model, std::move(samples));
}

std::optional<std::future<std::vector<double>>>
InferenceServer::try_submit_locked(std::unique_lock<std::mutex>& lock,
                                   const std::string& model,
                                   std::vector<std::uint8_t> samples,
                                   const telemetry::TraceContext& trace) {
  const std::size_t features = lanes_.at(model).input_features;
  SPNHBM_REQUIRE(!samples.empty() && samples.size() % features == 0,
                 "input is not a whole number of samples");
  const std::size_t count = samples.size() / features;
  require_admissible_locked(model);
  if (outstanding_samples_ + count > config_.max_queue_samples) {
    stats_.rejected += 1;
    ctr_rejected_->add(1);
    return std::nullopt;
  }
  return enqueue_locked(lock, model, std::move(samples), trace);
}

std::future<std::vector<double>> InferenceServer::submit(
    std::vector<std::uint8_t> samples) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (workers_.empty()) {
    throw RuntimeApiError("submit before any engine is registered");
  }
  if (stopping_ || stopped_) {
    throw RuntimeApiError("submit on a stopped server");
  }
  return submit_locked(lock, default_model_locked(), std::move(samples));
}

std::future<std::vector<double>> InferenceServer::submit(
    const std::string& model, std::vector<std::uint8_t> samples) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (workers_.empty()) {
    throw RuntimeApiError("submit before any engine is registered");
  }
  if (stopping_ || stopped_) {
    throw RuntimeApiError("submit on a stopped server");
  }
  return submit_locked(lock, resolve_model_locked(model), std::move(samples));
}

std::optional<std::future<std::vector<double>>> InferenceServer::try_submit(
    std::vector<std::uint8_t> samples) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (workers_.empty()) {
    throw RuntimeApiError("submit before any engine is registered");
  }
  if (stopping_ || stopped_) {
    throw RuntimeApiError("submit on a stopped server");
  }
  return try_submit_locked(lock, default_model_locked(), std::move(samples));
}

std::optional<std::future<std::vector<double>>> InferenceServer::try_submit(
    const std::string& model, std::vector<std::uint8_t> samples) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (workers_.empty()) {
    throw RuntimeApiError("submit before any engine is registered");
  }
  if (stopping_ || stopped_) {
    throw RuntimeApiError("submit on a stopped server");
  }
  return try_submit_locked(lock, resolve_model_locked(model),
                           std::move(samples));
}

std::optional<std::future<std::vector<double>>> InferenceServer::try_submit(
    const std::string& model, std::vector<std::uint8_t> samples,
    const telemetry::TraceContext& trace) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (workers_.empty()) {
    throw RuntimeApiError("submit before any engine is registered");
  }
  if (stopping_ || stopped_) {
    throw RuntimeApiError("submit on a stopped server");
  }
  return try_submit_locked(lock, resolve_model_locked(model),
                           std::move(samples), trace);
}

std::optional<std::future<std::vector<double>>>
InferenceServer::try_submit_sparse(const std::string& model,
                                   std::vector<std::uint8_t> stream,
                                   std::size_t sample_count,
                                   const telemetry::TraceContext& trace) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (workers_.empty()) {
    throw RuntimeApiError("submit before any engine is registered");
  }
  if (stopping_ || stopped_) {
    throw RuntimeApiError("submit on a stopped server");
  }
  const std::string lane_id = resolve_model_locked(model);
  const ModelLane& lane = lanes_.at(lane_id);
  SPNHBM_REQUIRE(sample_count > 0, "sparse submit needs at least one sample");
  // Front-door validation: a malformed stream fails on the caller's
  // thread, never inside an engine where it would read as an engine fault
  // and feed the health state machine.
  compiler::decode_sparse(stream, lane.input_features, sample_count);
  SPNHBM_REQUIRE(sample_count <= config_.max_queue_samples,
                 "request larger than the whole queue bound");
  require_admissible_locked(lane_id);
  if (outstanding_samples_ + sample_count > config_.max_queue_samples) {
    stats_.rejected += 1;
    ctr_rejected_->add(1);
    return std::nullopt;
  }
  return enqueue_locked(lock, lane_id, std::move(stream), trace, sample_count);
}

std::string InferenceServer::health_text() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string text;
  for (const auto& worker : workers_) {
    if (worker->retired) {
      text += strformat("engine %zu retired\n", worker->index);
      continue;
    }
    const std::string model = worker->pending_activation
                                  ? lane_id_of(worker->pending_activation)
                                  : worker->model_id;
    text += strformat(
        "engine %zu%s%s%s model=%s tier=%d health=%s dispatched=%llu "
        "outstanding=%zu\n",
        worker->index, worker->device.empty() ? "" : " [",
        worker->device.c_str(), worker->device.empty() ? "" : "]",
        model.c_str(), worker->priority,
        engine::to_string(worker->health).c_str(),
        static_cast<unsigned long long>(worker->dispatched_samples),
        worker->outstanding_samples);
  }
  return text;
}

std::future<void> InferenceServer::activate(std::size_t index,
                                            ModelHandle next) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (index >= workers_.size()) {
    throw RuntimeApiError(strformat("engine index %zu out of range (%zu)",
                                    index, workers_.size()));
  }
  if (next == nullptr) {
    throw RuntimeApiError("activate requires a model");
  }
  if (!started_ || stopping_ || stopped_) {
    throw RuntimeApiError("activate on a server that is not running");
  }
  Worker& worker = *workers_[index];
  if (!worker_active(worker)) {
    throw RuntimeApiError("engine " + std::to_string(index) + " is retired");
  }
  if (worker.pending_activation) {
    throw RuntimeApiError("engine " + std::to_string(index) +
                          " already has a pending activation");
  }
  // Open the target lane now: requests for the incoming model queue while
  // the engine reconfigures.
  ensure_lane_locked(lane_id_of(next), next->input_features(), next);
  worker.pending_activation = std::move(next);
  worker.activation_promise = std::make_shared<std::promise<void>>();
  auto future = worker.activation_promise->get_future();
  worker.cv.notify_one();
  cv_dispatch_.notify_one();
  return future;
}

std::vector<std::string> InferenceServer::served_models() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> ids;
  ids.reserve(lanes_.size());
  for (const auto& [id, lane] : lanes_) {
    (void)lane;
    ids.push_back(id);
  }
  return ids;  // sorted: lanes_ is an ordered map
}

std::size_t InferenceServer::outstanding_samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return outstanding_samples_;
}

std::size_t InferenceServer::input_features() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (lanes_.empty()) return 0;
  if (lanes_.size() > 1) {
    throw RuntimeApiError(
        "multiple models served; use input_features(model)");
  }
  return lanes_.begin()->second.input_features;
}

std::size_t InferenceServer::input_features(const std::string& model) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lanes_.at(resolve_model_locked(model)).input_features;
}

ServerStats InferenceServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServerStats stats = stats_;
  stats.queue_wait_us = queue_wait_us_->snapshot();
  stats.request_latency_us = request_latency_us_->snapshot();
  stats.batch_fill_samples = batch_fill_samples_->snapshot();
  // Per-lane effective batch targets: a tuned model's entry shows its
  // manifest batch size, untuned lanes the server-wide target.
  for (const auto& [model, lane] : lanes_) {
    stats.per_model[model].batch_samples = lane_batch_locked(lane);
  }
  return stats;
}

std::size_t InferenceServer::batch_samples(const std::string& model) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lane_batch_locked(lanes_.at(resolve_model_locked(model)));
}

const InferenceEngine& InferenceServer::engine(std::size_t index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (index >= workers_.size()) {
    throw RuntimeApiError(strformat("engine index %zu out of range (%zu)",
                                    index, workers_.size()));
  }
  if (workers_[index]->retired) {
    throw RuntimeApiError("engine " + std::to_string(index) + " is retired");
  }
  return *workers_[index]->engine;
}

std::uint64_t InferenceServer::dispatched_samples(std::size_t index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (index >= workers_.size()) {
    throw RuntimeApiError(strformat("engine index %zu out of range (%zu)",
                                    index, workers_.size()));
  }
  return workers_[index]->dispatched_samples;
}

EngineHealth InferenceServer::engine_health(std::size_t index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (index >= workers_.size()) {
    throw RuntimeApiError(strformat("engine index %zu out of range (%zu)",
                                    index, workers_.size()));
  }
  return workers_[index]->health;
}

std::string InferenceServer::engine_model(std::size_t index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (index >= workers_.size()) {
    throw RuntimeApiError(strformat("engine index %zu out of range (%zu)",
                                    index, workers_.size()));
  }
  const Worker& worker = *workers_[index];
  return worker.pending_activation ? lane_id_of(worker.pending_activation)
                                   : worker.model_id;
}

InferenceServer::Batch InferenceServer::form_batch_locked(
    const std::string& model, ModelLane& lane) {
  Batch batch;
  batch.model = model;
  const std::size_t batch_target = lane_batch_locked(lane);
  batch.samples.reserve(std::min(lane.queued_samples, batch_target) *
                        lane.input_features);
  while (batch.sample_count < batch_target && !lane.queue.empty()) {
    auto& request = lane.queue.front();
    // A sparse request rides alone: its CSR stream cannot be sliced at
    // sample granularity (or concatenated with dense rows) without
    // re-encoding. Close the dense batch formed so far; the sparse one
    // follows on the next loop turn.
    if (request->sparse && batch.sample_count > 0) break;
    if (request->cursor == 0) {
      // First slice of this request leaves the queue: its queue wait ends.
      queue_wait_us_->record(elapsed_us(request->enqueue_time));
      if (request->trace.valid()) {
        auto& tracer = telemetry::tracer();
        tracer.complete_wall(dispatcher_track_, "lane_queue",
                             request->enqueue_time,
                             telemetry::Tracer::wall_now());
        tracer.flow_wall(dispatcher_track_, "request", 't',
                         request->trace.trace_id, request->enqueue_time);
      }
    }
    if (!batch.trace.valid() && request->trace.valid()) {
      batch.trace = request->trace;
    }
    if (request->sparse) {
      // Whole-request batch; the stream is copied so a retry after an
      // engine failure re-dispatches from the batch, like dense batches.
      batch.sparse = true;
      batch.samples = request->samples;
      batch.slices.push_back({request, 0, 0, request->count});
      batch.sample_count = request->count;
      request->cursor = request->count;
      lane.queued_samples -= request->count;
      lane.queue.pop_front();
      break;
    }
    const std::size_t take =
        std::min(batch_target - batch.sample_count,
                 request->count - request->cursor);
    const auto* begin =
        request->samples.data() + request->cursor * lane.input_features;
    batch.samples.insert(batch.samples.end(), begin,
                         begin + take * lane.input_features);
    batch.slices.push_back(
        {request, request->cursor, batch.sample_count, take});
    request->cursor += take;
    batch.sample_count += take;
    lane.queued_samples -= take;
    if (request->cursor == request->count) lane.queue.pop_front();
  }
  batch.results.resize(batch.sample_count);
  stats_.batches += 1;
  stats_.samples += batch.sample_count;
  auto& model_stats = stats_.per_model[model];
  model_stats.batches += 1;
  model_stats.samples += batch.sample_count;
  ctr_batches_->add(1);
  ctr_samples_->add(batch.sample_count);
  lane.ctr_batches->add(1);
  lane.ctr_samples->add(batch.sample_count);
  batch_fill_samples_->record(static_cast<double>(batch.sample_count));
  pending_batches_ += 1;
  return batch;
}

bool InferenceServer::any_engine_available_locked(
    std::chrono::steady_clock::time_point now,
    const std::string& model) const {
  for (const auto& worker : workers_) {
    if (!worker_active(*worker) || worker->pending_activation ||
        worker->model_id != model) {
      continue;
    }
    if (worker->health != EngineHealth::kQuarantined) return true;
    if (!worker->probe_in_flight && now >= worker->quarantined_until) {
      return true;  // a probe slot is open
    }
  }
  return false;
}

std::size_t InferenceServer::pick_engine_locked(const Batch& batch) {
  const auto now = std::chrono::steady_clock::now();
  // Only engines currently hosting the batch's model (and not mid-swap)
  // are candidates; batches never cross models.
  const auto serves = [&](std::size_t i) {
    const auto& worker = *workers_[i];
    return worker_active(worker) && !worker.pending_activation &&
           worker.model_id == batch.model;
  };
  // Circuit-breaker probes take precedence: a due probe is the only way a
  // quarantined engine can prove itself again, and one batch of delay on
  // the happy path is the price of detecting recovery.
  std::size_t probe = kNoWorker;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (!serves(i)) continue;
    const auto& worker = *workers_[i];
    if (worker.health != EngineHealth::kQuarantined ||
        worker.probe_in_flight || now < worker.quarantined_until) {
      continue;
    }
    if (probe == kNoWorker ||
        worker.quarantined_until < workers_[probe]->quarantined_until) {
      probe = i;
    }
  }
  if (probe != kNoWorker) {
    workers_[probe]->probe_in_flight = true;
    stats_.probes += 1;
    ctr_probes_->add(1);
    telemetry::tracer().instant_wall(workers_[probe]->track, "probe");
    return probe;
  }
  // Regular dispatch: best (lowest) priority tier that still has a
  // non-quarantined engine of this model. Quarantining a whole tier
  // degrades onto the next one.
  int best_tier = std::numeric_limits<int>::max();
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (!serves(i)) continue;
    if (workers_[i]->health != EngineHealth::kQuarantined) {
      best_tier = std::min(best_tier, workers_[i]->priority);
    }
  }
  if (best_tier == std::numeric_limits<int>::max()) return kNoWorker;
  const auto eligible = [&](std::size_t i) {
    const auto& worker = *workers_[i];
    return serves(i) && worker.health != EngineHealth::kQuarantined &&
           worker.priority == best_tier;
  };
  // Failover: a retried batch avoids the engine it just failed on when
  // another eligible engine exists.
  bool have_other = false;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (eligible(i) && i != batch.last_worker) have_other = true;
  }
  const bool exclude_last = batch.attempts > 0 && have_other;
  const auto allowed = [&](std::size_t i) {
    return eligible(i) && !(exclude_last && i == batch.last_worker);
  };
  if (config_.policy == DispatchPolicy::kRoundRobin || workers_.size() == 1) {
    for (std::size_t step = 0; step < workers_.size(); ++step) {
      const std::size_t index = (round_robin_next_ + step) % workers_.size();
      if (!allowed(index)) continue;
      round_robin_next_ = (index + 1) % workers_.size();
      return index;
    }
    return kNoWorker;
  }
  // Least expected completion time of this batch per engine, using the
  // measured rate once available and the engine's nominal claim before.
  // An engine with neither gets probed optimistically while idle (cold
  // start), but never accumulates a backlog before its first measurement.
  std::size_t best = kNoWorker;
  double best_eta = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (!allowed(i)) continue;
    const auto& worker = *workers_[i];
    const double rate = worker.busy_seconds > 0.0
                            ? static_cast<double>(worker.completed_samples) /
                                  worker.busy_seconds
                            : worker.nominal_throughput;
    double eta;
    if (rate > 0.0) {
      eta = static_cast<double>(worker.outstanding_samples +
                                batch.sample_count) /
            rate;
    } else {
      eta = worker.outstanding_samples == 0
                ? 0.0
                : std::numeric_limits<double>::infinity();
    }
    // A degraded engine is still in rotation but pays an ETA penalty (its
    // recent failures predict retries).
    if (worker.health == EngineHealth::kDegraded) eta *= 2.0;
    if (best == kNoWorker || eta < best_eta) {
      best_eta = eta;
      best = i;
    }
  }
  return best;
}

bool InferenceServer::dispatch_batch_locked(Batch& batch) {
  const std::size_t target = pick_engine_locked(batch);
  if (target == kNoWorker) return false;
  if (batch.attempts > 0 && batch.last_worker != target) {
    stats_.failovers += 1;
    ctr_failovers_->add(1);
  }
  auto& worker = *workers_[target];
  worker.outstanding_samples += batch.sample_count;
  worker.dispatched_samples += batch.sample_count;
  worker.queue.push_back(std::move(batch));
  worker.cv.notify_one();
  return true;
}

void InferenceServer::expire_request_locked(PendingRequest& request) {
  request.settled = true;
  stats_.deadline_expirations += 1;
  ctr_deadline_expirations_->add(1);
  telemetry::tracer().instant_wall(dispatcher_track_, "deadline_expired");
  request.promise.set_exception(std::make_exception_ptr(DeadlineExceededError(
      strformat("request expired after %lld us",
                static_cast<long long>(config_.request_timeout.count())))));
  if (request.cursor < request.count) {
    // Cancel the samples that never dispatched; in-flight slices complete
    // normally and are discarded against the settled promise.
    const std::size_t cancelled = request.count - request.cursor;
    request.cursor = request.count;
    request.remaining -= cancelled;
    outstanding_samples_ -= cancelled;
    auto lane_it = lanes_.find(request.model);
    if (lane_it != lanes_.end()) {
      ModelLane& lane = lane_it->second;
      lane.queued_samples -= cancelled;
      for (auto it = lane.queue.begin(); it != lane.queue.end(); ++it) {
        if (it->get() == &request) {
          lane.queue.erase(it);
          break;
        }
      }
    }
    cv_space_.notify_all();
  }
}

std::chrono::steady_clock::time_point InferenceServer::retry_time_locked(
    int attempts) {
  const auto& retry = config_.retry;
  double delay_us =
      std::chrono::duration<double, std::micro>(retry.backoff_base).count();
  for (int i = 1; i < attempts; ++i) delay_us *= retry.backoff_multiplier;
  delay_us = std::min(
      delay_us,
      std::chrono::duration<double, std::micro>(retry.backoff_cap).count());
  // Deterministic jitter: a seeded stream, not wall-clock entropy, so a
  // given failure sequence always produces the same backoff sequence.
  delay_us *= (1.0 - retry.jitter) + retry.jitter * jitter_rng_.next_double();
  return std::chrono::steady_clock::now() +
         std::chrono::microseconds(static_cast<std::int64_t>(delay_us));
}

void InferenceServer::note_worker_failure_locked(Worker& worker) {
  worker.consecutive_failures += 1;
  const auto now = std::chrono::steady_clock::now();
  const auto& policy = config_.health;
  if (worker.health == EngineHealth::kQuarantined) {
    // Failed probe (or a straggler batch dispatched before quarantine):
    // extend the quarantine with a longer interval, capped.
    worker.probe_in_flight = false;
    const auto grown = std::chrono::microseconds(static_cast<std::int64_t>(
        static_cast<double>(worker.probe_interval.count()) *
        policy.probe_backoff_multiplier));
    worker.probe_interval = std::min(grown, policy.probe_interval_cap);
    worker.quarantined_until = now + worker.probe_interval;
    return;
  }
  if (worker.consecutive_failures >= policy.quarantine_after) {
    worker.health = EngineHealth::kQuarantined;
    worker.probe_in_flight = false;
    worker.probe_interval = policy.probe_interval;
    worker.quarantined_until = now + worker.probe_interval;
    stats_.quarantines += 1;
    ctr_quarantines_->add(1);
    telemetry::tracer().instant_wall(worker.track, "quarantined");
  } else if (worker.consecutive_failures >= policy.degraded_after) {
    worker.health = EngineHealth::kDegraded;
  }
}

void InferenceServer::note_worker_success_locked(Worker& worker) {
  worker.consecutive_failures = 0;
  if (worker.health == EngineHealth::kQuarantined) {
    stats_.readmissions += 1;
    ctr_readmissions_->add(1);
    telemetry::tracer().instant_wall(worker.track, "readmitted");
  }
  worker.health = EngineHealth::kHealthy;
  worker.probe_in_flight = false;
  worker.probe_interval = config_.health.probe_interval;
}

void InferenceServer::fail_batch_locked(Batch& batch,
                                        const std::exception_ptr& error) {
  for (auto& slice : batch.slices) {
    slice.request->error = error;
    complete_slice_locked(slice);
  }
  finish_batch_locked(batch);
}

void InferenceServer::drain_dead_lanes_locked() {
  for (auto it = lanes_.begin(); it != lanes_.end();) {
    const std::string& model = it->first;
    ModelLane& lane = it->second;
    if (lane_served_locked(model)) {
      ++it;
      continue;
    }
    if (!lane.queue.empty()) {
      const auto error = std::make_exception_ptr(
          RuntimeApiError("model '" + model + "' is no longer served"));
      while (!lane.queue.empty()) {
        auto request = std::move(lane.queue.front());
        lane.queue.pop_front();
        if (request->settled) continue;
        request->settled = true;
        stats_.failed_requests += 1;
        ctr_failed_requests_->add(1);
        stats_.per_model[model].failed_requests += 1;
        request->promise.set_exception(error);
        const std::size_t cancelled = request->count - request->cursor;
        request->cursor = request->count;
        request->remaining -= cancelled;
        outstanding_samples_ -= cancelled;
      }
      lane.queued_samples = 0;
      cv_space_.notify_all();
    }
    it = lanes_.erase(it);
  }
}

void InferenceServer::dispatcher_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const auto now = std::chrono::steady_clock::now();

    // 1. Request deadlines. live_requests_ is in expiry order (one
    //    config-wide timeout + FIFO enqueue), so only the front can be due.
    while (!live_requests_.empty()) {
      auto& front = live_requests_.front();
      if (front->settled) {
        live_requests_.pop_front();
        continue;
      }
      if (front->deadline <= now) {
        expire_request_locked(*front);
        live_requests_.pop_front();
        continue;
      }
      break;
    }

    // 2. Models that lost their last engine (hot-swap away): fail their
    //    queued work fast instead of letting it sit forever.
    drain_dead_lanes_locked();

    // 3. Failed batches whose backoff has elapsed: re-dispatch (failover),
    //    or fail permanently when nothing serves their model any more. A
    //    model whose engines are all quarantined blocks only its own
    //    batches.
    std::vector<std::string> blocked;
    for (auto it = retry_queue_.begin(); it != retry_queue_.end();) {
      if (it->not_before > now) {
        ++it;
        continue;
      }
      if (!lane_served_locked(it->model)) {
        fail_batch_locked(*it, std::make_exception_ptr(RuntimeApiError(
                                   "model '" + it->model +
                                   "' is no longer served")));
        it = retry_queue_.erase(it);
        continue;
      }
      if (dispatch_batch_locked(*it)) {
        it = retry_queue_.erase(it);
      } else {
        blocked.push_back(it->model);
        ++it;
      }
    }
    const auto is_blocked = [&](const std::string& model) {
      return std::find(blocked.begin(), blocked.end(), model) !=
             blocked.end();
    };

    // 4. Fresh batches, per model lane: full ones immediately, partial
    //    ones on the flush deadline (or unconditionally while draining
    //    for stop()). Lanes with a blocked retry wait behind it.
    for (auto& [model, lane] : lanes_) {
      if (is_blocked(model)) continue;
      while (!lane.queue.empty()) {
        const bool full = lane.queued_samples >= lane_batch_locked(lane);
        const bool flush_due =
            now >= lane.queue.front()->enqueue_time +
                       lane_max_latency_locked(lane);
        if (!full && !flush_due && !stopping_) break;
        if (!any_engine_available_locked(now, model)) {
          blocked.push_back(model);
          break;
        }
        if (!full && !stopping_) {
          stats_.deadline_flushes += 1;
          ctr_deadline_flushes_->add(1);
          telemetry::tracer().instant_wall(dispatcher_track_,
                                           "deadline_flush");
        }
        telemetry::tracer().instant_wall(dispatcher_track_, "dispatch");
        Batch batch = form_batch_locked(model, lane);
        const bool dispatched = dispatch_batch_locked(batch);
        SPNHBM_REQUIRE(dispatched, "available engine vanished under the lock");
      }
    }

    // 5. Shutdown: everything queued has been drained to a terminal state.
    bool lanes_empty = true;
    for (const auto& [model, lane] : lanes_) {
      (void)model;
      if (!lane.queue.empty()) {
        lanes_empty = false;
        break;
      }
    }
    if (stopping_ && lanes_empty && retry_queue_.empty() &&
        pending_batches_ == 0) {
      return;
    }

    // 6. Sleep until the next timed event (or a notify).
    std::optional<std::chrono::steady_clock::time_point> wake;
    const auto consider = [&](std::chrono::steady_clock::time_point t) {
      if (!wake || t < *wake) wake = t;
    };
    if (!live_requests_.empty()) consider(live_requests_.front()->deadline);
    for (const auto& batch : retry_queue_) consider(batch.not_before);
    for (const auto& [model, lane] : lanes_) {
      if (lane.queue.empty() || stopping_ || is_blocked(model)) continue;
      consider(lane.queue.front()->enqueue_time +
               lane_max_latency_locked(lane));
    }
    // Blocked models: wake when the earliest probe window of one of their
    // engines opens (activation completions notify the cv directly).
    for (const auto& model : blocked) {
      for (const auto& worker : workers_) {
        if (!worker_active(*worker) || worker->pending_activation ||
            worker->model_id != model) {
          continue;
        }
        if (worker->health == EngineHealth::kQuarantined &&
            !worker->probe_in_flight) {
          consider(worker->quarantined_until);
        }
      }
    }
    if (wake) {
      cv_dispatch_.wait_until(lock, *wake);
    } else {
      cv_dispatch_.wait(lock);
    }
  }
}

void InferenceServer::complete_slice_locked(const BatchSlice& slice) {
  auto& request = *slice.request;
  request.remaining -= slice.count;
  if (request.remaining > 0 || request.settled) return;
  request.settled = true;
  request_latency_us_->record(elapsed_us(request.enqueue_time));
  if (request.error) {
    stats_.failed_requests += 1;
    ctr_failed_requests_->add(1);
    stats_.per_model[request.model].failed_requests += 1;
    request.promise.set_exception(request.error);
  } else {
    request.promise.set_value(std::move(request.results));
  }
}

void InferenceServer::finish_batch_locked(const Batch& batch) {
  outstanding_samples_ -= batch.sample_count;
  pending_batches_ -= 1;
  cv_space_.notify_all();
}

void InferenceServer::perform_activation(std::unique_lock<std::mutex>& lock,
                                         Worker& worker) {
  // pending_activation stays set while the engine reconfigures: the
  // dispatcher treats the worker as serving neither the outgoing nor the
  // incoming model until the swap resolves, so no batch can land on a
  // half-configured engine.
  ModelHandle target = worker.pending_activation;
  auto promise = worker.activation_promise;
  lock.unlock();
  std::exception_ptr error;
  try {
    const telemetry::Tracer::WallSpan span(telemetry::tracer(), worker.track,
                                           "activate");
    worker.engine->activate(target);
  } catch (...) {
    error = std::current_exception();
  }
  lock.lock();
  worker.pending_activation = nullptr;
  worker.activation_promise = nullptr;
  if (!error) {
    const auto& caps = worker.engine->capabilities();
    worker.model_id = lane_id_of(worker.engine->loaded_model());
    worker.input_features = caps.input_features;
    worker.nominal_throughput = caps.nominal_throughput;
    // The measured rate belonged to the outgoing model; start fresh.
    worker.completed_samples = 0;
    worker.busy_seconds = 0.0;
    stats_.activations += 1;
    ctr_activations_->add(1);
    telemetry::tracer().instant_wall(worker.track, "activated");
    promise->set_value();
  } else {
    // The engine kept its old model (activate is strong-exception-safe in
    // every backend); the failure reaches only the activation future.
    stats_.failed_activations += 1;
    ctr_failed_activations_->add(1);
    promise->set_exception(error);
  }
  cv_dispatch_.notify_one();
}

void InferenceServer::worker_loop(Worker& worker) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (worker.queue.empty()) {
      // Hot-swaps run once the queue drains — after in-flight batches,
      // before shutdown, so a stop() never strands the activation future.
      if (worker.pending_activation) {
        perform_activation(lock, worker);
        continue;
      }
      // Retirement: the queue is drained, hand the slot back. The
      // retire_engine caller joins this thread and takes the engine.
      if (worker.retiring) {
        worker.retiring = false;
        worker.retired = true;
        cv_retire_.notify_all();
        cv_dispatch_.notify_one();
        return;
      }
      if (workers_stopping_) return;
      worker.cv.wait(lock);
      continue;
    }
    Batch batch = std::move(worker.queue.front());
    worker.queue.pop_front();
    lock.unlock();

    std::exception_ptr error;
    double busy_before = 0.0;
    const telemetry::Tracer::WallTime exec_start =
        telemetry::Tracer::wall_now();
    try {
      // Publish the batch's trace id to this thread while the engine runs:
      // the DES coroutines underneath (HBM bursts, DMA transfers) and any
      // log lines pick it up, so virtual-time spans and logs join the
      // traced request's flow chain.
      const telemetry::TraceContextScope trace_scope(batch.trace);
      busy_before = worker.engine->stats().busy_seconds;
      worker.engine->wait(
          batch.sparse
              ? worker.engine->submit_sparse(batch.samples,
                                             batch.sample_count,
                                             batch.results)
              : worker.engine->submit(batch.samples, batch.results));
    } catch (...) {
      error = std::current_exception();
    }
    {
      auto& tracer = telemetry::tracer();
      tracer.complete_wall(worker.track, "batch", exec_start,
                           telemetry::Tracer::wall_now());
      if (batch.trace.valid()) {
        tracer.flow_wall(worker.track, "request", 't', batch.trace.trace_id,
                         exec_start);
      }
    }
    const double busy_delta =
        error ? 0.0 : worker.engine->stats().busy_seconds - busy_before;
    if (!error) {
      // Scatter outside the lock: every slice targets a distinct result
      // range of its request.
      for (const auto& slice : batch.slices) {
        std::copy_n(batch.results.data() + slice.batch_offset, slice.count,
                    slice.request->results.data() + slice.request_offset);
      }
    }

    lock.lock();
    worker.outstanding_samples -= batch.sample_count;
    if (!error) {
      note_worker_success_locked(worker);
      worker.completed_samples += batch.sample_count;
      worker.busy_seconds += busy_delta;
      for (const auto& slice : batch.slices) complete_slice_locked(slice);
      finish_batch_locked(batch);
    } else {
      note_worker_failure_locked(worker);
      if (batch.attempts + 1 >= config_.retry.max_attempts) {
        // Retry budget exhausted: the failure becomes permanent, but only
        // for the requests actually sliced into this batch.
        fail_batch_locked(batch, error);
      } else {
        batch.attempts += 1;
        batch.last_worker = worker.index;
        batch.not_before = retry_time_locked(batch.attempts);
        stats_.batch_retries += 1;
        ctr_batch_retries_->add(1);
        telemetry::tracer().instant_wall(worker.track, "batch_retry");
        retry_queue_.push_back(std::move(batch));
      }
    }
    // The dispatcher owns retries, probe windows and the drain condition;
    // every completion can change one of them.
    cv_dispatch_.notify_one();
  }
}

}  // namespace spnhbm::engine
