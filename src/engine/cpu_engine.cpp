#include "spnhbm/engine/cpu_engine.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "spnhbm/compiler/sparse_evidence.hpp"
#include "spnhbm/util/strings.hpp"

namespace spnhbm::engine {

namespace {
std::size_t resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  return std::max(1u, std::thread::hardware_concurrency());
}
}  // namespace

CpuEngine::CpuEngine(ModelHandle model, CpuEngineConfig config)
    : model_(std::move(model)), config_(config) {
  SPNHBM_REQUIRE(model_ != nullptr, "CpuEngine requires a model");
  native_ = std::make_unique<baselines::CpuInferenceEngine>(
      model_->module(), resolve_threads(config_.threads));
  refresh_capabilities();
}

CpuEngine::CpuEngine(const compiler::DatapathModule& module,
                     CpuEngineConfig config)
    : CpuEngine(model::ModelArtifact::wrap("default", module,
                                           arith::make_float64_backend()),
                config) {}

void CpuEngine::refresh_capabilities() {
  capabilities_.name = strformat("cpu-native x%zu", native_->threads());
  capabilities_.input_features = model_->module().input_features();
  capabilities_.functional = true;
  // Unknown until measured: the host's real speed depends on the machine.
  capabilities_.nominal_throughput = 0.0;
  // Big enough to amortise thread-pool dispatch, small enough to keep the
  // struct-of-arrays working set in cache.
  capabilities_.preferred_batch_samples = 8192;
}

void CpuEngine::activate(ModelHandle next) {
  SPNHBM_REQUIRE(next != nullptr, "activate requires a model");
  SPNHBM_REQUIRE(pending_.empty(), "activate with batches in flight");
  auto native = std::make_unique<baselines::CpuInferenceEngine>(
      next->module(), resolve_threads(config_.threads));
  native_ = std::move(native);
  model_ = std::move(next);
  refresh_capabilities();
  stats_.reconfigurations += 1;  // host-side swap: no device time charged
}

BatchHandle CpuEngine::submit(std::span<const std::uint8_t> samples,
                              std::span<double> results) {
  const std::size_t count = check_batch(samples, results);
  const BatchHandle handle = next_handle_++;
  pending_.emplace(handle,
                   std::async(std::launch::async, [this, samples, results] {
                     const auto start = std::chrono::steady_clock::now();
                     native_->infer(samples, results);
                     return std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - start)
                         .count();
                   }));
  stats_.batches += 1;
  stats_.samples += count;
  return handle;
}

BatchHandle CpuEngine::submit_sparse(std::span<const std::uint8_t> stream,
                                     std::size_t sample_count,
                                     std::span<double> results) {
  check_sparse_batch(stream, sample_count, results);
  const auto& module = model_->module();
  // Densify up front (the helper thread owns the buffer) and reuse the
  // dense vectorised kernel.
  auto rows = std::make_shared<std::vector<std::uint8_t>>(
      compiler::decode_sparse(stream, module.input_features(), sample_count)
          .densify(module.default_evidence()));
  const BatchHandle handle = next_handle_++;
  pending_.emplace(handle,
                   std::async(std::launch::async, [this, rows, results] {
                     const auto start = std::chrono::steady_clock::now();
                     native_->infer(*rows, results);
                     return std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - start)
                         .count();
                   }));
  stats_.batches += 1;
  stats_.samples += sample_count;
  return handle;
}

void CpuEngine::wait(BatchHandle handle) {
  const auto it = pending_.find(handle);
  SPNHBM_REQUIRE(it != pending_.end(),
                 "wait on unknown or already-completed batch handle");
  const double batch_seconds = it->second.get();
  stats_.busy_seconds += batch_seconds;
  batch_latency_us_.record(batch_seconds * 1e6);
  pending_.erase(it);
}

double CpuEngine::measure_throughput(std::uint64_t sample_count) {
  const double rate =
      native_->measure_throughput(static_cast<std::size_t>(sample_count));
  stats_.batches += 1;
  stats_.samples += sample_count;
  stats_.busy_seconds += static_cast<double>(sample_count) / rate;
  return rate;
}

}  // namespace spnhbm::engine
