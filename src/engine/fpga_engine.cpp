#include "spnhbm/engine/fpga_engine.hpp"

#include "spnhbm/fpga/resource_model.hpp"
#include "spnhbm/util/strings.hpp"

namespace spnhbm::engine {

namespace {

tapasco::CompositionConfig make_composition(
    const compiler::DatapathModule& module, const arith::ArithBackend& backend,
    const FpgaEngineConfig& config) {
  tapasco::CompositionConfig composition;
  composition.platform = config.platform;
  composition.pe_count =
      config.pe_count > 0
          ? config.pe_count
          : fpga::max_placeable_pes(module, backend.kind(), config.platform);
  composition.memory_channels = config.memory_channels;
  composition.pcie_generation = config.pcie_generation;
  composition.compute_results = config.compute_results;
  composition.skip_placement_check = config.skip_placement_check;
  composition.dma_failure_rate = config.dma_failure_rate;
  return composition;
}

runtime::RuntimeConfig make_runtime_config(const FpgaEngineConfig& config) {
  runtime::RuntimeConfig rc;
  rc.threads_per_pe = config.threads_per_pe;
  rc.include_transfers = config.include_transfers;
  return rc;
}

}  // namespace

FpgaSimEngine::FpgaSimEngine(const compiler::DatapathModule& module,
                             const arith::ArithBackend& backend,
                             FpgaEngineConfig config)
    : runner_(scheduler_),
      device_(runner_, module, backend, make_composition(module, backend,
                                                         config)),
      runtime_(runner_, device_, module, make_runtime_config(config)) {
  capabilities_.name = strformat(
      "fpga-sim/%s x%zu",
      config.platform == fpga::Platform::kF1 ? "f1" : "hbm",
      device_.pe_count());
  capabilities_.input_features = module.input_features();
  capabilities_.functional = config.compute_results;
  // Compute ceiling of the composed design: one sample per PE clock per PE
  // (II = 1). The server replaces this with measured throughput as soon as
  // batches complete.
  capabilities_.nominal_throughput =
      static_cast<double>(device_.pe_count()) * fpga::cal::kPeClockHz /
      compiler::DatapathModule::initiation_interval();
  capabilities_.preferred_batch_samples = runtime_.config().block_samples;
}

BatchHandle FpgaSimEngine::submit(std::span<const std::uint8_t> samples,
                                  std::span<double> results) {
  const std::size_t count = check_batch(samples, results);
  // The DES completes the job inside submit; wait() is the barrier that
  // hands the handle back.
  const Picoseconds before = scheduler_.now();
  const auto probabilities = runtime_.infer(samples);
  std::copy(probabilities.begin(), probabilities.end(), results.begin());
  stats_.batches += 1;
  stats_.samples += count;
  const double batch_seconds = to_seconds(scheduler_.now() - before);
  stats_.busy_seconds += batch_seconds;
  batch_latency_us_.record(batch_seconds * 1e6);
  return next_handle_++;
}

void FpgaSimEngine::wait(BatchHandle handle) {
  SPNHBM_REQUIRE(handle > last_completed_ && handle < next_handle_,
                 "wait on unknown or already-completed batch handle");
  last_completed_ = handle;
}

double FpgaSimEngine::measure_throughput(std::uint64_t sample_count) {
  const auto stats = runtime_.run(sample_count);
  stats_.batches += stats.blocks;
  stats_.samples += stats.samples;
  stats_.busy_seconds += to_seconds(stats.elapsed);
  return stats.samples_per_second;
}

}  // namespace spnhbm::engine
