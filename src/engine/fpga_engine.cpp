#include "spnhbm/engine/fpga_engine.hpp"

#include <atomic>
#include <utility>

#include "spnhbm/fpga/resource_model.hpp"
#include "spnhbm/model/tuning.hpp"
#include "spnhbm/util/log.hpp"
#include "spnhbm/util/strings.hpp"

namespace spnhbm::engine {

namespace {

tapasco::CompositionConfig make_composition(
    const compiler::DatapathModule& module, const arith::ArithBackend& backend,
    const FpgaEngineConfig& config) {
  if (config.pe_count < 0) {
    throw ConfigError("FpgaEngineConfig::pe_count must be >= 0, got " +
                      std::to_string(config.pe_count));
  }
  tapasco::CompositionConfig composition;
  composition.platform = config.platform;
  composition.pe_count =
      config.pe_count > 0
          ? config.pe_count
          : fpga::max_placeable_pes(module, backend.kind(), config.platform);
  composition.memory_channels = config.memory_channels;
  composition.hbm_crossbar = config.hbm_crossbar;
  composition.hbm_pes_per_channel =
      config.hbm_pes_per_channel > 0 ? config.hbm_pes_per_channel : 1;
  composition.pcie_generation = config.pcie_generation;
  composition.compute_results = config.compute_results;
  composition.skip_placement_check = config.skip_placement_check;
  composition.dma_failure_rate = config.dma_failure_rate;
  return composition;
}

runtime::RuntimeConfig make_runtime_config(const FpgaEngineConfig& config) {
  runtime::RuntimeConfig rc;
  if (config.block_samples > 0) rc.block_samples = config.block_samples;
  rc.threads_per_pe = config.threads_per_pe;
  rc.include_transfers = config.include_transfers;
  return rc;
}

/// Folds the artifact's attached tuning manifest (when present) into the
/// engine config: the manifest supplies the device-level knobs the caller
/// left open. Explicit config values win over the manifest; pe_count is
/// deliberately *not* taken here — placement is the caller's decision
/// (CLI --pes, FleetRouter pe_slots), and both apply the tuned PE count
/// themselves where it can be deficit-checked.
FpgaEngineConfig with_model_tuning(FpgaEngineConfig config,
                                   const model::ModelArtifact& artifact) {
  const auto tuning = artifact.tuning();
  if (tuning == nullptr) return config;
  if (config.block_samples == 0) {
    config.block_samples = tuning->config.block_samples;
  }
  if (config.hbm_pes_per_channel == 0) {
    config.hbm_pes_per_channel = tuning->config.hbm_pes_per_channel;
    config.hbm_crossbar = tuning->config.hbm_crossbar;
  }
  return config;
}

/// Device bytes of one PE's lookup-table image in the artifact's format.
std::uint64_t table_image_bytes(const model::ModelArtifact& artifact) {
  const std::uint64_t value_bytes =
      (static_cast<std::uint64_t>(artifact.backend().width_bits()) + 7) / 8;
  std::uint64_t bytes = 0;
  for (const auto& table : artifact.module().tables()) {
    bytes += table.probability_by_byte.size() * value_bytes;
  }
  return bytes;
}

}  // namespace

FpgaSimEngine::FpgaSimEngine(ModelHandle model, FpgaEngineConfig config)
    : model_(std::move(model)), config_(config), runner_(scheduler_) {
  SPNHBM_REQUIRE(model_ != nullptr, "FpgaSimEngine requires a model");
  SPNHBM_REQUIRE(config_.partition_bitstream_fraction <= 1.0,
                 "partition cannot exceed the whole bitstream");
  // One virtual-clock track per card instance: engine-level infer windows
  // and reconfiguration stalls land here, between the server's wall-clock
  // batch span above and the HBM/DMA spans below.
  static std::atomic<std::uint64_t> next_engine_ordinal{0};
  std::string track_label =
      "fpga/e" + std::to_string(next_engine_ordinal.fetch_add(1));
  if (!config_.partition_label.empty()) {
    track_label += " @" + config_.partition_label;
  }
  track_ = telemetry::tracer().register_track(track_label,
                                              telemetry::TraceClock::kVirtual);
  // config_ stays the caller's raw request; the artifact's tuning fills
  // the open knobs per composed design (activate() re-folds against the
  // incoming model, so one model's tuning never leaks onto another).
  const FpgaEngineConfig effective = with_model_tuning(config_, *model_);
  device_ = std::make_unique<tapasco::Device>(
      runner_, model_->module(), model_->backend(),
      make_composition(model_->module(), model_->backend(), effective));
  runtime_ = std::make_unique<runtime::InferenceRuntime>(
      runner_, *device_, model_->module(), make_runtime_config(effective));
  if (config_.charge_initial_program) {
    const Picoseconds charged = program_and_stage(*device_, *runtime_, *model_);
    stats_.reconfigurations += 1;
    stats_.reconfiguration_seconds += to_seconds(charged);
  }
  refresh_capabilities();
}

FpgaSimEngine::FpgaSimEngine(const compiler::DatapathModule& module,
                             const arith::ArithBackend& backend,
                             FpgaEngineConfig config)
    : FpgaSimEngine(model::ModelArtifact::wrap("default", module, backend),
                    config) {}

void FpgaSimEngine::refresh_capabilities() {
  capabilities_.name = strformat(
      "fpga-sim/%s x%zu",
      config_.platform == fpga::Platform::kF1 ? "f1" : "hbm",
      device_->pe_count());
  if (!config_.partition_label.empty()) {
    capabilities_.name += " @" + config_.partition_label;
  }
  capabilities_.input_features = model_->module().input_features();
  capabilities_.functional = config_.compute_results;
  // Compute ceiling of the composed design: one sample per PE clock per PE
  // (II = 1). The server replaces this with measured throughput as soon as
  // batches complete.
  capabilities_.nominal_throughput =
      static_cast<double>(device_->pe_count()) * fpga::cal::kPeClockHz /
      compiler::DatapathModule::initiation_interval();
  capabilities_.preferred_batch_samples = runtime_->config().block_samples;
}

Picoseconds FpgaSimEngine::program_and_stage(
    tapasco::Device& device, runtime::InferenceRuntime& runtime,
    const model::ModelArtifact& artifact) {
  // Reprogram in virtual time: the bitstream streams through the ICAP —
  // the whole device's, or only this tenant's partition share when the
  // engine is partitioned (partial reconfiguration) — then every PE's
  // lookup-table image is staged into its memory channel over the real
  // DMA path (same dma_and_channel pipeline batches use, so the cost
  // scales with the artifact, not a constant).
  const Picoseconds before = scheduler_.now();
  double bitstream_bytes = config_.platform == fpga::Platform::kF1
                               ? fpga::cal::kBitstreamBytesF1
                               : fpga::cal::kBitstreamBytesHbm;
  if (config_.partition_bitstream_fraction > 0.0) {
    bitstream_bytes *= config_.partition_bitstream_fraction;
  }
  const Picoseconds program_time = static_cast<Picoseconds>(
      bitstream_bytes / fpga::cal::kIcapBytesPerSecond *
      static_cast<double>(kPicosecondsPerSecond));
  const std::uint64_t table_bytes = table_image_bytes(artifact);
  tapasco::Device* staged_device = &device;
  runtime::InferenceRuntime* staged = &runtime;
  runner_.spawn([this, staged_device, staged, program_time,
                 table_bytes]() -> sim::Process {
    co_await sim::delay(scheduler_, program_time);
    for (std::size_t pe = 0; pe < staged_device->pe_count(); ++pe) {
      if (table_bytes == 0) continue;
      runtime::DeviceBuffer image(staged->memory(), pe, table_bytes);
      co_await staged_device->copy_to_device_timed(pe, image.address(),
                                                   table_bytes);
    }
  });
  scheduler_.run();
  runner_.check();
  // The reconfiguration stall is a first-class span: requests queued
  // behind a hot-swap show matching lane_queue growth on the wall clock.
  telemetry::tracer().complete_virtual(track_, "reconfigure", before,
                                       scheduler_.now());
  return scheduler_.now() - before;
}

void FpgaSimEngine::activate(ModelHandle next) {
  SPNHBM_REQUIRE(next != nullptr, "activate requires a model");
  // Compose the next design first: a placement (or composition) failure
  // must leave the current model serving untouched.
  const FpgaEngineConfig effective = with_model_tuning(config_, *next);
  auto device = std::make_unique<tapasco::Device>(
      runner_, next->module(), next->backend(),
      make_composition(next->module(), next->backend(), effective));
  auto staged_runtime = std::make_unique<runtime::InferenceRuntime>(
      runner_, *device, next->module(), make_runtime_config(effective));

  const Picoseconds reconfiguration =
      program_and_stage(*device, *staged_runtime, *next);

  // Swap: the old runtime (which references the old device) dies first.
  runtime_ = std::move(staged_runtime);
  device_ = std::move(device);
  model_ = std::move(next);
  refresh_capabilities();
  stats_.reconfigurations += 1;
  stats_.reconfiguration_seconds += to_seconds(reconfiguration);
}

BatchHandle FpgaSimEngine::submit(std::span<const std::uint8_t> samples,
                                  std::span<double> results) {
  const std::size_t count = check_batch(samples, results);
  // The DES completes the job inside submit; wait() is the barrier that
  // hands the handle back.
  const Picoseconds before = scheduler_.now();
  const auto probabilities = runtime_->infer(samples);
  std::copy(probabilities.begin(), probabilities.end(), results.begin());
  telemetry::tracer().complete_virtual(track_, "infer", before,
                                       scheduler_.now());
  if (const std::uint64_t trace_id = current_trace_id()) {
    telemetry::tracer().flow_virtual(track_, "request", 't', trace_id, before);
  }
  stats_.batches += 1;
  stats_.samples += count;
  const double batch_seconds = to_seconds(scheduler_.now() - before);
  stats_.busy_seconds += batch_seconds;
  batch_latency_us_.record(batch_seconds * 1e6);
  return next_handle_++;
}

BatchHandle FpgaSimEngine::submit_sparse(std::span<const std::uint8_t> stream,
                                         std::size_t sample_count,
                                         std::span<double> results) {
  check_sparse_batch(stream, sample_count, results);
  const Picoseconds before = scheduler_.now();
  const auto values = runtime_->infer_sparse(stream, sample_count);
  std::copy(values.begin(), values.end(), results.begin());
  telemetry::tracer().complete_virtual(track_, "infer_sparse", before,
                                       scheduler_.now());
  if (const std::uint64_t trace_id = current_trace_id()) {
    telemetry::tracer().flow_virtual(track_, "request", 't', trace_id, before);
  }
  stats_.batches += 1;
  stats_.samples += sample_count;
  const double batch_seconds = to_seconds(scheduler_.now() - before);
  stats_.busy_seconds += batch_seconds;
  batch_latency_us_.record(batch_seconds * 1e6);
  return next_handle_++;
}

void FpgaSimEngine::wait(BatchHandle handle) {
  SPNHBM_REQUIRE(handle > last_completed_ && handle < next_handle_,
                 "wait on unknown or already-completed batch handle");
  last_completed_ = handle;
}

double FpgaSimEngine::measure_throughput(std::uint64_t sample_count) {
  const auto stats = runtime_->run(sample_count);
  stats_.batches += stats.blocks;
  stats_.samples += stats.samples;
  stats_.busy_seconds += to_seconds(stats.elapsed);
  return stats.samples_per_second;
}

}  // namespace spnhbm::engine
