#include "spnhbm/engine/gpu_engine.hpp"

namespace spnhbm::engine {

GpuModelEngine::GpuModelEngine(const compiler::DatapathModule& module,
                               gpu::GpuModelConfig config)
    : module_(module),
      model_(std::move(config)),
      f64_(arith::make_float64_backend()) {
  capabilities_.name = "gpu-model/" + model_.config().name;
  capabilities_.input_features = module.input_features();
  capabilities_.functional = true;
  capabilities_.nominal_throughput = model_.throughput(module);
  capabilities_.preferred_batch_samples =
      static_cast<std::size_t>(model_.config().batch_samples);
}

BatchHandle GpuModelEngine::submit(std::span<const std::uint8_t> samples,
                                   std::span<double> results) {
  const std::size_t count = check_batch(samples, results);
  const std::size_t features = capabilities_.input_features;
  for (std::size_t i = 0; i < count; ++i) {
    results[i] = module_.evaluate(*f64_, samples.subspan(i * features,
                                                         features));
  }
  stats_.batches += 1;
  stats_.samples += count;
  const double batch_seconds =
      to_seconds(model_.batch_breakdown(module_, count).total());
  stats_.busy_seconds += batch_seconds;
  batch_latency_us_.record(batch_seconds * 1e6);
  return next_handle_++;
}

void GpuModelEngine::wait(BatchHandle handle) {
  SPNHBM_REQUIRE(handle > last_completed_ && handle < next_handle_,
                 "wait on unknown or already-completed batch handle");
  last_completed_ = handle;
}

double GpuModelEngine::measure_throughput(std::uint64_t sample_count) {
  const double rate = model_.throughput(module_, sample_count);
  stats_.batches += 1;
  stats_.samples += sample_count;
  stats_.busy_seconds += static_cast<double>(sample_count) / rate;
  return rate;
}

}  // namespace spnhbm::engine
