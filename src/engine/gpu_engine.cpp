#include "spnhbm/engine/gpu_engine.hpp"

#include <utility>

#include "spnhbm/compiler/sparse_evidence.hpp"

namespace spnhbm::engine {

GpuModelEngine::GpuModelEngine(ModelHandle artifact, gpu::GpuModelConfig config)
    : artifact_(std::move(artifact)),
      model_(std::move(config)),
      f64_(arith::make_float64_backend()) {
  SPNHBM_REQUIRE(artifact_ != nullptr, "GpuModelEngine requires a model");
  refresh_capabilities();
}

GpuModelEngine::GpuModelEngine(const compiler::DatapathModule& module,
                               gpu::GpuModelConfig config)
    : GpuModelEngine(model::ModelArtifact::wrap("default", module,
                                                arith::make_float64_backend()),
                     std::move(config)) {}

void GpuModelEngine::refresh_capabilities() {
  capabilities_.name = "gpu-model/" + model_.config().name;
  capabilities_.input_features = artifact_->module().input_features();
  capabilities_.functional = true;
  capabilities_.nominal_throughput = model_.throughput(artifact_->module());
  capabilities_.preferred_batch_samples =
      static_cast<std::size_t>(model_.config().batch_samples);
}

void GpuModelEngine::activate(ModelHandle next) {
  SPNHBM_REQUIRE(next != nullptr, "activate requires a model");
  SPNHBM_REQUIRE(last_completed_ + 1 == next_handle_,
                 "activate with batches in flight");
  artifact_ = std::move(next);
  refresh_capabilities();
  stats_.reconfigurations += 1;  // host-side swap: no device time charged
}

BatchHandle GpuModelEngine::submit(std::span<const std::uint8_t> samples,
                                   std::span<double> results) {
  const std::size_t count = check_batch(samples, results);
  const std::size_t features = capabilities_.input_features;
  const compiler::DatapathModule& module = artifact_->module();
  for (std::size_t i = 0; i < count; ++i) {
    results[i] = module.evaluate(*f64_, samples.subspan(i * features,
                                                        features));
  }
  stats_.batches += 1;
  stats_.samples += count;
  const double batch_seconds =
      to_seconds(model_.batch_breakdown(module, count).total());
  stats_.busy_seconds += batch_seconds;
  batch_latency_us_.record(batch_seconds * 1e6);
  return next_handle_++;
}

BatchHandle GpuModelEngine::submit_sparse(std::span<const std::uint8_t> stream,
                                          std::size_t sample_count,
                                          std::span<double> results) {
  check_sparse_batch(stream, sample_count, results);
  const compiler::DatapathModule& module = artifact_->module();
  const compiler::SparseBatch batch = compiler::decode_sparse(
      stream, module.input_features(), sample_count);
  for (std::size_t i = 0; i < sample_count; ++i) {
    results[i] =
        module.evaluate(*f64_, batch.view(i, module.default_evidence()));
  }
  stats_.batches += 1;
  stats_.samples += sample_count;
  const double batch_seconds =
      to_seconds(model_.batch_breakdown(module, sample_count).total());
  stats_.busy_seconds += batch_seconds;
  batch_latency_us_.record(batch_seconds * 1e6);
  return next_handle_++;
}

void GpuModelEngine::wait(BatchHandle handle) {
  SPNHBM_REQUIRE(handle > last_completed_ && handle < next_handle_,
                 "wait on unknown or already-completed batch handle");
  last_completed_ = handle;
}

double GpuModelEngine::measure_throughput(std::uint64_t sample_count) {
  const double rate = model_.throughput(artifact_->module(), sample_count);
  stats_.batches += 1;
  stats_.samples += sample_count;
  stats_.busy_seconds += static_cast<double>(sample_count) / rate;
  return rate;
}

}  // namespace spnhbm::engine
