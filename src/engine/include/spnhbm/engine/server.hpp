// Async batching request scheduler over N registered inference engines.
//
// Clients submit() independent requests of any sample count; the server
//   * queues them, bounded: once queued + in-flight samples reach
//     ServerConfig::max_queue_samples, submit() blocks (backpressure) and
//     try_submit() rejects,
//   * coalesces adjacent requests into engine batches of up to
//     batch_samples, flushing a partial batch once the oldest queued
//     request has waited max_latency (the tail-latency bound),
//   * dispatches batches across the registered engines round-robin or by
//     least expected completion time (outstanding work divided by
//     measured throughput, falling back to the engine's nominal claim),
//   * scatters batch results back into per-request futures; a request
//     split across batches — possibly landing on different engines —
//     resolves when its last slice completes.
//
// Threading model: one dispatcher thread forms batches; one worker thread
// per engine drives submit()/wait(), so an engine never sees concurrent
// calls. Requests may be queued before start(); they are dispatched as
// soon as the threads run, which also gives tests a deterministic
// coalescing path (queue everything, then start + stop).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "spnhbm/engine/engine.hpp"
#include "spnhbm/telemetry/trace.hpp"

namespace spnhbm::engine {

enum class DispatchPolicy {
  kRoundRobin,
  /// Least expected completion time: (outstanding + batch) / throughput.
  kLeastLoaded,
};

struct ServerConfig {
  /// Coalescing target per dispatched batch. 0 = the smallest
  /// preferred_batch_samples over the registered engines.
  std::size_t batch_samples = 0;
  /// Backpressure bound on queued + in-flight samples.
  std::size_t max_queue_samples = 1 << 16;
  /// A partial batch is flushed once its oldest request has waited this
  /// long.
  std::chrono::microseconds max_latency{1000};
  DispatchPolicy policy = DispatchPolicy::kRoundRobin;
};

struct ServerStats {
  std::uint64_t requests = 0;
  std::uint64_t rejected = 0;
  std::uint64_t batches = 0;
  std::uint64_t samples = 0;
  /// Batches flushed below the coalescing target by the latency deadline.
  std::uint64_t deadline_flushes = 0;
  std::size_t peak_outstanding_samples = 0;
  /// Wall time a request spends queued before its first slice dispatches.
  telemetry::HistogramSnapshot queue_wait_us;
  /// Wall time from enqueue to the last slice completing (end-to-end).
  telemetry::HistogramSnapshot request_latency_us;
  /// Samples per dispatched batch (the coalescing payoff, as a
  /// distribution; mean_batch_samples() is its mean).
  telemetry::HistogramSnapshot batch_fill_samples;

  /// Average samples per dispatched batch (the coalescing payoff).
  double mean_batch_samples() const {
    return batches > 0 ? static_cast<double>(samples) /
                             static_cast<double>(batches)
                       : 0.0;
  }
  std::string describe() const;
};

class InferenceServer {
 public:
  explicit InferenceServer(ServerConfig config = {});
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Registers a backend. All engines must be functional, agree on
  /// input_features, and be registered before start().
  void register_engine(std::shared_ptr<InferenceEngine> engine);

  std::size_t engine_count() const { return workers_.size(); }
  const InferenceEngine& engine(std::size_t index) const {
    return *workers_[index]->engine;
  }
  /// Samples dispatched to engine `index` so far.
  std::uint64_t dispatched_samples(std::size_t index) const;

  void start();
  /// Drains every queued request, then stops all threads. Idempotent; the
  /// destructor calls it.
  void stop();

  /// Blocking submit: applies backpressure by waiting for queue space.
  /// `samples` is rows of input_features bytes; the future resolves to one
  /// probability per row (or rethrows the engine's failure).
  std::future<std::vector<double>> submit(std::vector<std::uint8_t> samples);

  /// Non-blocking submit: returns std::nullopt when the queue bound would
  /// be exceeded.
  std::optional<std::future<std::vector<double>>> try_submit(
      std::vector<std::uint8_t> samples);

  /// Queued + in-flight samples (the backpressure quantity).
  std::size_t outstanding_samples() const;
  std::size_t input_features() const { return input_features_; }
  std::size_t batch_samples() const { return batch_samples_; }
  ServerStats stats() const;

 private:
  struct PendingRequest {
    std::vector<std::uint8_t> samples;
    std::vector<double> results;
    std::promise<std::vector<double>> promise;
    std::chrono::steady_clock::time_point enqueue_time;
    std::size_t count = 0;      ///< total samples in the request
    std::size_t cursor = 0;     ///< next sample to dispatch
    std::size_t remaining = 0;  ///< samples not yet completed
    std::exception_ptr error;
  };

  struct BatchSlice {
    std::shared_ptr<PendingRequest> request;
    std::size_t request_offset = 0;
    std::size_t batch_offset = 0;
    std::size_t count = 0;
  };

  struct Batch {
    std::vector<std::uint8_t> samples;
    std::vector<double> results;
    std::vector<BatchSlice> slices;
    std::size_t sample_count = 0;
  };

  struct Worker {
    std::shared_ptr<InferenceEngine> engine;
    std::thread thread;
    std::deque<Batch> queue;
    std::condition_variable cv;
    /// Dispatch accounting, guarded by the server mutex (the worker is the
    /// only thread that calls into the engine itself).
    std::size_t outstanding_samples = 0;
    std::uint64_t dispatched_samples = 0;
    std::uint64_t completed_samples = 0;
    double busy_seconds = 0.0;
    double nominal_throughput = 0.0;
    telemetry::TrackId track = 0;
  };

  std::future<std::vector<double>> enqueue_locked(
      std::unique_lock<std::mutex>& lock, std::vector<std::uint8_t> samples);
  Batch form_batch_locked();
  std::size_t pick_engine_locked(std::size_t batch_sample_count);
  void dispatch_batch_locked(Batch batch);
  void complete_slice_locked(const BatchSlice& slice);
  void dispatcher_loop();
  void worker_loop(Worker& worker);

  ServerConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable cv_dispatch_;
  std::condition_variable cv_space_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::deque<std::shared_ptr<PendingRequest>> queue_;
  std::thread dispatcher_;
  ServerStats stats_;
  /// Owned latency histograms; also published into the global registry via
  /// attach_histogram, so --metrics-out always shows the live server.
  std::shared_ptr<telemetry::Histogram> queue_wait_us_;
  std::shared_ptr<telemetry::Histogram> request_latency_us_;
  std::shared_ptr<telemetry::Histogram> batch_fill_samples_;
  std::shared_ptr<telemetry::Counter> ctr_requests_;
  std::shared_ptr<telemetry::Counter> ctr_rejected_;
  std::shared_ptr<telemetry::Counter> ctr_batches_;
  std::shared_ptr<telemetry::Counter> ctr_samples_;
  std::shared_ptr<telemetry::Counter> ctr_deadline_flushes_;
  telemetry::TrackId dispatcher_track_ = 0;
  std::size_t input_features_ = 0;
  std::size_t batch_samples_ = 0;
  std::size_t queued_samples_ = 0;
  std::size_t outstanding_samples_ = 0;
  std::size_t round_robin_next_ = 0;
  bool started_ = false;
  bool stopping_ = false;
  bool workers_stopping_ = false;
  bool stopped_ = false;
};

}  // namespace spnhbm::engine
