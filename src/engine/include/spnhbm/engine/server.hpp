// Async batching request scheduler over N registered inference engines,
// with self-healing, model-routed dispatch.
//
// Clients submit() independent requests of any sample count against a
// named model; the server
//   * queues them per model (a "lane"), bounded: once queued + in-flight
//     samples reach ServerConfig::max_queue_samples, submit() blocks
//     (backpressure) and try_submit() rejects,
//   * coalesces adjacent same-model requests into engine batches of up to
//     batch_samples — batches never mix models — flushing a partial batch
//     once the oldest queued request of its lane has waited max_latency
//     (the tail-latency bound),
//   * dispatches batches across the engines currently serving that model,
//     round-robin or by least expected completion time (outstanding work
//     divided by measured throughput, falling back to the engine's
//     nominal claim),
//   * scatters batch results back into per-request futures; a request
//     split across batches — possibly landing on different engines —
//     resolves when its last slice completes.
//
// Multi-model serving: every engine announces the ModelArtifact it hosts
// (InferenceEngine::loaded_model()); registering engines for different
// artifacts makes the server host several models at once, each with its
// own input width, queue lane, stats and telemetry counters. activate()
// hot-swaps one engine onto another artifact: the worker finishes its
// in-flight batches, then runs the engine's own reconfiguration (the FPGA
// simulation charges virtual bitstream + table-staging time and re-checks
// placement) while the rest of the fleet keeps serving. Work queued for a
// model whose last engine leaves resolves with RuntimeApiError.
//
// Self-healing (the fault-tolerance layer over the same machinery):
//   * a failed batch is retried up to RetryPolicy::max_attempts times with
//     capped exponential backoff and deterministic jitter, preferring a
//     *different* engine of the same model on the retry (failover); only
//     when the budget is exhausted does the failure reach the affected
//     request futures — and only those futures (per-slice error tracking),
//   * every engine runs a health state machine healthy -> degraded ->
//     quarantined driven by consecutive failures; a quarantined engine
//     receives no regular traffic but is re-tried with single
//     circuit-breaker probe batches at growing intervals, and one probe
//     success readmits it,
//   * engines register with a priority tier: dispatch uses the best
//     (lowest) tier with a non-quarantined engine of the batch's model,
//     so quarantining every preferred engine degrades gracefully onto the
//     fallback tier,
//   * with ServerConfig::request_timeout set, every request carries a
//     deadline; an expired request resolves its future with
//     DeadlineExceededError (undispatched samples are cancelled, in-flight
//     work completes and is discarded),
//   * when every engine of the addressed model is quarantined and no probe
//     can run yet, submit()/try_submit() fail fast with
//     NoHealthyEngineError instead of queueing work that cannot be served.
//
// Dynamic membership (the spatial-multi-tenancy hook): engines can be
// registered while the server runs — the worker thread spawns on the
// spot and the model's lane opens immediately — and retired again with
// retire_engine(), which drains the engine's in-flight batches and hands
// the engine back (so a fleet can evict the corresponding device tenant).
// Several co-registered engines may live on the *same* physical device in
// different partitions (FpgaSimDevice tenants): each still gets its own
// worker thread, so contention is per-partition, not per-device, exactly
// matching the disjoint-channel hardware model underneath.
//
// Threading model: one dispatcher thread forms batches, re-dispatches
// retries and expires deadlines; one worker thread per engine drives
// submit()/wait()/activate(), so an engine never sees concurrent calls.
// Requests may be queued before start(); they are dispatched as soon as
// the threads run, which also gives tests a deterministic coalescing path
// (queue everything, then start + stop). stop() drains every queued
// request — including pending retries and activations — before joining
// the threads.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "spnhbm/engine/engine.hpp"
#include "spnhbm/engine/service.hpp"
#include "spnhbm/telemetry/trace.hpp"
#include "spnhbm/util/rng.hpp"

namespace spnhbm::engine {

/// A request's deadline passed before its results were ready. The samples
/// may still be processed (in-flight work is not interrupted); only the
/// future resolves early.
class DeadlineExceededError : public Error {
 public:
  explicit DeadlineExceededError(const std::string& what)
      : Error("deadline exceeded: " + what) {}
};

/// Every engine of the addressed model is quarantined and no
/// circuit-breaker probe is due, so newly submitted work could not be
/// served. Fail-fast signal: the client should back off and retry.
class NoHealthyEngineError : public Error {
 public:
  explicit NoHealthyEngineError(const std::string& what)
      : Error("no healthy engine: " + what) {}
};

enum class DispatchPolicy {
  kRoundRobin,
  /// Least expected completion time: (outstanding + batch) / throughput.
  kLeastLoaded,
};

/// Per-engine health as seen by the dispatcher.
enum class EngineHealth {
  kHealthy,
  /// Recent consecutive failures, still in the dispatch rotation (with an
  /// ETA penalty under kLeastLoaded).
  kDegraded,
  /// Out of the rotation; only periodic probe batches reach it until one
  /// succeeds.
  kQuarantined,
};
std::string to_string(EngineHealth health);

/// Per-batch retry behaviour on engine failure.
struct RetryPolicy {
  /// Total executions per batch (1 = no retry).
  int max_attempts = 3;
  /// Backoff before retry k is base * multiplier^(k-1), capped, then
  /// jittered deterministically into [delay*(1-jitter), delay).
  std::chrono::microseconds backoff_base{100};
  double backoff_multiplier = 2.0;
  std::chrono::microseconds backoff_cap{5000};
  double jitter = 0.25;
  /// Seed of the jitter stream (no wall-clock entropy anywhere).
  std::uint64_t seed = 0x5eed;
};

/// Health state machine thresholds and circuit-breaker probe cadence.
struct HealthPolicy {
  /// Consecutive failures before an engine is marked degraded.
  int degraded_after = 1;
  /// Consecutive failures before an engine is quarantined.
  int quarantine_after = 3;
  /// Delay before the first probe of a quarantined engine; each failed
  /// probe multiplies the interval, up to the cap.
  std::chrono::microseconds probe_interval{5000};
  double probe_backoff_multiplier = 2.0;
  std::chrono::microseconds probe_interval_cap{500000};
};

struct ServerConfig {
  /// Coalescing target per dispatched batch. 0 = the smallest
  /// preferred_batch_samples over the registered engines.
  std::size_t batch_samples = 0;
  /// Backpressure bound on queued + in-flight samples (across all models).
  std::size_t max_queue_samples = 1 << 16;
  /// A partial batch is flushed once its oldest request has waited this
  /// long.
  std::chrono::microseconds max_latency{1000};
  DispatchPolicy policy = DispatchPolicy::kRoundRobin;
  /// Per-request deadline from enqueue to completion; 0 = no deadline.
  std::chrono::microseconds request_timeout{0};
  RetryPolicy retry;
  HealthPolicy health;
};

/// Per-model serving totals (one entry per model id ever served).
struct ModelServingStats {
  std::uint64_t requests = 0;
  std::uint64_t samples = 0;
  std::uint64_t batches = 0;
  std::uint64_t failed_requests = 0;
  /// Effective coalescing target of the model's lane: the tuned per-lane
  /// batch size when its artifact carries a TuningManifest, the
  /// server-wide target otherwise (0 until the lane exists).
  std::size_t batch_samples = 0;
};

struct ServerStats {
  std::uint64_t requests = 0;
  std::uint64_t rejected = 0;
  std::uint64_t batches = 0;
  std::uint64_t samples = 0;
  /// Batches flushed below the coalescing target by the latency deadline.
  std::uint64_t deadline_flushes = 0;
  std::size_t peak_outstanding_samples = 0;
  // --- Self-healing accounting -------------------------------------------
  /// Batch executions that failed and were re-dispatched.
  std::uint64_t batch_retries = 0;
  /// Retries that landed on a different engine than the failed attempt.
  std::uint64_t failovers = 0;
  /// healthy/degraded -> quarantined transitions.
  std::uint64_t quarantines = 0;
  /// Circuit-breaker probe batches sent to quarantined engines.
  std::uint64_t probes = 0;
  /// Quarantined engines readmitted after a successful batch.
  std::uint64_t readmissions = 0;
  /// Requests resolved with DeadlineExceededError.
  std::uint64_t deadline_expirations = 0;
  /// Requests resolved with an engine error after the retry budget (or a
  /// dead model lane).
  std::uint64_t failed_requests = 0;
  // --- Multi-model accounting --------------------------------------------
  /// Completed engine hot-swaps (InferenceServer::activate).
  std::uint64_t activations = 0;
  /// Hot-swaps that failed (e.g. placement); the engine kept its model.
  std::uint64_t failed_activations = 0;
  std::map<std::string, ModelServingStats> per_model;
  /// Wall time a request spends queued before its first slice dispatches.
  telemetry::HistogramSnapshot queue_wait_us;
  /// Wall time from enqueue to the last slice completing (end-to-end).
  telemetry::HistogramSnapshot request_latency_us;
  /// Samples per dispatched batch (the coalescing payoff, as a
  /// distribution; mean_batch_samples() is its mean).
  telemetry::HistogramSnapshot batch_fill_samples;

  /// Average samples per dispatched batch (the coalescing payoff).
  double mean_batch_samples() const {
    return batches > 0 ? static_cast<double>(samples) /
                             static_cast<double>(batches)
                       : 0.0;
  }
  std::string describe() const;
};

class InferenceServer : public InferenceService {
 public:
  explicit InferenceServer(ServerConfig config = {});
  ~InferenceServer() override;

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Registers a backend for the model it has loaded and returns its
  /// stable engine index. All engines must be functional; engines serving
  /// the same model id must agree on input_features. `priority` is the
  /// failover tier: dispatch prefers the lowest tier that still has a
  /// non-quarantined engine of the batch's model (0 = most preferred).
  /// `device` labels the physical device (or device/partition) the engine
  /// lives on, for grouping in stats and fleet bookkeeping. Engines may
  /// be registered while the server is running: the worker thread spawns
  /// immediately and the engine's model lane opens for traffic.
  std::size_t register_engine(std::shared_ptr<InferenceEngine> engine,
                              int priority = 0, std::string device = "");

  /// Removes engine `index` from dispatch, drains its in-flight batches
  /// on its own worker thread, joins the thread and returns the engine
  /// (so the caller can evict its device tenant). Indices stay stable:
  /// the slot remains, marked retired. Queued work of a model whose last
  /// engine retires fails with RuntimeApiError (same as hot-swapping the
  /// last engine away). Throws RuntimeApiError for a bad index, an
  /// already-retired engine, or one with a pending activation.
  /// Control-plane calls (register_engine/retire_engine/activate/stop)
  /// must be serialised by the caller; the data plane (submit/try_submit/
  /// stats) may run concurrently with them.
  std::shared_ptr<InferenceEngine> retire_engine(std::size_t index);

  /// Registered engine slots, including retired ones (indices are stable
  /// across retire_engine).
  std::size_t engine_count() const { return workers_.size(); }
  /// True when engine `index` has been retired. Throws RuntimeApiError
  /// when `index` is out of range.
  bool engine_retired(std::size_t index) const;
  /// Device label given at registration ("" when none). Throws
  /// RuntimeApiError when `index` is out of range.
  std::string engine_device(std::size_t index) const;
  /// Throws RuntimeApiError when `index` is out of range.
  const InferenceEngine& engine(std::size_t index) const;
  /// Samples dispatched to engine `index` so far (retries re-count).
  /// Throws RuntimeApiError when `index` is out of range.
  std::uint64_t dispatched_samples(std::size_t index) const;
  /// Current health of engine `index`. Throws RuntimeApiError when
  /// `index` is out of range.
  EngineHealth engine_health(std::size_t index) const;
  /// Model id engine `index` currently serves (or is activating towards).
  /// Throws RuntimeApiError when `index` is out of range.
  std::string engine_model(std::size_t index) const;

  void start();
  /// Drains every queued request — retrying/failing over as configured —
  /// then stops all threads. Idempotent; the destructor calls it.
  void stop();

  /// Blocking submit against the server's sole model: applies backpressure
  /// by waiting for queue space. `samples` is rows of the model's
  /// input_features bytes; the future resolves to one probability per row
  /// (or rethrows the engine's failure / a deadline error). Throws
  /// RuntimeApiError before any engine is registered, after stop(), or
  /// when more than one model is served (use the model overload), and
  /// NoHealthyEngineError while every engine of the model is quarantined.
  std::future<std::vector<double>> submit(std::vector<std::uint8_t> samples);

  /// Blocking submit against a named model ("name@version", bare name when
  /// unambiguous). Throws RuntimeApiError for unknown/ambiguous models.
  std::future<std::vector<double>> submit(const std::string& model,
                                          std::vector<std::uint8_t> samples);

  /// Non-blocking submits: return std::nullopt when the queue bound would
  /// be exceeded. Same fail-fast errors as submit().
  std::optional<std::future<std::vector<double>>> try_submit(
      std::vector<std::uint8_t> samples);
  std::optional<std::future<std::vector<double>>> try_submit(
      const std::string& model, std::vector<std::uint8_t> samples) override;
  /// Trace-carrying variant: the context is attached to the pending
  /// request, stamped on its lane-queue/batch spans and published to the
  /// engine thread while the batch executes.
  std::optional<std::future<std::vector<double>>> try_submit(
      const std::string& model, std::vector<std::uint8_t> samples,
      const telemetry::TraceContext& trace) override;
  /// Non-blocking sparse submit: `stream` is the CSR evidence stream for
  /// `sample_count` samples. The stream is validated at this front door
  /// (a malformed one throws ParseError here, never inside an engine
  /// where it would read as an engine fault and trip the health
  /// machinery). A sparse request is dispatched as one indivisible batch:
  /// the stream is not sliceable at sample granularity without
  /// re-encoding, so it is never coalesced with other requests.
  std::optional<std::future<std::vector<double>>> try_submit_sparse(
      const std::string& model, std::vector<std::uint8_t> stream,
      std::size_t sample_count,
      const telemetry::TraceContext& trace = {}) override;

  /// Per-engine health lines for the admin plane.
  std::string health_text() const override;

  /// Hot-swaps engine `index` onto `next`: the worker finishes its queued
  /// batches, then runs InferenceEngine::activate on its own thread (an
  /// FPGA engine charges simulated reconfiguration time there). Requests
  /// for the incoming model may be submitted immediately — they queue in
  /// its lane until the swap completes. The returned future resolves when
  /// the swap finished, or carries the engine's error (the old model then
  /// keeps serving). Throws RuntimeApiError for a bad index, a null
  /// handle, a swap already pending on the engine, or a server that is
  /// not running.
  std::future<void> activate(std::size_t index, ModelHandle next);

  /// Model ids currently served (including activation targets), sorted.
  std::vector<std::string> served_models() const override;

  /// Queued + in-flight samples (the backpressure quantity).
  std::size_t outstanding_samples() const override;
  /// Input width of the server's sole model (0 before registration).
  /// Throws RuntimeApiError when more than one model is served.
  std::size_t input_features() const;
  /// Input width of a named model; throws RuntimeApiError when unknown.
  std::size_t input_features(const std::string& model) const override;
  std::size_t batch_samples() const { return batch_samples_; }
  /// Effective coalescing target of a named model's lane (tuned per-lane
  /// override or the server-wide target). Throws RuntimeApiError for
  /// unknown/ambiguous models.
  std::size_t batch_samples(const std::string& model) const;
  ServerStats stats() const;

 private:
  static constexpr std::size_t kNoWorker = static_cast<std::size_t>(-1);

  struct PendingRequest {
    std::string model;  ///< lane id ("name@version" + query-kind suffix)
    /// Dense: rows of input_features bytes. Sparse: the CSR evidence
    /// stream (count then carries the explicit sample count).
    std::vector<std::uint8_t> samples;
    std::vector<double> results;
    std::promise<std::vector<double>> promise;
    std::chrono::steady_clock::time_point enqueue_time;
    std::chrono::steady_clock::time_point deadline;  ///< if request_timeout
    std::size_t count = 0;      ///< total samples in the request
    std::size_t cursor = 0;     ///< next sample to dispatch
    std::size_t remaining = 0;  ///< samples not yet completed
    /// Promise resolved (completion or deadline); nothing more may touch it.
    bool settled = false;
    /// Set only when a slice's batch fails permanently (satellite of the
    /// retry design: transient failures never reach the request).
    std::exception_ptr error;
    /// Distributed-tracing context; invalid (trace_id 0) when untraced.
    telemetry::TraceContext trace;
    /// samples holds a CSR evidence stream; the request dispatches as one
    /// indivisible batch (cursor jumps 0 -> count).
    bool sparse = false;
  };

  struct BatchSlice {
    std::shared_ptr<PendingRequest> request;
    std::size_t request_offset = 0;
    std::size_t batch_offset = 0;
    std::size_t count = 0;
  };

  struct Batch {
    std::string model;  ///< lane id; batches never mix models
    std::vector<std::uint8_t> samples;
    std::vector<double> results;
    std::vector<BatchSlice> slices;
    std::size_t sample_count = 0;
    /// Completed (failed) executions so far.
    int attempts = 0;
    /// Engine of the last failed attempt, avoided on retry when possible.
    std::size_t last_worker = kNoWorker;
    /// Earliest re-dispatch time (backoff) for a batch in retry_queue_.
    std::chrono::steady_clock::time_point not_before;
    /// Context of the first traced request in the batch (a batch-level
    /// representative: the batch span and the engine's virtual-time
    /// spans join that request's flow chain).
    telemetry::TraceContext trace;
    /// samples holds a CSR evidence stream; the worker dispatches it via
    /// InferenceEngine::submit_sparse.
    bool sparse = false;
  };

  /// Per-model request queue + accounting (one lane per served model id).
  struct ModelLane {
    std::deque<std::shared_ptr<PendingRequest>> queue;
    std::size_t queued_samples = 0;
    std::size_t input_features = 0;
    /// Per-lane overrides from the model's TuningManifest; 0 means "use
    /// the server-wide ServerConfig value". Set when an engine whose
    /// artifact carries tuning registers (or activates) into the lane.
    std::size_t batch_samples = 0;
    std::chrono::microseconds max_latency{0};
    std::shared_ptr<telemetry::Counter> ctr_requests;
    std::shared_ptr<telemetry::Counter> ctr_samples;
    std::shared_ptr<telemetry::Counter> ctr_batches;
  };

  struct Worker {
    std::shared_ptr<InferenceEngine> engine;
    std::thread thread;
    std::deque<Batch> queue;
    std::condition_variable cv;
    std::size_t index = 0;
    int priority = 0;
    /// Device (or device/partition) label for fleet bookkeeping.
    std::string device;
    /// retire_engine was called: the dispatcher hands the worker no new
    /// batches; the worker drains its queue and exits.
    bool retiring = false;
    /// The worker exited and its engine was handed back; the slot stays
    /// to keep indices stable.
    bool retired = false;
    /// Lane id of the engine's loaded model (updated on activation).
    std::string model_id;
    std::size_t input_features = 0;
    /// Requested hot-swap target; the worker runs it once its queue
    /// drains. While set, the dispatcher hands the worker no new batches.
    ModelHandle pending_activation;
    std::shared_ptr<std::promise<void>> activation_promise;
    /// Dispatch accounting, guarded by the server mutex (the worker is the
    /// only thread that calls into the engine itself).
    std::size_t outstanding_samples = 0;
    std::uint64_t dispatched_samples = 0;
    std::uint64_t completed_samples = 0;
    double busy_seconds = 0.0;
    double nominal_throughput = 0.0;
    // --- Health state machine (guarded by the server mutex) --------------
    EngineHealth health = EngineHealth::kHealthy;
    int consecutive_failures = 0;
    std::chrono::steady_clock::time_point quarantined_until;
    std::chrono::microseconds probe_interval{0};
    bool probe_in_flight = false;
    telemetry::TrackId track = 0;
  };

  /// Opens (or returns) the lane for `model`. When `artifact` carries a
  /// tuning manifest, its batch target and flush deadline become the
  /// lane's per-model overrides.
  ModelLane& ensure_lane_locked(const std::string& model,
                                std::size_t input_features,
                                const ModelHandle& artifact);
  /// Effective coalescing target / flush deadline of a lane (its tuned
  /// override, falling back to the server-wide configuration).
  std::size_t lane_batch_locked(const ModelLane& lane) const {
    return lane.batch_samples > 0 ? lane.batch_samples : batch_samples_;
  }
  std::chrono::microseconds lane_max_latency_locked(
      const ModelLane& lane) const {
    return lane.max_latency.count() > 0 ? lane.max_latency
                                        : config_.max_latency;
  }
  /// Resolves a model reference (lane id or unambiguous bare name) to a
  /// lane id; throws RuntimeApiError for unknown/ambiguous references.
  std::string resolve_model_locked(const std::string& ref) const;
  /// The sole served model id; throws RuntimeApiError when ambiguous.
  std::string default_model_locked() const;
  /// True when a worker serves `model` or is activating towards it.
  bool lane_served_locked(const std::string& model) const;
  std::future<std::vector<double>> submit_locked(
      std::unique_lock<std::mutex>& lock, const std::string& model,
      std::vector<std::uint8_t> samples);
  std::optional<std::future<std::vector<double>>> try_submit_locked(
      std::unique_lock<std::mutex>& lock, const std::string& model,
      std::vector<std::uint8_t> samples,
      const telemetry::TraceContext& trace = {});
  /// `sparse_samples` > 0 marks `samples` as a CSR stream covering that
  /// many samples (0 = dense rows).
  std::future<std::vector<double>> enqueue_locked(
      std::unique_lock<std::mutex>& lock, const std::string& model,
      std::vector<std::uint8_t> samples,
      const telemetry::TraceContext& trace = {},
      std::size_t sparse_samples = 0);
  /// Throws NoHealthyEngineError if a started server cannot serve new work
  /// for `model`; RuntimeApiError when no engine hosts it at all.
  void require_admissible_locked(const std::string& model) const;
  Batch form_batch_locked(const std::string& model, ModelLane& lane);
  std::size_t pick_engine_locked(const Batch& batch);
  /// False when no engine of the batch's model is currently eligible
  /// (batch untouched).
  bool dispatch_batch_locked(Batch& batch);
  bool any_engine_available_locked(std::chrono::steady_clock::time_point now,
                                   const std::string& model) const;
  void complete_slice_locked(const BatchSlice& slice);
  void expire_request_locked(PendingRequest& request);
  void finish_batch_locked(const Batch& batch);
  /// Permanently fails every slice of the batch with `error`.
  void fail_batch_locked(Batch& batch, const std::exception_ptr& error);
  /// Fails queued work of models no engine serves any more and removes
  /// their lanes.
  void drain_dead_lanes_locked();
  void note_worker_success_locked(Worker& worker);
  void note_worker_failure_locked(Worker& worker);
  std::chrono::steady_clock::time_point retry_time_locked(int attempts);
  /// Runs the engine's activate() off-lock on the worker thread.
  void perform_activation(std::unique_lock<std::mutex>& lock, Worker& worker);
  /// Registers the worker's telemetry track and starts its thread.
  void spawn_worker_locked(Worker& worker);
  /// True when the worker takes part in dispatch (not retiring/retired).
  static bool worker_active(const Worker& worker) {
    return !worker.retiring && !worker.retired;
  }
  void dispatcher_loop();
  void worker_loop(Worker& worker);

  ServerConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable cv_dispatch_;
  std::condition_variable cv_space_;
  /// Signalled by a worker the moment it finishes retiring.
  std::condition_variable cv_retire_;
  std::vector<std::unique_ptr<Worker>> workers_;
  /// Per-model request lanes, keyed by lane id ("name@version" plus the
  /// query-kind suffix of the engines' loaded module, see lane_id_for).
  std::map<std::string, ModelLane> lanes_;
  /// Failed batches awaiting their backoff before re-dispatch.
  std::deque<Batch> retry_queue_;
  /// Deadline watchlist, in expiry order (one config-wide timeout + FIFO
  /// enqueue means front() always expires first).
  std::deque<std::shared_ptr<PendingRequest>> live_requests_;
  std::thread dispatcher_;
  ServerStats stats_;
  Rng jitter_rng_;
  /// Owned latency histograms; also published into the global registry via
  /// attach_histogram, so --metrics-out always shows the live server.
  std::shared_ptr<telemetry::Histogram> queue_wait_us_;
  std::shared_ptr<telemetry::Histogram> request_latency_us_;
  std::shared_ptr<telemetry::Histogram> batch_fill_samples_;
  std::shared_ptr<telemetry::Counter> ctr_requests_;
  std::shared_ptr<telemetry::Counter> ctr_rejected_;
  std::shared_ptr<telemetry::Counter> ctr_batches_;
  std::shared_ptr<telemetry::Counter> ctr_samples_;
  std::shared_ptr<telemetry::Counter> ctr_deadline_flushes_;
  std::shared_ptr<telemetry::Counter> ctr_batch_retries_;
  std::shared_ptr<telemetry::Counter> ctr_failovers_;
  std::shared_ptr<telemetry::Counter> ctr_quarantines_;
  std::shared_ptr<telemetry::Counter> ctr_probes_;
  std::shared_ptr<telemetry::Counter> ctr_readmissions_;
  std::shared_ptr<telemetry::Counter> ctr_deadline_expirations_;
  std::shared_ptr<telemetry::Counter> ctr_failed_requests_;
  std::shared_ptr<telemetry::Counter> ctr_activations_;
  std::shared_ptr<telemetry::Counter> ctr_failed_activations_;
  telemetry::TrackId dispatcher_track_ = 0;
  std::size_t batch_samples_ = 0;
  std::size_t outstanding_samples_ = 0;
  /// Batches formed but not yet permanently finished (in a worker queue,
  /// executing, or awaiting retry). stop() drains until this reaches 0.
  std::size_t pending_batches_ = 0;
  std::size_t round_robin_next_ = 0;
  bool started_ = false;
  bool stopping_ = false;
  bool workers_stopping_ = false;
  bool stopped_ = false;
};

}  // namespace spnhbm::engine
