// Chaos decorator for inference engines.
//
// Wraps any InferenceEngine and consults the global fault::FaultInjector
// at the submit()/wait() boundary — the seam the InferenceServer drives —
// so fault plans can make a *whole engine* misbehave (reject batches,
// respond slowly, appear hung) without the underlying backend knowing.
// Substrate-level faults (HBM, DMA, PE launch) are injected inside the
// simulation instead; this decorator is for host-side failure modes and
// for backends (native CPU, GPU model) that have no simulated substrate.
//
// Sites: "engine.submit", "engine.wait" and "engine.activate", instance =
// the wrapped engine's capabilities().name.
#pragma once

#include <memory>

#include "spnhbm/engine/engine.hpp"
#include "spnhbm/telemetry/trace.hpp"

namespace spnhbm::engine {

/// The engine rejected or aborted a batch (injected fault). Retryable:
/// the batch state lives entirely in the caller's buffers.
class EngineFaultError : public Error {
 public:
  explicit EngineFaultError(const std::string& what)
      : Error("engine fault: " + what) {}
};

class ChaosEngine final : public InferenceEngine {
 public:
  /// Shared ownership so device-owned engines (fleet tenants) can be
  /// wrapped too; a unique_ptr converts implicitly.
  explicit ChaosEngine(std::shared_ptr<InferenceEngine> inner);

  const EngineCapabilities& capabilities() const override;
  const ModelHandle& loaded_model() const override;
  void activate(ModelHandle next) override;
  BatchHandle submit(std::span<const std::uint8_t> samples,
                     std::span<double> results) override;
  BatchHandle submit_sparse(std::span<const std::uint8_t> stream,
                            std::size_t sample_count,
                            std::span<double> results) override;
  void wait(BatchHandle handle) override;
  double measure_throughput(std::uint64_t sample_count) override;
  EngineStats stats() const override;

  InferenceEngine& inner() { return *inner_; }

 private:
  /// Consults the injector for `site`; throws / sleeps as decided.
  /// Fired decisions are annotated onto the chaos lane as wall-clock
  /// instants ("fault.<kind>") next to the owning request's spans.
  void apply(const char* site);

  std::shared_ptr<InferenceEngine> inner_;
  telemetry::TrackId track_ = 0;
};

}  // namespace spnhbm::engine
