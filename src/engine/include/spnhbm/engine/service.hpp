// InferenceService: the minimal serving surface a front end needs.
//
// The RPC front door (rpc::RpcServer), the CLI drivers and the load
// generator do not care whether requests land on one InferenceServer or
// are routed across a fleet of devices — they need exactly four things:
// which models are served, each model's input width, the current
// backpressure quantity, and a non-blocking submit. This interface is
// that seam. engine::InferenceServer implements it directly (one device
// group, local dispatch); fleet::FleetRouter implements it by routing
// each request to one of its member servers.
//
// Contract notes, shared by every implementation:
//   * try_submit never blocks: a full queue returns std::nullopt (the
//     caller sheds or retries), typed failures throw (RuntimeApiError
//     for unknown/ambiguous models or a stopped service,
//     NoHealthyEngineError when the model is temporarily unservable).
//   * served_models() returns sorted "name@version" ids; a model ref
//     passed to input_features/try_submit may be a bare name when it is
//     unambiguous.
//   * outstanding_samples() is advisory (admission control); it may be
//     stale by the time the caller acts on it.
#pragma once

#include <cstdint>
#include <future>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "spnhbm/telemetry/trace_context.hpp"
#include "spnhbm/util/error.hpp"

namespace spnhbm::compiler {
enum class QueryKind : std::uint8_t;
}  // namespace spnhbm::compiler

namespace spnhbm::engine {

// --- Query-kind lane addressing -----------------------------------------
// A served lane is addressed by the model id plus a query-kind suffix:
// "name@version" serves the joint likelihood (unchanged from before query
// kinds existed), "name@version#marginal" and "name@version#mpe" serve the
// marginal and max-product datapaths of the same artifact. Bare-name
// references resolve within one kind: "m" finds the joint lane only,
// "m#marginal" the marginal one.

/// Lane-id suffix for a query kind: "" (joint), "#marginal", "#mpe".
std::string query_lane_suffix(compiler::QueryKind query);

/// Lane id of a model artifact serving `query`: "<model-id><suffix>".
std::string lane_id_for(const std::string& model_id,
                        compiler::QueryKind query);

/// Splits a model/lane reference into {base, kind-suffix}; the suffix is
/// "" for joint references. Only the known kind suffixes are recognised,
/// so '#' elsewhere in an id stays part of the base.
std::pair<std::string, std::string> split_lane_ref(const std::string& ref);

class InferenceService {
 public:
  virtual ~InferenceService() = default;

  /// Model ids currently served, sorted.
  virtual std::vector<std::string> served_models() const = 0;
  /// Input width (bytes per sample) of a named model; throws
  /// RuntimeApiError when unknown or ambiguous.
  virtual std::size_t input_features(const std::string& model) const = 0;
  /// Queued + in-flight samples across the service (advisory).
  virtual std::size_t outstanding_samples() const = 0;
  /// Non-blocking submit: std::nullopt when the queue bound would be
  /// exceeded; otherwise a future resolving to one probability per row.
  virtual std::optional<std::future<std::vector<double>>> try_submit(
      const std::string& model, std::vector<std::uint8_t> samples) = 0;

  /// Trace-carrying submit: same contract, but the request's
  /// TraceContext rides along so the service's spans join the request's
  /// flow chain. The default drops the context (services predating the
  /// tracing layer keep working unchanged).
  virtual std::optional<std::future<std::vector<double>>> try_submit(
      const std::string& model, std::vector<std::uint8_t> samples,
      const telemetry::TraceContext& trace) {
    (void)trace;
    return try_submit(model, std::move(samples));
  }

  /// Non-blocking sparse submit: `stream` is the CSR evidence stream of
  /// compiler/sparse_evidence.hpp covering `sample_count` samples; absent
  /// variables read the model's default evidence. Same nullopt/throw
  /// contract as try_submit, plus ParseError for a malformed stream. The
  /// default rejects: services predating sparse evidence keep compiling.
  virtual std::optional<std::future<std::vector<double>>> try_submit_sparse(
      const std::string& model, std::vector<std::uint8_t> stream,
      std::size_t sample_count, const telemetry::TraceContext& trace = {}) {
    (void)stream;
    (void)sample_count;
    (void)trace;
    throw RuntimeApiError("service does not accept sparse evidence for '" +
                          model + "'");
  }

  // --- Live-introspection hooks (the ADMIN plane) ------------------------
  /// Per-engine health lines ("engine 0 [fpga0] model=a@1 health=healthy
  /// ..."); empty when the service has nothing to report.
  virtual std::string health_text() const { return ""; }
  /// Replica-map lines for routed services (model -> member/partition);
  /// empty for a single-server service.
  virtual std::string replicas_text() const { return ""; }
};

}  // namespace spnhbm::engine
