// InferenceEngine adapter over the native vectorised CPU baseline.
//
// submit() hands the batch to a helper thread (std::async), so a driver
// can overlap staging of the next batch with compute of the current one —
// the same overlap idea the FPGA runtime gets from its control threads.
// wait() joins the helper and charges the measured wall time to the
// engine's stats.
#pragma once

#include <future>
#include <map>
#include <memory>

#include "spnhbm/baselines/cpu_engine.hpp"
#include "spnhbm/engine/engine.hpp"

namespace spnhbm::engine {

struct CpuEngineConfig {
  /// 0 = std::thread::hardware_concurrency().
  std::size_t threads = 0;
};

class CpuEngine : public InferenceEngine {
 public:
  explicit CpuEngine(ModelHandle model, CpuEngineConfig config = {});

  /// Legacy single-model constructor: wraps `module` into an anonymous
  /// artifact ("default@0"). `module` must outlive the engine.
  explicit CpuEngine(const compiler::DatapathModule& module,
                     CpuEngineConfig config = {});

  const EngineCapabilities& capabilities() const override {
    return capabilities_;
  }
  const ModelHandle& loaded_model() const override { return model_; }
  /// Cheap swap: rebuilds the native evaluator over the next artifact.
  /// No batch may be pending.
  void activate(ModelHandle next) override;
  BatchHandle submit(std::span<const std::uint8_t> samples,
                     std::span<double> results) override;
  /// Sparse batches densify against the module's default evidence and run
  /// the same vectorised kernel — numerically identical to the dense path
  /// (the CPU has no bandwidth model to shrink).
  BatchHandle submit_sparse(std::span<const std::uint8_t> stream,
                            std::size_t sample_count,
                            std::span<double> results) override;
  void wait(BatchHandle handle) override;
  double measure_throughput(std::uint64_t sample_count) override;
  EngineStats stats() const override {
    EngineStats stats = stats_;
    stats.batch_latency_us = batch_latency_us_.snapshot();
    return stats;
  }

  std::size_t threads() const { return native_->threads(); }

 private:
  void refresh_capabilities();

  ModelHandle model_;
  CpuEngineConfig config_;
  std::unique_ptr<baselines::CpuInferenceEngine> native_;
  EngineCapabilities capabilities_;
  EngineStats stats_;
  telemetry::Histogram batch_latency_us_;
  BatchHandle next_handle_ = 1;
  /// In-flight batches: handle -> wall-seconds future.
  std::map<BatchHandle, std::future<double>> pending_;
};

}  // namespace spnhbm::engine
