// The unified inference-engine abstraction (the serving seam).
//
// Every execution path in this repo — the simulated HBM FPGA card driven
// by the §IV-B host runtime, the prior-work F1 configuration, the native
// vectorised CPU baseline and the analytic V100 execution model — is an
// implementation of this one interface:
//
//   capabilities()         what the backend is and how fast it claims
//                          to be (used for dispatch weighting),
//   submit() / wait()      batch inference with an explicit completion
//                          barrier (engines may complete synchronously;
//                          wait() is the only guarantee),
//   measure_throughput()   the fair cross-platform timing probe behind
//                          paper Fig. 6,
//   stats()                cumulative per-engine accounting.
//
// Engine instances are deliberately NOT thread-safe: one engine is owned
// by exactly one driver thread (the InferenceServer dedicates a worker
// thread per registered engine). Asynchrony, batching, dispatch and
// backpressure live one level up, in InferenceServer.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "spnhbm/model/artifact.hpp"
#include "spnhbm/telemetry/metrics.hpp"
#include "spnhbm/util/error.hpp"

namespace spnhbm::engine {

using BatchHandle = std::uint64_t;
/// Shared pin on an immutable model artifact (see spnhbm/model/artifact.hpp).
using ModelHandle = model::ModelHandle;

struct EngineCapabilities {
  /// Human-readable backend identifier ("fpga-sim/hbm", "cpu-native", ...).
  std::string name;
  /// Bytes per input sample the compiled module expects.
  std::size_t input_features = 0;
  /// Whether submit() computes real probabilities. Timing-only
  /// configurations (compute_results disabled) reject functional batches.
  bool functional = true;
  /// The backend's own steady-state samples/s estimate; the server prefers
  /// measured throughput once batches have completed. 0 = unknown.
  double nominal_throughput = 0.0;
  /// Batch size that amortises the backend's per-batch overhead.
  std::size_t preferred_batch_samples = 4096;
};

struct EngineStats {
  std::uint64_t batches = 0;
  std::uint64_t samples = 0;
  /// Time attributed to the backend: virtual device time for the FPGA
  /// simulation, modelled batch time for the GPU model, wall time for the
  /// native CPU engine.
  double busy_seconds = 0.0;
  /// Distribution of per-batch busy time in microseconds (same time base
  /// as busy_seconds).
  telemetry::HistogramSnapshot batch_latency_us;
  /// Completed activate() calls and the time they cost (virtual
  /// reconfiguration time for the FPGA simulation, ~0 for CPU/GPU swaps).
  /// Kept separate from busy_seconds so throughput stays a compute rate.
  std::uint64_t reconfigurations = 0;
  double reconfiguration_seconds = 0.0;

  double samples_per_second() const {
    return busy_seconds > 0.0 ? static_cast<double>(samples) / busy_seconds
                              : 0.0;
  }
  std::string describe() const;
};

class InferenceEngine {
 public:
  virtual ~InferenceEngine() = default;

  virtual const EngineCapabilities& capabilities() const = 0;

  /// The artifact the engine currently serves. Never null.
  virtual const ModelHandle& loaded_model() const = 0;

  /// Swaps the engine onto `next`. No batch may be in flight. CPU/GPU
  /// engines swap cheaply; the FPGA simulation models reconfiguration
  /// mechanistically (datapath re-composition, placement re-check, charged
  /// reconfiguration time, lookup tables re-staged over the DMA path). On
  /// failure (e.g. PlacementError) the previous model stays active.
  /// capabilities() may change (input_features, nominal_throughput).
  virtual void activate(ModelHandle next) = 0;

  /// Starts one batch: `samples` holds rows of capabilities().input_features
  /// bytes each, `results` receives one joint probability per row. Both
  /// spans must stay valid until wait() returns on the handle.
  virtual BatchHandle submit(std::span<const std::uint8_t> samples,
                             std::span<double> results) = 0;

  /// Starts one batch of CSR sparse evidence (the per-sample
  /// {active_count, {index, value}*} stream of
  /// compiler/sparse_evidence.hpp); absent variables read the module's
  /// default evidence. Backends that move data charge only the stream's
  /// bytes — on the FPGA simulation both PCIe and HBM traffic shrink
  /// with the active-index density. The base implementation throws:
  /// engines advertise support by overriding.
  virtual BatchHandle submit_sparse(std::span<const std::uint8_t> stream,
                                    std::size_t sample_count,
                                    std::span<double> results) {
    (void)stream;
    (void)sample_count;
    (void)results;
    throw Error("engine '" + capabilities().name +
                "' does not support sparse evidence");
  }

  /// Blocks until the batch behind `handle` has completed. Each handle
  /// must be waited on exactly once.
  virtual void wait(BatchHandle handle) = 0;

  /// Fair cross-platform timing probe: steady-state samples/s over a
  /// synthetic load of `sample_count` samples.
  virtual double measure_throughput(std::uint64_t sample_count) = 0;

  virtual EngineStats stats() const = 0;

  /// Convenience synchronous path: submit + wait, returning the results.
  std::vector<double> infer(std::span<const std::uint8_t> samples);

  /// Convenience synchronous sparse path: submit_sparse + wait.
  std::vector<double> infer_sparse(std::span<const std::uint8_t> stream,
                                   std::size_t sample_count);

 protected:
  /// Validates a submit() call against the capabilities and returns the
  /// sample count.
  std::size_t check_batch(std::span<const std::uint8_t> samples,
                          std::span<double> results) const;

  /// Validates a submit_sparse() call (functional capability, result span
  /// width, and full stream decode — malformed streams throw ParseError
  /// before any engine state changes).
  void check_sparse_batch(std::span<const std::uint8_t> stream,
                          std::size_t sample_count,
                          std::span<double> results) const;
};

}  // namespace spnhbm::engine
