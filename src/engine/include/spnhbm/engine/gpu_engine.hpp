// InferenceEngine adapter over the analytic V100 execution model.
//
// Timing comes from the mechanistic model (kernel launches, DRAM
// round-trips, PCIe transfers — see gpu/execution_model.hpp); functional
// results are computed host-side in double precision through the same
// compiled operator program, which mirrors the real baseline: SPFlow's
// TensorFlow backend also evaluates the graph in IEEE floating point.
#pragma once

#include <memory>

#include "spnhbm/engine/engine.hpp"
#include "spnhbm/gpu/execution_model.hpp"

namespace spnhbm::engine {

class GpuModelEngine : public InferenceEngine {
 public:
  explicit GpuModelEngine(ModelHandle artifact, gpu::GpuModelConfig config = {});

  /// Legacy single-model constructor: wraps `module` into an anonymous
  /// artifact ("default@0"). `module` must outlive the engine.
  explicit GpuModelEngine(const compiler::DatapathModule& module,
                          gpu::GpuModelConfig config = {});

  const EngineCapabilities& capabilities() const override {
    return capabilities_;
  }
  const ModelHandle& loaded_model() const override { return artifact_; }
  /// Cheap swap: the analytic model is model-independent, only the
  /// compiled operator program changes. No batch may be in flight.
  void activate(ModelHandle next) override;
  BatchHandle submit(std::span<const std::uint8_t> samples,
                     std::span<double> results) override;
  /// Sparse batches evaluate through SampleView without densifying;
  /// timing stays the dense analytic model (the real TF baseline feeds
  /// dense tensors, so sparse evidence saves it nothing).
  BatchHandle submit_sparse(std::span<const std::uint8_t> stream,
                            std::size_t sample_count,
                            std::span<double> results) override;
  void wait(BatchHandle handle) override;
  double measure_throughput(std::uint64_t sample_count) override;
  EngineStats stats() const override {
    EngineStats stats = stats_;
    stats.batch_latency_us = batch_latency_us_.snapshot();
    return stats;
  }

  const gpu::GpuExecutionModel& model() const { return model_; }

 private:
  void refresh_capabilities();

  ModelHandle artifact_;
  gpu::GpuExecutionModel model_;
  std::unique_ptr<arith::ArithBackend> f64_;
  EngineCapabilities capabilities_;
  EngineStats stats_;
  telemetry::Histogram batch_latency_us_;
  BatchHandle next_handle_ = 1;
  BatchHandle last_completed_ = 0;
};

}  // namespace spnhbm::engine
