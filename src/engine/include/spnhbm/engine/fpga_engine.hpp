// InferenceEngine adapter over the simulated TaPaSCo FPGA card.
//
// Each FpgaSimEngine owns a complete simulation stack — DES scheduler,
// platform composition (HBM XUP-VVH or prior-work F1) and the §IV-B host
// runtime — so one engine models one card plus its driver, and registering
// N engines with the InferenceServer models sharding across N independent
// cards.
//
// Functional batches run through the full copy/launch/readback path of
// InferenceRuntime::infer; measure_throughput drives the block-pipelined
// timing path (InferenceRuntime::run), which is exactly how the Fig. 4/5/6
// benchmarks measured before this layer existed — the numbers are
// unchanged by construction.
//
// activate() models a real model swap: the next design is composed (and
// placement-checked) first, the card is reprogrammed (charged in virtual
// time), and the new design's lookup tables are staged into each PE's
// memory channel through the real DMA path. On any failure the previous
// model keeps serving.
//
// Partitioned tenants (FpgaSimDevice): when the engine is one tenant of a
// spatially partitioned device, reconfiguration is *partial* — only the
// tenant's partition streams through the ICAP, so the charge is
// partition_bitstream_fraction of the full bitstream and the device's
// other tenants keep serving throughout. Spatial isolation (disjoint PE
// slots + disjoint HBM channels, see fpga/partition.hpp) is what makes
// the per-tenant simulation honest: partitions share no queue, so each
// tenant owns an independent virtual timeline.
#pragma once

#include <memory>

#include "spnhbm/engine/engine.hpp"
#include "spnhbm/runtime/inference_runtime.hpp"
#include "spnhbm/telemetry/trace.hpp"

namespace spnhbm::engine {

struct FpgaEngineConfig {
  fpga::Platform platform = fpga::Platform::kHbmXupVvh;
  /// 0 = the largest placeable design on the platform. Negative counts
  /// are rejected with ConfigError (they used to be silently promoted).
  int pe_count = 1;
  /// F1 only: DDR channels/controllers composed in.
  int memory_channels = 1;
  /// Host-runtime block size per PE job. 0 = the model's attached tuning
  /// manifest when present, the calibrated default otherwise.
  std::size_t block_samples = 0;
  /// HBM channel packing (PEs per channel). 0 = the attached tuning
  /// manifest when present, the paper's dedicated 1:1 otherwise.
  int hbm_pes_per_channel = 0;
  /// Route PEs through the HBM crossbar. An attached tuning manifest
  /// overrides this (the tuner searches the routing dimension).
  bool hbm_crossbar = false;
  int threads_per_pe = 1;
  int pcie_generation = 3;
  /// Include host<->device transfers in timing runs (paper Fig. 4 right).
  bool include_transfers = true;
  /// Evaluate samples functionally. Disable for timing-only sweeps: the
  /// engine then rejects submit() but measure_throughput still works.
  bool compute_results = true;
  bool skip_placement_check = false;
  double dma_failure_rate = 0.0;
  // --- Partitioned-tenant context (set by FpgaSimDevice) -------------------
  /// Fraction of the full-device bitstream this engine's partition covers.
  /// In (0, 1]: reconfiguration is partial (charge scales with the
  /// fraction); 0 = the engine owns the whole device (full bitstream).
  double partition_bitstream_fraction = 0.0;
  /// Display label ("device/partition") appended to capabilities().name.
  std::string partition_label;
  /// Charge the initial partition programming + table staging in virtual
  /// time at construction (adding a tenant reconfigures its partition;
  /// a whole-device engine is assumed pre-programmed, as before).
  bool charge_initial_program = false;
};

class FpgaSimEngine : public InferenceEngine {
 public:
  /// Composes the design; throws PlacementError if it does not fit.
  explicit FpgaSimEngine(ModelHandle model, FpgaEngineConfig config = {});

  /// Legacy single-model constructor: wraps `module`/`backend` into an
  /// anonymous artifact ("default@0"). Both must outlive the engine.
  FpgaSimEngine(const compiler::DatapathModule& module,
                const arith::ArithBackend& backend,
                FpgaEngineConfig config = {});

  const EngineCapabilities& capabilities() const override {
    return capabilities_;
  }
  const ModelHandle& loaded_model() const override { return model_; }
  void activate(ModelHandle next) override;
  BatchHandle submit(std::span<const std::uint8_t> samples,
                     std::span<double> results) override;
  /// Sparse batches ride InferenceRuntime::infer_sparse: only the CSR
  /// stream's bytes cross the PCIe DMA and the PE's HBM channel, so the
  /// modelled transfer time genuinely shrinks with active-index density.
  BatchHandle submit_sparse(std::span<const std::uint8_t> stream,
                            std::size_t sample_count,
                            std::span<double> results) override;
  void wait(BatchHandle handle) override;
  double measure_throughput(std::uint64_t sample_count) override;
  EngineStats stats() const override {
    EngineStats stats = stats_;
    stats.batch_latency_us = batch_latency_us_.snapshot();
    return stats;
  }

  int pe_count() const { return static_cast<int>(device_->pe_count()); }
  /// Escape hatch for sweeps that need RunStats beyond samples/s.
  runtime::InferenceRuntime& runtime() { return *runtime_; }
  /// Virtual time the simulated card has accumulated.
  Picoseconds virtual_now() const { return scheduler_.now(); }

 private:
  void refresh_capabilities();
  /// Streams the (partial or full) bitstream through the ICAP and stages
  /// `artifact`'s lookup tables into each PE's channel over the DMA path,
  /// all in virtual time; returns the reconfiguration charge.
  Picoseconds program_and_stage(tapasco::Device& device,
                                runtime::InferenceRuntime& runtime,
                                const model::ModelArtifact& artifact);

  ModelHandle model_;
  FpgaEngineConfig config_;
  /// Virtual-clock telemetry track of this card ("fpga/eN[ @partition]");
  /// 0 while tracing is disabled.
  telemetry::TrackId track_ = 0;
  sim::Scheduler scheduler_;
  sim::ProcessRunner runner_;
  std::unique_ptr<tapasco::Device> device_;
  std::unique_ptr<runtime::InferenceRuntime> runtime_;
  EngineCapabilities capabilities_;
  EngineStats stats_;
  telemetry::Histogram batch_latency_us_;
  BatchHandle next_handle_ = 1;
  BatchHandle last_completed_ = 0;
};

}  // namespace spnhbm::engine
