// A spatially partitioned simulated FPGA card hosting several tenants.
//
// The classic flow (one FpgaSimEngine = one card = one model) swaps the
// *whole* bitstream to change models. FpgaSimDevice refactors that into
// "one device = a partitioned set of datapaths": a PartitionTable divides
// the card's fabric into named partitions (disjoint PE slots + disjoint
// HBM channels, placement-checked against the Table I budgets), and each
// partition hosts one tenant — a FpgaSimEngine composed with exactly that
// partition's PEs and channels.
//
// Adding a tenant partially reconfigures only its partition: the engine
// is constructed with charge_initial_program, so its virtual timeline
// starts with partition_bitstream_fraction of the full bitstream through
// the ICAP plus the tenant's lookup-table staging over the DMA path.
// Evicting a tenant streams the same partial (blanking) bitstream and
// frees the partition. Neither touches any other tenant: partitions share
// no queue (disjoint channels, §II-B), so every co-resident tenant owns
// an independent virtual timeline and keeps serving throughout — the
// whole-device bitstream swap of the single-tenant flow is gone.
//
// Threading: the device's partition bookkeeping is mutex-guarded (the
// fleet router adds/evicts tenants while servers run), but each tenant
// engine keeps the engine-layer contract — NOT thread-safe, driven by
// exactly one InferenceServer worker thread. Callers must retire a
// tenant's engine from its server before evicting the tenant.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "spnhbm/engine/fpga_engine.hpp"
#include "spnhbm/fpga/partition.hpp"

namespace spnhbm::engine {

struct FpgaDeviceConfig {
  /// Device identity; tenant engines report "<name>/<partition>".
  std::string name = "fpga0";
  /// Discrete fabric budgets to partition (defaults model the XUP-VVH).
  fpga::PartitionBudget budget;
  int pcie_generation = 3;
  int threads_per_pe = 1;
  bool include_transfers = true;
  bool compute_results = true;
  double dma_failure_rate = 0.0;
};

/// Cumulative partial-reconfiguration accounting for one device.
struct FpgaDeviceStats {
  std::uint64_t tenants_added = 0;
  std::uint64_t tenants_evicted = 0;
  /// Virtual seconds of partial reconfiguration charged by add/evict
  /// (each tenant's add charge also appears in its engine's stats()).
  double reconfiguration_seconds = 0.0;
};

class FpgaSimDevice {
 public:
  explicit FpgaSimDevice(FpgaDeviceConfig config = {});

  /// Admits `model` into a new partition of `pe_slots` PEs. Reserves the
  /// partition (throws fpga::PlacementDeficitError with per-resource
  /// required-vs-available when the tenant does not fit, leaving every
  /// existing tenant untouched), then constructs the tenant engine with
  /// the partial-reconfiguration charge on its virtual timeline. The
  /// returned reference stays valid until evict_tenant(partition).
  FpgaSimEngine& add_tenant(const std::string& partition, ModelHandle model,
                            int pe_slots);

  /// Destroys the tenant engine and frees its partition, charging the
  /// partial (blanking) bitstream to the device's reconfiguration
  /// accounting. The engine must no longer be driven by any server
  /// worker. Throws fpga::PlacementError for an unknown partition.
  void evict_tenant(const std::string& partition);

  bool has_tenant(const std::string& partition) const;
  /// Throws fpga::PlacementError for an unknown partition.
  FpgaSimEngine& tenant(const std::string& partition);
  /// Shared handle on the tenant's engine, for registering it with an
  /// InferenceServer. The handle keeps the engine alive across an evict
  /// (so a late retire cannot dangle), but the partition itself is freed
  /// at evict time — retire from the server first.
  std::shared_ptr<FpgaSimEngine> tenant_engine(const std::string& partition);
  /// Partition names, sorted.
  std::vector<std::string> tenant_partitions() const;
  std::size_t tenant_count() const;

  const std::string& name() const { return config_.name; }
  int free_pe_slots() const;
  int free_channels() const;
  FpgaDeviceStats stats() const;
  /// Device header plus one line per partition (PE slots, channels,
  /// fabric cost) and the free budgets.
  std::string describe() const;

 private:
  /// Virtual seconds to stream `fraction` of the full bitstream.
  double partial_program_seconds(double fraction) const;

  FpgaDeviceConfig config_;
  mutable std::mutex mutex_;
  fpga::PartitionTable partitions_;
  std::map<std::string, std::shared_ptr<FpgaSimEngine>> tenants_;
  FpgaDeviceStats stats_;
};

}  // namespace spnhbm::engine
