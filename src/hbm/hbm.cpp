#include "spnhbm/hbm/hbm.hpp"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

#include "spnhbm/fault/fault.hpp"
#include "spnhbm/util/log.hpp"
#include "spnhbm/util/strings.hpp"

namespace spnhbm::hbm {

HbmChannel::HbmChannel(sim::Scheduler& scheduler, HbmChannelConfig config)
    : scheduler_(scheduler),
      config_(std::move(config)),
      occupancy_(scheduler, 1),
      port_(*this) {
  SPNHBM_REQUIRE(config_.bytes_per_cycle > 0, "channel width must be positive");
  SPNHBM_REQUIRE(config_.max_burst_bytes > 0, "burst cap must be positive");
  track_ = telemetry::tracer().register_track(config_.label,
                                              telemetry::TraceClock::kVirtual);
  auto& registry = telemetry::metrics();
  ctr_bytes_read_ = registry.counter("hbm.bytes_read");
  ctr_bytes_written_ = registry.counter("hbm.bytes_written");
  ctr_bursts_ = registry.counter("hbm.bursts");
  ctr_row_hits_ = registry.counter("hbm.row_hits");
  ctr_row_misses_ = registry.counter("hbm.row_misses");
}

Picoseconds HbmChannel::service_time(const axi::BurstRequest& request) {
  const std::uint64_t beats =
      (request.bytes + config_.bytes_per_cycle - 1) / config_.bytes_per_cycle;
  Picoseconds time =
      config_.clock.cycles(static_cast<std::int64_t>(beats)) +
      config_.burst_overhead;
  if (request.is_write != last_was_write_) {
    time += config_.turnaround;
  }
  last_was_write_ = request.is_write;
  // Refresh is amortised as a uniform service-time stretch.
  time += static_cast<Picoseconds>(static_cast<double>(time) *
                                   config_.refresh_overhead);
  return time;
}

sim::Task<void> HbmChannel::access(axi::BurstRequest request,
                                   double service_stretch) {
  SPNHBM_REQUIRE(request.bytes > 0 && request.bytes <= config_.max_burst_bytes,
                 "burst size out of range");
  SPNHBM_REQUIRE(request.address + request.bytes <= config_.capacity_bytes,
                 "access beyond channel capacity");
  SPNHBM_REQUIRE(service_stretch >= 1.0, "stretch must be >= 1");
  Picoseconds injected_stall = 0;
  if (fault::injector().armed()) {
    const fault::FaultDecision decision =
        fault::injector().decide("hbm.access", config_.label);
    if (decision.kind != fault::FaultKind::kNone) {
      // Annotate the fault onto the owning channel lane before acting on
      // it, so even aborted accesses (corrupt/fail throw below) leave a
      // mark next to the rd/wr span they would have produced.
      telemetry::tracer().instant_virtual(
          track_, fault::trace_label(decision.kind), scheduler_.now());
    }
    switch (decision.kind) {
      case fault::FaultKind::kStall:
      case fault::FaultKind::kDelay:
      case fault::FaultKind::kHang:
        // The burst succeeds but the channel is held longer (controller
        // retraining, refresh storm, throttling).
        injected_stall = microseconds(decision.duration_us);
        break;
      case fault::FaultKind::kCorrupt: {
        // Flip bits in the backing store, which the ECC machinery detects:
        // the access fails instead of returning bad data.
        std::uint8_t byte = 0;
        read_backdoor(request.address, {&byte, 1});
        byte ^= decision.corrupt_mask;
        write_backdoor(request.address, {&byte, 1});
        throw HbmEccError(strformat(
            "uncorrectable corruption at %s+0x%llx (injected)",
            config_.label.c_str(),
            static_cast<unsigned long long>(request.address)));
      }
      case fault::FaultKind::kFail:
        throw HbmEccError(strformat("access fault at %s+0x%llx (injected)",
                                    config_.label.c_str(),
                                    static_cast<unsigned long long>(
                                        request.address)));
      case fault::FaultKind::kNone:
        break;
    }
  }
  co_await occupancy_.acquire();
  const Picoseconds start = scheduler_.now();
  const Picoseconds time =
      static_cast<Picoseconds>(static_cast<double>(service_time(request)) *
                               service_stretch) +
      injected_stall;
  busy_time_ += time;
  if (request.is_write) {
    bytes_written_ += request.bytes;
    ctr_bytes_written_->add(request.bytes);
  } else {
    bytes_read_ += request.bytes;
    ctr_bytes_read_->add(request.bytes);
  }
  ctr_bursts_->add(1);
  // Row-buffer locality bookkeeping: metrics only, no timing influence.
  const std::uint64_t row = request.address >> 10;
  if (row == last_row_) {
    ++row_hits_;
    ctr_row_hits_->add(1);
  } else {
    ++row_misses_;
    ctr_row_misses_->add(1);
  }
  last_row_ = row;
  co_await sim::delay(scheduler_, time);
  occupancy_.release();
  telemetry::tracer().complete_virtual(track_, request.is_write ? "wr" : "rd",
                                       start, scheduler_.now());
  // DES coroutines run on the thread that drives the scheduler, so the
  // per-thread trace id set by the server worker is visible here: a
  // traced request's flow chain continues into its HBM bursts.
  if (const std::uint64_t trace_id = current_trace_id()) {
    telemetry::tracer().flow_virtual(track_, "request", 't', trace_id, start);
  }
}

std::uint8_t* HbmChannel::page_for(std::uint64_t address) {
  auto& page = pages_[address / kPageBytes];
  if (page.empty()) page.resize(kPageBytes, 0);
  return page.data() + (address % kPageBytes);
}

const std::uint8_t* HbmChannel::page_for(std::uint64_t address) const {
  auto& page = pages_[address / kPageBytes];
  if (page.empty()) page.resize(kPageBytes, 0);
  return page.data() + (address % kPageBytes);
}

void HbmChannel::write_backdoor(std::uint64_t address,
                                std::span<const std::uint8_t> data) {
  SPNHBM_REQUIRE(address + data.size() <= config_.capacity_bytes,
                 "backdoor write beyond channel capacity");
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::uint64_t cursor = address + offset;
    const std::size_t in_page = static_cast<std::size_t>(
        std::min<std::uint64_t>(data.size() - offset,
                                kPageBytes - (cursor % kPageBytes)));
    std::memcpy(page_for(cursor), data.data() + offset, in_page);
    offset += in_page;
  }
}

void HbmChannel::read_backdoor(std::uint64_t address,
                               std::span<std::uint8_t> out) const {
  SPNHBM_REQUIRE(address + out.size() <= config_.capacity_bytes,
                 "backdoor read beyond channel capacity");
  std::size_t offset = 0;
  while (offset < out.size()) {
    const std::uint64_t cursor = address + offset;
    const std::size_t in_page = static_cast<std::size_t>(
        std::min<std::uint64_t>(out.size() - offset,
                                kPageBytes - (cursor % kPageBytes)));
    std::memcpy(out.data() + offset, page_for(cursor), in_page);
    offset += in_page;
  }
}

HbmDevice::HbmDevice(sim::Scheduler& scheduler, HbmDeviceConfig config)
    : scheduler_(scheduler), config_(config) {
  const std::size_t total = config_.stacks * config_.channels_per_stack;
  SPNHBM_REQUIRE(total > 0, "HBM device needs at least one channel");
  channels_.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    HbmChannelConfig channel_config = config_.channel;
    channel_config.label = "hbm/ch" + std::to_string(i);
    channels_.push_back(
        std::make_unique<HbmChannel>(scheduler, std::move(channel_config)));
  }
  ctr_crossbar_routed_ = telemetry::metrics().counter("hbm.crossbar_routed");
  if (config_.crossbar_enabled) {
    crossbar_ports_.reserve(total);
    for (std::size_t i = 0; i < total; ++i) {
      crossbar_ports_.push_back(std::make_unique<CrossbarPort>(*this, i));
    }
  }
}

HbmChannel& HbmDevice::channel(std::size_t index) {
  SPNHBM_REQUIRE(index < channels_.size(), "channel index out of range");
  return *channels_[index];
}

axi::AxiPort& HbmDevice::port(std::size_t index) {
  SPNHBM_REQUIRE(index < channels_.size(), "port index out of range");
  if (config_.crossbar_enabled) return *crossbar_ports_[index];
  return channels_[index]->port();
}

sim::Task<void> HbmDevice::CrossbarPort::transfer(axi::BurstRequest request) {
  // Crossbar routing: added latency plus a throughput penalty encoded as a
  // service-time stretch (modelled with a longer synthetic burst).
  device_.ctr_crossbar_routed_->add(1);
  co_await sim::delay(device_.scheduler_, device_.config_.crossbar_latency);
  co_await device_.channels_[index_]->access(
      request, 1.0 + device_.config_.crossbar_throughput_penalty);
}

std::uint32_t HbmDevice::CrossbarPort::max_burst_bytes() const {
  return device_.channels_[index_]->config().max_burst_bytes;
}

}  // namespace spnhbm::hbm
