// High-Bandwidth Memory (HBM2) device model.
//
// Models the HBM on the Bittware XUP-VVH / Xilinx VU37P as the paper uses
// it (§II-B): 2 stacks x 16 channels, each channel exposing one AXI3 port
// (256 bit @ 450 MHz) over its own 256 MiB region. Without the optional
// crossbar the channels are fully independent, which is the property the
// paper's architecture exploits (one channel per accelerator, linear
// scaling).
//
// Channel timing is a calibrated burst-service model:
//   service(burst) = beats + fixed controller/activate overhead
//                  + read<->write turnaround + refresh share,
// which reproduces the paper's measured ~12 GiB/s combined R+W per channel
// for large linear transfers (Fig. 2) out of the 14.4 GB/s raw pin rate.
//
// Each channel also owns a sparse functional backing store, so the
// accelerator's results in simulation are real data, not placeholders.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "spnhbm/axi/port.hpp"
#include "spnhbm/sim/channel.hpp"
#include "spnhbm/sim/scheduler.hpp"
#include "spnhbm/telemetry/metrics.hpp"
#include "spnhbm/telemetry/trace.hpp"
#include "spnhbm/util/error.hpp"

namespace spnhbm::hbm {

/// Detected-uncorrectable memory error: the modelled ECC machinery catches
/// a corruption (fault injection) and fails the access instead of silently
/// returning bad data. The host driver treats it like a DMA abort and
/// retries the transfer.
class HbmEccError : public Error {
 public:
  explicit HbmEccError(const std::string& what)
      : Error("HBM ECC error: " + what) {}
};

struct HbmChannelConfig {
  ClockDomain clock{450e6};
  std::uint32_t bytes_per_cycle = 32;  ///< 256-bit AXI3 data path
  std::uint64_t capacity_bytes = 256ull * 1024 * 1024;
  std::uint32_t max_burst_bytes = 4096;
  /// Fixed per-burst controller/row-activate overhead.
  Picoseconds burst_overhead = nanoseconds(10);
  /// Bus turnaround when the access direction changes.
  Picoseconds turnaround = nanoseconds(15);
  /// Refresh share (tRFC / tREFI), applied as a service-time stretch.
  double refresh_overhead = 0.039;
  /// Telemetry label (trace track name); HbmDevice sets "hbm/ch<i>".
  std::string label = "hbm/ch";
};

class HbmChannel {
 public:
  HbmChannel(sim::Scheduler& scheduler, HbmChannelConfig config = {});

  const HbmChannelConfig& config() const { return config_; }

  /// Timed burst access (exclusive FIFO occupancy of the channel).
  /// `service_stretch` > 1 models degraded routing (crossbar paths).
  sim::Task<void> access(axi::BurstRequest request,
                         double service_stretch = 1.0);

  /// AxiPort view of this channel (what the SmartConnect attaches to).
  axi::AxiPort& port() { return port_; }

  // --- Functional backing store (back-door, zero simulated time) ---------
  void write_backdoor(std::uint64_t address, std::span<const std::uint8_t> data);
  void read_backdoor(std::uint64_t address, std::span<std::uint8_t> out) const;

  // --- Statistics ----------------------------------------------------------
  std::uint64_t bytes_read() const { return bytes_read_; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  Picoseconds busy_time() const { return busy_time_; }
  /// Row-buffer locality (metrics only; does not influence timing). A burst
  /// hitting the same 1 KiB row as its predecessor counts as a hit.
  std::uint64_t row_hits() const { return row_hits_; }
  std::uint64_t row_misses() const { return row_misses_; }

 private:
  class PortAdapter final : public axi::AxiPort {
   public:
    explicit PortAdapter(HbmChannel& channel) : channel_(channel) {}
    sim::Task<void> transfer(axi::BurstRequest request) override {
      return channel_.access(request);
    }
    std::uint32_t max_burst_bytes() const override {
      return channel_.config_.max_burst_bytes;
    }

   private:
    HbmChannel& channel_;
  };

  Picoseconds service_time(const axi::BurstRequest& request);

  static constexpr std::uint64_t kPageBytes = 64 * 1024;
  std::uint8_t* page_for(std::uint64_t address);
  const std::uint8_t* page_for(std::uint64_t address) const;

  sim::Scheduler& scheduler_;
  HbmChannelConfig config_;
  sim::Resource occupancy_;
  PortAdapter port_;
  bool last_was_write_ = false;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
  Picoseconds busy_time_ = 0;
  std::uint64_t row_hits_ = 0;
  std::uint64_t row_misses_ = 0;
  std::uint64_t last_row_ = ~0ull;
  telemetry::TrackId track_ = 0;
  std::shared_ptr<telemetry::Counter> ctr_bytes_read_;
  std::shared_ptr<telemetry::Counter> ctr_bytes_written_;
  std::shared_ptr<telemetry::Counter> ctr_bursts_;
  std::shared_ptr<telemetry::Counter> ctr_row_hits_;
  std::shared_ptr<telemetry::Counter> ctr_row_misses_;
  mutable std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> pages_;
};

struct HbmDeviceConfig {
  std::size_t stacks = 2;
  std::size_t channels_per_stack = 16;
  HbmChannelConfig channel;
  /// Optional global crossbar (paper §II-B: disabled for max performance).
  bool crossbar_enabled = false;
  Picoseconds crossbar_latency = nanoseconds(110);
  /// Service-time stretch for accesses routed across the crossbar.
  double crossbar_throughput_penalty = 0.25;
};

/// The full HBM subsystem: 32 independent channels (or crossbar-routed).
class HbmDevice {
 public:
  HbmDevice(sim::Scheduler& scheduler, HbmDeviceConfig config = {});

  std::size_t channel_count() const { return channels_.size(); }
  HbmChannel& channel(std::size_t index);
  const HbmDeviceConfig& config() const { return config_; }

  /// Port for PE `index`. Without the crossbar this is the channel port
  /// itself; with the crossbar it is a latency/penalty-wrapped view.
  axi::AxiPort& port(std::size_t index);

  /// Vendor-quoted aggregate bandwidth (460 GB/s on the XUP-VVH).
  static Bandwidth theoretical_peak() {
    return Bandwidth::gb_per_second(460.0);
  }

 private:
  class CrossbarPort final : public axi::AxiPort {
   public:
    CrossbarPort(HbmDevice& device, std::size_t index)
        : device_(device), index_(index) {}
    sim::Task<void> transfer(axi::BurstRequest request) override;
    std::uint32_t max_burst_bytes() const override;

   private:
    HbmDevice& device_;
    std::size_t index_;
  };

  sim::Scheduler& scheduler_;
  HbmDeviceConfig config_;
  std::vector<std::unique_ptr<HbmChannel>> channels_;
  std::vector<std::unique_ptr<CrossbarPort>> crossbar_ports_;
  std::shared_ptr<telemetry::Counter> ctr_crossbar_routed_;
};

}  // namespace spnhbm::hbm
