// AXI burst-level timing abstractions.
//
// The simulation models AXI at *burst transaction* granularity: a unit
// issues a read or write burst against a port and co_awaits its
// completion. Data movement is purely timing here; functional contents
// live in the memory device's backing store (back-door accessed by the
// host/DMA models), exactly like the split between a bus-functional model
// and a memory model in RTL verification.
#pragma once

#include <cstdint>

#include "spnhbm/sim/task.hpp"
#include "spnhbm/util/units.hpp"

namespace spnhbm::axi {

struct BurstRequest {
  std::uint64_t address = 0;
  std::uint32_t bytes = 0;
  bool is_write = false;
};

/// Abstract AXI subordinate (memory-side) port.
class AxiPort {
 public:
  virtual ~AxiPort() = default;

  /// Completes when the last beat of the burst has been transferred.
  virtual sim::Task<void> transfer(BurstRequest request) = 0;

  /// Largest single burst the port accepts (AXI4: 256 beats).
  virtual std::uint32_t max_burst_bytes() const = 0;
};

/// Splits an arbitrarily large linear transfer into maximal bursts and
/// issues them back-to-back against `port` (one outstanding — callers that
/// want multiple outstanding bursts pipeline several of these).
sim::Task<void> linear_transfer(AxiPort& port, std::uint64_t address,
                                std::uint64_t bytes, bool is_write);

}  // namespace spnhbm::axi
