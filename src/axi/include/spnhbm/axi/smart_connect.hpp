// AXI SmartConnect and register-slice timing models.
//
// The paper runs the SPN accelerators at 225 MHz with a 512-bit interface
// and uses an AXI SmartConnect for the clock- (225<->450 MHz), width-
// (512<->256 bit) and protocol- (AXI4<->AXI3) conversion towards the HBM
// port. The key measured property (paper Fig. 2) is that the conversion
// adds *latency* but preserves *throughput*: the token rate
// 512 bit x 225 MHz equals 256 bit x 450 MHz. These models therefore add
// per-burst latency (and split bursts down to the downstream maximum) while
// leaving occupancy to the downstream port.
#pragma once

#include <memory>

#include "spnhbm/axi/port.hpp"
#include "spnhbm/sim/scheduler.hpp"
#include "spnhbm/telemetry/metrics.hpp"

namespace spnhbm::axi {

struct SmartConnectConfig {
  /// Pipeline latency through the converter, both directions combined.
  Picoseconds conversion_latency = nanoseconds(55);
  /// Downstream burst cap after protocol conversion (AXI3: 16 beats of
  /// 32 B at the HBM port = 512 B... the HBM controller linearises longer
  /// bursts itself, so the effective cap is 4 KiB as in the RTL flow).
  std::uint32_t max_burst_bytes = 4096;
};

class SmartConnect final : public AxiPort {
 public:
  SmartConnect(sim::Scheduler& scheduler, AxiPort& downstream,
               SmartConnectConfig config = {});

  sim::Task<void> transfer(BurstRequest request) override;
  std::uint32_t max_burst_bytes() const override {
    return config_.max_burst_bytes;
  }

 private:
  sim::Scheduler& scheduler_;
  AxiPort& downstream_;
  SmartConnectConfig config_;
  std::shared_ptr<telemetry::Counter> ctr_bursts_;
  std::shared_ptr<telemetry::Counter> ctr_bytes_;
};

struct RegisterSliceConfig {
  /// One pipeline stage each way at the attached clock.
  Picoseconds latency = nanoseconds(5);
};

/// Register slice: pure latency, inserted for routability (paper §IV-A).
class RegisterSlice final : public AxiPort {
 public:
  RegisterSlice(sim::Scheduler& scheduler, AxiPort& downstream,
                RegisterSliceConfig config = {});

  sim::Task<void> transfer(BurstRequest request) override;
  std::uint32_t max_burst_bytes() const override {
    return downstream_.max_burst_bytes();
  }

 private:
  sim::Scheduler& scheduler_;
  AxiPort& downstream_;
  RegisterSliceConfig config_;
};

}  // namespace spnhbm::axi
