#include "spnhbm/axi/smart_connect.hpp"

#include <algorithm>

namespace spnhbm::axi {

SmartConnect::SmartConnect(sim::Scheduler& scheduler, AxiPort& downstream,
                           SmartConnectConfig config)
    : scheduler_(scheduler), downstream_(downstream), config_(config) {
  config_.max_burst_bytes =
      std::min(config_.max_burst_bytes, downstream.max_burst_bytes());
  auto& registry = telemetry::metrics();
  ctr_bursts_ = registry.counter("axi.smart_connect.bursts");
  ctr_bytes_ = registry.counter("axi.smart_connect.bytes");
}

sim::Task<void> SmartConnect::transfer(BurstRequest request) {
  SPNHBM_REQUIRE(request.bytes <= config_.max_burst_bytes,
                 "burst exceeds SmartConnect cap");
  ctr_bursts_->add(1);
  ctr_bytes_->add(request.bytes);
  // Width/clock/protocol conversion pipeline: latency only. The token rate
  // is conserved by construction (512 b x 225 MHz == 256 b x 450 MHz), so
  // occupancy is wholly determined by the downstream port.
  co_await sim::delay(scheduler_, config_.conversion_latency);
  co_await downstream_.transfer(request);
}

RegisterSlice::RegisterSlice(sim::Scheduler& scheduler, AxiPort& downstream,
                             RegisterSliceConfig config)
    : scheduler_(scheduler), downstream_(downstream), config_(config) {}

sim::Task<void> RegisterSlice::transfer(BurstRequest request) {
  co_await sim::delay(scheduler_, config_.latency);
  co_await downstream_.transfer(request);
}

}  // namespace spnhbm::axi
