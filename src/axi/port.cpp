#include "spnhbm/axi/port.hpp"

#include <algorithm>

namespace spnhbm::axi {

sim::Task<void> linear_transfer(AxiPort& port, std::uint64_t address,
                                std::uint64_t bytes, bool is_write) {
  const std::uint32_t burst_cap = port.max_burst_bytes();
  SPNHBM_REQUIRE(burst_cap > 0, "port reports zero burst size");
  std::uint64_t remaining = bytes;
  std::uint64_t cursor = address;
  while (remaining > 0) {
    const auto chunk = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(remaining, burst_cap));
    co_await port.transfer(BurstRequest{cursor, chunk, is_write});
    cursor += chunk;
    remaining -= chunk;
  }
}

}  // namespace spnhbm::axi
