#include "spnhbm/gpu/execution_model.hpp"

namespace spnhbm::gpu {

GpuExecutionModel::GpuExecutionModel(GpuModelConfig config)
    : config_(config) {
  SPNHBM_REQUIRE(config_.batch_samples > 0, "batch must be positive");
  SPNHBM_REQUIRE(config_.elementwise_efficiency > 0 &&
                     config_.gather_efficiency > 0,
                 "efficiencies must be positive");
}

GpuBatchBreakdown GpuExecutionModel::batch_breakdown(
    const compiler::DatapathModule& module,
    std::uint64_t batch_samples) const {
  const auto ops = static_cast<double>(module.ops().size());
  const auto gathers = static_cast<double>(
      module.count_ops(compiler::OpKind::kHistogramLookup));
  const double elementwise = ops - gathers;
  const auto batch = static_cast<double>(batch_samples);

  GpuBatchBreakdown breakdown;
  breakdown.launch_time = static_cast<Picoseconds>(
      ops * static_cast<double>(config_.kernel_launch_overhead));
  const double dram = config_.dram_bandwidth.as_bytes_per_second();
  breakdown.gather_time = static_cast<Picoseconds>(
      gathers * batch * config_.bytes_per_op_per_sample /
      (dram * config_.gather_efficiency) *
      static_cast<double>(kPicosecondsPerSecond));
  breakdown.elementwise_time = static_cast<Picoseconds>(
      elementwise * batch * config_.bytes_per_op_per_sample /
      (dram * config_.elementwise_efficiency) *
      static_cast<double>(kPicosecondsPerSecond));
  const double transfer_bytes =
      batch * (static_cast<double>(module.input_features()) + 8.0);
  breakdown.transfer_time = static_cast<Picoseconds>(
      transfer_bytes / config_.pcie.as_bytes_per_second() *
      static_cast<double>(kPicosecondsPerSecond));
  return breakdown;
}

double GpuExecutionModel::throughput(const compiler::DatapathModule& module,
                                     std::uint64_t batch_samples) const {
  const auto breakdown = batch_breakdown(module, batch_samples);
  return static_cast<double>(batch_samples) /
         to_seconds(breakdown.total());
}

double GpuExecutionModel::throughput(
    const compiler::DatapathModule& module) const {
  return throughput(module, config_.batch_samples);
}

}  // namespace spnhbm::gpu
