// Mechanistic V100 execution model for the GPU baseline.
//
// The paper's GPU numbers come from [8], whose baseline evaluates the SPN
// with SPFlow's TensorFlow backend: every SPN node becomes a separate
// batched kernel (gather for histogram leaves, elementwise mul/add for
// inner nodes) writing its intermediate column back to HBM2. That
// execution style — not the V100's raw FLOPs — is why the GPU loses: per
// batch it pays
//   * one kernel launch per operator (launch latency dominates for big
//     graphs),
//   * a full DRAM round-trip per operator column (low arithmetic
//     intensity; histogram gathers additionally uncoalesced),
//   * PCIe transfers for inputs and results.
//
// This model prices exactly those three mechanisms. It reproduces the
// reconstructed V100 curve within ~25% across the NIPS zoo and, more
// importantly, *explains* it (see bench/gpu_baseline_model).
#pragma once

#include <cstdint>
#include <string>

#include "spnhbm/compiler/datapath.hpp"
#include "spnhbm/util/units.hpp"

namespace spnhbm::gpu {

struct GpuModelConfig {
  std::string name = "Tesla V100 (SPFlow/TF execution)";
  /// HBM2 stream bandwidth after ECC (measured-class, not datasheet).
  Bandwidth dram_bandwidth = Bandwidth::gb_per_second(790.0);
  /// DRAM efficiency of coalesced elementwise kernels.
  double elementwise_efficiency = 0.80;
  /// DRAM efficiency of uncoalesced histogram gathers.
  double gather_efficiency = 0.26;
  /// Bytes moved per operator per sample (read operands + write column).
  double bytes_per_op_per_sample = 16.0;
  /// Kernel launch + framework dispatch latency per operator.
  Picoseconds kernel_launch_overhead = microseconds(12);
  /// PCIe 3.0 x16 effective transfer rate.
  Bandwidth pcie = Bandwidth::gbit_per_second(100.0);
  /// Samples per batch (large batches amortise launches; bounded by
  /// device memory for the intermediate columns).
  std::uint64_t batch_samples = 512 * 1024;
};

struct GpuBatchBreakdown {
  Picoseconds launch_time = 0;
  Picoseconds gather_time = 0;
  Picoseconds elementwise_time = 0;
  Picoseconds transfer_time = 0;
  Picoseconds total() const {
    return launch_time + gather_time + elementwise_time + transfer_time;
  }
};

class GpuExecutionModel {
 public:
  explicit GpuExecutionModel(GpuModelConfig config = {});

  const GpuModelConfig& config() const { return config_; }

  /// Time for one batch of the compiled graph.
  GpuBatchBreakdown batch_breakdown(const compiler::DatapathModule& module,
                                    std::uint64_t batch_samples) const;

  /// Steady-state end-to-end throughput (samples/s) at the configured
  /// batch size.
  double throughput(const compiler::DatapathModule& module) const;

  /// Throughput with an explicit batch size (for the batch-size sweep).
  double throughput(const compiler::DatapathModule& module,
                    std::uint64_t batch_samples) const;

 private:
  GpuModelConfig config_;
};

}  // namespace spnhbm::gpu
