#include "spnhbm/ddr/ddr.hpp"

namespace spnhbm::ddr {

DdrChannel::DdrChannel(sim::Scheduler& scheduler, DdrChannelConfig config)
    : scheduler_(scheduler),
      config_(config),
      occupancy_(scheduler, 1),
      port_(*this) {
  SPNHBM_REQUIRE(config_.bytes_per_transfer > 0, "transfer width positive");
}

sim::Task<void> DdrChannel::access(axi::BurstRequest request) {
  SPNHBM_REQUIRE(request.bytes > 0 && request.bytes <= config_.max_burst_bytes,
                 "burst size out of range");
  SPNHBM_REQUIRE(request.address + request.bytes <= config_.capacity_bytes,
                 "access beyond channel capacity");
  co_await occupancy_.acquire();
  const double bytes_per_second =
      config_.mega_transfers_per_second * 1e6 * config_.bytes_per_transfer;
  Picoseconds time = static_cast<Picoseconds>(
      static_cast<double>(request.bytes) / bytes_per_second *
      static_cast<double>(kPicosecondsPerSecond));
  time += config_.burst_overhead;
  if (request.is_write != last_was_write_) time += config_.turnaround;
  last_was_write_ = request.is_write;
  time += static_cast<Picoseconds>(static_cast<double>(time) *
                                   config_.refresh_overhead);
  busy_time_ += time;
  if (request.is_write) {
    bytes_written_ += request.bytes;
  } else {
    bytes_read_ += request.bytes;
  }
  co_await sim::delay(scheduler_, time);
  occupancy_.release();
}

}  // namespace spnhbm::ddr
