// Off-chip DDR4 SDRAM channel model — the memory system of the prior-work
// AWS F1 architecture [8] that this paper replaces with HBM.
//
// Differences from the HBM channel that matter to the reproduction:
//   * one soft memory controller per channel, implemented in FPGA logic
//     (the resource cost that limited [8] to 4 channels / hurt timing
//     closure — accounted in fpga/resource_model);
//   * a single wide channel (64 bit @ 2133 MT/s) shared by however many
//     PEs are bound to it, instead of one independent channel per PE;
//   * slightly worse efficiency (longer tRFC on 8 Gb parts, bank-group
//     turnaround on shared access streams).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "spnhbm/axi/port.hpp"
#include "spnhbm/sim/channel.hpp"
#include "spnhbm/sim/scheduler.hpp"

namespace spnhbm::ddr {

struct DdrChannelConfig {
  /// DDR4-2133, 64-bit: 8 bytes x 2133 MT/s = 17.064 GB/s raw.
  double mega_transfers_per_second = 2133.0;
  std::uint32_t bytes_per_transfer = 8;
  std::uint64_t capacity_bytes = 16ull * 1024 * 1024 * 1024;
  std::uint32_t max_burst_bytes = 4096;
  Picoseconds burst_overhead = nanoseconds(35);
  Picoseconds turnaround = nanoseconds(25);
  double refresh_overhead = 0.055;
};

class DdrChannel {
 public:
  DdrChannel(sim::Scheduler& scheduler, DdrChannelConfig config = {});

  const DdrChannelConfig& config() const { return config_; }
  sim::Task<void> access(axi::BurstRequest request);
  axi::AxiPort& port() { return port_; }

  /// Raw pin bandwidth.
  Bandwidth raw_bandwidth() const {
    return Bandwidth::bytes_per_second(config_.mega_transfers_per_second *
                                       1e6 *
                                       config_.bytes_per_transfer);
  }

  std::uint64_t bytes_read() const { return bytes_read_; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  Picoseconds busy_time() const { return busy_time_; }

 private:
  class PortAdapter final : public axi::AxiPort {
   public:
    explicit PortAdapter(DdrChannel& channel) : channel_(channel) {}
    sim::Task<void> transfer(axi::BurstRequest request) override {
      return channel_.access(request);
    }
    std::uint32_t max_burst_bytes() const override {
      return channel_.config_.max_burst_bytes;
    }

   private:
    DdrChannel& channel_;
  };

  sim::Scheduler& scheduler_;
  DdrChannelConfig config_;
  sim::Resource occupancy_;
  PortAdapter port_;
  bool last_was_write_ = false;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
  Picoseconds busy_time_ = 0;
};

}  // namespace spnhbm::ddr
