// Long-running soak harness: chaos + traffic + hot-swaps + rebalancing.
//
// One soak run composes everything the serving stack claims to survive,
// at once, for minutes of *virtual* time:
//
//   * a FleetRouter over several FpgaSimDevices, fronted by an RpcServer
//     on a loopback port,
//   * ResilientClients pushing waves of inference traffic through the
//     wire (idempotency-keyed retries, reconnects),
//   * a chaos plan armed in fault::injector() — device faults
//     (engine.submit, pcie.dma, hbm.access) and network faults
//     (rpc.accept, rpc.hello, rpc.conn.rx/tx, rpc.client.connect)
//     firing deterministically by (site, instance, op-index),
//   * scheduled hot-swaps (undeploy one replica, deploy a fresh one into
//     a newly reconfigured partition) running *under* the traffic, and
//   * periodic telemetry-driven rebalance passes.
//
// Virtual time is the fleet's cumulative partial-reconfiguration charge
// (sum of FpgaDeviceStats::reconfiguration_seconds): every scheduled
// swap streams a deterministic slice of bitstream through the ICAP, so
// "two minutes of soak" is a deterministic number of waves and swaps —
// independent of the host's wall clock and of whether chaos is armed.
//
// After the last wave the injector is disarmed and a bounded convergence
// phase drives probe traffic until no engine is left quarantined or
// degraded. Then the harness asserts the full identity stack:
//
//   client books     sent == ok + give-ups            (per client, summed)
//   rpc server       received == accepted + rejected + shed + duplicates
//                    accepted == completed + failed
//   fleet router     routed == accepted + rejected
//   health           every live engine back to healthy
//   zero leaks       no outstanding requests, no open connections,
//                    no queued samples
//
// Determinism: SoakReport::describe() contains only seed-deterministic
// lines (wave/swap/request counts, the order-independent result digest,
// the verdicts) — wall-clock detail stays out of it — so a run with a
// disarmed chaos plan is byte-identical to a run with no plan at all,
// and two runs with the same seed and the same armed plan agree.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "spnhbm/model/artifact.hpp"

namespace spnhbm::soak {

/// One model in the soak mix, with the payloads its requests cycle.
struct SoakModel {
  model::ModelHandle model;
  /// Non-empty; each payload a multiple of the model's input width.
  std::vector<std::vector<std::uint8_t>> payloads;
};

struct SoakConfig {
  std::uint64_t seed = 42;
  /// Virtual minutes of reconfiguration time to soak for (>= this much
  /// is charged before the loop stops).
  double minutes = 2.0;
  std::size_t devices = 2;
  /// Replicas per model. >= 2 keeps every model serving while one
  /// replica is mid-swap (enforced when swaps_per_wave > 0).
  std::size_t replicas = 2;
  std::size_t clients = 2;
  /// Requests per client per wave.
  std::size_t wave_requests = 8;
  /// Hot-swaps performed under each wave's traffic.
  std::size_t swaps_per_wave = 4;
  /// A rebalance pass every this many waves; 0 = never.
  std::size_t rebalance_every = 3;
  /// Loopback port of the soak's RpcServer; 0 = ephemeral.
  std::uint16_t port = 0;
  std::vector<SoakModel> models;
  /// Wall-clock bound on the post-chaos convergence phase.
  double convergence_wall_seconds = 30.0;
};

struct SoakReport {
  std::uint64_t seed = 0;
  double virtual_target_seconds = 0.0;
  std::size_t devices = 0;
  std::size_t replicas = 0;
  std::size_t clients = 0;
  std::size_t models = 0;

  std::uint64_t waves = 0;
  std::uint64_t swaps = 0;
  std::uint64_t rebalances = 0;
  std::uint64_t scale_ups = 0;
  std::uint64_t scale_downs = 0;
  /// Virtual seconds actually charged (>= virtual_target_seconds).
  double virtual_seconds = 0.0;

  /// Main-phase books (the deterministic ones).
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t giveups = 0;
  /// Order-independent digest over every OK result of the main phase —
  /// the cross-run reproducibility witness.
  std::uint64_t digest = 0;

  /// Chaos-dependent observability (stderr/JSON only, never stdout).
  std::uint64_t convergence_requests = 0;
  std::uint64_t retries = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t health_skips = 0;
  double wall_seconds = 0.0;

  /// The assertion stack.
  bool client_books_ok = false;
  bool server_conserved = false;
  bool fleet_conserved = false;
  bool health_converged = false;
  bool drained = false;

  bool passed() const {
    return client_books_ok && server_conserved && fleet_conserved &&
           health_converged && drained && requests == ok + giveups;
  }
  /// Deterministic summary: same seed (and same armed plan) => same
  /// bytes. Goes to stdout.
  std::string describe() const;
  /// Chaos-dependent detail (retries, reconnects, wall time). Goes to
  /// stderr.
  std::string detail() const;
  /// BENCH_*.json document ("bench": "soak") in the shape
  /// tools/bench_compare consumes.
  std::string bench_json() const;
};

/// Runs the harness described above. The caller arms (or does not arm)
/// the chaos plan before calling; run_soak disarms the injector itself
/// after the last wave so the convergence phase runs fault-free.
SoakReport run_soak(const SoakConfig& config);

}  // namespace spnhbm::soak
