#include "spnhbm/soak/soak.hpp"

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <utility>

#include "spnhbm/fault/fault.hpp"
#include "spnhbm/fleet/router.hpp"
#include "spnhbm/rpc/resilient_client.hpp"
#include "spnhbm/rpc/server.hpp"
#include "spnhbm/telemetry/json.hpp"
#include "spnhbm/util/error.hpp"
#include "spnhbm/util/log.hpp"
#include "spnhbm/util/strings.hpp"

namespace spnhbm::soak {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Order-independent over requests (the waves race each other), exact
/// over values: hash each result double's bit pattern, mix positions in,
/// then sum the per-request hashes with wrapping adds.
std::uint64_t request_digest(const std::vector<double>& results) {
  std::uint64_t h = 0x736F616B64696765ull;  // "soakdige"
  for (std::size_t j = 0; j < results.size(); ++j) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &results[j], sizeof(bits));
    h += splitmix64(bits ^ splitmix64(j));
  }
  return splitmix64(h);
}

const char* verdict(bool ok) { return ok ? "ok" : "VIOLATED"; }
const char* yesno(bool ok) { return ok ? "yes" : "NO"; }

}  // namespace

SoakReport run_soak(const SoakConfig& config) {
  SPNHBM_REQUIRE(!config.models.empty(), "soak needs at least one model");
  SPNHBM_REQUIRE(config.devices > 0, "soak needs at least one device");
  SPNHBM_REQUIRE(config.clients > 0, "soak needs at least one client");
  SPNHBM_REQUIRE(config.replicas > 0, "soak needs at least one replica");
  SPNHBM_REQUIRE(config.swaps_per_wave == 0 || config.replicas >= 2,
                 "hot-swaps under traffic need >= 2 replicas per model");
  for (const SoakModel& entry : config.models) {
    SPNHBM_REQUIRE(entry.model != nullptr, "soak model entry without a model");
    SPNHBM_REQUIRE(!entry.payloads.empty(),
                   "every soak model needs at least one payload");
    const std::size_t width = entry.model->input_features();
    for (const auto& payload : entry.payloads) {
      SPNHBM_REQUIRE(width > 0 && payload.size() % width == 0 &&
                         !payload.empty(),
                     "soak payload size must be a positive multiple of the "
                     "model's input width");
    }
  }

  const std::size_t model_count = config.models.size();
  const double target_seconds = config.minutes * 60.0;
  const Clock::time_point wall_start = Clock::now();

  // --- Fleet: packed devices with one slot of headroom each, so every
  // swap's partial-reconfiguration charge is a meaningful slice of the
  // full bitstream and the rebalancer has room for one scale-up.
  fleet::FleetConfig fleet_config;
  fleet_config.devices = config.devices;
  fleet_config.device_prefix = "soak";
  const std::size_t tenants =
      model_count * config.replicas;
  fleet_config.device.budget.pe_slots = static_cast<int>(
      (tenants + config.devices - 1) / config.devices + 1);
  fleet::FleetRouter router(fleet_config);
  for (const SoakModel& entry : config.models) {
    for (std::size_t r = 0; r < config.replicas; ++r) {
      router.deploy(entry.model, 1);
    }
  }
  router.start();

  rpc::RpcServerConfig rpc_config;
  rpc_config.port = config.port;
  rpc::RpcServer rpc_server(router, rpc_config);
  rpc_server.start();

  // --- Clients: effectively-unbounded retries with tight backoffs. The
  // chaos plan is made of windows and every-N rules, so every request
  // eventually lands — which is exactly what makes requests == ok a
  // seed-deterministic assertion.
  std::vector<std::unique_ptr<rpc::ResilientClient>> clients;
  for (std::size_t c = 0; c < config.clients; ++c) {
    rpc::ResilientClientConfig client_config;
    client_config.host = "127.0.0.1";
    client_config.port = rpc_server.port();
    client_config.label = "soak" + std::to_string(c);
    client_config.seed = config.seed;
    client_config.max_attempts = 1000;
    client_config.backoff_base_us = 100.0;
    client_config.backoff_cap_us = 2'000.0;
    client_config.max_connect_attempts = 100;
    client_config.connect_backoff_base_us = 200.0;
    client_config.connect_backoff_cap_us = 20'000.0;
    client_config.retry_internal_errors = true;
    clients.push_back(
        std::make_unique<rpc::ResilientClient>(std::move(client_config)));
  }

  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> giveups{0};
  std::atomic<std::uint64_t> digest{0};
  // Per-client per-model payload cursors; each client thread touches only
  // its own row.
  std::vector<std::vector<std::size_t>> payload_cursor(
      config.clients, std::vector<std::size_t>(model_count, 0));

  // Deterministic traffic skew: model 0 takes 3/4 of the stream, the
  // rest rotate through the last quarter. The skew keeps the hot model's
  // traffic share far from the rebalancer's thresholds, so scaling
  // decisions cannot flip on chaos-induced retry noise.
  const auto pick_model = [&](std::uint64_t wave, std::size_t client,
                              std::size_t i) -> std::size_t {
    if (model_count > 1 && i % 4 == 3) {
      return 1 + (wave + client + i) % (model_count - 1);
    }
    return 0;
  };

  const auto traffic_wave = [&](std::size_t client, std::uint64_t wave) {
    for (std::size_t i = 0; i < config.wave_requests; ++i) {
      const std::size_t pick = pick_model(wave, client, i);
      const SoakModel& entry = config.models[pick];
      const auto& payload =
          entry.payloads[payload_cursor[client][pick]++ %
                         entry.payloads.size()];
      requests.fetch_add(1, std::memory_order_relaxed);
      try {
        const std::vector<double> results =
            clients[client]->infer(entry.model->id(), payload);
        ok.fetch_add(1, std::memory_order_relaxed);
        digest.fetch_add(request_digest(results), std::memory_order_relaxed);
      } catch (const Error& e) {
        giveups.fetch_add(1, std::memory_order_relaxed);
        SPNHBM_WARN("soak") << "main-phase give-up: " << e.what();
      }
    }
  };

  const auto virtual_seconds = [&]() {
    double total = 0.0;
    for (std::size_t m = 0; m < router.member_count(); ++m) {
      total += router.device(m).stats().reconfiguration_seconds;
    }
    return total;
  };

  // --- Main phase: waves of traffic with hot-swaps and rebalances
  // running underneath, until the fleet has streamed `minutes` worth of
  // partial bitstreams. The stop condition is virtual, so the wave count
  // is a pure function of the configuration.
  fleet::RebalancePolicy policy;
  policy.min_replicas = config.replicas;
  policy.max_replicas = config.replicas + 1;
  policy.hot_share = 0.5;
  policy.cold_share = 0.0;
  policy.pe_slots = 1;

  SoakReport report;
  std::uint64_t swap_counter = 0;
  std::uint64_t wave = 0;
  while (virtual_seconds() < target_seconds) {
    std::vector<std::thread> threads;
    threads.reserve(config.clients);
    for (std::size_t c = 0; c < config.clients; ++c) {
      threads.emplace_back(traffic_wave, c, wave);
    }
    // Hot-swaps under live traffic: replace the most recent replica with
    // a freshly reconfigured partition. replicas >= 2 keeps the model
    // serving throughout the swap.
    for (std::size_t s = 0; s < config.swaps_per_wave; ++s) {
      const SoakModel& entry = config.models[swap_counter % model_count];
      router.undeploy_one(entry.model->id());
      router.deploy(entry.model, 1);
      ++swap_counter;
    }
    if (config.rebalance_every > 0 &&
        (wave + 1) % config.rebalance_every == 0) {
      const fleet::RebalanceReport pass = router.rebalance(policy);
      report.rebalances += 1;
      report.scale_ups += pass.scaled_up.size();
      report.scale_downs += pass.scaled_down.size();
    }
    for (std::thread& thread : threads) thread.join();
    ++wave;
  }
  report.waves = wave;
  report.swaps = swap_counter;

  // --- Convergence phase: chaos off, then drive probe traffic straight
  // at every member still holding an unhealthy engine until the health
  // state machine settles. Direct member submits deliberately bypass the
  // router's first-pass health skip — a starving quarantined engine
  // would otherwise never see the probe batch that rehabilitates it.
  fault::injector().disarm();
  const auto all_healthy = [&]() {
    for (std::size_t m = 0; m < router.member_count(); ++m) {
      const engine::InferenceServer& server = router.server(m);
      for (std::size_t e = 0; e < server.engine_count(); ++e) {
        if (server.engine_retired(e)) continue;
        if (server.engine_health(e) != engine::EngineHealth::kHealthy) {
          return false;
        }
      }
    }
    return true;
  };
  const auto convergence_deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             config.convergence_wall_seconds));
  while (!all_healthy() && Clock::now() < convergence_deadline) {
    for (std::size_t m = 0; m < router.member_count(); ++m) {
      engine::InferenceServer& server = router.server(m);
      for (std::size_t e = 0; e < server.engine_count(); ++e) {
        if (server.engine_retired(e)) continue;
        if (server.engine_health(e) == engine::EngineHealth::kHealthy) {
          continue;
        }
        const std::string model_id = server.engine_model(e);
        for (const SoakModel& entry : config.models) {
          if (entry.model->id() != model_id) continue;
          auto future = server.try_submit(model_id, entry.payloads.front());
          report.convergence_requests += 1;
          if (future.has_value()) {
            try {
              future->get();
            } catch (const std::exception&) {
              // A failed probe backs the interval off; keep driving.
            }
          }
          break;
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  report.health_converged = all_healthy();

  // --- Drain and the zero-leak checks.
  bool zero_outstanding = true;
  for (auto& client : clients) {
    zero_outstanding = zero_outstanding && client->outstanding() == 0;
    report.retries += client->retry_log().size();
    const std::uint64_t connects = client->connects();
    if (connects > 1) report.reconnects += connects - 1;
    client->close();
  }
  const auto drain_deadline = Clock::now() + std::chrono::seconds(5);
  while ((rpc_server.active_connections() > 0 ||
          router.outstanding_samples() > 0) &&
         Clock::now() < drain_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  report.drained = zero_outstanding && rpc_server.active_connections() == 0 &&
                   router.outstanding_samples() == 0;
  rpc_server.stop();
  router.stop();

  // --- Books.
  const rpc::RpcServerStats rpc_stats = rpc_server.stats();
  const fleet::FleetStats fleet_stats = router.stats();
  report.seed = config.seed;
  report.virtual_target_seconds = target_seconds;
  report.devices = config.devices;
  report.replicas = config.replicas;
  report.clients = config.clients;
  report.models = model_count;
  report.virtual_seconds = virtual_seconds();
  report.requests = requests.load();
  report.ok = ok.load();
  report.giveups = giveups.load();
  report.digest = digest.load();
  report.duplicates = rpc_stats.duplicates;
  report.health_skips = fleet_stats.health_skips;
  for (std::size_t m = 0; m < router.member_count(); ++m) {
    report.quarantines += router.server(m).stats().quarantines;
  }
  report.client_books_ok = report.requests == report.ok + report.giveups;
  report.server_conserved = rpc_stats.conserved();
  report.fleet_conserved =
      fleet_stats.routed_requests ==
      fleet_stats.accepted_requests + fleet_stats.rejected_requests;
  report.wall_seconds =
      std::chrono::duration<double>(Clock::now() - wall_start).count();
  return report;
}

std::string SoakReport::describe() const {
  std::string out;
  out += strformat(
      "soak: seed=%llu target=%.1fs models=%zu devices=%zu replicas=%zu "
      "clients=%zu\n",
      static_cast<unsigned long long>(seed), virtual_target_seconds, models,
      devices, replicas, clients);
  out += strformat(
      "  waves=%llu swaps=%llu rebalances=%llu (+%llu/-%llu) virtual=%.3fs\n",
      static_cast<unsigned long long>(waves),
      static_cast<unsigned long long>(swaps),
      static_cast<unsigned long long>(rebalances),
      static_cast<unsigned long long>(scale_ups),
      static_cast<unsigned long long>(scale_downs), virtual_seconds);
  out += strformat("  requests=%llu ok=%llu give-ups=%llu\n",
                   static_cast<unsigned long long>(requests),
                   static_cast<unsigned long long>(ok),
                   static_cast<unsigned long long>(giveups));
  out += strformat("  digest=0x%016llx\n",
                   static_cast<unsigned long long>(digest));
  out += strformat("  client books (sent == ok + give-ups): %s\n",
                   verdict(client_books_ok));
  out += strformat(
      "  server conservation (received == accepted + rejected + shed + "
      "duplicates): %s\n",
      verdict(server_conserved));
  out += strformat("  fleet conservation (routed == accepted + rejected): %s\n",
                   verdict(fleet_conserved));
  out += strformat("  health converged (every engine healthy): %s\n",
                   yesno(health_converged));
  out += strformat("  drained (zero outstanding, zero connections): %s\n",
                   yesno(drained));
  out += strformat("soak verdict: %s\n", passed() ? "PASS" : "FAIL");
  return out;
}

std::string SoakReport::detail() const {
  return strformat(
      "soak detail: wall=%.1fs retries=%llu reconnects=%llu duplicates=%llu "
      "quarantines=%llu health_skips=%llu convergence_requests=%llu\n",
      wall_seconds, static_cast<unsigned long long>(retries),
      static_cast<unsigned long long>(reconnects),
      static_cast<unsigned long long>(duplicates),
      static_cast<unsigned long long>(quarantines),
      static_cast<unsigned long long>(health_skips),
      static_cast<unsigned long long>(convergence_requests));
}

std::string SoakReport::bench_json() const {
  telemetry::JsonWriter w;
  w.begin_object();
  w.key("bench").value("soak");
  w.key("records").begin_array();
  w.begin_object();
  w.key("name").value("soak");
  w.key("seed").value(seed);
  w.key("virtual_seconds").value(virtual_seconds);
  w.key("waves").value(waves);
  w.key("swaps").value(swaps);
  w.key("rebalances").value(rebalances);
  w.key("requests").value(requests);
  w.key("ok").value(ok);
  w.key("giveups").value(giveups);
  w.key("digest_hex").value(strformat(
      "0x%016llx", static_cast<unsigned long long>(digest)));
  w.key("convergence_requests").value(convergence_requests);
  w.key("retries").value(retries);
  w.key("reconnects").value(reconnects);
  w.key("duplicates").value(duplicates);
  w.key("quarantines").value(quarantines);
  w.key("health_skips").value(health_skips);
  w.key("wall_seconds").value(wall_seconds);
  w.key("passed").value(passed() ? 1 : 0);
  w.end_object();
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace spnhbm::soak
