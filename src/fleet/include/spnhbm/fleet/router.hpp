// A sharded fleet router over N simulated FPGA devices.
//
// Completes the spatial-multi-tenancy refactor: one device is a
// partitioned set of datapaths (engine::FpgaSimDevice), and one fleet is
// a routed set of devices. Each fleet member pairs a FpgaSimDevice with
// its own InferenceServer; deploy() places a model replica into a fresh
// partition of the least-loaded member (partial reconfiguration only —
// co-resident tenants keep serving) and registers the tenant engine with
// that member's running server. The router itself implements
// engine::InferenceService, so RpcServer and the CLI front a whole fleet
// exactly as they front a single server.
//
// Routing: try_submit() resolves the model (lane id or unambiguous bare
// name), then offers the request to the model's replicas round-robin,
// falling over to the next replica when a member's queue bound rejects
// it. Member health folds into the choice: replicas whose engine is
// quarantined, or whose member has rejected
// `member_suspect_threshold` consecutive offers, are skipped on the
// first pass (counted in stats().health_skips) and only offered to as a
// last resort when every healthy replica rejected — a degraded fleet
// still prefers guaranteed-dead capacity over a guaranteed rejection.
// The fleet keeps conservation identities end to end:
//     routed_requests == accepted_requests + rejected_requests
// and every accepted sample is queued on exactly one member.
//
// Rebalancing: rebalance() reads the process-global telemetry counters
// "server.model.<id>.samples" (the PR-2 metrics registry — every member
// server feeds them), computes each model's share of the traffic since
// the previous rebalance, and scales hot models up (one more replica, on
// the member with the most free PE slots) and cold models down (retire +
// evict one replica), within the policy's replica bounds.
//
// Threading: the router's bookkeeping is mutex-guarded; data-plane calls
// (try_submit/stats) may run concurrently with each other and with the
// member servers. Control-plane calls (deploy/undeploy/rebalance/start/
// stop) must be serialised by the caller — the same contract as the
// underlying InferenceServer.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "spnhbm/engine/fpga_device.hpp"
#include "spnhbm/engine/server.hpp"
#include "spnhbm/engine/service.hpp"

namespace spnhbm::fleet {

struct FleetConfig {
  /// Number of simulated devices (fleet members); each gets its own
  /// InferenceServer. Member i's device is named "<device_prefix><i>".
  std::size_t devices = 2;
  std::string device_prefix = "fpga";
  /// Per-member server configuration.
  engine::ServerConfig server;
  /// Template for every member's device; `name` is overridden per member.
  engine::FpgaDeviceConfig device;
  /// PE slots per replica when deploy() is not told otherwise.
  int default_pe_slots = 1;
  /// Consecutive rejected offers after which a member is treated as
  /// suspect and skipped on the first routing pass (an accepted offer
  /// resets the count); <= 0 disables the deprioritisation.
  int member_suspect_threshold = 8;
};

/// Where one replica of a model lives.
struct ReplicaLocation {
  std::size_t member = 0;      ///< fleet member index
  std::string partition;       ///< partition name on that member's device
  std::size_t engine_index = 0;  ///< engine slot in the member's server
};

/// Thresholds for the telemetry-driven rebalancer.
struct RebalancePolicy {
  std::size_t min_replicas = 1;
  std::size_t max_replicas = 4;
  /// A model taking at least this share of the traffic since the last
  /// rebalance gains a replica (if under max_replicas and a member has
  /// free PE slots).
  double hot_share = 0.5;
  /// A model taking at most this share loses a replica (if over
  /// min_replicas).
  double cold_share = 0.05;
  /// PE slots of a replica added by the rebalancer.
  int pe_slots = 1;
};

/// What one rebalance() pass observed and did.
struct RebalanceReport {
  /// Samples served per model since the previous rebalance (the signal).
  std::map<std::string, std::uint64_t> sample_deltas;
  std::vector<std::string> scaled_up;    ///< model ids that gained a replica
  std::vector<std::string> scaled_down;  ///< model ids that lost a replica
  bool changed() const { return !scaled_up.empty() || !scaled_down.empty(); }
  std::string describe() const;
};

/// Router-level conservation accounting.
struct FleetStats {
  std::uint64_t routed_requests = 0;    ///< try_submit calls that resolved
  std::uint64_t accepted_requests = 0;  ///< landed on some member
  std::uint64_t rejected_requests = 0;  ///< every replica's queue was full
  std::uint64_t accepted_samples = 0;
  /// First-pass skips of unhealthy replicas (quarantined engine or
  /// suspect member); not part of the conservation identity — a skipped
  /// replica may still be offered to on the fallback pass.
  std::uint64_t health_skips = 0;
  std::uint64_t deployments = 0;    ///< replicas added (deploy + rebalance)
  std::uint64_t undeployments = 0;  ///< replicas removed
  std::string describe() const;
};

class FleetRouter : public engine::InferenceService {
 public:
  explicit FleetRouter(FleetConfig config = {});
  ~FleetRouter() override;

  FleetRouter(const FleetRouter&) = delete;
  FleetRouter& operator=(const FleetRouter&) = delete;

  /// Starts every member server. Replicas may be deployed before or
  /// after; a deploy against a running fleet opens its lane immediately.
  void start();
  /// Drains and stops every member server. Idempotent.
  void stop();

  /// Adds one replica of `model` on the member with the most free PE
  /// slots (ties: lowest index), in a fresh partition of `pe_slots` PEs
  /// (0 = the model's attached TuningManifest PE count when present,
  /// FleetConfig::default_pe_slots otherwise). Propagates
  /// fpga::PlacementDeficitError (with per-resource deficits) when the
  /// best member cannot fit the tenant; the fleet is left unchanged —
  /// which is exactly how tuned PE counts stay deficit-checked.
  ReplicaLocation deploy(model::ModelHandle model, int pe_slots = 0);

  /// Removes one replica of `model_ref` — the most recently deployed —
  /// retiring its engine from the member's server and evicting its
  /// tenant partition. Throws RuntimeApiError for an unknown model.
  void undeploy_one(const std::string& model_ref);

  /// One telemetry-driven scaling pass; see the file comment.
  RebalanceReport rebalance(const RebalancePolicy& policy = {});

  // --- InferenceService ----------------------------------------------------
  std::vector<std::string> served_models() const override;
  std::size_t input_features(const std::string& model) const override;
  std::size_t outstanding_samples() const override;
  std::optional<std::future<std::vector<double>>> try_submit(
      const std::string& model, std::vector<std::uint8_t> samples) override;
  /// Trace-carrying routing: the context rides into the chosen member's
  /// InferenceServer, so a fleet-routed request traces end to end.
  std::optional<std::future<std::vector<double>>> try_submit(
      const std::string& model, std::vector<std::uint8_t> samples,
      const telemetry::TraceContext& trace) override;
  /// Sparse routing: the CSR stream is offered to the model's replicas
  /// with the same two-pass health-aware policy as dense requests; each
  /// offer copies the stream so a rejection leaves it intact.
  std::optional<std::future<std::vector<double>>> try_submit_sparse(
      const std::string& model, std::vector<std::uint8_t> stream,
      std::size_t sample_count,
      const telemetry::TraceContext& trace = {}) override;
  /// Per-engine health of every member, one block per member.
  std::string health_text() const override;
  /// The replica map: model -> member/partition/engine, one line each.
  std::string replicas_text() const override;

  // --- Introspection -------------------------------------------------------
  std::size_t member_count() const { return members_.size(); }
  engine::FpgaSimDevice& device(std::size_t member);
  engine::InferenceServer& server(std::size_t member);
  std::size_t replica_count(const std::string& model_ref) const;
  std::vector<ReplicaLocation> replicas(const std::string& model_ref) const;
  /// Rejected offers since member `member` last accepted one (the
  /// suspect-member routing signal).
  std::uint64_t member_consecutive_rejects(std::size_t member) const;
  FleetStats stats() const;
  /// Fleet header, one block per member (device partitions + tenants),
  /// then the replica map.
  std::string describe() const;

 private:
  struct Member {
    std::unique_ptr<engine::FpgaSimDevice> device;
    std::unique_ptr<engine::InferenceServer> server;
    /// Rejected offers since the last accepted one (guarded by mutex_).
    std::uint64_t consecutive_rejects = 0;
  };

  /// True when the replica should be skipped on the first routing pass.
  bool replica_suspect_locked(const ReplicaLocation& location) const;

  /// The two-pass health-aware offer loop shared by the dense and sparse
  /// submit paths. `submit` offers the request to one member's server
  /// (nullopt on rejection, NoHealthyEngineError when the member's
  /// engines are all quarantined).
  std::optional<std::future<std::vector<double>>> route_locked(
      const std::string& id, std::size_t sample_count,
      const std::function<std::optional<std::future<std::vector<double>>>(
          engine::InferenceServer&)>& submit);

  /// Resolves a model reference (lane id "name@version" with optional
  /// query-kind suffix, or unambiguous bare name within one kind)
  /// against the deployed replicas; throws RuntimeApiError.
  std::string resolve_model_locked(const std::string& ref) const;
  /// Member with the most free PE slots (ties: lowest index).
  std::size_t pick_member_locked() const;
  ReplicaLocation deploy_locked(model::ModelHandle model, int pe_slots);
  void undeploy_locked(const std::string& model_id);
  std::uint64_t model_samples_total(const std::string& model_id) const;

  FleetConfig config_;
  mutable std::mutex mutex_;
  std::vector<Member> members_;
  /// lane id (model id + query-kind suffix) -> replicas, in deployment
  /// order; the same keys the member servers use for their lanes.
  std::map<std::string, std::vector<ReplicaLocation>> replicas_;
  /// lane id -> artifact (kept for input_features and redeploys).
  std::map<std::string, model::ModelHandle> artifacts_;
  /// lane id -> round-robin cursor for routing.
  std::map<std::string, std::size_t> rr_;
  /// model id -> "server.model.<id>.samples" reading at the last
  /// rebalance (or first deploy), so deltas ignore pre-fleet history.
  std::map<std::string, std::uint64_t> sample_baseline_;
  std::uint64_t next_partition_ = 0;
  FleetStats stats_;
  bool started_ = false;
};

}  // namespace spnhbm::fleet
