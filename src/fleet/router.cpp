#include "spnhbm/fleet/router.hpp"

#include <algorithm>
#include <utility>

#include "spnhbm/compiler/datapath.hpp"
#include "spnhbm/engine/chaos_engine.hpp"
#include "spnhbm/model/tuning.hpp"
#include "spnhbm/telemetry/metrics.hpp"
#include "spnhbm/util/strings.hpp"

namespace spnhbm::fleet {

namespace {
/// Lane id a replica serves under: the same model-id + query-kind suffix
/// keying the member servers' lanes, so router and member agree on the
/// address of every replica.
std::string lane_id_of(const model::ModelHandle& model) {
  return engine::lane_id_for(model->id(), model->module().query());
}
}  // namespace

std::string RebalanceReport::describe() const {
  std::string text = "rebalance:";
  if (sample_deltas.empty()) {
    text += " no traffic observed";
  }
  for (const auto& [model, delta] : sample_deltas) {
    text += strformat(" %s=%llu", model.c_str(),
                      static_cast<unsigned long long>(delta));
  }
  for (const auto& model : scaled_up) text += " +" + model;
  for (const auto& model : scaled_down) text += " -" + model;
  if (!changed()) text += " (steady)";
  return text;
}

std::string FleetStats::describe() const {
  return strformat(
      "fleet: routed=%llu accepted=%llu rejected=%llu samples=%llu "
      "deploys=%llu undeploys=%llu health_skips=%llu",
      static_cast<unsigned long long>(routed_requests),
      static_cast<unsigned long long>(accepted_requests),
      static_cast<unsigned long long>(rejected_requests),
      static_cast<unsigned long long>(accepted_samples),
      static_cast<unsigned long long>(deployments),
      static_cast<unsigned long long>(undeployments),
      static_cast<unsigned long long>(health_skips));
}

FleetRouter::FleetRouter(FleetConfig config) : config_(std::move(config)) {
  SPNHBM_REQUIRE(config_.devices > 0, "a fleet needs at least one device");
  SPNHBM_REQUIRE(config_.default_pe_slots > 0,
                 "default_pe_slots must be positive");
  members_.reserve(config_.devices);
  for (std::size_t i = 0; i < config_.devices; ++i) {
    engine::FpgaDeviceConfig device_config = config_.device;
    device_config.name = config_.device_prefix + std::to_string(i);
    Member member;
    member.device =
        std::make_unique<engine::FpgaSimDevice>(std::move(device_config));
    member.server = std::make_unique<engine::InferenceServer>(config_.server);
    members_.push_back(std::move(member));
  }
}

FleetRouter::~FleetRouter() { stop(); }

void FleetRouter::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (started_) return;
  for (auto& member : members_) member.server->start();
  started_ = true;
}

void FleetRouter::stop() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& member : members_) member.server->stop();
  started_ = false;
}

ReplicaLocation FleetRouter::deploy(model::ModelHandle model, int pe_slots) {
  SPNHBM_REQUIRE(model != nullptr, "deploy requires a model");
  std::lock_guard<std::mutex> lock(mutex_);
  if (pe_slots <= 0) {
    // Tuned models bring their own PE count; PartitionTable::reserve
    // deficit-checks it against the member's free slots/channels below,
    // so an oversized tuning fails with the usual placement rows instead
    // of being silently clamped.
    if (const auto tuning = model->tuning()) {
      pe_slots = tuning->config.pe_count;
    } else {
      pe_slots = config_.default_pe_slots;
    }
  }
  return deploy_locked(std::move(model), pe_slots);
}

ReplicaLocation FleetRouter::deploy_locked(model::ModelHandle model,
                                           int pe_slots) {
  const std::string id = lane_id_of(model);
  const std::size_t member_index = pick_member_locked();
  Member& member = members_[member_index];
  const std::string partition = "t" + std::to_string(next_partition_);

  // add_tenant reserves the partition first, so a tenant that does not
  // fit fails with its per-resource deficits and the fleet is unchanged.
  member.device->add_tenant(partition, model, pe_slots);
  std::size_t engine_index = 0;
  try {
    // The chaos decorator makes the "engine.*" fault sites apply to
    // fleet tenants exactly as they do to standalone serve engines;
    // disarmed it costs one relaxed atomic load per submit.
    engine_index = member.server->register_engine(
        std::make_shared<engine::ChaosEngine>(
            member.device->tenant_engine(partition)),
        0, member.device->name() + "/" + partition);
  } catch (...) {
    member.device->evict_tenant(partition);
    throw;
  }
  ++next_partition_;

  ReplicaLocation location{member_index, partition, engine_index};
  replicas_[id].push_back(location);
  artifacts_.emplace(id, std::move(model));
  stats_.deployments += 1;
  telemetry::metrics().counter("fleet.deployments")->add();
  telemetry::metrics()
      .gauge("fleet.model." + id + ".replicas")
      ->set(static_cast<double>(replicas_[id].size()));
  // First replica: baseline the model's global sample counter so the
  // rebalancer only sees traffic routed while the model was deployed.
  sample_baseline_.emplace(id, model_samples_total(id));
  return location;
}

void FleetRouter::undeploy_one(const std::string& model_ref) {
  std::lock_guard<std::mutex> lock(mutex_);
  undeploy_locked(resolve_model_locked(model_ref));
}

void FleetRouter::undeploy_locked(const std::string& model_id) {
  auto it = replicas_.find(model_id);
  SPNHBM_REQUIRE(it != replicas_.end() && !it->second.empty(),
                 "undeploy of a model with no replicas");
  const ReplicaLocation location = it->second.back();
  Member& member = members_[location.member];
  // Retire first (drains the engine's in-flight batches on its worker
  // thread), then evict the tenant — the reverse order would destroy an
  // engine a worker still drives.
  member.server->retire_engine(location.engine_index);
  member.device->evict_tenant(location.partition);
  it->second.pop_back();
  const std::size_t remaining = it->second.size();
  if (it->second.empty()) {
    replicas_.erase(it);
    artifacts_.erase(model_id);
    sample_baseline_.erase(model_id);
    rr_.erase(model_id);
  }
  stats_.undeployments += 1;
  telemetry::metrics().counter("fleet.undeployments")->add();
  telemetry::metrics()
      .gauge("fleet.model." + model_id + ".replicas")
      ->set(static_cast<double>(remaining));
}

std::uint64_t FleetRouter::model_samples_total(
    const std::string& model_id) const {
  return telemetry::metrics()
      .counter("server.model." + model_id + ".samples")
      ->value();
}

RebalanceReport FleetRouter::rebalance(const RebalancePolicy& policy) {
  SPNHBM_REQUIRE(policy.min_replicas >= 1, "min_replicas must be >= 1");
  SPNHBM_REQUIRE(policy.max_replicas >= policy.min_replicas,
                 "max_replicas must be >= min_replicas");
  std::lock_guard<std::mutex> lock(mutex_);
  RebalanceReport report;

  std::uint64_t total_delta = 0;
  std::map<std::string, std::uint64_t> totals;
  for (const auto& [model, locations] : replicas_) {
    const std::uint64_t total = model_samples_total(model);
    const std::uint64_t baseline = sample_baseline_[model];
    const std::uint64_t delta = total > baseline ? total - baseline : 0;
    totals[model] = total;
    report.sample_deltas[model] = delta;
    total_delta += delta;
  }
  if (total_delta == 0) return report;  // no traffic, nothing to learn

  // Scale down before scaling up, so the freed PE slots are available to
  // the hot models within the same pass.
  for (const auto& [model, delta] : report.sample_deltas) {
    const double share =
        static_cast<double>(delta) / static_cast<double>(total_delta);
    if (share <= policy.cold_share &&
        replicas_[model].size() > policy.min_replicas) {
      undeploy_locked(model);
      report.scaled_down.push_back(model);
    }
  }
  for (const auto& [model, delta] : report.sample_deltas) {
    const double share =
        static_cast<double>(delta) / static_cast<double>(total_delta);
    if (share < policy.hot_share) continue;
    auto it = replicas_.find(model);
    if (it == replicas_.end() || it->second.size() >= policy.max_replicas) {
      continue;
    }
    const std::size_t target = pick_member_locked();
    if (members_[target].device->free_pe_slots() < policy.pe_slots) {
      continue;  // fleet is full; keep serving at the current replica count
    }
    deploy_locked(artifacts_.at(model), policy.pe_slots);
    report.scaled_up.push_back(model);
  }

  // Re-baseline every surviving model so the next pass sees fresh deltas.
  for (const auto& [model, locations] : replicas_) {
    auto it = totals.find(model);
    sample_baseline_[model] =
        it != totals.end() ? it->second : model_samples_total(model);
  }
  return report;
}

std::vector<std::string> FleetRouter::served_models() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> models;
  models.reserve(replicas_.size());
  for (const auto& [model, locations] : replicas_) models.push_back(model);
  return models;  // std::map iterates sorted
}

std::size_t FleetRouter::input_features(const std::string& model) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return artifacts_.at(resolve_model_locked(model))->input_features();
}

std::size_t FleetRouter::outstanding_samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& member : members_) {
    total += member.server->outstanding_samples();
  }
  return total;
}

std::optional<std::future<std::vector<double>>> FleetRouter::try_submit(
    const std::string& model, std::vector<std::uint8_t> samples) {
  return try_submit(model, std::move(samples), telemetry::TraceContext{});
}

bool FleetRouter::replica_suspect_locked(
    const ReplicaLocation& location) const {
  const Member& member = members_[location.member];
  if (member.server->engine_health(location.engine_index) ==
      engine::EngineHealth::kQuarantined) {
    return true;
  }
  return config_.member_suspect_threshold > 0 &&
         member.consecutive_rejects >=
             static_cast<std::uint64_t>(config_.member_suspect_threshold);
}

std::optional<std::future<std::vector<double>>> FleetRouter::try_submit(
    const std::string& model, std::vector<std::uint8_t> samples,
    const telemetry::TraceContext& trace) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string id = resolve_model_locked(model);
  const std::size_t sample_count =
      artifacts_.at(id)->input_features() > 0
          ? samples.size() / artifacts_.at(id)->input_features()
          : 0;
  // The router only picks the member; a copy of `samples` is offered so
  // a rejection leaves it intact for the next replica.
  return route_locked(id, sample_count,
                      [&](engine::InferenceServer& server) {
                        return server.try_submit(id, samples, trace);
                      });
}

std::optional<std::future<std::vector<double>>> FleetRouter::try_submit_sparse(
    const std::string& model, std::vector<std::uint8_t> stream,
    std::size_t sample_count, const telemetry::TraceContext& trace) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string id = resolve_model_locked(model);
  return route_locked(id, sample_count,
                      [&](engine::InferenceServer& server) {
                        return server.try_submit_sparse(id, stream,
                                                        sample_count, trace);
                      });
}

std::optional<std::future<std::vector<double>>> FleetRouter::route_locked(
    const std::string& id, std::size_t sample_count,
    const std::function<std::optional<std::future<std::vector<double>>>(
        engine::InferenceServer&)>& submit) {
  const auto& locations = replicas_.at(id);
  stats_.routed_requests += 1;
  std::size_t& cursor = rr_[id];
  std::size_t offers = 0;
  std::size_t unhealthy = 0;
  // A member whose engines are all quarantined throws
  // NoHealthyEngineError — counted as a rejection here so
  // `routed == accepted + rejected` survives, and rethrown below only
  // when every replica is in that state.
  const auto offer = [&](const ReplicaLocation& location, std::size_t advance)
      -> std::optional<std::future<std::vector<double>>> {
    Member& member = members_[location.member];
    offers += 1;
    std::optional<std::future<std::vector<double>>> future;
    try {
      future = submit(*member.server);
    } catch (const engine::NoHealthyEngineError&) {
      unhealthy += 1;
    }
    if (future.has_value()) {
      member.consecutive_rejects = 0;
      cursor = (cursor + advance) % locations.size();
      stats_.accepted_requests += 1;
      stats_.accepted_samples += sample_count;
      telemetry::metrics().counter("fleet.accepted")->add();
    } else {
      member.consecutive_rejects += 1;
    }
    return future;
  };
  // Pass 1: healthy replicas only. Quarantined engines and suspect
  // members are skipped, so one dead member never eats its round-robin
  // share of the traffic.
  std::vector<std::size_t> skipped;
  for (std::size_t attempt = 0; attempt < locations.size(); ++attempt) {
    const std::size_t slot = (cursor + attempt) % locations.size();
    if (replica_suspect_locked(locations[slot])) {
      skipped.push_back(slot);
      stats_.health_skips += 1;
      telemetry::metrics().counter("fleet.health_skips")->add();
      continue;
    }
    auto future = offer(locations[slot], attempt + 1);
    if (future.has_value()) return future;
  }
  // Pass 2: last resort — offer to the replicas pass 1 skipped. A
  // quarantined engine may still probe its way back, and rejecting here
  // without asking would turn a slow member into a guaranteed loss.
  for (const std::size_t slot : skipped) {
    auto future = offer(locations[slot], 1);
    if (future.has_value()) return future;
  }
  cursor = (cursor + 1) % locations.size();
  stats_.rejected_requests += 1;
  telemetry::metrics().counter("fleet.rejected")->add();
  if (offers > 0 && unhealthy == offers) {
    throw engine::NoHealthyEngineError("all " + std::to_string(offers) +
                                       " replicas of '" + id +
                                       "' are quarantined");
  }
  return std::nullopt;
}

std::string FleetRouter::health_text() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string text;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    const Member& member = members_[i];
    const bool suspect =
        config_.member_suspect_threshold > 0 &&
        member.consecutive_rejects >=
            static_cast<std::uint64_t>(config_.member_suspect_threshold);
    text += strformat(
        "member %zu [%s%zu] consecutive_rejects=%llu%s\n", i,
        config_.device_prefix.c_str(), i,
        static_cast<unsigned long long>(member.consecutive_rejects),
        suspect ? " SUSPECT" : "");
    text += member.server->health_text();
  }
  return text;
}

std::string FleetRouter::replicas_text() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string text;
  for (const auto& [model, locations] : replicas_) {
    for (const ReplicaLocation& location : locations) {
      text += strformat("%s -> member %zu partition %s engine %zu\n",
                        model.c_str(), location.member,
                        location.partition.c_str(), location.engine_index);
    }
  }
  return text;
}

engine::FpgaSimDevice& FleetRouter::device(std::size_t member) {
  SPNHBM_REQUIRE(member < members_.size(), "fleet member out of range");
  return *members_[member].device;
}

engine::InferenceServer& FleetRouter::server(std::size_t member) {
  SPNHBM_REQUIRE(member < members_.size(), "fleet member out of range");
  return *members_[member].server;
}

std::size_t FleetRouter::replica_count(const std::string& model_ref) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = replicas_.find(model_ref);
  if (it != replicas_.end()) return it->second.size();
  // Bare-name lookups are a convenience; unknown models simply have 0.
  const auto [base, suffix] = engine::split_lane_ref(model_ref);
  for (const auto& [model, locations] : replicas_) {
    if (engine::split_lane_ref(model).second != suffix) continue;
    if (artifacts_.at(model)->name() == base) return locations.size();
  }
  return 0;
}

std::vector<ReplicaLocation> FleetRouter::replicas(
    const std::string& model_ref) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return replicas_.at(resolve_model_locked(model_ref));
}

std::uint64_t FleetRouter::member_consecutive_rejects(
    std::size_t member) const {
  std::lock_guard<std::mutex> lock(mutex_);
  SPNHBM_REQUIRE(member < members_.size(), "fleet member out of range");
  return members_[member].consecutive_rejects;
}

FleetStats FleetRouter::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::string FleetRouter::describe() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string text = strformat("fleet: %zu device(s), %zu model(s)\n",
                               members_.size(), replicas_.size());
  for (const auto& member : members_) {
    text += member.device->describe();
  }
  for (const auto& [model, locations] : replicas_) {
    text += strformat("  %s x%zu:", model.c_str(), locations.size());
    for (const auto& location : locations) {
      text += strformat(" %s/%s",
                        members_[location.member].device->name().c_str(),
                        location.partition.c_str());
    }
    text += "\n";
  }
  return text;
}

std::string FleetRouter::resolve_model_locked(const std::string& ref) const {
  if (replicas_.count(ref) > 0) return ref;
  // Bare model name, optionally kind-suffixed: match within one query
  // kind, so "m" finds the joint replicas even when marginal/MPE replicas
  // of m are deployed too.
  const auto [base, suffix] = engine::split_lane_ref(ref);
  std::string match;
  for (const auto& [model, locations] : replicas_) {
    const auto [model_base, model_suffix] = engine::split_lane_ref(model);
    (void)model_base;
    if (model_suffix != suffix) continue;
    if (artifacts_.at(model)->name() != base) continue;
    if (!match.empty()) {
      throw RuntimeApiError("model name '" + ref +
                            "' is ambiguous across versions; use name@version");
    }
    match = model;
  }
  if (match.empty()) {
    throw RuntimeApiError("no replica of model '" + ref +
                          "' is deployed in the fleet");
  }
  return match;
}

std::size_t FleetRouter::pick_member_locked() const {
  std::size_t best = 0;
  int best_free = -1;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    const int free = members_[i].device->free_pe_slots();
    if (free > best_free) {
      best = i;
      best_free = free;
    }
  }
  return best;
}

}  // namespace spnhbm::fleet
