#include "spnhbm/telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>

#include "spnhbm/telemetry/json.hpp"
#include "spnhbm/util/error.hpp"
#include "spnhbm/util/strings.hpp"

namespace spnhbm::telemetry {

namespace {

void atomic_add_double(std::atomic<std::uint64_t>& bits, double delta) {
  std::uint64_t expected = bits.load(std::memory_order_relaxed);
  for (;;) {
    const double updated = std::bit_cast<double>(expected) + delta;
    if (bits.compare_exchange_weak(expected, std::bit_cast<std::uint64_t>(updated),
                                   std::memory_order_relaxed)) {
      return;
    }
  }
}

void atomic_min_double(std::atomic<std::uint64_t>& bits, double value) {
  std::uint64_t expected = bits.load(std::memory_order_relaxed);
  while (value < std::bit_cast<double>(expected)) {
    if (bits.compare_exchange_weak(expected, std::bit_cast<std::uint64_t>(value),
                                   std::memory_order_relaxed)) {
      return;
    }
  }
}

void atomic_max_double(std::atomic<std::uint64_t>& bits, double value) {
  std::uint64_t expected = bits.load(std::memory_order_relaxed);
  while (value > std::bit_cast<double>(expected)) {
    if (bits.compare_exchange_weak(expected, std::bit_cast<std::uint64_t>(value),
                                   std::memory_order_relaxed)) {
      return;
    }
  }
}

std::string prometheus_name(const std::string& name) {
  std::string out = "spnhbm_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bucket_counts.size(); ++i) {
    const std::uint64_t in_bucket = bucket_counts[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      // The overflow bucket has no finite upper edge: report the observed
      // maximum. Also clamp interpolation to the observed min/max so tiny
      // histograms do not report values outside the data.
      if (i + 1 == bucket_counts.size()) return max;
      const double lo = i == 0 ? 0.0 : upper_bounds[i - 1];
      const double hi = upper_bounds[i];
      const double fraction =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return std::clamp(lo + fraction * (hi - lo), min, max);
    }
    cumulative += in_bucket;
  }
  return max;
}

std::string HistogramSnapshot::summary() const {
  if (count == 0) return "n=0";
  return strformat("n=%llu, mean=%.1f, p50/p95/p99=%.1f/%.1f/%.1f",
                   static_cast<unsigned long long>(count), mean(), p50(), p95(),
                   p99());
}

Histogram::Histogram(HistogramOptions options)
    : options_(options),
      buckets_(options.bucket_count + 1),
      min_bits_(std::bit_cast<std::uint64_t>(
          std::numeric_limits<double>::infinity())),
      max_bits_(std::bit_cast<std::uint64_t>(
          -std::numeric_limits<double>::infinity())) {
  SPNHBM_REQUIRE(options_.first_bucket > 0.0, "first bucket must be positive");
  SPNHBM_REQUIRE(options_.growth > 1.0, "growth factor must exceed 1");
  SPNHBM_REQUIRE(options_.bucket_count >= 1, "need at least one bucket");
}

double Histogram::upper_bound(std::size_t index) const {
  return options_.first_bucket *
         std::pow(options_.growth, static_cast<double>(index));
}

void Histogram::record(double value) {
  // Bucket index by logarithm: first bucket catches (-inf, first_bucket].
  std::size_t index = 0;
  if (value > options_.first_bucket) {
    index = static_cast<std::size_t>(
        std::ceil(std::log(value / options_.first_bucket) /
                  std::log(options_.growth)));
    index = std::min(index, buckets_.size() - 1);
  }
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_bits_, value);
  atomic_min_double(min_bits_, value);
  atomic_max_double(max_bits_, value);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
  if (snap.count > 0) {
    snap.min = std::bit_cast<double>(min_bits_.load(std::memory_order_relaxed));
    snap.max = std::bit_cast<double>(max_bits_.load(std::memory_order_relaxed));
  }
  snap.upper_bounds.reserve(buckets_.size());
  snap.bucket_counts.reserve(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    snap.upper_bounds.push_back(
        i + 1 == buckets_.size() ? std::numeric_limits<double>::infinity()
                                 : upper_bound(i));
    snap.bucket_counts.push_back(buckets_[i].load(std::memory_order_relaxed));
  }
  return snap;
}

std::shared_ptr<Counter> MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_shared<Counter>();
  return slot;
}

std::shared_ptr<Gauge> MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_shared<Gauge>();
  return slot;
}

std::shared_ptr<Histogram> MetricsRegistry::histogram(const std::string& name,
                                                      HistogramOptions options) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_shared<Histogram>(options);
  return slot;
}

void MetricsRegistry::attach_histogram(const std::string& name,
                                       std::shared_ptr<Histogram> histogram) {
  SPNHBM_REQUIRE(histogram != nullptr, "attach of null histogram");
  const std::lock_guard<std::mutex> lock(mutex_);
  histograms_[name] = std::move(histogram);
}

std::string MetricsRegistry::json_dump() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, counter] : counters_) {
    w.key(name).value(counter->value());
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, gauge] : gauges_) {
    w.key(name).value(gauge->value());
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, histogram] : histograms_) {
    const HistogramSnapshot snap = histogram->snapshot();
    w.key(name).begin_object();
    w.key("count").value(snap.count);
    w.key("sum").value(snap.sum);
    w.key("min").value(snap.min);
    w.key("max").value(snap.max);
    w.key("mean").value(snap.mean());
    w.key("p50").value(snap.p50());
    w.key("p95").value(snap.p95());
    w.key("p99").value(snap.p99());
    w.key("buckets").begin_array();
    for (std::size_t i = 0; i < snap.bucket_counts.size(); ++i) {
      if (snap.bucket_counts[i] == 0) continue;  // sparse: skip empty buckets
      w.begin_object();
      w.key("le").value(snap.upper_bounds[i]);
      w.key("count").value(snap.bucket_counts[i]);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

std::string MetricsRegistry::prometheus_text() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    const std::string id = prometheus_name(name);
    out += "# TYPE " + id + " counter\n";
    out += id + " " + std::to_string(counter->value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string id = prometheus_name(name);
    out += "# TYPE " + id + " gauge\n";
    out += id + " " + json_number(gauge->value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::string id = prometheus_name(name);
    const HistogramSnapshot snap = histogram->snapshot();
    out += "# TYPE " + id + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < snap.bucket_counts.size(); ++i) {
      cumulative += snap.bucket_counts[i];
      if (snap.bucket_counts[i] == 0 && i + 1 != snap.bucket_counts.size()) {
        continue;
      }
      const std::string le = i + 1 == snap.bucket_counts.size()
                                 ? std::string("+Inf")
                                 : json_number(snap.upper_bounds[i]);
      out += id + "_bucket{le=\"" + le + "\"} " + std::to_string(cumulative) +
             "\n";
    }
    out += id + "_sum " + json_number(snap.sum) + "\n";
    out += id + "_count " + std::to_string(snap.count) + "\n";
  }
  return out;
}

void MetricsRegistry::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("cannot open metrics output file: " + path);
  out << json_dump() << "\n";
  if (!out) throw Error("failed writing metrics output file: " + path);
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace spnhbm::telemetry
