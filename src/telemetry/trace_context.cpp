#include "spnhbm/telemetry/trace_context.hpp"

#include <algorithm>
#include <cstdio>

#include "spnhbm/util/log.hpp"

namespace spnhbm::telemetry {

std::uint64_t mint_trace_id() {
  static std::atomic<std::uint64_t> next{0};
  // SplitMix64: every distinct input maps to a distinct well-mixed
  // output, so ids from one process never collide.
  std::uint64_t z = next.fetch_add(1, std::memory_order_relaxed) +
                    0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  return z != 0 ? z : 1;  // 0 is reserved for "no context"
}

std::string trace_id_hex(std::uint64_t id) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(id));
  return buffer;
}

TraceContextScope::TraceContextScope(const TraceContext& context) {
  if (!context.valid()) return;
  previous_ = current_trace_id();
  set_current_trace_id(context.trace_id);
  active_ = true;
}

TraceContextScope::~TraceContextScope() {
  if (active_) set_current_trace_id(previous_);
}

HeadSampler& head_sampler() {
  static HeadSampler instance;
  return instance;
}

void TailSampler::offer(RequestTraceRecord record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++offered_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
    return;
  }
  std::size_t fastest = 0;
  for (std::size_t i = 1; i < ring_.size(); ++i) {
    if (ring_[i].latency_us < ring_[fastest].latency_us) fastest = i;
  }
  if (record.latency_us > ring_[fastest].latency_us) {
    ring_[fastest] = std::move(record);
  }
}

std::size_t TailSampler::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::uint64_t TailSampler::offered() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return offered_;
}

double TailSampler::threshold_us() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) return 0.0;
  double fastest = ring_.front().latency_us;
  for (const auto& record : ring_) {
    fastest = std::min(fastest, record.latency_us);
  }
  return fastest;
}

std::vector<RequestTraceRecord> TailSampler::snapshot() const {
  std::vector<RequestTraceRecord> records;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    records = ring_;
  }
  std::sort(records.begin(), records.end(),
            [](const RequestTraceRecord& a, const RequestTraceRecord& b) {
              return a.latency_us > b.latency_us;
            });
  return records;
}

std::string TailSampler::describe() const {
  const auto records = snapshot();
  std::string out = "tail: " + std::to_string(records.size()) + "/" +
                    std::to_string(capacity_) + " retained of " +
                    std::to_string(offered()) + " offered\n";
  for (const auto& record : records) {
    char line[192];
    std::snprintf(line, sizeof(line),
                  "  trace=%s model=%s status=%s samples=%llu "
                  "latency_us=%.1f\n",
                  trace_id_hex(record.trace_id).c_str(),
                  record.model.c_str(), record.status.c_str(),
                  static_cast<unsigned long long>(record.sample_count),
                  record.latency_us);
    out += line;
    for (const auto& span : record.spans) {
      char span_line[160];
      std::snprintf(span_line, sizeof(span_line), "    %*s%s +%.1fus %.1fus\n",
                    span.depth * 2, "", span.name.c_str(), span.start_us,
                    span.dur_us);
      out += span_line;
    }
  }
  return out;
}

void TailSampler::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  offered_ = 0;
}

}  // namespace spnhbm::telemetry
