#include "spnhbm/telemetry/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "spnhbm/util/error.hpp"

namespace spnhbm::telemetry {

std::string json_quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  // Integers print without exponent/decimals; everything else round-trips
  // through %.17g and gets trimmed.
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
    return buffer;
  }
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

void JsonWriter::comma() {
  if (!needs_comma_.empty() && needs_comma_.back() && !pending_key_) {
    out_.push_back(',');
  }
  if (!needs_comma_.empty()) needs_comma_.back() = true;
  pending_key_ = false;
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_.push_back('{');
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  needs_comma_.pop_back();
  out_.push_back('}');
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_.push_back('[');
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  needs_comma_.pop_back();
  out_.push_back(']');
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  comma();
  out_ += json_quote(name);
  out_.push_back(':');
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  out_ += json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  comma();
  out_ += json_quote(v);
  return *this;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("JSON parse error at offset " + std::to_string(pos_) + ": " +
                what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t n = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, n, literal) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        if (consume_literal("true")) {
          v.boolean = true;
        } else if (consume_literal("false")) {
          v.boolean = false;
        } else {
          fail("bad literal");
        }
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      }
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      v.object.emplace(std::move(key), parse_value());
      const char next = peek();
      ++pos_;
      if (next == '}') return v;
      if (next != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      const char next = peek();
      ++pos_;
      if (next == ']') return v;
      if (next != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("dangling escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            const unsigned code = static_cast<unsigned>(
                std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16));
            pos_ += 4;
            // Telemetry output only escapes control characters; decode the
            // BMP code point as UTF-8.
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
    fail("unterminated string");
  }

  JsonValue parse_number() {
    skip_whitespace();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool digits = false;
    auto eat_digits = [&] {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
        ++pos_;
      }
      eat_digits();
    }
    if (!digits) fail("malformed number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace spnhbm::telemetry
