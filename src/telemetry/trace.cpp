#include "spnhbm/telemetry/trace.hpp"

#include <fstream>

#include "spnhbm/telemetry/json.hpp"
#include "spnhbm/util/error.hpp"

namespace spnhbm::telemetry {

namespace {
/// Chrome trace pids: one synthetic process per clock.
constexpr int pid_for(TraceClock clock) {
  return clock == TraceClock::kWall ? 1 : 2;
}
}  // namespace

void Tracer::enable() {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  events_.shrink_to_fit();
  tracks_.clear();
  wall_epoch_ = wall_now();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

TrackId Tracer::register_track(const std::string& name, TraceClock clock) {
  if (!enabled()) return 0;
  const std::lock_guard<std::mutex> lock(mutex_);
  tracks_.push_back(Track{name, clock});
  return static_cast<TrackId>(tracks_.size());  // ids are 1-based
}

void Tracer::push(const Event& event) {
  if (event.track == 0) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  // A stale id from before a re-enable() has no track entry any more.
  if (event.track > tracks_.size()) return;
  events_.push_back(event);
}

void Tracer::complete_virtual(TrackId track, const char* name,
                              Picoseconds start, Picoseconds end) {
  if (!enabled()) return;
  push(Event{track, name, 'X', virtual_us(start),
             virtual_us(end) - virtual_us(start), 0.0, 0});
}

void Tracer::instant_virtual(TrackId track, const char* name, Picoseconds at) {
  if (!enabled()) return;
  push(Event{track, name, 'i', virtual_us(at), 0.0, 0.0, 0});
}

void Tracer::counter_virtual(TrackId track, const char* name, Picoseconds at,
                             double value) {
  if (!enabled()) return;
  push(Event{track, name, 'C', virtual_us(at), 0.0, value, 0});
}

void Tracer::complete_wall(TrackId track, const char* name, WallTime start,
                           WallTime end) {
  if (!enabled()) return;
  push(Event{track, name, 'X', wall_us(start), wall_us(end) - wall_us(start),
             0.0, 0});
}

void Tracer::instant_wall(TrackId track, const char* name) {
  if (!enabled()) return;
  push(Event{track, name, 'i', wall_us(wall_now()), 0.0, 0.0, 0});
}

void Tracer::counter_wall(TrackId track, const char* name, double value) {
  if (!enabled()) return;
  push(Event{track, name, 'C', wall_us(wall_now()), 0.0, value, 0});
}

void Tracer::flow_wall(TrackId track, const char* name, char phase,
                       std::uint64_t flow_id, WallTime at) {
  if (!enabled()) return;
  push(Event{track, name, phase, wall_us(at), 0.0, 0.0, flow_id});
}

void Tracer::flow_virtual(TrackId track, const char* name, char phase,
                          std::uint64_t flow_id, Picoseconds at) {
  if (!enabled()) return;
  push(Event{track, name, phase, virtual_us(at), 0.0, 0.0, flow_id});
}

std::size_t Tracer::event_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::size_t Tracer::event_buffer_capacity() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_.capacity();
}

std::size_t Tracer::track_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return tracks_.size();
}

std::string Tracer::chrome_trace_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();

  // Process metadata: one Chrome "process" per clock domain.
  bool clock_used[2] = {false, false};
  for (const auto& track : tracks_) {
    clock_used[static_cast<int>(track.clock)] = true;
  }
  for (const TraceClock clock : {TraceClock::kWall, TraceClock::kVirtual}) {
    if (!clock_used[static_cast<int>(clock)]) continue;
    w.begin_object();
    w.key("name").value("process_name");
    w.key("ph").value("M");
    w.key("pid").value(pid_for(clock));
    w.key("tid").value(0);
    w.key("args").begin_object();
    w.key("name").value(clock == TraceClock::kWall
                            ? "wall clock"
                            : "simulated hardware (virtual time)");
    w.end_object();
    w.end_object();
  }
  // Thread metadata: one named lane per track.
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    w.begin_object();
    w.key("name").value("thread_name");
    w.key("ph").value("M");
    w.key("pid").value(pid_for(tracks_[i].clock));
    w.key("tid").value(static_cast<std::uint64_t>(i + 1));
    w.key("args").begin_object();
    w.key("name").value(tracks_[i].name);
    w.end_object();
    w.end_object();
    // Keep lanes in registration order.
    w.begin_object();
    w.key("name").value("thread_sort_index");
    w.key("ph").value("M");
    w.key("pid").value(pid_for(tracks_[i].clock));
    w.key("tid").value(static_cast<std::uint64_t>(i + 1));
    w.key("args").begin_object();
    w.key("sort_index").value(static_cast<std::uint64_t>(i + 1));
    w.end_object();
    w.end_object();
  }

  for (const auto& event : events_) {
    const Track& track = tracks_[event.track - 1];
    const bool is_flow =
        event.phase == 's' || event.phase == 't' || event.phase == 'f';
    w.begin_object();
    w.key("name").value(event.name);
    // Flow events carry one shared category ("req") regardless of the
    // track's clock: Chrome binds a flow chain only across events whose
    // cat and id both match, and a request chain crosses both clocks.
    w.key("cat").value(
        is_flow ? "req"
                : (track.clock == TraceClock::kWall ? "wall" : "sim"));
    w.key("ph").value(std::string(1, event.phase));
    w.key("pid").value(pid_for(track.clock));
    w.key("tid").value(static_cast<std::uint64_t>(event.track));
    w.key("ts").value(event.ts_us);
    if (event.phase == 'X') {
      w.key("dur").value(event.dur_us);
    } else if (event.phase == 'i') {
      w.key("s").value("t");  // thread-scoped instant
    } else if (event.phase == 'C') {
      w.key("args").begin_object();
      w.key("value").value(event.value);
      w.end_object();
    } else if (is_flow) {
      w.key("id").value(event.flow);
      // Bind the flow end to the enclosing slice rather than the next
      // slice on the track.
      if (event.phase == 'f') w.key("bp").value("e");
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("cannot open trace output file: " + path);
  out << chrome_trace_json() << "\n";
  if (!out) throw Error("failed writing trace output file: " + path);
}

Tracer& tracer() {
  static Tracer instance;
  return instance;
}

}  // namespace spnhbm::telemetry
