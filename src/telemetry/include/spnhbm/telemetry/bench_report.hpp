// Machine-readable benchmark records (BENCH_<name>.json).
//
// The fig*/table* report generators print human tables; BenchReport emits
// the same numbers as a flat JSON record stream so the perf trajectory can
// be tracked across commits without scraping stdout. Records are free-form
// name -> number/string field lists; `write()` produces
//
//   {"bench": "<name>", "records": [{...}, {...}, ...]}
//
// in the current directory (or $SPNHBM_BENCH_JSON_DIR when set).
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace spnhbm::telemetry {

class BenchReport {
 public:
  explicit BenchReport(std::string name);

  class Record {
   public:
    Record& field(const std::string& name, double value);
    Record& field(const std::string& name, const std::string& value);
    Record& field(const std::string& name, const char* value) {
      return field(name, std::string(value));
    }

   private:
    friend class BenchReport;
    struct Field {
      std::string name;
      bool is_number = false;
      double number = 0.0;
      std::string string;
    };
    std::vector<Field> fields_;
  };

  /// Appends a record; the reference stays valid until the next add().
  Record& add();

  std::string json() const;
  /// Path the report will be written to (BENCH_<name>.json).
  std::string output_path() const;
  /// Writes the report; throws on I/O failure.
  void write() const;

 private:
  std::string name_;
  std::vector<Record> records_;
};

}  // namespace spnhbm::telemetry
