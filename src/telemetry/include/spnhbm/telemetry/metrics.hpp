// Thread-safe metrics registry: named counters, gauges and
// exponential-bucket histograms with percentile estimation.
//
// The registry is the machine-readable side of the repo's statistics
// story: hot components (HBM channels, the PCIe DMA engine, accelerator
// cores, the inference server) hold shared_ptr handles to their metrics and
// update them with relaxed atomics — safe from DES coroutines and from real
// threads alike — and `spnhbm ... --metrics-out` dumps the whole registry
// as JSON (or Prometheus text exposition) at the end of a run.
//
// Lifetime: handles returned by the registry are shared_ptr-backed, so
// `reset()` (tests) detaches the registry without invalidating holders.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace spnhbm::telemetry {

/// Monotone event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) {
    bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
  }
  double value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<std::uint64_t> bits_{0};
};

struct HistogramOptions {
  /// Upper bound of the first bucket.
  double first_bucket = 1.0;
  /// Geometric growth factor between bucket upper bounds.
  double growth = 2.0;
  /// Number of finite buckets; one implicit overflow bucket follows.
  std::size_t bucket_count = 40;
};

/// Point-in-time copy of a histogram, with percentiles estimated by linear
/// interpolation inside the containing bucket (the estimate's error is
/// bounded by the bucket's relative width, i.e. the growth factor).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Bucket upper bounds and counts; the final entry is the overflow
  /// bucket with an infinite upper bound.
  std::vector<double> upper_bounds;
  std::vector<std::uint64_t> bucket_counts;

  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
  /// p in [0, 100].
  double percentile(double p) const;
  double p50() const { return percentile(50.0); }
  double p95() const { return percentile(95.0); }
  double p99() const { return percentile(99.0); }
  /// "n=…, mean=…, p50/p95/p99=…/…/…" (empty histogram: "n=0").
  std::string summary() const;
};

/// Exponential-bucket histogram; record() is lock-free.
class Histogram {
 public:
  explicit Histogram(HistogramOptions options = {});

  void record(double value);
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  const HistogramOptions& options() const { return options_; }
  /// Upper bound of finite bucket `index`.
  double upper_bound(std::size_t index) const;
  HistogramSnapshot snapshot() const;

 private:
  HistogramOptions options_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  ///< + overflow at back
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  ///< double, CAS-accumulated
  std::atomic<std::uint64_t> min_bits_;
  std::atomic<std::uint64_t> max_bits_;
};

/// Named metric store. Get-or-create accessors are thread-safe and return
/// stable shared handles; attach_* replaces an entry with an
/// externally-owned instance (used by per-object stats like the inference
/// server's latency histograms, so the registry always exposes the live
/// instance).
class MetricsRegistry {
 public:
  std::shared_ptr<Counter> counter(const std::string& name);
  std::shared_ptr<Gauge> gauge(const std::string& name);
  std::shared_ptr<Histogram> histogram(const std::string& name,
                                       HistogramOptions options = {});

  void attach_histogram(const std::string& name,
                        std::shared_ptr<Histogram> histogram);

  /// JSON document {"counters": {...}, "gauges": {...}, "histograms": ...}.
  std::string json_dump() const;
  /// Prometheus text exposition (names are sanitised to [a-zA-Z0-9_:]).
  std::string prometheus_text() const;
  /// Writes json_dump() to `path`; throws on I/O failure.
  void write_json(const std::string& path) const;

  /// Detaches every metric (holders keep theirs). Intended for tests.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Counter>> counters_;
  std::map<std::string, std::shared_ptr<Gauge>> gauges_;
  std::map<std::string, std::shared_ptr<Histogram>> histograms_;
};

/// The process-global registry.
MetricsRegistry& metrics();

}  // namespace spnhbm::telemetry
