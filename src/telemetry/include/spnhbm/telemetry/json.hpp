// Minimal JSON writer and parser used by the telemetry layer.
//
// The writer is a streaming emitter (no DOM) for the metrics dump, the
// Chrome trace file and the BENCH_*.json records; the parser builds a small
// DOM and exists so tests and tools can validate that everything the
// telemetry layer writes is well-formed and can be read back. Neither aims
// to be a general-purpose JSON library: strings are UTF-8 passed through
// with escaping of control characters, numbers are doubles.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace spnhbm::telemetry {

/// Escapes a string for embedding in a JSON document (adds the quotes).
std::string json_quote(const std::string& s);

/// Formats a double the way JSON expects (no inf/nan; round-trippable).
std::string json_number(double value);

/// Streaming JSON emitter with automatic comma placement.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  /// Object member key; must be followed by a value or container.
  JsonWriter& key(const std::string& name);
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v) { return value(std::string(v)); }

  const std::string& str() const { return out_; }

 private:
  void comma();

  std::string out_;
  std::vector<bool> needs_comma_;
  bool pending_key_ = false;
};

/// Small JSON DOM node (null/bool/number/string/array/object).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool has(const std::string& name) const {
    return kind == Kind::kObject && object.count(name) > 0;
  }
  const JsonValue& at(const std::string& name) const { return object.at(name); }
};

/// Parses a complete JSON document; throws spnhbm::Error on malformed input
/// (including trailing garbage).
JsonValue parse_json(const std::string& text);

}  // namespace spnhbm::telemetry
