// Dual-clock tracing layer with Chrome trace-event JSON export.
//
// Spans ("X" complete events), instants and counter samples are stamped in
// one of two clocks:
//   * kVirtual — DES virtual time (`sim::Scheduler::now()`, integer
//     picoseconds), used by the simulated hardware (HBM channels, PCIe DMA,
//     accelerator PEs, runtime control threads);
//   * kWall    — wall-clock time relative to `enable()`, used by the real
//     threads of the inference server.
// Each clock maps to one Chrome trace "process" and every registered track
// to one named "thread" inside it, so Perfetto / chrome://tracing renders
// one swim lane per hardware component or server thread.
//
// Cost model: tracing is DISABLED by default. Every emit function starts
// with one relaxed atomic load and returns immediately when disabled — no
// locks, no allocation, no timestamp capture. Track registration while
// disabled returns the null track (0), and events on the null track are
// dropped, so the instrumented stack must be constructed AFTER `enable()`
// for its tracks to appear (the CLI enables tracing before building
// anything).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "spnhbm/util/units.hpp"

namespace spnhbm::telemetry {

enum class TraceClock { kWall = 0, kVirtual = 1 };

/// Opaque track handle; 0 is the null track (events dropped).
using TrackId = std::uint32_t;

class Tracer {
 public:
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Clears any previous events and starts collecting; the wall clock's
  /// origin is the moment of this call.
  void enable();
  void disable();

  /// Registers a named swim lane under the given clock. Returns the null
  /// track while disabled. Thread-safe.
  TrackId register_track(const std::string& name, TraceClock clock);

  // --- Virtual-clock events (timestamps in DES picoseconds) --------------
  void complete_virtual(TrackId track, const char* name, Picoseconds start,
                        Picoseconds end);
  void instant_virtual(TrackId track, const char* name, Picoseconds at);
  void counter_virtual(TrackId track, const char* name, Picoseconds at,
                       double value);

  // --- Wall-clock events -------------------------------------------------
  using WallTime = std::chrono::steady_clock::time_point;
  static WallTime wall_now() { return std::chrono::steady_clock::now(); }
  void complete_wall(TrackId track, const char* name, WallTime start,
                     WallTime end);
  void instant_wall(TrackId track, const char* name);
  void counter_wall(TrackId track, const char* name, double value);

  // --- Flow events ---------------------------------------------------------
  // Chrome flow events ('s' start, 't' step, 'f' end) sharing one `id`
  // draw an arrow chain through the enclosing 'X' slices — including
  // across the two clock "processes", which is how one request's
  // wall-clock server spans are linked to its virtual-time device spans.
  // Every flow event is emitted with the same category ("req"), because
  // Chrome only binds flow events whose cat AND id match. A flow event
  // must fall inside an 'X' slice on the same track to bind; emit it at
  // (or just after) the enclosing slice's start timestamp.
  void flow_wall(TrackId track, const char* name, char phase,
                 std::uint64_t flow_id, WallTime at);
  void flow_virtual(TrackId track, const char* name, char phase,
                    std::uint64_t flow_id, Picoseconds at);

  /// RAII wall-clock span; emits a complete event on destruction. Safe to
  /// construct with tracing disabled (no-op).
  class WallSpan {
   public:
    WallSpan(Tracer& tracer, TrackId track, const char* name)
        : tracer_(tracer), track_(track), name_(name),
          active_(tracer.enabled() && track != 0),
          start_(active_ ? wall_now() : WallTime{}) {}
    ~WallSpan() {
      if (active_) tracer_.complete_wall(track_, name_, start_, wall_now());
    }
    WallSpan(const WallSpan&) = delete;
    WallSpan& operator=(const WallSpan&) = delete;

   private:
    Tracer& tracer_;
    TrackId track_;
    const char* name_;
    bool active_;
    WallTime start_;
  };

  std::size_t event_count() const;
  /// Capacity of the internal event buffer — stays 0 on the disabled path
  /// (the zero-allocation guarantee tests assert on this).
  std::size_t event_buffer_capacity() const;
  std::size_t track_count() const;

  /// Serialises everything collected so far as a Chrome trace-event JSON
  /// document ({"traceEvents": [...], ...}), loadable in Perfetto or
  /// chrome://tracing.
  std::string chrome_trace_json() const;
  /// Writes chrome_trace_json() to `path`; throws on I/O failure.
  void write_chrome_trace(const std::string& path) const;

 private:
  struct Event {
    TrackId track;
    const char* name;  ///< must point at a string literal
    char phase;        ///< 'X' complete, 'i' instant, 'C' counter,
                       ///< 's'/'t'/'f' flow start/step/end
    double ts_us;
    double dur_us;     ///< 'X' only
    double value;      ///< 'C' only
    std::uint64_t flow;  ///< flow events only: the binding id
  };
  struct Track {
    std::string name;
    TraceClock clock;
  };

  double wall_us(WallTime t) const {
    return std::chrono::duration<double, std::micro>(t - wall_epoch_).count();
  }
  static double virtual_us(Picoseconds ps) {
    return static_cast<double>(ps) / 1e6;
  }
  void push(const Event& event);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<Event> events_;
  std::vector<Track> tracks_;
  WallTime wall_epoch_{};
};

/// The process-global tracer.
Tracer& tracer();

}  // namespace spnhbm::telemetry
