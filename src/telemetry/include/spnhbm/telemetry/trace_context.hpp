// Request-scoped trace context and sampling.
//
// A `TraceContext` names one request end to end: the client (or loadgen)
// mints a process-unique trace id, sends it on the wire as an optional
// REQUEST field, and every layer that touches the request — admission,
// model lane, batch, engine, simulated device — stamps its spans with
// flow events carrying that id, so Perfetto draws one arrow chain from
// the client send all the way into the virtual-time HBM/DMA lanes.
//
// Sampling is two-sided:
//   * `HeadSampler` — an always-on 1-in-N gate applied where the context
//     is minted; sampled requests get the full flow chain, unsampled
//     requests carry no context and cost nothing.
//   * `TailSampler` — a bounded ring that retains the span breakdown of
//     the slowest requests actually observed, whatever the head sampler
//     decided; it answers "what did the p99 stragglers spend their time
//     on" without keeping every request.
//
// Log correlation: `TraceContextScope` publishes the trace id to the
// util logging layer for the current thread, so every log line emitted
// while a request is being handled carries ` trace=<hex>`.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace spnhbm::telemetry {

/// Identity of one traced request. `trace_id` doubles as the Chrome
/// flow-event id for the request's span chain; 0 means "no context"
/// (untraced request — the wire omits the field entirely).
struct TraceContext {
  std::uint64_t trace_id = 0;
  /// Span id of the hop that minted/forwarded the context (currently the
  /// client-side send span); carried for wire compatibility with future
  /// multi-hop topologies (fleet-of-fleets).
  std::uint64_t parent_span = 0;

  bool valid() const { return trace_id != 0; }
};

/// Process-unique, nonzero trace id (SplitMix64 over an atomic counter:
/// well-mixed bits, deterministic per process, no clock involvement).
std::uint64_t mint_trace_id();

/// Canonical 16-hex-digit lowercase rendering used in logs and admin
/// output.
std::string trace_id_hex(std::uint64_t id);

/// RAII: publishes the context's trace id as the calling thread's
/// current trace id (log prefixes append ` trace=<hex>` while set) and
/// restores the previous value on destruction. A scope over an invalid
/// context is a no-op.
class TraceContextScope {
 public:
  explicit TraceContextScope(const TraceContext& context);
  ~TraceContextScope();
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  std::uint64_t previous_ = 0;
  bool active_ = false;
};

/// Always-on 1-in-N head sampler. `sample()` is lock-free and returns
/// true for the 1st, (N+1)th, (2N+1)th... call; N = 1 samples every
/// request. The period is mutable at runtime (CLI `--trace-sample`).
class HeadSampler {
 public:
  explicit HeadSampler(std::uint64_t every_n = 1) { set_period(every_n); }

  bool sample() {
    const std::uint64_t n = every_n_.load(std::memory_order_relaxed);
    return count_.fetch_add(1, std::memory_order_relaxed) % n == 0;
  }
  std::uint64_t period() const {
    return every_n_.load(std::memory_order_relaxed);
  }
  /// `every_n` < 1 is clamped to 1 (sample everything).
  void set_period(std::uint64_t every_n) {
    every_n_.store(every_n < 1 ? 1 : every_n, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> every_n_{1};
  std::atomic<std::uint64_t> count_{0};
};

/// The process-global head sampler consulted by RpcClient/loadgen when
/// minting contexts.
HeadSampler& head_sampler();

/// One span inside a retained request breakdown; `depth` encodes the
/// tree shape (child spans indent under their parent).
struct RequestSpan {
  std::string name;
  double start_us = 0.0;  ///< relative to the request's first span
  double dur_us = 0.0;
  int depth = 0;
};

/// Everything the tail sampler keeps about one slow request.
struct RequestTraceRecord {
  std::uint64_t trace_id = 0;
  std::string model;
  std::string status;  ///< "ok" or the failure status name
  std::uint64_t sample_count = 0;
  double latency_us = 0.0;
  std::vector<RequestSpan> spans;
};

/// Bounded ring retaining the span trees of the slowest requests seen so
/// far. `offer()` is O(capacity) worst case and never allocates beyond
/// the fixed ring: once full, a new record evicts the fastest retained
/// record (or is dropped if it is itself faster than everything kept),
/// so memory stays bounded under any load while the retained set
/// converges on the slowest percentile.
class TailSampler {
 public:
  explicit TailSampler(std::size_t capacity = 64)
      : capacity_(capacity < 1 ? 1 : capacity) {}

  void offer(RequestTraceRecord record);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  std::uint64_t offered() const;
  /// Latency of the fastest retained record — the admission bar for new
  /// offers once the ring is full. 0 while not yet full.
  double threshold_us() const;

  /// Retained records, slowest first.
  std::vector<RequestTraceRecord> snapshot() const;
  /// Human-readable rendering for the admin plane: one line per record
  /// plus indented span breakdowns.
  std::string describe() const;
  void clear();

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<RequestTraceRecord> ring_;
  std::uint64_t offered_ = 0;
};

}  // namespace spnhbm::telemetry
