#include "spnhbm/telemetry/bench_report.hpp"

#include <cstdlib>
#include <fstream>

#include "spnhbm/telemetry/json.hpp"
#include "spnhbm/util/error.hpp"

namespace spnhbm::telemetry {

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {
  SPNHBM_REQUIRE(!name_.empty(), "bench report needs a name");
}

BenchReport::Record& BenchReport::Record::field(const std::string& name,
                                                double value) {
  Field f;
  f.name = name;
  f.is_number = true;
  f.number = value;
  fields_.push_back(std::move(f));
  return *this;
}

BenchReport::Record& BenchReport::Record::field(const std::string& name,
                                                const std::string& value) {
  Field f;
  f.name = name;
  f.string = value;
  fields_.push_back(std::move(f));
  return *this;
}

BenchReport::Record& BenchReport::add() {
  records_.emplace_back();
  return records_.back();
}

std::string BenchReport::json() const {
  JsonWriter w;
  w.begin_object();
  w.key("bench").value(name_);
  w.key("records").begin_array();
  for (const auto& record : records_) {
    w.begin_object();
    for (const auto& field : record.fields_) {
      w.key(field.name);
      if (field.is_number) {
        w.value(field.number);
      } else {
        w.value(field.string);
      }
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string BenchReport::output_path() const {
  std::string dir;
  if (const char* env = std::getenv("SPNHBM_BENCH_JSON_DIR")) dir = env;
  if (!dir.empty() && dir.back() != '/') dir.push_back('/');
  return dir + "BENCH_" + name_ + ".json";
}

void BenchReport::write() const {
  const std::string path = output_path();
  std::ofstream out(path);
  if (!out) throw Error("cannot open bench report file: " + path);
  out << json() << "\n";
  if (!out) throw Error("failed writing bench report file: " + path);
}

}  // namespace spnhbm::telemetry
