#include "spnhbm/spn/graph.hpp"

#include <algorithm>

#include "spnhbm/util/strings.hpp"

namespace spnhbm::spn {

NodeKind node_kind(const NodePayload& payload) {
  switch (payload.index()) {
    case 0: return NodeKind::kSum;
    case 1: return NodeKind::kProduct;
    case 2: return NodeKind::kHistogram;
    case 3: return NodeKind::kGaussian;
    case 4: return NodeKind::kCategorical;
  }
  SPNHBM_REQUIRE(false, "unreachable node payload index");
  return NodeKind::kSum;
}

const char* node_kind_name(NodeKind kind) {
  switch (kind) {
    case NodeKind::kSum: return "sum";
    case NodeKind::kProduct: return "product";
    case NodeKind::kHistogram: return "histogram";
    case NodeKind::kGaussian: return "gaussian";
    case NodeKind::kCategorical: return "categorical";
  }
  return "?";
}

NodeId Spn::push(NodePayload payload) {
  SPNHBM_REQUIRE(nodes_.size() < static_cast<std::size_t>(kInvalidNode),
                 "node arena full");
  nodes_.push_back(std::move(payload));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Spn::check_children(std::span<const NodeId> children) const {
  SPNHBM_REQUIRE(!children.empty(), "inner node needs at least one child");
  for (const NodeId child : children) {
    SPNHBM_REQUIRE(child < nodes_.size(),
                   "child node does not exist yet (children-first order)");
  }
}

NodeId Spn::add_sum(std::vector<NodeId> children, std::vector<double> weights) {
  check_children(children);
  SPNHBM_REQUIRE(children.size() == weights.size(),
                 "sum node needs one weight per child");
  return push(SumNode{std::move(children), std::move(weights)});
}

NodeId Spn::add_product(std::vector<NodeId> children) {
  check_children(children);
  return push(ProductNode{std::move(children)});
}

NodeId Spn::add_histogram(VariableId variable, std::vector<double> breaks,
                          std::vector<double> densities) {
  SPNHBM_REQUIRE(breaks.size() >= 2, "histogram needs at least one bucket");
  SPNHBM_REQUIRE(breaks.size() == densities.size() + 1,
                 "histogram needs |breaks| == |densities| + 1");
  SPNHBM_REQUIRE(std::is_sorted(breaks.begin(), breaks.end()),
                 "histogram breaks must be sorted");
  return push(HistogramLeaf{variable, std::move(breaks), std::move(densities)});
}

NodeId Spn::add_gaussian(VariableId variable, double mean, double stddev) {
  SPNHBM_REQUIRE(stddev > 0.0, "gaussian needs positive stddev");
  return push(GaussianLeaf{variable, mean, stddev});
}

NodeId Spn::add_categorical(VariableId variable,
                            std::vector<double> probabilities) {
  SPNHBM_REQUIRE(!probabilities.empty(), "categorical needs probabilities");
  return push(CategoricalLeaf{variable, std::move(probabilities)});
}

void Spn::set_root(NodeId root) {
  SPNHBM_REQUIRE(root < nodes_.size(), "root node does not exist");
  root_ = root;
}

const NodePayload& Spn::node(NodeId id) const {
  SPNHBM_REQUIRE(id < nodes_.size(), "node id out of range");
  return nodes_[id];
}

std::size_t Spn::variable_count() const {
  std::size_t count = 0;
  for (const auto& payload : nodes_) {
    VariableId variable = 0;
    if (const auto* h = std::get_if<HistogramLeaf>(&payload)) {
      variable = h->variable;
    } else if (const auto* g = std::get_if<GaussianLeaf>(&payload)) {
      variable = g->variable;
    } else if (const auto* c = std::get_if<CategoricalLeaf>(&payload)) {
      variable = c->variable;
    } else {
      continue;
    }
    count = std::max(count, static_cast<std::size_t>(variable) + 1);
  }
  return count;
}

namespace {
std::span<const NodeId> children_of(const NodePayload& payload) {
  if (const auto* s = std::get_if<SumNode>(&payload)) return s->children;
  if (const auto* p = std::get_if<ProductNode>(&payload)) return p->children;
  return {};
}
}  // namespace

std::vector<std::vector<VariableId>> Spn::compute_scopes() const {
  std::vector<std::vector<VariableId>> scopes(nodes_.size());
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const auto& payload = nodes_[id];
    if (const auto* h = std::get_if<HistogramLeaf>(&payload)) {
      scopes[id] = {h->variable};
    } else if (const auto* g = std::get_if<GaussianLeaf>(&payload)) {
      scopes[id] = {g->variable};
    } else if (const auto* c = std::get_if<CategoricalLeaf>(&payload)) {
      scopes[id] = {c->variable};
    } else {
      std::vector<VariableId> merged;
      for (const NodeId child : children_of(payload)) {
        merged.insert(merged.end(), scopes[child].begin(), scopes[child].end());
      }
      std::sort(merged.begin(), merged.end());
      merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
      scopes[id] = std::move(merged);
    }
  }
  return scopes;
}

std::vector<NodeId> Spn::reachable_topological() const {
  SPNHBM_REQUIRE(has_root(), "SPN has no root");
  std::vector<bool> reachable(nodes_.size(), false);
  std::vector<NodeId> stack{root_};
  reachable[root_] = true;
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    for (const NodeId child : children_of(nodes_[id])) {
      if (!reachable[child]) {
        reachable[child] = true;
        stack.push_back(child);
      }
    }
  }
  // Node ids are already topological (children-first by construction); a
  // filtered ascending scan therefore yields a children-first order.
  std::vector<NodeId> order;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (reachable[id]) order.push_back(id);
  }
  return order;
}

std::string SpnStats::describe() const {
  return strformat(
      "%zu nodes (%zu sum, %zu product, %zu histogram, %zu gaussian, "
      "%zu categorical), %zu edges, depth %zu, %zu variables, %zu buckets",
      total_nodes(), sum_nodes, product_nodes, histogram_leaves,
      gaussian_leaves, categorical_leaves, edges, depth, variables,
      histogram_buckets);
}

SpnStats compute_stats(const Spn& spn) {
  SpnStats stats;
  stats.variables = spn.variable_count();
  std::vector<std::size_t> depth(spn.node_count(), 0);
  for (const NodeId id : spn.reachable_topological()) {
    const auto& payload = spn.node(id);
    switch (node_kind(payload)) {
      case NodeKind::kSum: ++stats.sum_nodes; break;
      case NodeKind::kProduct: ++stats.product_nodes; break;
      case NodeKind::kHistogram:
        ++stats.histogram_leaves;
        stats.histogram_buckets +=
            std::get<HistogramLeaf>(payload).densities.size();
        break;
      case NodeKind::kGaussian: ++stats.gaussian_leaves; break;
      case NodeKind::kCategorical: ++stats.categorical_leaves; break;
    }
    for (const NodeId child : children_of(payload)) {
      ++stats.edges;
      depth[id] = std::max(depth[id], depth[child] + 1);
    }
    if (id == spn.root()) stats.depth = depth[id];
  }
  return stats;
}

}  // namespace spnhbm::spn
