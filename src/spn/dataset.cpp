#include "spnhbm/spn/dataset.hpp"

#include <algorithm>

namespace spnhbm::spn {

std::vector<std::uint8_t> DataMatrix::to_bytes() const {
  std::vector<std::uint8_t> bytes(values_.size());
  for (std::size_t i = 0; i < values_.size(); ++i) {
    bytes[i] = static_cast<std::uint8_t>(std::clamp(values_[i], 0.0, 255.0));
  }
  return bytes;
}

}  // namespace spnhbm::spn
