#include "spnhbm/spn/queries.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace spnhbm::spn {

namespace {

VariableId payload_variable(const NodePayload& payload) {
  if (const auto* h = std::get_if<HistogramLeaf>(&payload)) return h->variable;
  if (const auto* g = std::get_if<GaussianLeaf>(&payload)) return g->variable;
  return std::get<CategoricalLeaf>(payload).variable;
}

/// Log-domain sum-node accumulation (log-sum-exp with max extraction),
/// shared by the single-pass conditional below.
double log_sum_node(const SumNode& sum, std::span<const double> child_logs) {
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  double max_term = kNegInf;
  for (std::size_t c = 0; c < sum.children.size(); ++c) {
    max_term = std::max(max_term,
                        std::log(sum.weights[c]) + child_logs[sum.children[c]]);
  }
  if (max_term == kNegInf) return kNegInf;
  double acc = 0.0;
  for (std::size_t c = 0; c < sum.children.size(); ++c) {
    acc += std::exp(std::log(sum.weights[c]) + child_logs[sum.children[c]] -
                    max_term);
  }
  return max_term + std::log(acc);
}

}  // namespace

double conditional_probability(Evaluator& evaluator,
                               std::span<const double> query,
                               std::span<const double> evidence) {
  SPNHBM_REQUIRE(query.size() == evidence.size(),
                 "query and evidence must have the same width");
  for (std::size_t v = 0; v < query.size(); ++v) {
    if (!is_missing(evidence[v])) {
      SPNHBM_REQUIRE(!is_missing(query[v]) && query[v] == evidence[v],
                     "query must agree with the evidence where observed");
    }
  }
  // One upward pass computing log P(query) and log P(evidence) together.
  // A leaf differs between the two only where the query constrains a
  // variable the evidence leaves free; a sub-circuit whose leaves are all
  // shared is evaluated once and its log value reused for both sides.
  const Spn& spn = evaluator.spn();
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  std::vector<double> log_q(spn.node_count(), 0.0);
  std::vector<double> log_e(spn.node_count(), 0.0);
  std::vector<char> shared(spn.node_count(), 1);
  for (const NodeId id : spn.reachable_topological()) {
    const auto& payload = spn.node(id);
    if (const auto* sum = std::get_if<SumNode>(&payload)) {
      bool all_shared = true;
      for (const NodeId child : sum->children) {
        all_shared = all_shared && shared[child];
      }
      log_e[id] = log_sum_node(*sum, log_e);
      log_q[id] = all_shared ? log_e[id] : log_sum_node(*sum, log_q);
      shared[id] = all_shared;
    } else if (const auto* product = std::get_if<ProductNode>(&payload)) {
      bool all_shared = true;
      double acc_q = 0.0, acc_e = 0.0;
      for (const NodeId child : product->children) {
        all_shared = all_shared && shared[child];
        acc_q += log_q[child];
        acc_e += log_e[child];
      }
      log_e[id] = acc_e;
      log_q[id] = all_shared ? acc_e : acc_q;
      shared[id] = all_shared;
    } else {
      const VariableId variable = payload_variable(payload);
      log_e[id] = std::log(leaf_density(payload, evidence[variable]));
      const bool same = !is_missing(evidence[variable]) ||
                        is_missing(query[variable]);
      log_q[id] =
          same ? log_e[id] : std::log(leaf_density(payload, query[variable]));
      shared[id] = same;
    }
  }
  const double log_prior = log_e[spn.root()];
  SPNHBM_REQUIRE(log_prior > kNegInf, "evidence has zero probability");
  return log_q[spn.root()] - log_prior;
}

double max_product_value(const Spn& spn, std::span<const double> evidence,
                         std::size_t input_domain) {
  SPNHBM_REQUIRE(evidence.size() >= spn.variable_count(),
                 "evidence narrower than the SPN's scope");
  SPNHBM_REQUIRE(input_domain >= 1 && input_domain <= 256,
                 "input domain must fit a byte");
  std::vector<double> value(spn.node_count(), 0.0);
  for (const NodeId id : spn.reachable_topological()) {
    const auto& payload = spn.node(id);
    if (const auto* sum = std::get_if<SumNode>(&payload)) {
      double best = 0.0;
      for (std::size_t c = 0; c < sum->children.size(); ++c) {
        best = std::max(best, sum->weights[c] * value[sum->children[c]]);
      }
      value[id] = best;
    } else if (const auto* product = std::get_if<ProductNode>(&payload)) {
      double acc = 1.0;
      for (const NodeId child : product->children) acc *= value[child];
      value[id] = acc;
    } else {
      const VariableId variable = payload_variable(payload);
      if (is_missing(evidence[variable])) {
        // Byte-domain mode: the same max the compiler stores in the
        // reserved marginalised slot of an MPE lookup table.
        double best = 0.0;
        for (std::size_t byte = 0; byte < input_domain; ++byte) {
          best = std::max(
              best, leaf_density(payload, static_cast<double>(byte)));
        }
        value[id] = best;
      } else {
        value[id] = leaf_density(payload, evidence[variable]);
      }
    }
  }
  return value[spn.root()];
}

namespace {

/// Mode of a single leaf distribution.
double leaf_mode(const NodePayload& payload) {
  if (const auto* histogram = std::get_if<HistogramLeaf>(&payload)) {
    std::size_t best = 0;
    for (std::size_t b = 1; b < histogram->densities.size(); ++b) {
      if (histogram->densities[b] > histogram->densities[best]) best = b;
    }
    return 0.5 * (histogram->breaks[best] + histogram->breaks[best + 1]);
  }
  if (const auto* gaussian = std::get_if<GaussianLeaf>(&payload)) {
    return gaussian->mean;
  }
  const auto& categorical = std::get<CategoricalLeaf>(payload);
  std::size_t best = 0;
  for (std::size_t c = 1; c < categorical.probabilities.size(); ++c) {
    if (categorical.probabilities[c] > categorical.probabilities[best]) {
      best = c;
    }
  }
  return static_cast<double>(best);
}

VariableId leaf_variable(const NodePayload& payload) {
  if (const auto* h = std::get_if<HistogramLeaf>(&payload)) return h->variable;
  if (const auto* g = std::get_if<GaussianLeaf>(&payload)) return g->variable;
  return std::get<CategoricalLeaf>(payload).variable;
}

/// Density of the leaf at its own mode (the value the max-product pass
/// propagates for an unobserved variable).
double leaf_max_density(const NodePayload& payload) {
  return leaf_density(payload, leaf_mode(payload));
}

}  // namespace

std::vector<double> mpe_completion(const Spn& spn,
                                   std::span<const double> evidence) {
  SPNHBM_REQUIRE(evidence.size() >= spn.variable_count(),
                 "evidence narrower than the SPN's scope");
  const auto order = spn.reachable_topological();

  // Upward max-product pass: sums take max over weighted children instead
  // of the weighted sum; record the winning child for backtracking.
  std::vector<double> value(spn.node_count(), 0.0);
  std::vector<std::size_t> winner(spn.node_count(), 0);
  for (const NodeId id : order) {
    const auto& payload = spn.node(id);
    if (const auto* sum = std::get_if<SumNode>(&payload)) {
      double best = -1.0;
      std::size_t best_child = 0;
      for (std::size_t c = 0; c < sum->children.size(); ++c) {
        const double candidate = sum->weights[c] * value[sum->children[c]];
        if (candidate > best) {
          best = candidate;
          best_child = c;
        }
      }
      value[id] = best;
      winner[id] = best_child;
    } else if (const auto* product = std::get_if<ProductNode>(&payload)) {
      double acc = 1.0;
      for (const NodeId child : product->children) acc *= value[child];
      value[id] = acc;
    } else {
      const VariableId variable = leaf_variable(payload);
      value[id] = is_missing(evidence[variable])
                      ? leaf_max_density(payload)
                      : leaf_density(payload, evidence[variable]);
    }
  }

  // Top-down backtracking along winning sum branches; leaves reached in
  // the selected sub-circuit emit their mode for missing variables.
  std::vector<double> completion(evidence.begin(), evidence.end());
  std::vector<NodeId> stack{spn.root()};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    const auto& payload = spn.node(id);
    if (const auto* sum = std::get_if<SumNode>(&payload)) {
      stack.push_back(sum->children[winner[id]]);
    } else if (const auto* product = std::get_if<ProductNode>(&payload)) {
      for (const NodeId child : product->children) stack.push_back(child);
    } else {
      const VariableId variable = leaf_variable(payload);
      if (is_missing(completion[variable])) {
        completion[variable] = leaf_mode(payload);
      }
    }
  }
  return completion;
}

namespace {

void sample_into(const Spn& spn, NodeId id, Rng& rng,
                 std::vector<double>& out) {
  const auto& payload = spn.node(id);
  if (const auto* sum = std::get_if<SumNode>(&payload)) {
    sample_into(spn, sum->children[rng.next_weighted(sum->weights)], rng, out);
  } else if (const auto* product = std::get_if<ProductNode>(&payload)) {
    for (const NodeId child : product->children) {
      sample_into(spn, child, rng, out);
    }
  } else if (const auto* histogram = std::get_if<HistogramLeaf>(&payload)) {
    std::vector<double> masses(histogram->densities.size());
    for (std::size_t b = 0; b < masses.size(); ++b) {
      masses[b] = histogram->densities[b] *
                  (histogram->breaks[b + 1] - histogram->breaks[b]);
    }
    const std::size_t bucket = rng.next_weighted(masses);
    out[histogram->variable] = rng.next_uniform(histogram->breaks[bucket],
                                                histogram->breaks[bucket + 1]);
  } else if (const auto* gaussian = std::get_if<GaussianLeaf>(&payload)) {
    out[gaussian->variable] =
        gaussian->mean + gaussian->stddev * rng.next_normal();
  } else {
    const auto& categorical = std::get<CategoricalLeaf>(payload);
    out[categorical.variable] = static_cast<double>(
        rng.next_weighted(categorical.probabilities));
  }
}

}  // namespace

std::vector<double> sample(const Spn& spn, Rng& rng) {
  SPNHBM_REQUIRE(spn.has_root(), "SPN has no root");
  std::vector<double> out(spn.variable_count(), missing_value());
  sample_into(spn, spn.root(), rng, out);
  return out;
}

std::vector<std::vector<double>> sample_batch(const Spn& spn, Rng& rng,
                                              std::size_t count) {
  std::vector<std::vector<double>> samples;
  samples.reserve(count);
  for (std::size_t i = 0; i < count; ++i) samples.push_back(sample(spn, rng));
  return samples;
}

}  // namespace spnhbm::spn
