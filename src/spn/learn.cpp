#include "spnhbm/spn/learn.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "spnhbm/util/rng.hpp"
#include "spnhbm/util/stats.hpp"

namespace spnhbm::spn {

namespace {

class Learner {
 public:
  Learner(const DataMatrix& data, const LearnOptions& options)
      : data_(data), options_(options), rng_(options.seed) {
    SPNHBM_REQUIRE(data.rows() > 0 && data.cols() > 0,
                   "cannot learn from an empty dataset");
    SPNHBM_REQUIRE(options.histogram_buckets >= 1, "need >= 1 bucket");
  }

  Spn learn() {
    Spn spn;
    std::vector<std::size_t> rows(data_.rows());
    std::iota(rows.begin(), rows.end(), 0u);
    std::vector<VariableId> vars(data_.cols());
    std::iota(vars.begin(), vars.end(), 0u);
    spn.set_root(build(spn, rows, vars, 0));
    return spn;
  }

 private:
  /// Smoothed equal-width histogram over [0, domain) from the row subset.
  NodeId make_leaf(Spn& spn, const std::vector<std::size_t>& rows,
                   VariableId variable) {
    const std::size_t buckets = options_.histogram_buckets;
    const double width = options_.domain / static_cast<double>(buckets);
    std::vector<double> counts(buckets, options_.smoothing);
    for (const std::size_t r : rows) {
      const double v = data_.at(r, variable);
      auto bucket = static_cast<std::size_t>(
          std::clamp(v / width, 0.0, static_cast<double>(buckets - 1)));
      counts[bucket] += 1.0;
    }
    const double total =
        std::accumulate(counts.begin(), counts.end(), 0.0) * width;
    std::vector<double> breaks(buckets + 1);
    for (std::size_t i = 0; i <= buckets; ++i) {
      breaks[i] = width * static_cast<double>(i);
    }
    std::vector<double> densities(buckets);
    for (std::size_t i = 0; i < buckets; ++i) densities[i] = counts[i] / total;
    return spn.add_histogram(variable, std::move(breaks), std::move(densities));
  }

  NodeId factorise(Spn& spn, const std::vector<std::size_t>& rows,
                   const std::vector<VariableId>& vars) {
    if (vars.size() == 1) return make_leaf(spn, rows, vars.front());
    std::vector<NodeId> leaves;
    leaves.reserve(vars.size());
    for (const VariableId v : vars) leaves.push_back(make_leaf(spn, rows, v));
    return spn.add_product(std::move(leaves));
  }

  /// Connected components of the dependency graph on `vars`.
  std::vector<std::vector<VariableId>> independence_split(
      const std::vector<std::size_t>& rows,
      const std::vector<VariableId>& vars) {
    const std::size_t n = vars.size();
    std::vector<std::size_t> component(n);
    std::iota(component.begin(), component.end(), 0u);
    // Union-find with path halving.
    const auto find = [&](std::size_t x) {
      while (component[x] != x) {
        component[x] = component[component[x]];
        x = component[x];
      }
      return x;
    };
    std::vector<double> col_a(rows.size()), col_b(rows.size());
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        if (find(a) == find(b)) continue;
        for (std::size_t i = 0; i < rows.size(); ++i) {
          col_a[i] = data_.at(rows[i], vars[a]);
          col_b[i] = data_.at(rows[i], vars[b]);
        }
        if (std::fabs(pearson_correlation(col_a, col_b)) >
            options_.independence_threshold) {
          component[find(a)] = find(b);
        }
      }
    }
    std::vector<std::vector<VariableId>> groups;
    std::vector<std::size_t> group_of(n, static_cast<std::size_t>(-1));
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t representative = find(i);
      if (group_of[representative] == static_cast<std::size_t>(-1)) {
        group_of[representative] = groups.size();
        groups.emplace_back();
      }
      groups[group_of[representative]].push_back(vars[i]);
    }
    return groups;
  }

  /// 2-means over the row subset (restricted to `vars`). Returns cluster
  /// assignment per row index; clusters may be empty on degenerate data.
  std::vector<std::vector<std::size_t>> cluster_rows(
      const std::vector<std::size_t>& rows,
      const std::vector<VariableId>& vars) {
    const std::size_t k = 2;
    std::vector<std::vector<double>> centroids(
        k, std::vector<double>(vars.size(), 0.0));
    // Deterministic init: a random row and the row farthest from it.
    const std::size_t first = rows[rng_.next_below(rows.size())];
    for (std::size_t d = 0; d < vars.size(); ++d) {
      centroids[0][d] = data_.at(first, vars[d]);
    }
    double best_distance = -1.0;
    std::size_t farthest = first;
    for (const std::size_t r : rows) {
      double distance = 0.0;
      for (std::size_t d = 0; d < vars.size(); ++d) {
        const double diff = data_.at(r, vars[d]) - centroids[0][d];
        distance += diff * diff;
      }
      if (distance > best_distance) {
        best_distance = distance;
        farthest = r;
      }
    }
    for (std::size_t d = 0; d < vars.size(); ++d) {
      centroids[1][d] = data_.at(farthest, vars[d]);
    }

    std::vector<std::size_t> assignment(rows.size(), 0);
    for (std::size_t iteration = 0; iteration < options_.kmeans_iterations;
         ++iteration) {
      bool changed = false;
      for (std::size_t i = 0; i < rows.size(); ++i) {
        double best = std::numeric_limits<double>::max();
        std::size_t best_cluster = 0;
        for (std::size_t c = 0; c < k; ++c) {
          double distance = 0.0;
          for (std::size_t d = 0; d < vars.size(); ++d) {
            const double diff = data_.at(rows[i], vars[d]) - centroids[c][d];
            distance += diff * diff;
          }
          if (distance < best) {
            best = distance;
            best_cluster = c;
          }
        }
        if (assignment[i] != best_cluster) {
          assignment[i] = best_cluster;
          changed = true;
        }
      }
      if (!changed) break;
      for (std::size_t c = 0; c < k; ++c) {
        std::fill(centroids[c].begin(), centroids[c].end(), 0.0);
        std::size_t count = 0;
        for (std::size_t i = 0; i < rows.size(); ++i) {
          if (assignment[i] != c) continue;
          ++count;
          for (std::size_t d = 0; d < vars.size(); ++d) {
            centroids[c][d] += data_.at(rows[i], vars[d]);
          }
        }
        if (count > 0) {
          for (auto& v : centroids[c]) v /= static_cast<double>(count);
        }
      }
    }

    std::vector<std::vector<std::size_t>> clusters(k);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      clusters[assignment[i]].push_back(rows[i]);
    }
    return clusters;
  }

  NodeId build(Spn& spn, const std::vector<std::size_t>& rows,
               const std::vector<VariableId>& vars, std::size_t depth) {
    if (vars.size() == 1) return make_leaf(spn, rows, vars.front());
    if (rows.size() < options_.min_instances || depth >= options_.max_depth) {
      return factorise(spn, rows, vars);
    }
    // Try a variable split first (as LearnSPN does).
    auto groups = independence_split(rows, vars);
    if (groups.size() > 1) {
      std::vector<NodeId> children;
      children.reserve(groups.size());
      for (const auto& group : groups) {
        children.push_back(build(spn, rows, group, depth + 1));
      }
      return spn.add_product(std::move(children));
    }
    // Otherwise split rows into clusters -> sum node.
    auto clusters = cluster_rows(rows, vars);
    clusters.erase(std::remove_if(clusters.begin(), clusters.end(),
                                  [](const auto& c) { return c.empty(); }),
                   clusters.end());
    if (clusters.size() < 2) return factorise(spn, rows, vars);
    std::vector<NodeId> children;
    std::vector<double> weights;
    for (const auto& cluster : clusters) {
      children.push_back(build(spn, cluster, vars, depth + 1));
      weights.push_back(static_cast<double>(cluster.size()) /
                        static_cast<double>(rows.size()));
    }
    // Exact renormalisation against accumulated rounding.
    const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
    for (auto& w : weights) w /= total;
    return spn.add_sum(std::move(children), std::move(weights));
  }

  const DataMatrix& data_;
  LearnOptions options_;
  Rng rng_;
};

}  // namespace

Spn learn_spn(const DataMatrix& data, const LearnOptions& options) {
  return Learner(data, options).learn();
}

}  // namespace spnhbm::spn
