#include "spnhbm/spn/text_format.hpp"

#include <cctype>
#include <charconv>
#include <cmath>

#include "spnhbm/util/strings.hpp"

namespace spnhbm::spn {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Spn parse() {
    Spn spn;
    const NodeId root = parse_node(spn);
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail("trailing characters after SPN description");
    }
    spn.set_root(root);
    return spn;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(
        strformat("%s (at offset %zu)", message.c_str(), pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool try_consume(char c) {
    skip_whitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!try_consume(c)) {
      fail(strformat("expected '%c'", c));
    }
  }

  bool try_keyword(std::string_view keyword) {
    skip_whitespace();
    if (text_.substr(pos_, keyword.size()) == keyword) {
      pos_ += keyword.size();
      return true;
    }
    return false;
  }

  double parse_number() {
    skip_whitespace();
    double value = 0.0;
    const auto* begin = text_.data() + pos_;
    const auto* end = text_.data() + text_.size();
    const auto result = std::from_chars(begin, end, value);
    if (result.ec != std::errc{}) {
      fail("expected a number");
    }
    pos_ += static_cast<std::size_t>(result.ptr - begin);
    return value;
  }

  VariableId parse_variable() {
    skip_whitespace();
    if (pos_ >= text_.size() || text_[pos_] != 'V') {
      fail("expected a variable reference 'V<index>'");
    }
    ++pos_;
    unsigned value = 0;
    const auto* begin = text_.data() + pos_;
    const auto* end = text_.data() + text_.size();
    const auto result = std::from_chars(begin, end, value);
    if (result.ec != std::errc{} || result.ptr == begin) {
      fail("expected a variable index after 'V'");
    }
    pos_ += static_cast<std::size_t>(result.ptr - begin);
    return value;
  }

  std::vector<double> parse_number_list() {
    expect('[');
    std::vector<double> values;
    if (!try_consume(']')) {
      do {
        values.push_back(parse_number());
      } while (try_consume(','));
      expect(']');
    }
    return values;
  }

  NodeId parse_node(Spn& spn) {
    if (try_keyword("Sum")) return parse_sum(spn);
    if (try_keyword("Product")) return parse_product(spn);
    if (try_keyword("Histogram")) return parse_histogram(spn);
    if (try_keyword("Gaussian")) return parse_gaussian(spn);
    if (try_keyword("Categorical")) return parse_categorical(spn);
    fail("expected Sum, Product, Histogram, Gaussian or Categorical");
  }

  NodeId parse_sum(Spn& spn) {
    expect('(');
    std::vector<NodeId> children;
    std::vector<double> weights;
    do {
      weights.push_back(parse_number());
      expect('*');
      children.push_back(parse_node(spn));
    } while (try_consume('+'));
    expect(')');
    return spn.add_sum(std::move(children), std::move(weights));
  }

  NodeId parse_product(Spn& spn) {
    expect('(');
    std::vector<NodeId> children;
    do {
      children.push_back(parse_node(spn));
    } while (try_consume('*'));
    expect(')');
    return spn.add_product(std::move(children));
  }

  NodeId parse_histogram(Spn& spn) {
    expect('(');
    const VariableId variable = parse_variable();
    expect('|');
    auto breaks = parse_number_list();
    expect(';');
    auto densities = parse_number_list();
    expect(')');
    if (breaks.size() != densities.size() + 1) {
      fail("histogram needs |breaks| == |densities| + 1");
    }
    return spn.add_histogram(variable, std::move(breaks), std::move(densities));
  }

  NodeId parse_gaussian(Spn& spn) {
    expect('(');
    const VariableId variable = parse_variable();
    expect('|');
    const double mean = parse_number();
    expect(';');
    const double stddev = parse_number();
    expect(')');
    if (stddev <= 0.0) fail("gaussian needs a positive stddev");
    return spn.add_gaussian(variable, mean, stddev);
  }

  NodeId parse_categorical(Spn& spn) {
    expect('(');
    const VariableId variable = parse_variable();
    expect('|');
    auto probabilities = parse_number_list();
    expect(')');
    if (probabilities.empty()) fail("categorical needs probabilities");
    return spn.add_categorical(variable, std::move(probabilities));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

class Printer {
 public:
  Printer(const Spn& spn, bool indent) : spn_(spn), indent_(indent) {}

  std::string print() {
    emit_node(spn_.root(), 0);
    return std::move(out_);
  }

 private:
  void newline(int depth) {
    if (!indent_) return;
    out_ += '\n';
    out_.append(static_cast<std::size_t>(depth) * 2, ' ');
  }

  static std::string number(double v) {
    // Shortest representation that round-trips through double.
    std::string s = strformat("%.17g", v);
    for (int precision = 1; precision < 17; ++precision) {
      std::string candidate = strformat("%.*g", precision, v);
      if (std::stod(candidate) == v) return candidate;
    }
    return s;
  }

  void emit_list(const std::vector<double>& values) {
    out_ += '[';
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i != 0) out_ += ',';
      out_ += number(values[i]);
    }
    out_ += ']';
  }

  void emit_node(NodeId id, int depth) {
    const auto& payload = spn_.node(id);
    if (const auto* sum = std::get_if<SumNode>(&payload)) {
      out_ += "Sum(";
      for (std::size_t c = 0; c < sum->children.size(); ++c) {
        if (c != 0) {
          newline(depth + 1);
          out_ += " + ";
        }
        out_ += number(sum->weights[c]);
        out_ += '*';
        emit_node(sum->children[c], depth + 1);
      }
      out_ += ')';
    } else if (const auto* product = std::get_if<ProductNode>(&payload)) {
      out_ += "Product(";
      for (std::size_t c = 0; c < product->children.size(); ++c) {
        if (c != 0) {
          newline(depth + 1);
          out_ += " * ";
        }
        emit_node(product->children[c], depth + 1);
      }
      out_ += ')';
    } else if (const auto* histogram = std::get_if<HistogramLeaf>(&payload)) {
      out_ += strformat("Histogram(V%u|", histogram->variable);
      emit_list(histogram->breaks);
      out_ += ';';
      emit_list(histogram->densities);
      out_ += ')';
    } else if (const auto* gaussian = std::get_if<GaussianLeaf>(&payload)) {
      out_ += strformat("Gaussian(V%u|%s;%s)", gaussian->variable,
                        number(gaussian->mean).c_str(),
                        number(gaussian->stddev).c_str());
    } else if (const auto* categorical =
                   std::get_if<CategoricalLeaf>(&payload)) {
      out_ += strformat("Categorical(V%u|", categorical->variable);
      emit_list(categorical->probabilities);
      out_ += ')';
    }
  }

  const Spn& spn_;
  bool indent_;
  std::string out_;
};

}  // namespace

Spn parse_spn(std::string_view text) { return Parser(text).parse(); }

std::string to_text(const Spn& spn, bool indent) {
  SPNHBM_REQUIRE(spn.has_root(), "cannot serialise an SPN without a root");
  return Printer(spn, indent).print();
}

}  // namespace spnhbm::spn
