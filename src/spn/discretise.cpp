#include "spnhbm/spn/discretise.hpp"

#include <cmath>

namespace spnhbm::spn {

double gaussian_cdf(double x, double mean, double stddev) {
  return 0.5 * (1.0 + std::erf((x - mean) / (stddev * std::sqrt(2.0))));
}

namespace {

HistogramLeaf discretise_leaf(const GaussianLeaf& gaussian,
                              const DiscretiseOptions& options) {
  HistogramLeaf histogram;
  histogram.variable = gaussian.variable;
  const double width = options.domain / static_cast<double>(options.buckets);
  histogram.breaks.resize(options.buckets + 1);
  for (std::size_t b = 0; b <= options.buckets; ++b) {
    histogram.breaks[b] = width * static_cast<double>(b);
  }
  histogram.densities.resize(options.buckets);
  double mass = 0.0;
  for (std::size_t b = 0; b < options.buckets; ++b) {
    const double bucket_mass =
        gaussian_cdf(histogram.breaks[b + 1], gaussian.mean, gaussian.stddev) -
        gaussian_cdf(histogram.breaks[b], gaussian.mean, gaussian.stddev);
    histogram.densities[b] =
        std::max(bucket_mass / width, options.density_floor);
    mass += histogram.densities[b] * width;
  }
  // Renormalise: the floor and the clipped tails shift the integral.
  for (auto& density : histogram.densities) density /= mass;
  return histogram;
}

}  // namespace

Spn discretise_gaussians(const Spn& spn, const DiscretiseOptions& options) {
  SPNHBM_REQUIRE(options.buckets >= 2, "need at least two buckets");
  SPNHBM_REQUIRE(options.domain > 0.0, "domain must be positive");
  Spn result;
  std::vector<NodeId> mapped(spn.node_count(), kInvalidNode);
  for (const NodeId id : spn.reachable_topological()) {
    const auto& payload = spn.node(id);
    if (const auto* sum = std::get_if<SumNode>(&payload)) {
      std::vector<NodeId> children;
      children.reserve(sum->children.size());
      for (const NodeId child : sum->children) {
        children.push_back(mapped[child]);
      }
      mapped[id] = result.add_sum(std::move(children), sum->weights);
    } else if (const auto* product = std::get_if<ProductNode>(&payload)) {
      std::vector<NodeId> children;
      children.reserve(product->children.size());
      for (const NodeId child : product->children) {
        children.push_back(mapped[child]);
      }
      mapped[id] = result.add_product(std::move(children));
    } else if (const auto* histogram = std::get_if<HistogramLeaf>(&payload)) {
      mapped[id] = result.add_histogram(histogram->variable, histogram->breaks,
                                        histogram->densities);
    } else if (const auto* gaussian = std::get_if<GaussianLeaf>(&payload)) {
      HistogramLeaf leaf = discretise_leaf(*gaussian, options);
      mapped[id] = result.add_histogram(leaf.variable, std::move(leaf.breaks),
                                        std::move(leaf.densities));
    } else {
      const auto& categorical = std::get<CategoricalLeaf>(payload);
      mapped[id] = result.add_categorical(categorical.variable,
                                          categorical.probabilities);
    }
  }
  result.set_root(mapped[spn.root()]);
  return result;
}

}  // namespace spnhbm::spn
