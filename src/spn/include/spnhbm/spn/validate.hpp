// Structural validation of SPNs.
//
// Checks the three properties that make SPN inference tractable and the
// datapath generation sound:
//   * completeness/smoothness — all children of a sum node share the same
//     scope (a sum is a mixture over the *same* variables);
//   * decomposability — children of a product node have pairwise disjoint
//     scopes (a product factorises *independent* variables);
//   * normalisation — sum weights are positive and sum to 1 (within
//     tolerance), leaf distributions are valid densities/masses.
#pragma once

#include <string>
#include <vector>

#include "spnhbm/spn/graph.hpp"

namespace spnhbm::spn {

struct ValidationOptions {
  double weight_tolerance = 1e-9;  ///< |sum(weights) - 1| allowed
  bool require_normalised_leaves = true;
};

/// Returns the list of violations (empty == valid). Never throws.
std::vector<std::string> validate(const Spn& spn,
                                  const ValidationOptions& options = {});

/// Throws ValidationError with all violations if the SPN is invalid.
void validate_or_throw(const Spn& spn, const ValidationOptions& options = {});

}  // namespace spnhbm::spn
