// Sum-Product Network graph representation.
//
// An SPN is a rooted DAG with three node families (Poon & Domingos 2011):
//   * leaves: univariate distributions over a single random variable —
//     here histograms (the Mixed-SPN flavour of Molina et al. 2018 that the
//     paper's hardware maps directly to BRAM lookup tables), Gaussians, and
//     categorical distributions;
//   * product nodes: factorisations over disjoint scopes;
//   * sum nodes: weighted mixtures over identical scopes.
//
// Nodes are stored in a flat arena indexed by NodeId. The builder API only
// accepts children that already exist, so node ids are a topological order
// by construction — every evaluator in this repo exploits that.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "spnhbm/util/error.hpp"

namespace spnhbm::spn {

using NodeId = std::uint32_t;
using VariableId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

struct SumNode {
  std::vector<NodeId> children;
  std::vector<double> weights;  // same arity as children; must sum to ~1
};

struct ProductNode {
  std::vector<NodeId> children;
};

/// Piecewise-constant density: `breaks` has one more entry than `densities`;
/// bucket i covers [breaks[i], breaks[i+1]) with density `densities[i]`.
/// This is the leaf type the FPGA maps to a BRAM lookup table.
struct HistogramLeaf {
  VariableId variable = 0;
  std::vector<double> breaks;
  std::vector<double> densities;
};

struct GaussianLeaf {
  VariableId variable = 0;
  double mean = 0.0;
  double stddev = 1.0;
};

/// Probability mass over {0, 1, ..., probabilities.size()-1}.
struct CategoricalLeaf {
  VariableId variable = 0;
  std::vector<double> probabilities;
};

using NodePayload = std::variant<SumNode, ProductNode, HistogramLeaf,
                                 GaussianLeaf, CategoricalLeaf>;

enum class NodeKind { kSum, kProduct, kHistogram, kGaussian, kCategorical };

NodeKind node_kind(const NodePayload& payload);
const char* node_kind_name(NodeKind kind);

class Spn {
 public:
  // --- Builder API. Children must already exist (enforces acyclicity). ---
  NodeId add_sum(std::vector<NodeId> children, std::vector<double> weights);
  NodeId add_product(std::vector<NodeId> children);
  NodeId add_histogram(VariableId variable, std::vector<double> breaks,
                       std::vector<double> densities);
  NodeId add_gaussian(VariableId variable, double mean, double stddev);
  NodeId add_categorical(VariableId variable,
                         std::vector<double> probabilities);

  /// Declares the root. Must be the last step of construction.
  void set_root(NodeId root);

  // --- Introspection -------------------------------------------------------
  std::size_t node_count() const { return nodes_.size(); }
  NodeId root() const { return root_; }
  bool has_root() const { return root_ != kInvalidNode; }
  const NodePayload& node(NodeId id) const;
  NodeKind kind(NodeId id) const { return node_kind(node(id)); }

  /// Number of distinct random variables referenced by leaves (max id + 1).
  std::size_t variable_count() const;

  /// Scope (sorted variable ids) of each node, computed bottom-up.
  std::vector<std::vector<VariableId>> compute_scopes() const;

  /// Ids of the nodes reachable from the root, in topological
  /// (children-first) order.
  std::vector<NodeId> reachable_topological() const;

 private:
  NodeId push(NodePayload payload);
  void check_children(std::span<const NodeId> children) const;

  std::vector<NodePayload> nodes_;
  NodeId root_ = kInvalidNode;
};

/// Structural statistics used by reports and the resource model.
struct SpnStats {
  std::size_t sum_nodes = 0;
  std::size_t product_nodes = 0;
  std::size_t histogram_leaves = 0;
  std::size_t gaussian_leaves = 0;
  std::size_t categorical_leaves = 0;
  std::size_t edges = 0;
  std::size_t depth = 0;  // longest root-to-leaf path, in edges
  std::size_t variables = 0;
  std::size_t histogram_buckets = 0;  // total across all histogram leaves

  std::size_t total_nodes() const {
    return sum_nodes + product_nodes + histogram_leaves + gaussian_leaves +
           categorical_leaves;
  }
  std::string describe() const;
};

SpnStats compute_stats(const Spn& spn);

}  // namespace spnhbm::spn
