// LearnSPN-style structure learning (Gens & Domingos 2013, simplified to
// the Mixed-SPN histogram setting of Molina et al. 2018).
//
// The paper's models are trained with SPFlow on the NIPS bag-of-words
// corpus and exported as text. This learner reproduces that pipeline on
// the synthetic corpus from `spnhbm/workload`:
//   * variable splits: pairwise-independence graph (Pearson correlation on
//     the current row subset, thresholded), split into connected
//     components -> product node;
//   * row splits: 2-means clustering -> sum node weighted by cluster size;
//   * base case: histogram leaves with Laplace smoothing over the byte
//     domain.
#pragma once

#include <cstdint>

#include "spnhbm/spn/dataset.hpp"
#include "spnhbm/spn/graph.hpp"

namespace spnhbm::spn {

struct LearnOptions {
  /// Stop clustering below this many rows; factorise into leaves instead.
  std::size_t min_instances = 64;
  /// |Pearson correlation| below this counts as independent.
  double independence_threshold = 0.15;
  std::size_t histogram_buckets = 16;
  /// Feature domain upper bound; leaves cover [0, domain).
  double domain = 256.0;
  /// Laplace smoothing pseudo-count per bucket.
  double smoothing = 1.0;
  /// k-means iterations for row clustering.
  std::size_t kmeans_iterations = 10;
  /// Hard recursion cap (sum levels); guards degenerate clusterings.
  std::size_t max_depth = 24;
  std::uint64_t seed = 1;
};

/// Learns an SPN over all columns of `data`. The result is valid
/// (complete, decomposable, normalised) by construction.
Spn learn_spn(const DataMatrix& data, const LearnOptions& options = {});

}  // namespace spnhbm::spn
