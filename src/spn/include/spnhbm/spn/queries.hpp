// Advanced probabilistic queries on SPNs.
//
// Beyond the joint/marginal evaluation the accelerator computes, SPNs
// support further tractable queries (all linear in the network size) that
// the host-side library provides:
//   * conditional probabilities P(Q | E) — two marginal evaluations;
//   * MPE (most probable explanation): argmax completion of missing
//     features, via a max-product upward pass + top-down backtracking
//     (Poon & Domingos 2011);
//   * ancestral sampling from the encoded joint distribution — used both
//     as a generative API and as a statistical test oracle for the
//     learner/evaluator pair.
#pragma once

#include <vector>

#include "spnhbm/spn/evaluate.hpp"
#include "spnhbm/spn/graph.hpp"
#include "spnhbm/util/rng.hpp"

namespace spnhbm::spn {

/// log P(query | evidence): both spans are full-width samples where
/// `missing_value()` marks unconstrained variables; `query` must constrain
/// a superset of `evidence`'s variables. Computed in one upward pass —
/// sub-circuits whose scope is untouched by the extra query variables are
/// evaluated once and shared — and returned in log space, so wide models
/// whose linear-space probabilities underflow still condition correctly.
double conditional_probability(Evaluator& evaluator,
                               std::span<const double> query,
                               std::span<const double> evidence);

/// Max-product circuit value over byte evidence — the reference the MPE
/// datapath (`CompileOptions.query == QueryKind::kMpe`) is checked
/// against, byte for byte. Sum nodes take the max over weighted children,
/// products multiply, and a missing leaf (NaN) contributes the density of
/// its best byte in [0, input_domain) — exactly the reserved-slot value
/// the compiler bakes into non-joint lookup tables. Returns the (linear
/// domain) value of the most probable completion, not the completion
/// itself; `mpe_completion` recovers the argmax in the continuous domain.
double max_product_value(const Spn& spn, std::span<const double> evidence,
                         std::size_t input_domain);

/// Most probable explanation: completes every missing variable in
/// `evidence` with its MPE assignment. Observed variables pass through.
/// Continuous leaves (Gaussian) complete with their mode; histogram and
/// categorical leaves with the centre of the highest-density bucket /
/// highest-mass category (ties: lowest value).
std::vector<double> mpe_completion(const Spn& spn,
                                   std::span<const double> evidence);

/// Draws one sample from the joint distribution by ancestral sampling:
/// sums choose a child by weight, products recurse into every child,
/// leaves sample their distribution. Histogram leaves sample a bucket by
/// mass, then uniformly within the bucket.
std::vector<double> sample(const Spn& spn, Rng& rng);

/// Batch sampling convenience.
std::vector<std::vector<double>> sample_batch(const Spn& spn, Rng& rng,
                                              std::size_t count);

}  // namespace spnhbm::spn
