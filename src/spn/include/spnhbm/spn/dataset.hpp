// Row-major numeric dataset used for structure learning and evaluation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "spnhbm/util/error.hpp"

namespace spnhbm::spn {

class DataMatrix {
 public:
  DataMatrix() = default;
  DataMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), values_(rows * cols, 0.0) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double at(std::size_t row, std::size_t col) const {
    SPNHBM_REQUIRE(row < rows_ && col < cols_, "dataset index out of range");
    return values_[row * cols_ + col];
  }
  void set(std::size_t row, std::size_t col, double value) {
    SPNHBM_REQUIRE(row < rows_ && col < cols_, "dataset index out of range");
    values_[row * cols_ + col] = value;
  }

  std::span<const double> row(std::size_t r) const {
    SPNHBM_REQUIRE(r < rows_, "dataset row out of range");
    return std::span<const double>(values_).subspan(r * cols_, cols_);
  }

  std::span<const double> raw() const { return values_; }

  /// Quantises every value to a byte (clamping to [0, 255]) — the encoding
  /// the hardware datapath consumes.
  std::vector<std::uint8_t> to_bytes() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> values_;
};

}  // namespace spnhbm::spn
