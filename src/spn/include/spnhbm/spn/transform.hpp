// Structural optimisation passes over SPNs.
//
// The hardware generator benefits from smaller, flatter graphs: every
// node becomes physical operators, so classic compiler cleanups translate
// directly into LUTs/DSPs saved. All passes preserve the represented
// distribution exactly (up to weight renormalisation tolerance) and
// return a fresh SPN; the equivalence property tests in
// tests/spn/test_transform.cpp verify value-preservation pointwise.
//
//   * flatten:      collapse sum-of-sum and product-of-product nesting
//                   (associativity), merging weights multiplicatively;
//   * prune:        drop sum children whose mixture weight is below a
//                   threshold and renormalise the survivors;
//   * deduplicate:  share structurally identical subgraphs (tree -> DAG
//                   conversion; the SPN-level analogue of the compiler's
//                   lookup-table CSE).
#pragma once

#include "spnhbm/spn/graph.hpp"

namespace spnhbm::spn {

/// Collapses nested sums (child sum weights fold into the parent) and
/// nested products into single n-ary nodes.
Spn flatten(const Spn& spn);

/// Removes sum edges with weight < `threshold` (never removing the last
/// child) and renormalises. Changes the distribution by at most the
/// pruned mass; threshold 0 is the identity.
Spn prune_low_weights(const Spn& spn, double threshold);

/// Merges structurally identical subgraphs into shared nodes. Purely a
/// size optimisation; the distribution is unchanged.
Spn deduplicate(const Spn& spn);

/// flatten + deduplicate, the default pre-compilation pipeline.
Spn optimise(const Spn& spn);

}  // namespace spnhbm::spn
