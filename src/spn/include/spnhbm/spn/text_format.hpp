// SPFlow-compatible textual SPN description.
//
// The paper's toolflow trains SPNs with the SPFlow library and exports them
// to a textual description consumed by the hardware generator. This module
// implements that interchange format:
//
//   Sum(0.4*Product(Histogram(V0|[0,1,2];[0.25,0.75]) *
//                   Histogram(V1|[0,1,2];[0.5,0.5]))
//     + 0.6*Product(Histogram(V0|[0,1,2];[0.5,0.5]) *
//                   Histogram(V1|[0,1,2];[0.1,0.9])))
//   Gaussian(V2|0.5;1.25)        -- mean; stddev
//   Categorical(V3|[0.2,0.8])
//
// Whitespace (including newlines) is insignificant. `parse_spn` and
// `to_text` round-trip: parse(to_text(spn)) is structurally identical.
#pragma once

#include <string>
#include <string_view>

#include "spnhbm/spn/graph.hpp"

namespace spnhbm::spn {

/// Parses a textual SPN description. Throws ParseError with a byte offset
/// and message on malformed input. The result always has a root set.
Spn parse_spn(std::string_view text);

/// Serialises the subgraph reachable from the root. `indent=true` produces
/// a pretty-printed nested layout, otherwise a single line.
std::string to_text(const Spn& spn, bool indent = false);

}  // namespace spnhbm::spn
