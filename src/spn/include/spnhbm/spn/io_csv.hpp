// CSV interchange for datasets.
//
// The trainable surface of the toolflow: datasets come in as plain CSV
// (one sample per line, one numeric feature per cell, no header) and
// leave the same way (sampled data, exported corpora).
#pragma once

#include <string>
#include <string_view>

#include "spnhbm/spn/dataset.hpp"

namespace spnhbm::spn {

/// Parses CSV text into a dense matrix. Empty lines are skipped; every
/// remaining row must have the same arity. Throws ParseError on ragged or
/// non-numeric input (with the offending line number).
DataMatrix parse_csv(std::string_view text);

/// Renders a matrix as CSV ('%g' cells, '\n' rows).
std::string to_csv(const DataMatrix& data);

/// File conveniences.
DataMatrix load_csv_file(const std::string& path);
void save_csv_file(const DataMatrix& data, const std::string& path);

}  // namespace spnhbm::spn
