// Reference SPN inference (the semantics every accelerated path is checked
// against).
//
// Bottom-up evaluation over the topological node order — linear in the
// number of edges, the tractability property the paper leans on. Two
// domains are provided:
//   * linear domain (plain probabilities in double), and
//   * log domain (numerically robust for deep SPNs / tiny probabilities).
//
// Missing features (NaN inputs) are marginalised: a leaf over a missing
// variable contributes 1 (log 0), the standard SPN marginalisation rule —
// this is the "handles uncertainty" property from the paper's background
// section.
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "spnhbm/spn/graph.hpp"

namespace spnhbm::spn {

/// Marker for a missing feature value (marginalised variable).
inline double missing_value() { return std::nan(""); }
inline bool is_missing(double v) { return std::isnan(v); }

/// Density of a single leaf at `value` (1.0 if missing/marginalised).
double leaf_density(const NodePayload& leaf, double value);

/// Reusable evaluator; holds per-node value scratch so batch evaluation
/// does not allocate per sample.
class Evaluator {
 public:
  explicit Evaluator(const Spn& spn);

  /// Joint probability/density of one sample (indexed by VariableId).
  double evaluate(std::span<const double> sample);

  /// log of the joint probability (log-domain accumulation throughout).
  double evaluate_log(std::span<const double> sample);

  /// Joint density for byte-quantised features, the hardware input format.
  double evaluate_bytes(std::span<const std::uint8_t> sample);

  /// Batch evaluation, one output per row; `row_width` >= variable count.
  void evaluate_batch(std::span<const double> rows, std::size_t row_width,
                      std::span<double> results);

  const Spn& spn() const { return spn_; }

 private:
  const Spn& spn_;
  std::vector<NodeId> order_;
  std::vector<double> values_;
  std::vector<double> byte_sample_;
};

}  // namespace spnhbm::spn
