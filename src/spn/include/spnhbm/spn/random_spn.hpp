// Random SPN generation (Peharz-et-al-style random structures).
//
// Used by property tests (valid-by-construction structures across a size
// sweep) and by the model zoo when an organically learned structure needs
// to be scaled to a prescribed size.
#pragma once

#include <cstdint>

#include "spnhbm/spn/graph.hpp"
#include "spnhbm/util/rng.hpp"

namespace spnhbm::spn {

struct RandomSpnConfig {
  std::size_t variables = 10;
  /// Byte-quantised feature domain: histogram leaves cover [0, domain).
  std::size_t leaf_domain = 256;
  std::size_t histogram_buckets = 16;
  /// Children per sum node (mixture components).
  std::size_t sum_fanout = 2;
  /// Maximum variables a leaf region may hold before it must be split.
  std::size_t max_leaf_scope = 1;
  /// Recursion depth cap (alternating sum/product levels).
  std::size_t max_depth = 16;
  std::uint64_t seed = 1;
};

/// Builds a random, valid (complete & decomposable & normalised) SPN over
/// `config.variables` variables. Structure: a sum-of-products region graph —
/// sums mix random partitions of the scope, products split the scope.
Spn make_random_spn(const RandomSpnConfig& config);

}  // namespace spnhbm::spn
