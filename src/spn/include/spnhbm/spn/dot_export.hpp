// Graphviz export of an SPN (the figures in SPN papers — including the
// paper's Fig. 1 — are exactly this rendering).
#pragma once

#include <string>

#include "spnhbm/spn/graph.hpp"

namespace spnhbm::spn {

/// Renders the subgraph reachable from the root as a Graphviz digraph:
/// sums as "+" circles with weighted edges, products as "x" circles,
/// leaves as boxes with their distribution summary.
std::string to_dot(const Spn& spn, const std::string& graph_name = "spn");

}  // namespace spnhbm::spn
