// Discretisation of continuous leaves — the paper's Fig. 1.
//
// The hardware flow only maps *histogram* leaves (BRAM lookup tables), so
// SPNs with Gaussian leaves are first converted to Mixed SPNs by
// approximating each Gaussian with a histogram over the byte input domain
// (Molina et al. 2018). Each bucket receives the Gaussian's average
// density over that bucket (exact bucket mass / width, computed from the
// error function), and the result is renormalised so the leaf stays a
// proper density over the domain.
#pragma once

#include "spnhbm/spn/graph.hpp"

namespace spnhbm::spn {

struct DiscretiseOptions {
  /// Domain covered by the replacement histograms: [0, domain).
  double domain = 256.0;
  std::size_t buckets = 32;
  /// Density floor per bucket (before renormalisation) so tails stay
  /// representable in reduced-precision arithmetic.
  double density_floor = 1e-9;
};

/// Gaussian CDF at x.
double gaussian_cdf(double x, double mean, double stddev);

/// Returns a structurally identical SPN in which every Gaussian leaf has
/// been replaced by its histogram approximation; histogram and categorical
/// leaves pass through unchanged. The result compiles on the byte-input
/// hardware flow.
Spn discretise_gaussians(const Spn& spn, const DiscretiseOptions& options = {});

}  // namespace spnhbm::spn
