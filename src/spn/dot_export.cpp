#include "spnhbm/spn/dot_export.hpp"

#include "spnhbm/util/strings.hpp"

namespace spnhbm::spn {

std::string to_dot(const Spn& spn, const std::string& graph_name) {
  SPNHBM_REQUIRE(spn.has_root(), "cannot export an SPN without a root");
  std::string out = "digraph " + graph_name + " {\n";
  out += "  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n";
  for (const NodeId id : spn.reachable_topological()) {
    const auto& payload = spn.node(id);
    if (const auto* sum = std::get_if<SumNode>(&payload)) {
      out += strformat("  n%u [shape=circle,label=\"+\"];\n", id);
      for (std::size_t c = 0; c < sum->children.size(); ++c) {
        out += strformat("  n%u -> n%u [label=\"%.3g\"];\n", id,
                         sum->children[c], sum->weights[c]);
      }
    } else if (const auto* product = std::get_if<ProductNode>(&payload)) {
      out += strformat("  n%u [shape=circle,label=\"×\"];\n", id);
      for (const NodeId child : product->children) {
        out += strformat("  n%u -> n%u;\n", id, child);
      }
    } else if (const auto* histogram = std::get_if<HistogramLeaf>(&payload)) {
      out += strformat(
          "  n%u [shape=box,label=\"V%u\\nhist[%zu]\"];\n", id,
          histogram->variable, histogram->densities.size());
    } else if (const auto* gaussian = std::get_if<GaussianLeaf>(&payload)) {
      out += strformat(
          "  n%u [shape=box,label=\"V%u\\nN(%.3g, %.3g)\"];\n", id,
          gaussian->variable, gaussian->mean, gaussian->stddev);
    } else {
      const auto& categorical = std::get<CategoricalLeaf>(payload);
      out += strformat("  n%u [shape=box,label=\"V%u\\ncat[%zu]\"];\n", id,
                       categorical.variable, categorical.probabilities.size());
    }
  }
  out += "}\n";
  return out;
}

}  // namespace spnhbm::spn
