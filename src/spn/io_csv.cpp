#include "spnhbm/spn/io_csv.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <vector>

#include "spnhbm/util/strings.hpp"

namespace spnhbm::spn {

DataMatrix parse_csv(std::string_view text) {
  std::vector<std::vector<double>> rows;
  std::size_t line_number = 0;
  for (const auto& line : split(text, '\n')) {
    ++line_number;
    const auto trimmed = trim(line);
    if (trimmed.empty()) continue;
    std::vector<double> row;
    for (const auto& cell : split(trimmed, ',')) {
      const auto cell_text = trim(cell);
      double value = 0.0;
      const auto result = std::from_chars(
          cell_text.data(), cell_text.data() + cell_text.size(), value);
      if (result.ec != std::errc{} ||
          result.ptr != cell_text.data() + cell_text.size()) {
        throw ParseError(strformat("CSV line %zu: '%.*s' is not a number",
                                   line_number,
                                   static_cast<int>(cell_text.size()),
                                   cell_text.data()));
      }
      row.push_back(value);
    }
    if (!rows.empty() && row.size() != rows.front().size()) {
      throw ParseError(strformat(
          "CSV line %zu: %zu cells, expected %zu (ragged input)",
          line_number, row.size(), rows.front().size()));
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) throw ParseError("CSV contains no data rows");
  DataMatrix data(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < data.cols(); ++c) {
      data.set(r, c, rows[r][c]);
    }
  }
  return data;
}

std::string to_csv(const DataMatrix& data) {
  std::string out;
  for (std::size_t r = 0; r < data.rows(); ++r) {
    for (std::size_t c = 0; c < data.cols(); ++c) {
      if (c != 0) out += ',';
      out += strformat("%g", data.at(r, c));
    }
    out += '\n';
  }
  return out;
}

DataMatrix load_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open CSV file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_csv(buffer.str());
}

void save_csv_file(const DataMatrix& data, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open CSV file for writing: " + path);
  out << to_csv(data);
  if (!out) throw Error("failed writing CSV file: " + path);
}

}  // namespace spnhbm::spn
