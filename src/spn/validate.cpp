#include "spnhbm/spn/validate.hpp"

#include <algorithm>
#include <cmath>

#include "spnhbm/util/strings.hpp"

namespace spnhbm::spn {

namespace {

bool scopes_equal(const std::vector<VariableId>& a,
                  const std::vector<VariableId>& b) {
  return a == b;  // both sorted & unique
}

bool scopes_disjoint(const std::vector<VariableId>& a,
                     const std::vector<VariableId>& b) {
  // Sorted-merge intersection test.
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return false;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return true;
}

/// Numerically robust integral of a histogram leaf.
double histogram_mass(const HistogramLeaf& leaf) {
  double mass = 0.0;
  for (std::size_t i = 0; i < leaf.densities.size(); ++i) {
    mass += leaf.densities[i] * (leaf.breaks[i + 1] - leaf.breaks[i]);
  }
  return mass;
}

}  // namespace

std::vector<std::string> validate(const Spn& spn,
                                  const ValidationOptions& options) {
  std::vector<std::string> violations;
  if (!spn.has_root()) {
    violations.push_back("SPN has no root");
    return violations;
  }
  const auto scopes = spn.compute_scopes();

  for (const NodeId id : spn.reachable_topological()) {
    const auto& payload = spn.node(id);
    if (const auto* sum = std::get_if<SumNode>(&payload)) {
      double total = 0.0;
      for (std::size_t c = 0; c < sum->children.size(); ++c) {
        if (sum->weights[c] <= 0.0) {
          violations.push_back(strformat(
              "sum node %u: weight %zu is non-positive (%g)", id, c,
              sum->weights[c]));
        }
        total += sum->weights[c];
        if (!scopes_equal(scopes[sum->children[0]],
                          scopes[sum->children[c]])) {
          violations.push_back(strformat(
              "sum node %u violates completeness: child %u and child %u "
              "have different scopes",
              id, sum->children[0], sum->children[c]));
        }
      }
      if (std::fabs(total - 1.0) > options.weight_tolerance) {
        violations.push_back(strformat(
            "sum node %u weights sum to %.12g, expected 1", id, total));
      }
    } else if (const auto* product = std::get_if<ProductNode>(&payload)) {
      for (std::size_t a = 0; a < product->children.size(); ++a) {
        for (std::size_t b = a + 1; b < product->children.size(); ++b) {
          if (!scopes_disjoint(scopes[product->children[a]],
                               scopes[product->children[b]])) {
            violations.push_back(strformat(
                "product node %u violates decomposability: children %u and "
                "%u share scope",
                id, product->children[a], product->children[b]));
          }
        }
      }
    } else if (const auto* histogram = std::get_if<HistogramLeaf>(&payload)) {
      for (std::size_t b = 0; b < histogram->densities.size(); ++b) {
        if (histogram->densities[b] < 0.0) {
          violations.push_back(strformat(
              "histogram leaf %u: bucket %zu density is negative", id, b));
        }
      }
      if (options.require_normalised_leaves) {
        const double mass = histogram_mass(*histogram);
        if (std::fabs(mass - 1.0) > 1e-6) {
          violations.push_back(strformat(
              "histogram leaf %u integrates to %.9g, expected 1", id, mass));
        }
      }
    } else if (const auto* categorical =
                   std::get_if<CategoricalLeaf>(&payload)) {
      double total = 0.0;
      for (const double p : categorical->probabilities) {
        if (p < 0.0) {
          violations.push_back(
              strformat("categorical leaf %u has a negative probability", id));
        }
        total += p;
      }
      if (options.require_normalised_leaves && std::fabs(total - 1.0) > 1e-6) {
        violations.push_back(strformat(
            "categorical leaf %u probabilities sum to %.9g, expected 1", id,
            total));
      }
    }
    // Gaussian leaves: stddev positivity is enforced at construction.
  }
  return violations;
}

void validate_or_throw(const Spn& spn, const ValidationOptions& options) {
  const auto violations = validate(spn, options);
  if (!violations.empty()) {
    std::string message = strformat("%zu violation(s):", violations.size());
    for (const auto& violation : violations) {
      message += "\n  - " + violation;
    }
    throw ValidationError(message);
  }
}

}  // namespace spnhbm::spn
