#include "spnhbm/spn/random_spn.hpp"

#include <algorithm>
#include <numeric>

namespace spnhbm::spn {

namespace {

class Generator {
 public:
  Generator(const RandomSpnConfig& config)
      : config_(config), rng_(config.seed) {
    SPNHBM_REQUIRE(config.variables >= 1, "need at least one variable");
    SPNHBM_REQUIRE(config.sum_fanout >= 2, "sum fanout must be >= 2");
    SPNHBM_REQUIRE(config.histogram_buckets >= 1, "need at least one bucket");
  }

  Spn generate() {
    Spn spn;
    std::vector<VariableId> scope(config_.variables);
    std::iota(scope.begin(), scope.end(), 0u);
    const NodeId root = build_region(spn, scope, 0);
    spn.set_root(root);
    return spn;
  }

 private:
  /// Random normalised histogram over the byte domain.
  NodeId make_leaf(Spn& spn, VariableId variable) {
    const std::size_t buckets = config_.histogram_buckets;
    std::vector<double> breaks(buckets + 1);
    const double width =
        static_cast<double>(config_.leaf_domain) / static_cast<double>(buckets);
    for (std::size_t i = 0; i <= buckets; ++i) {
      breaks[i] = width * static_cast<double>(i);
    }
    std::vector<double> densities(buckets);
    double total = 0.0;
    for (auto& d : densities) {
      d = rng_.next_uniform(0.05, 1.0);
      total += d * width;
    }
    for (auto& d : densities) d /= total;  // integrate to 1
    return spn.add_histogram(variable, std::move(breaks), std::move(densities));
  }

  /// A sum-region over `scope`: mixes `sum_fanout` partition-trees.
  NodeId build_region(Spn& spn, const std::vector<VariableId>& scope,
                      std::size_t depth) {
    if (scope.size() <= config_.max_leaf_scope || depth >= config_.max_depth) {
      if (scope.size() == 1) return make_leaf(spn, scope.front());
      // Multi-variable leaf region: factorise into univariate leaves.
      std::vector<NodeId> leaves;
      leaves.reserve(scope.size());
      for (const VariableId v : scope) leaves.push_back(make_leaf(spn, v));
      return spn.add_product(std::move(leaves));
    }
    std::vector<NodeId> components;
    std::vector<double> weights;
    double total = 0.0;
    for (std::size_t k = 0; k < config_.sum_fanout; ++k) {
      components.push_back(build_partition(spn, scope, depth + 1));
      const double w = rng_.next_uniform(0.2, 1.0);
      weights.push_back(w);
      total += w;
    }
    for (auto& w : weights) w /= total;
    // Renormalise exactly: nudge the first weight by the residual.
    const double residual =
        1.0 - std::accumulate(weights.begin(), weights.end(), 0.0);
    weights.front() += residual;
    return spn.add_sum(std::move(components), std::move(weights));
  }

  /// A product over a random 2-way split of `scope`.
  NodeId build_partition(Spn& spn, std::vector<VariableId> scope,
                         std::size_t depth) {
    // Shuffle, then split at a random interior point.
    for (std::size_t i = scope.size(); i > 1; --i) {
      std::swap(scope[i - 1], scope[rng_.next_below(i)]);
    }
    const std::size_t cut =
        1 + rng_.next_below(static_cast<std::uint64_t>(scope.size() - 1));
    std::vector<VariableId> left(scope.begin(), scope.begin() + cut);
    std::vector<VariableId> right(scope.begin() + cut, scope.end());
    std::sort(left.begin(), left.end());
    std::sort(right.begin(), right.end());
    const NodeId left_node = build_region(spn, left, depth + 1);
    const NodeId right_node = build_region(spn, right, depth + 1);
    return spn.add_product({left_node, right_node});
  }

  RandomSpnConfig config_;
  Rng rng_;
};

}  // namespace

Spn make_random_spn(const RandomSpnConfig& config) {
  return Generator(config).generate();
}

}  // namespace spnhbm::spn
