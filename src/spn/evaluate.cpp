#include "spnhbm/spn/evaluate.hpp"

#include <algorithm>
#include <cmath>

namespace spnhbm::spn {

namespace {
constexpr double kInvSqrt2Pi = 0.3989422804014327;
}

double leaf_density(const NodePayload& leaf, double value) {
  if (is_missing(value)) return 1.0;  // marginalise
  if (const auto* histogram = std::get_if<HistogramLeaf>(&leaf)) {
    if (value < histogram->breaks.front() || value >= histogram->breaks.back()) {
      return 0.0;
    }
    // First break strictly greater than value -> bucket index.
    const auto it = std::upper_bound(histogram->breaks.begin(),
                                     histogram->breaks.end(), value);
    const auto bucket =
        static_cast<std::size_t>(it - histogram->breaks.begin()) - 1;
    return histogram->densities[bucket];
  }
  if (const auto* gaussian = std::get_if<GaussianLeaf>(&leaf)) {
    const double z = (value - gaussian->mean) / gaussian->stddev;
    return kInvSqrt2Pi / gaussian->stddev * std::exp(-0.5 * z * z);
  }
  if (const auto* categorical = std::get_if<CategoricalLeaf>(&leaf)) {
    const auto index = static_cast<long long>(value);
    if (index < 0 ||
        index >= static_cast<long long>(categorical->probabilities.size()) ||
        static_cast<double>(index) != value) {
      return 0.0;
    }
    return categorical->probabilities[static_cast<std::size_t>(index)];
  }
  SPNHBM_REQUIRE(false, "leaf_density called on an inner node");
  return 0.0;
}

Evaluator::Evaluator(const Spn& spn)
    : spn_(spn),
      order_(spn.reachable_topological()),
      values_(spn.node_count(), 0.0),
      byte_sample_(spn.variable_count(), 0.0) {}

double Evaluator::evaluate(std::span<const double> sample) {
  SPNHBM_REQUIRE(sample.size() >= spn_.variable_count(),
                 "sample is narrower than the SPN's scope");
  for (const NodeId id : order_) {
    const auto& payload = spn_.node(id);
    if (const auto* sum = std::get_if<SumNode>(&payload)) {
      double acc = 0.0;
      for (std::size_t c = 0; c < sum->children.size(); ++c) {
        acc += sum->weights[c] * values_[sum->children[c]];
      }
      values_[id] = acc;
    } else if (const auto* product = std::get_if<ProductNode>(&payload)) {
      double acc = 1.0;
      for (const NodeId child : product->children) acc *= values_[child];
      values_[id] = acc;
    } else if (const auto* histogram = std::get_if<HistogramLeaf>(&payload)) {
      values_[id] = leaf_density(payload, sample[histogram->variable]);
    } else if (const auto* gaussian = std::get_if<GaussianLeaf>(&payload)) {
      values_[id] = leaf_density(payload, sample[gaussian->variable]);
    } else if (const auto* categorical =
                   std::get_if<CategoricalLeaf>(&payload)) {
      values_[id] = leaf_density(payload, sample[categorical->variable]);
    }
  }
  return values_[spn_.root()];
}

double Evaluator::evaluate_log(std::span<const double> sample) {
  SPNHBM_REQUIRE(sample.size() >= spn_.variable_count(),
                 "sample is narrower than the SPN's scope");
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  for (const NodeId id : order_) {
    const auto& payload = spn_.node(id);
    if (const auto* sum = std::get_if<SumNode>(&payload)) {
      // log-sum-exp with max extraction for stability.
      double max_term = kNegInf;
      for (std::size_t c = 0; c < sum->children.size(); ++c) {
        const double term =
            std::log(sum->weights[c]) + values_[sum->children[c]];
        max_term = std::max(max_term, term);
      }
      if (max_term == kNegInf) {
        values_[id] = kNegInf;
      } else {
        double acc = 0.0;
        for (std::size_t c = 0; c < sum->children.size(); ++c) {
          acc += std::exp(std::log(sum->weights[c]) +
                          values_[sum->children[c]] - max_term);
        }
        values_[id] = max_term + std::log(acc);
      }
    } else if (const auto* product = std::get_if<ProductNode>(&payload)) {
      double acc = 0.0;
      for (const NodeId child : product->children) acc += values_[child];
      values_[id] = acc;
    } else {
      VariableId variable = 0;
      if (const auto* h = std::get_if<HistogramLeaf>(&payload)) {
        variable = h->variable;
      } else if (const auto* g = std::get_if<GaussianLeaf>(&payload)) {
        variable = g->variable;
      } else {
        variable = std::get<CategoricalLeaf>(payload).variable;
      }
      values_[id] = std::log(leaf_density(payload, sample[variable]));
    }
  }
  return values_[spn_.root()];
}

double Evaluator::evaluate_bytes(std::span<const std::uint8_t> sample) {
  SPNHBM_REQUIRE(sample.size() >= byte_sample_.size(),
                 "byte sample is narrower than the SPN's scope");
  for (std::size_t i = 0; i < byte_sample_.size(); ++i) {
    byte_sample_[i] = static_cast<double>(sample[i]);
  }
  return evaluate(byte_sample_);
}

void Evaluator::evaluate_batch(std::span<const double> rows,
                               std::size_t row_width,
                               std::span<double> results) {
  SPNHBM_REQUIRE(row_width >= spn_.variable_count(),
                 "row width narrower than the SPN's scope");
  SPNHBM_REQUIRE(rows.size() == row_width * results.size(),
                 "rows/results size mismatch");
  for (std::size_t r = 0; r < results.size(); ++r) {
    results[r] = evaluate(rows.subspan(r * row_width, row_width));
  }
}

}  // namespace spnhbm::spn
