#include "spnhbm/spn/transform.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "spnhbm/util/strings.hpp"

namespace spnhbm::spn {

namespace {

/// Rebuilds the reachable subgraph through a per-node hook that may remap
/// children. `build(payload, remapped_children) -> NodeId`.
template <typename BuildFn>
Spn rebuild(const Spn& spn, BuildFn&& build) {
  Spn result;
  std::vector<NodeId> mapped(spn.node_count(), kInvalidNode);
  for (const NodeId id : spn.reachable_topological()) {
    mapped[id] = build(result, spn.node(id), mapped);
  }
  result.set_root(mapped[spn.root()]);
  return result;
}

NodeId copy_leaf(Spn& out, const NodePayload& payload) {
  if (const auto* histogram = std::get_if<HistogramLeaf>(&payload)) {
    return out.add_histogram(histogram->variable, histogram->breaks,
                             histogram->densities);
  }
  if (const auto* gaussian = std::get_if<GaussianLeaf>(&payload)) {
    return out.add_gaussian(gaussian->variable, gaussian->mean,
                            gaussian->stddev);
  }
  const auto& categorical = std::get<CategoricalLeaf>(payload);
  return out.add_categorical(categorical.variable, categorical.probabilities);
}

}  // namespace

Spn flatten(const Spn& spn) {
  SPNHBM_REQUIRE(spn.has_root(), "flatten needs a rooted SPN");
  return rebuild(spn, [&spn](Spn& out, const NodePayload& payload,
                             const std::vector<NodeId>& mapped) -> NodeId {
    if (const auto* sum = std::get_if<SumNode>(&payload)) {
      // Inline children that are themselves (already rebuilt) sums.
      std::vector<NodeId> children;
      std::vector<double> weights;
      for (std::size_t c = 0; c < sum->children.size(); ++c) {
        const NodeId child = mapped[sum->children[c]];
        const auto& child_payload = out.node(child);
        if (const auto* child_sum = std::get_if<SumNode>(&child_payload)) {
          for (std::size_t g = 0; g < child_sum->children.size(); ++g) {
            children.push_back(child_sum->children[g]);
            weights.push_back(sum->weights[c] * child_sum->weights[g]);
          }
        } else {
          children.push_back(child);
          weights.push_back(sum->weights[c]);
        }
      }
      return out.add_sum(std::move(children), std::move(weights));
    }
    if (const auto* product = std::get_if<ProductNode>(&payload)) {
      std::vector<NodeId> children;
      for (const NodeId raw_child : product->children) {
        const NodeId child = mapped[raw_child];
        const auto& child_payload = out.node(child);
        if (const auto* child_product =
                std::get_if<ProductNode>(&child_payload)) {
          children.insert(children.end(), child_product->children.begin(),
                          child_product->children.end());
        } else {
          children.push_back(child);
        }
      }
      return out.add_product(std::move(children));
    }
    return copy_leaf(out, payload);
  });
}

Spn prune_low_weights(const Spn& spn, double threshold) {
  SPNHBM_REQUIRE(spn.has_root(), "prune needs a rooted SPN");
  SPNHBM_REQUIRE(threshold >= 0.0 && threshold < 1.0,
                 "prune threshold out of range");
  return rebuild(spn, [threshold](Spn& out, const NodePayload& payload,
                                  const std::vector<NodeId>& mapped)
                     -> NodeId {
    if (const auto* sum = std::get_if<SumNode>(&payload)) {
      std::vector<NodeId> children;
      std::vector<double> weights;
      for (std::size_t c = 0; c < sum->children.size(); ++c) {
        if (sum->weights[c] >= threshold) {
          children.push_back(mapped[sum->children[c]]);
          weights.push_back(sum->weights[c]);
        }
      }
      if (children.empty()) {
        // Never drop everything: keep the heaviest child.
        const std::size_t best = static_cast<std::size_t>(
            std::max_element(sum->weights.begin(), sum->weights.end()) -
            sum->weights.begin());
        children.push_back(mapped[sum->children[best]]);
        weights.push_back(1.0);
      } else {
        const double total =
            std::accumulate(weights.begin(), weights.end(), 0.0);
        for (auto& w : weights) w /= total;
      }
      return out.add_sum(std::move(children), std::move(weights));
    }
    if (const auto* product = std::get_if<ProductNode>(&payload)) {
      std::vector<NodeId> children;
      for (const NodeId child : product->children) {
        children.push_back(mapped[child]);
      }
      return out.add_product(std::move(children));
    }
    return copy_leaf(out, payload);
  });
}

namespace {

/// Stable structural key of a rebuilt node (children already canonical).
std::string structural_key(const Spn& spn, const NodePayload& payload,
                           NodeId id) {
  (void)spn;
  (void)id;
  std::string key;
  if (const auto* sum = std::get_if<SumNode>(&payload)) {
    key = "S";
    for (std::size_t c = 0; c < sum->children.size(); ++c) {
      key += strformat("%u*%.17g,", sum->children[c], sum->weights[c]);
    }
  } else if (const auto* product = std::get_if<ProductNode>(&payload)) {
    key = "P";
    for (const NodeId child : product->children) {
      key += strformat("%u,", child);
    }
  } else if (const auto* histogram = std::get_if<HistogramLeaf>(&payload)) {
    key = strformat("H%u|", histogram->variable);
    for (const double b : histogram->breaks) key += strformat("%.17g,", b);
    key += ";";
    for (const double d : histogram->densities) key += strformat("%.17g,", d);
  } else if (const auto* gaussian = std::get_if<GaussianLeaf>(&payload)) {
    key = strformat("G%u|%.17g;%.17g", gaussian->variable, gaussian->mean,
                    gaussian->stddev);
  } else {
    const auto& categorical = std::get<CategoricalLeaf>(payload);
    key = strformat("C%u|", categorical.variable);
    for (const double p : categorical.probabilities) {
      key += strformat("%.17g,", p);
    }
  }
  return key;
}

}  // namespace

Spn deduplicate(const Spn& spn) {
  SPNHBM_REQUIRE(spn.has_root(), "deduplicate needs a rooted SPN");
  Spn result;
  std::vector<NodeId> mapped(spn.node_count(), kInvalidNode);
  std::map<std::string, NodeId> canonical;
  for (const NodeId id : spn.reachable_topological()) {
    const auto& payload = spn.node(id);
    // Build the candidate payload with remapped children (without pushing
    // it yet), so identical subgraphs get identical keys.
    NodePayload candidate = payload;
    if (auto* sum = std::get_if<SumNode>(&candidate)) {
      for (auto& child : sum->children) child = mapped[child];
    } else if (auto* product = std::get_if<ProductNode>(&candidate)) {
      for (auto& child : product->children) child = mapped[child];
    }
    const std::string key = structural_key(result, candidate, id);
    const auto existing = canonical.find(key);
    if (existing != canonical.end()) {
      mapped[id] = existing->second;
      continue;
    }
    NodeId fresh;
    if (auto* sum = std::get_if<SumNode>(&candidate)) {
      fresh = result.add_sum(sum->children, sum->weights);
    } else if (auto* product = std::get_if<ProductNode>(&candidate)) {
      fresh = result.add_product(product->children);
    } else {
      fresh = copy_leaf(result, candidate);
    }
    canonical.emplace(key, fresh);
    mapped[id] = fresh;
  }
  result.set_root(mapped[spn.root()]);
  return result;
}

Spn optimise(const Spn& spn) { return deduplicate(flatten(spn)); }

}  // namespace spnhbm::spn
