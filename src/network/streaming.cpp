#include "spnhbm/network/streaming.hpp"

#include <algorithm>

namespace spnhbm::network {

NetworkLink::NetworkLink(sim::Scheduler& scheduler, LinkConfig config)
    : scheduler_(scheduler), config_(config), wire_(scheduler, 1) {
  SPNHBM_REQUIRE(config_.frame_payload_bytes > 0, "empty frames");
}

sim::Task<void> NetworkLink::send(std::uint64_t payload_bytes) {
  SPNHBM_REQUIRE(payload_bytes > 0, "empty transmission");
  std::uint64_t remaining = payload_bytes;
  while (remaining > 0) {
    const std::uint64_t chunk =
        std::min<std::uint64_t>(remaining, config_.frame_payload_bytes);
    const std::uint64_t on_wire = chunk + config_.frame_overhead_bytes;
    co_await wire_.acquire();
    payload_bytes_ += chunk;
    wire_bytes_ += on_wire;
    co_await sim::delay(scheduler_, config_.line_rate.transfer_time(on_wire));
    wire_.release();
    remaining -= chunk;
  }
}

StreamingPipeline::StreamingPipeline(sim::ProcessRunner& runner,
                                     const compiler::DatapathModule& module,
                                     StreamingConfig config)
    : runner_(runner), module_(module), config_(config) {
  SPNHBM_REQUIRE(config_.replicas >= 1, "need at least one datapath replica");
  auto& scheduler = runner.scheduler();
  ingress_ = std::make_unique<NetworkLink>(scheduler, config_.link);
  egress_ = std::make_unique<NetworkLink>(scheduler, config_.link);
  for (std::size_t r = 0; r < config_.replicas; ++r) {
    replica_queues_.push_back(
        std::make_unique<sim::Fifo<FrameToken>>(scheduler, 4));
  }
  egress_queue_ = std::make_unique<sim::Fifo<FrameToken>>(
      scheduler, 4 * config_.replicas);
}

double StreamingPipeline::line_rate_ceiling() const {
  const double by_link = ingress_->goodput().as_bytes_per_second() /
                         static_cast<double>(wire_bytes_per_sample());
  const double by_datapath =
      static_cast<double>(config_.replicas) * config_.clock.frequency_hz() /
      compiler::DatapathModule::initiation_interval();
  return std::min(by_link, by_datapath);
}

sim::Process StreamingPipeline::ingress_process(std::uint64_t total_samples) {
  const std::uint64_t wire_per_sample = wire_bytes_per_sample();
  const std::uint64_t samples_per_frame = std::max<std::uint64_t>(
      1, config_.link.frame_payload_bytes / wire_per_sample);
  std::uint64_t sent = 0;
  std::size_t next_replica = 0;
  while (sent < total_samples) {
    const std::uint64_t batch =
        std::min<std::uint64_t>(samples_per_frame, total_samples - sent);
    co_await ingress_->send(batch * wire_per_sample);
    co_await replica_queues_[next_replica]->put(FrameToken{batch});
    next_replica = (next_replica + 1) % replica_queues_.size();
    sent += batch;
  }
}

sim::Process StreamingPipeline::replica_process(std::size_t index) {
  auto& scheduler = runner_.scheduler();
  auto& queue = *replica_queues_[index];
  bool first = true;
  for (;;) {
    const FrameToken token = co_await queue.get();
    if (token.samples == 0) break;  // poison pill
    if (first) {
      co_await sim::delay(scheduler,
                          config_.clock.cycles(module_.pipeline_depth()));
      first = false;
    }
    co_await sim::delay(
        scheduler,
        config_.clock.cycles(static_cast<std::int64_t>(token.samples)));
    co_await egress_queue_->put(token);
  }
}

sim::Process StreamingPipeline::egress_process(std::uint64_t total_samples) {
  std::uint64_t done = 0;
  while (done < total_samples) {
    const FrameToken token = co_await egress_queue_->get();
    co_await egress_->send(token.samples * 8);  // 64-bit results
    done += token.samples;
  }
}

StreamingStats StreamingPipeline::run(std::uint64_t total_samples) {
  SPNHBM_REQUIRE(total_samples > 0, "nothing to stream");
  auto& scheduler = runner_.scheduler();
  const Picoseconds start = scheduler.now();
  const std::uint64_t wire_before = ingress_->wire_bytes_sent();

  std::vector<sim::Process> replicas;
  for (std::size_t r = 0; r < config_.replicas; ++r) {
    replicas.push_back(runner_.spawn(replica_process(r)));
  }
  sim::Process ingress = runner_.spawn(ingress_process(total_samples));
  sim::Process egress = runner_.spawn(egress_process(total_samples));
  scheduler.run();
  runner_.check();
  SPNHBM_REQUIRE(ingress.done() && egress.done(),
                 "streaming pipeline did not drain");
  // Stop the replica loops.
  for (auto& queue : replica_queues_) {
    const bool delivered = queue->try_put(FrameToken{0});
    SPNHBM_REQUIRE(delivered, "replica queue jammed at shutdown");
  }
  scheduler.run();
  runner_.check();

  StreamingStats stats;
  stats.samples = total_samples;
  stats.elapsed = scheduler.now() - start;
  stats.samples_per_second =
      static_cast<double>(total_samples) / to_seconds(stats.elapsed);
  const double wire_seconds = config_.link.line_rate.transfer_time(
                                  ingress_->wire_bytes_sent() - wire_before) /
                              static_cast<double>(kPicosecondsPerSecond);
  stats.ingress_utilisation =
      wire_seconds / to_seconds(stats.elapsed);
  return stats;
}

}  // namespace spnhbm::network
