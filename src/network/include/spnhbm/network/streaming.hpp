// In-network streaming inference (paper §V-D, building on [7]).
//
// The alternative data-delivery architecture the paper compares against:
// instead of staging batches in HBM behind a PCIe DMA, the SPN datapaths
// sit directly in a 100G network pipeline — samples arrive in Ethernet
// frames, stream through replicated datapaths at line rate, and results
// leave on the egress side. No memory accesses at all.
//
// The link model reproduces [7]'s measured numbers mechanistically: a
// 100 Gbit/s line rate with jumbo frames (9000 B payload + 84 B of
// preamble/headers/FCS/inter-frame gap) yields 99.07 Gbit/s of goodput —
// the paper's "99.078 Gbit/s peak throughput", which over 88 wire bytes
// per NIPS80 sample bounds inference at 140.7 Msamples/s.
#pragma once

#include <cstdint>
#include <memory>

#include "spnhbm/compiler/datapath.hpp"
#include "spnhbm/fpga/calibration.hpp"
#include "spnhbm/sim/channel.hpp"
#include "spnhbm/sim/process.hpp"
#include "spnhbm/sim/task.hpp"
#include "spnhbm/util/units.hpp"

namespace spnhbm::network {

struct LinkConfig {
  Bandwidth line_rate = Bandwidth::gbit_per_second(100.0);
  std::uint32_t frame_payload_bytes = 9000;  ///< jumbo frames, as in [7]
  /// Preamble + Ethernet/IP/UDP headers + FCS + inter-frame gap.
  std::uint32_t frame_overhead_bytes = 84;
};

/// One direction of a network link: frame-granularity occupancy.
class NetworkLink {
 public:
  NetworkLink(sim::Scheduler& scheduler, LinkConfig config = {});

  const LinkConfig& config() const { return config_; }

  /// Transmits `payload_bytes` of application data (split into frames);
  /// completes when the last frame has left the wire.
  sim::Task<void> send(std::uint64_t payload_bytes);

  /// Application-level goodput fraction of the line rate.
  double goodput_fraction() const {
    return static_cast<double>(config_.frame_payload_bytes) /
           static_cast<double>(config_.frame_payload_bytes +
                               config_.frame_overhead_bytes);
  }
  Bandwidth goodput() const {
    return Bandwidth::bytes_per_second(
        config_.line_rate.as_bytes_per_second() * goodput_fraction());
  }

  std::uint64_t payload_bytes_sent() const { return payload_bytes_; }
  std::uint64_t wire_bytes_sent() const { return wire_bytes_; }

 private:
  sim::Scheduler& scheduler_;
  LinkConfig config_;
  sim::Resource wire_;
  std::uint64_t payload_bytes_ = 0;
  std::uint64_t wire_bytes_ = 0;
};

struct StreamingConfig {
  ClockDomain clock{fpga::cal::kPeClockHz};
  /// Replicated datapaths behind the ingress distributor ([7]'s
  /// "reasonable degree of replication" to reach line rate).
  std::size_t replicas = 1;
  /// Wire bytes per sample beyond the input features (result/header slot;
  /// the paper's NIPS80 arithmetic uses 88 B for 80 features).
  std::uint32_t per_sample_framing_bytes = 8;
  LinkConfig link;
};

struct StreamingStats {
  std::uint64_t samples = 0;
  Picoseconds elapsed = 0;
  double samples_per_second = 0.0;
  double ingress_utilisation = 0.0;
};

/// The [7]-style pipeline: ingress link -> round-robin distributor ->
/// replicated II=1 datapaths -> egress link. Timing-only (the functional
/// path is identical to the memory-based accelerator's datapath).
class StreamingPipeline {
 public:
  StreamingPipeline(sim::ProcessRunner& runner,
                    const compiler::DatapathModule& module,
                    StreamingConfig config = {});

  /// Streams `total_samples` through the pipeline and returns statistics.
  /// Drives the simulation to completion.
  StreamingStats run(std::uint64_t total_samples);

  /// Analytic ceiling: min(link goodput / wire bytes, replicas x clock).
  double line_rate_ceiling() const;

  std::uint64_t wire_bytes_per_sample() const {
    return module_.input_features() + config_.per_sample_framing_bytes;
  }

 private:
  sim::Process ingress_process(std::uint64_t total_samples);
  sim::Process replica_process(std::size_t index);
  sim::Process egress_process(std::uint64_t total_samples);

  sim::ProcessRunner& runner_;
  const compiler::DatapathModule& module_;
  StreamingConfig config_;
  std::unique_ptr<NetworkLink> ingress_;
  std::unique_ptr<NetworkLink> egress_;
  struct FrameToken {
    std::uint64_t samples = 0;
  };
  std::vector<std::unique_ptr<sim::Fifo<FrameToken>>> replica_queues_;
  std::unique_ptr<sim::Fifo<FrameToken>> egress_queue_;
};

}  // namespace spnhbm::network
