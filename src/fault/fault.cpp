#include "spnhbm/fault/fault.hpp"

#include <fstream>
#include <sstream>

#include "spnhbm/telemetry/json.hpp"
#include "spnhbm/util/error.hpp"

namespace spnhbm::fault {

namespace {

/// FNV-1a, used to fork one deterministic RNG stream per
/// (rule, site, instance) independent of evaluation order.
std::uint64_t hash_label(const std::string& s) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kFail: return "fail";
    case FaultKind::kStall: return "stall";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kHang: return "hang";
  }
  return "?";
}

FaultKind fault_kind_from_string(const std::string& name) {
  if (name == "fail") return FaultKind::kFail;
  if (name == "stall") return FaultKind::kStall;
  if (name == "corrupt") return FaultKind::kCorrupt;
  if (name == "delay") return FaultKind::kDelay;
  if (name == "hang") return FaultKind::kHang;
  throw ParseError("unknown fault kind '" + name +
                   "' (fail|stall|corrupt|delay|hang)");
}

const char* trace_label(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "fault.none";
    case FaultKind::kFail: return "fault.fail";
    case FaultKind::kStall: return "fault.stall";
    case FaultKind::kCorrupt: return "fault.corrupt";
    case FaultKind::kDelay: return "fault.delay";
    case FaultKind::kHang: return "fault.hang";
  }
  return "fault.?";
}

FaultPlan FaultPlan::from_json(const std::string& text) {
  const telemetry::JsonValue doc = telemetry::parse_json(text);
  if (!doc.is_object()) throw ParseError("fault plan must be a JSON object");
  FaultPlan plan;
  if (doc.has("seed")) {
    plan.seed = static_cast<std::uint64_t>(doc.at("seed").number);
  }
  if (!doc.has("faults") || !doc.at("faults").is_array()) {
    throw ParseError("fault plan needs a 'faults' array");
  }
  for (const auto& entry : doc.at("faults").array) {
    if (!entry.is_object()) throw ParseError("fault rule must be an object");
    FaultRule rule;
    if (!entry.has("site") || !entry.at("site").is_string()) {
      throw ParseError("fault rule needs a 'site' string");
    }
    rule.site = entry.at("site").string;
    if (entry.has("instance")) rule.instance = entry.at("instance").string;
    if (entry.has("kind")) {
      rule.kind = fault_kind_from_string(entry.at("kind").string);
    }
    int triggers = 0;
    if (entry.has("probability")) {
      rule.probability = entry.at("probability").number;
      if (rule.probability <= 0.0 || rule.probability > 1.0) {
        throw ParseError("fault probability must be in (0, 1]");
      }
      ++triggers;
    }
    if (entry.has("every")) {
      rule.every = static_cast<std::uint64_t>(entry.at("every").number);
      if (rule.every == 0) throw ParseError("'every' must be positive");
      ++triggers;
    }
    if (entry.has("from") || entry.has("until")) {
      rule.has_window = true;
      if (entry.has("from")) {
        rule.from = static_cast<std::uint64_t>(entry.at("from").number);
      }
      if (entry.has("until")) {
        rule.until = static_cast<std::uint64_t>(entry.at("until").number);
        if (rule.until <= rule.from) {
          throw ParseError("'until' must be greater than 'from'");
        }
      }
      ++triggers;
    }
    if (triggers != 1) {
      throw ParseError(
          "fault rule for site '" + rule.site +
          "' needs exactly one trigger (probability | every | from/until)");
    }
    if (entry.has("duration_us")) {
      rule.duration_us = entry.at("duration_us").number;
      if (rule.duration_us < 0.0) throw ParseError("negative fault duration");
    }
    if (entry.has("corrupt_mask")) {
      rule.corrupt_mask =
          static_cast<std::uint8_t>(entry.at("corrupt_mask").number);
    }
    plan.rules.push_back(std::move(rule));
  }
  return plan;
}

FaultPlan FaultPlan::from_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open fault plan: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_json(buffer.str());
}

std::string FaultPlan::to_json() const {
  telemetry::JsonWriter writer;
  writer.begin_object();
  writer.key("seed").value(static_cast<std::uint64_t>(seed));
  writer.key("faults").begin_array();
  for (const auto& rule : rules) {
    writer.begin_object();
    writer.key("site").value(rule.site);
    if (!rule.instance.empty()) writer.key("instance").value(rule.instance);
    writer.key("kind").value(to_string(rule.kind));
    if (rule.probability > 0.0) {
      writer.key("probability").value(rule.probability);
    }
    if (rule.every > 0) writer.key("every").value(rule.every);
    if (rule.has_window) {
      writer.key("from").value(rule.from);
      if (rule.until > 0) writer.key("until").value(rule.until);
    }
    if (rule.duration_us > 0.0) {
      writer.key("duration_us").value(rule.duration_us);
    }
    if (rule.kind == FaultKind::kCorrupt) {
      writer.key("corrupt_mask")
          .value(static_cast<std::uint64_t>(rule.corrupt_mask));
    }
    writer.end_object();
  }
  writer.end_array();
  writer.end_object();
  return writer.str();
}

void FaultInjector::arm(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  plan_ = std::move(plan);
  op_counts_.clear();
  rule_rngs_.clear();
  log_.clear();
  injected_ = 0;
  ctr_injected_ = telemetry::metrics().counter("fault.injected");
  armed_.store(!plan_.rules.empty(), std::memory_order_release);
}

void FaultInjector::disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_.store(false, std::memory_order_release);
  plan_.rules.clear();
  op_counts_.clear();
  rule_rngs_.clear();
}

FaultDecision FaultInjector::decide(const std::string& site,
                                    const std::string& instance) {
  if (!armed_.load(std::memory_order_acquire)) return {};
  std::lock_guard<std::mutex> lock(mutex_);
  if (plan_.rules.empty()) return {};
  const auto key = std::make_pair(site, instance);
  const std::uint64_t op = op_counts_[key]++;
  for (std::size_t r = 0; r < plan_.rules.size(); ++r) {
    const FaultRule& rule = plan_.rules[r];
    if (rule.site != site) continue;
    if (!rule.instance.empty() && rule.instance != instance) continue;
    bool fire = false;
    if (rule.probability > 0.0) {
      auto [it, inserted] = rule_rngs_.try_emplace(std::make_pair(r, key));
      if (inserted) {
        it->second = Rng(plan_.seed).fork(
            (r + 1) * 0x9E3779B97F4A7C15ull ^ hash_label(site + "|" + instance));
      }
      fire = it->second.next_double() < rule.probability;
    } else if (rule.every > 0) {
      fire = (op + 1) % rule.every == 0;
    } else if (rule.has_window) {
      fire = op >= rule.from && (rule.until == 0 || op < rule.until);
    }
    if (!fire) continue;
    ++injected_;
    if (ctr_injected_) ctr_injected_->add(1);
    if (log_.size() < kLogCap) {
      log_.push_back({site, instance, op, rule.kind});
    }
    FaultDecision decision;
    decision.kind = rule.kind;
    decision.duration_us = rule.duration_us;
    decision.corrupt_mask = rule.corrupt_mask;
    return decision;
  }
  return {};
}

std::uint64_t FaultInjector::injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return injected_;
}

std::vector<InjectedFault> FaultInjector::log() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return log_;
}

FaultInjector& injector() {
  static FaultInjector instance;
  return instance;
}

}  // namespace spnhbm::fault
