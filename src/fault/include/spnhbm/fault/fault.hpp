// Deterministic fault-injection framework.
//
// A FaultPlan is a seeded, declarative description of *what* fails,
// *where*, and *when*: each rule names an injection site (a stable string
// like "hbm.access" or "engine.submit"), optionally narrows it to one
// instance (a channel label, a PE label, an engine name), picks a fault
// kind, and chooses a trigger — a fixed op-index window, a periodic
// "every Nth op", or a Bernoulli probability drawn from a generator that
// is forked deterministically per (rule, site, instance). Plans parse
// from / serialize to JSON through the telemetry JSON layer, so chaos
// configurations live next to the metrics they explain.
//
// The FaultInjector is the process-global arbiter the instrumented sites
// consult: it keeps one operation counter per (site, instance), evaluates
// the armed plan's rules in order (first trigger wins), logs every
// injected fault, and counts them in the telemetry registry
// ("fault.injected"). Disarmed, decide() is a single relaxed atomic load —
// the hot paths of the simulation are unperturbed, which is what keeps
// the figure benchmarks byte-identical with the framework compiled in.
//
// Determinism: a decision depends only on the plan, the (site, instance)
// pair and that pair's op index — never on wall-clock time or thread
// interleaving. Any component whose own operation order is deterministic
// (every DES-driven site; every engine, which the server drives from a
// single worker thread) therefore sees the identical fault sequence on
// every run with the same seed.
//
// Site inventory. Device/substrate sites: "hbm.access", "pcie.dma",
// "pe.launch", "engine.submit", "engine.wait", "engine.activate"
// (instance = channel/PE/engine label). Network sites (DESIGN.md §12):
// "rpc.accept" (instance "listener", one op per accepted socket),
// "rpc.hello", "rpc.conn.rx" and "rpc.conn.tx" (instance "conn<N>"; rx
// counts received frames, tx counts sent frames with the HELLO as tx op
// 0 — per-connection counters restart on every new connection, keeping
// reconnect-heavy runs reproducible), and "rpc.client.connect"
// (instance = the client's label, one op per dial attempt).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "spnhbm/telemetry/metrics.hpp"
#include "spnhbm/util/rng.hpp"

namespace spnhbm::fault {

enum class FaultKind {
  kNone,
  kFail,     ///< The operation errors (site-specific exception).
  kStall,    ///< The operation succeeds but takes extra time.
  kCorrupt,  ///< Data is corrupted; sites with ECC detect it and fail.
  kDelay,    ///< Wall-clock latency spike before the operation.
  kHang,     ///< Bounded wall-clock hang (models an unresponsive backend).
};

const char* to_string(FaultKind kind);
FaultKind fault_kind_from_string(const std::string& name);

/// Static "fault.<kind>" label for annotating an injected fault onto the
/// owning trace span (instant events keep the trace allocation-free).
const char* trace_label(FaultKind kind);

/// What an instrumented site is told to do for the current operation.
struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  /// Stall/delay/hang duration (virtual or wall, per the site's clock).
  double duration_us = 0.0;
  /// XOR mask applied by corrupting sites.
  std::uint8_t corrupt_mask = 0xFF;

  explicit operator bool() const { return kind != FaultKind::kNone; }
};

/// One declarative fault source. Exactly one trigger must be set:
/// `probability`, `every`, or a window (`from`/`until`).
struct FaultRule {
  std::string site;      ///< Required: injection-site name.
  std::string instance;  ///< Optional exact instance filter; empty = any.
  FaultKind kind = FaultKind::kFail;
  /// Bernoulli per-op probability, deterministic in the plan seed.
  double probability = 0.0;
  /// Fire on every Nth operation (op indices N-1, 2N-1, ...).
  std::uint64_t every = 0;
  /// Fire on op indices in [from, until); until = 0 means unbounded.
  std::uint64_t from = 0;
  std::uint64_t until = 0;
  bool has_window = false;
  double duration_us = 0.0;
  std::uint8_t corrupt_mask = 0xFF;
};

struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultRule> rules;

  /// Parses {"seed": S, "faults": [{...}, ...]}; throws ParseError on
  /// malformed documents (unknown kind, missing site, no/ambiguous
  /// trigger).
  static FaultPlan from_json(const std::string& text);
  static FaultPlan from_json_file(const std::string& path);
  std::string to_json() const;
};

/// One logged injection (the reproducibility witness: two runs with the
/// same plan must produce identical per-(site, instance) sequences).
struct InjectedFault {
  std::string site;
  std::string instance;
  std::uint64_t op_index = 0;
  FaultKind kind = FaultKind::kNone;
};

class FaultInjector {
 public:
  /// Arms `plan`; resets op counters, RNG streams and the log.
  void arm(FaultPlan plan);
  void disarm();
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  /// Consulted by an instrumented site once per operation. Increments the
  /// (site, instance) op counter and returns the first triggering rule's
  /// decision (kNone when nothing fires or the injector is disarmed).
  FaultDecision decide(const std::string& site, const std::string& instance);

  /// Total faults injected since the last arm().
  std::uint64_t injected() const;
  /// Injection log, capped at kLogCap entries (counting continues).
  std::vector<InjectedFault> log() const;

  static constexpr std::size_t kLogCap = 65536;

 private:
  mutable std::mutex mutex_;
  std::atomic<bool> armed_{false};
  FaultPlan plan_;
  /// Op counter per (site, instance).
  std::map<std::pair<std::string, std::string>, std::uint64_t> op_counts_;
  /// Bernoulli stream per (rule index, site, instance).
  std::map<std::pair<std::size_t, std::pair<std::string, std::string>>, Rng>
      rule_rngs_;
  std::vector<InjectedFault> log_;
  std::uint64_t injected_ = 0;
  std::shared_ptr<telemetry::Counter> ctr_injected_;
};

/// The process-global injector every instrumented site consults.
FaultInjector& injector();

/// RAII arm/disarm, for tests and scoped chaos runs.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(FaultPlan plan) { injector().arm(std::move(plan)); }
  ~ScopedFaultPlan() { injector().disarm(); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

}  // namespace spnhbm::fault
