// SPN -> pipelined datapath compiler.
//
// Mirrors the paper's hardware generator: the textual SPN description is
// lowered to a fully spatial, fully pipelined operator graph with
// initiation interval II = 1 — one complete input sample enters the
// datapath every PE clock cycle.
//
// Lowering rules (one hardware operator per IR op):
//   * histogram leaf  -> BRAM lookup (byte feature -> probability);
//   * product node    -> balanced tree of 2-input multipliers;
//   * sum node        -> one constant multiplier per child (mixture weight,
//                        baked into the bitstream) + balanced adder tree.
//
// The scheduler assigns each operator a start stage (ASAP) and inserts
// delay registers wherever operand paths have unequal latency — those
// balance registers are a large share of the register counts in the
// paper's Table I, so they are tracked explicitly.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "spnhbm/arith/backend.hpp"
#include "spnhbm/spn/graph.hpp"

namespace spnhbm::compiler {

enum class OpKind : std::uint8_t {
  kHistogramLookup,  ///< input: feature byte; output: bucket probability
  kMul,              ///< 2-input multiply
  kConstMul,         ///< multiply by a synthesis-time constant (sum weight)
  kAdd,              ///< 2-input add
  kMax,              ///< 2-input max (sum nodes of a max-product datapath)
};

const char* op_kind_name(OpKind kind);

/// Which SPN query the compiled datapath answers. The query is baked into
/// the bitstream: a marginal datapath has a "marginalised" slot in every
/// leaf lookup table (missing evidence -> probability 1), an MPE datapath
/// replaces the adder trees of sum nodes with max trees (max-product).
enum class QueryKind : std::uint8_t {
  kJoint = 0,     ///< full-evidence joint likelihood (the paper's query)
  kMarginal = 1,  ///< marginal likelihood; missing variables summed out
  kMpe = 2,       ///< most probable explanation value (max-product)
};

const char* query_kind_name(QueryKind kind);
/// "joint" / "marginal" / "mpe"; throws ParseError on anything else.
QueryKind parse_query_kind(const std::string& name);

/// The input byte that means "this variable carries no evidence". Leaf
/// lookup tables of non-joint datapaths reserve this slot, so non-joint
/// compiles require input_domain <= 255.
inline constexpr std::uint8_t kMissingByte = 0xFF;

using OpId = std::uint32_t;
inline constexpr OpId kNoOp = static_cast<OpId>(-1);

struct DatapathOp {
  OpKind kind = OpKind::kMul;
  OpId lhs = kNoOp;               ///< producer op (kMul/kAdd/kConstMul)
  OpId rhs = kNoOp;               ///< second producer (kMul/kAdd)
  spn::VariableId variable = 0;   ///< kHistogramLookup: feature index
  std::uint32_t table_index = 0;  ///< kHistogramLookup: which LUT
  double constant = 0.0;          ///< kConstMul: the weight
  // Filled by the scheduler:
  std::uint32_t stage = 0;      ///< cycle (relative to sample entry) at
                                ///< which this op *starts*
  std::uint32_t latency = 0;    ///< operator latency in cycles
  std::uint32_t lhs_delay = 0;  ///< balance registers inserted on lhs path
  std::uint32_t rhs_delay = 0;  ///< balance registers inserted on rhs path
};

/// One histogram lookup table (becomes BRAM contents).
struct LookupTable {
  spn::VariableId variable = 0;
  std::vector<double> probability_by_byte;  ///< 256 entries (byte domain)
};

struct CompileOptions {
  /// Feature domain (byte input): lookup tables are built over [0, domain).
  std::size_t input_domain = 256;
  /// Reuse identical lookup tables across leaves (CSE for BRAM).
  bool deduplicate_tables = true;
  /// Query the datapath is compiled for. Non-joint queries reserve the
  /// kMissingByte lookup slot, so they require input_domain <= 255.
  QueryKind query = QueryKind::kJoint;
};

/// A read-only view over one input sample: either a dense byte row or a
/// CSR-style sparse set of {index, value} pairs over a per-model default
/// evidence vector (absent indices read the default — for non-joint
/// datapaths that default is kMissingByte, i.e. "no evidence").
class SampleView {
 public:
  static SampleView dense(std::span<const std::uint8_t> row) {
    SampleView view;
    view.row_ = row;
    return view;
  }
  /// `indices` must be strictly increasing; `defaults` spans every
  /// feature and backs the reads sparse pairs do not cover.
  static SampleView sparse(std::span<const std::uint16_t> indices,
                           std::span<const std::uint8_t> values,
                           std::span<const std::uint8_t> defaults) {
    SampleView view;
    view.indices_ = indices;
    view.values_ = values;
    view.row_ = defaults;
    view.is_sparse_ = true;
    return view;
  }

  bool is_sparse() const { return is_sparse_; }
  std::size_t active_count() const {
    return is_sparse_ ? indices_.size() : row_.size();
  }

  std::uint8_t operator[](std::size_t variable) const {
    if (is_sparse_) {
      const auto it =
          std::lower_bound(indices_.begin(), indices_.end(), variable);
      if (it != indices_.end() && *it == variable) {
        return values_[static_cast<std::size_t>(it - indices_.begin())];
      }
    }
    return row_[variable];
  }

 private:
  std::span<const std::uint8_t> row_;       ///< dense row, or the defaults
  std::span<const std::uint16_t> indices_;  ///< sparse only
  std::span<const std::uint8_t> values_;    ///< sparse only
  bool is_sparse_ = false;
};

/// The compiled artifact — everything the simulator ("bitstream") needs.
class DatapathModule {
 public:
  /// `default_evidence` backs sparse samples (one byte per feature);
  /// empty = derive from the query (zeros for joint, kMissingByte
  /// otherwise).
  DatapathModule(std::vector<DatapathOp> ops, std::vector<LookupTable> tables,
                 OpId result_op, std::size_t input_features,
                 std::uint32_t pipeline_depth,
                 QueryKind query = QueryKind::kJoint,
                 std::vector<std::uint8_t> default_evidence = {});

  const std::vector<DatapathOp>& ops() const { return ops_; }
  const std::vector<LookupTable>& tables() const { return tables_; }
  OpId result_op() const { return result_op_; }

  /// Number of single-byte input features per sample.
  std::size_t input_features() const { return input_features_; }
  /// Total pipeline latency in PE cycles (fill time).
  std::uint32_t pipeline_depth() const { return pipeline_depth_; }
  /// Samples per cycle in steady state; always 1 (II = 1).
  static constexpr std::uint32_t initiation_interval() { return 1; }
  /// Query this datapath was compiled for.
  QueryKind query() const { return query_; }
  /// Per-feature byte a sparse sample reads where no pair covers the
  /// feature (all-kMissingByte for non-joint datapaths).
  const std::vector<std::uint8_t>& default_evidence() const {
    return default_evidence_;
  }

  std::size_t count_ops(OpKind kind) const;
  /// Total balance registers (value-widths) inserted by the scheduler.
  std::uint64_t balance_register_stages() const;

  /// Functional evaluation of one sample through the operator graph using
  /// `backend` arithmetic — bit-accurate to the modelled hardware.
  double evaluate(const arith::ArithBackend& backend,
                  std::span<const std::uint8_t> sample) const;
  /// Same, over a SampleView (dense or sparse) — identical arithmetic,
  /// so a sparse sample and its densified twin give bit-equal results.
  double evaluate(const arith::ArithBackend& backend,
                  const SampleView& sample) const;

  std::string report() const;

 private:
  std::vector<DatapathOp> ops_;
  std::vector<LookupTable> tables_;
  OpId result_op_;
  std::size_t input_features_;
  std::uint32_t pipeline_depth_;
  QueryKind query_ = QueryKind::kJoint;
  std::vector<std::uint8_t> default_evidence_;
};

/// Compiles the SPN into a scheduled datapath for the given arithmetic
/// backend. Throws ValidationError if the SPN is structurally invalid and
/// Error if it uses leaves the hardware flow does not support (only
/// histogram leaves map to the byte-input datapath, as in the paper).
DatapathModule compile_spn(const spn::Spn& spn,
                           const arith::ArithBackend& backend,
                           const CompileOptions& options = {});

}  // namespace spnhbm::compiler
