// CSR-style sparse sample batches and their byte-stream codec.
//
// Bag-of-words queries are naturally sparse: a 5-active-words NIPS80
// query carries 5 {index, count} pairs instead of 80 dense bytes. This
// is the one encoding used everywhere sparse evidence travels — the
// RPC wire (v4 REQUEST payloads), the PCIe DMA into the simulated
// device, and the HBM bursts the load units issue — so the modelled
// byte counts on every link shrink with the active-index density.
//
// Stream layout, little-endian, per sample:
//   u16 active_count
//   active_count x { u16 index, u8 value }   (indices strictly increasing)
//
// Absent indices read the model's default-evidence vector
// (DatapathModule::default_evidence): kMissingByte for non-joint
// datapaths, zero for joint ones. decode_sparse() validates everything
// (bounds, ordering, duplicates, truncation) and throws ParseError —
// a malformed stream never reaches an engine.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "spnhbm/compiler/datapath.hpp"

namespace spnhbm::compiler {

/// A batch of sparse samples in CSR form. offsets has sample_count()+1
/// entries; sample i's pairs are [offsets[i], offsets[i+1]) in
/// indices/values.
struct SparseBatch {
  std::size_t features = 0;
  std::vector<std::uint32_t> offsets{0};
  std::vector<std::uint16_t> indices;
  std::vector<std::uint8_t> values;

  std::size_t sample_count() const { return offsets.size() - 1; }
  std::size_t active_total() const { return indices.size(); }

  /// Appends one sample given as parallel index/value arrays (indices
  /// strictly increasing, all < features). Throws Error on violations.
  void add_sample(std::span<const std::uint16_t> sample_indices,
                  std::span<const std::uint8_t> sample_values);

  /// View over sample i against `defaults` (usually the module's
  /// default-evidence vector).
  SampleView view(std::size_t i,
                  std::span<const std::uint8_t> defaults) const;

  /// Dense rows: every sample expanded against `defaults`.
  std::vector<std::uint8_t> densify(
      std::span<const std::uint8_t> defaults) const;

  /// Wire/DMA bytes of the encoded batch: 2 + 3 * active per sample.
  std::size_t encoded_bytes() const {
    return 2 * sample_count() + 3 * active_total();
  }
};

/// Builds a batch from dense rows, keeping only bytes that differ from
/// `defaults` — the exact inverse of densify().
SparseBatch sparse_from_dense(std::span<const std::uint8_t> samples,
                              std::size_t features,
                              std::span<const std::uint8_t> defaults);

/// Serialises the batch into the per-sample stream layout above.
std::vector<std::uint8_t> encode_sparse(const SparseBatch& batch);

/// Parses and validates a stream of exactly `sample_count` samples over
/// `features` features; throws ParseError on truncation, trailing bytes,
/// out-of-range indices, duplicates or non-increasing order.
SparseBatch decode_sparse(std::span<const std::uint8_t> stream,
                          std::size_t features, std::size_t sample_count);

}  // namespace spnhbm::compiler
