// Binary serialisation of compiled datapath modules.
//
// Plays the role of the bitstream/artifact cache in the real toolflow:
// a compiled (lowered + scheduled) design can be written to disk and
// loaded back without re-running the compiler, e.g. to ship a model-zoo
// design next to its SPN description. The format is a little-endian
// tagged container with a magic/version header and explicit counts — a
// truncated or corrupted file fails loudly with ParseError, never
// silently.
#pragma once

#include <iosfwd>
#include <string>

#include "spnhbm/compiler/datapath.hpp"

namespace spnhbm::compiler {

/// Serialises the module to a binary stream.
void save_design(const DatapathModule& module, std::ostream& out);

/// Deserialises a module; throws ParseError on malformed input.
DatapathModule load_design(std::istream& in);

/// File-path conveniences.
void save_design_file(const DatapathModule& module, const std::string& path);
DatapathModule load_design_file(const std::string& path);

/// True when `path` starts with the design-file magic ("SPND"), i.e. it
/// holds a serialised design rather than a textual SPN description.
/// Throws Error when the file cannot be opened.
bool is_design_file(const std::string& path);

}  // namespace spnhbm::compiler
