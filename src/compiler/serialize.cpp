#include "spnhbm/compiler/serialize.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace spnhbm::compiler {

namespace {

constexpr std::uint32_t kMagic = 0x53504E44;  // "SPND"
// v1: joint-only (no query field). v2 inserts a query-kind word and the
// default-evidence vector after the version word. Joint modules with
// derived (all-zero) default evidence still save as v1, so every design
// artifact and content hash from before the query-generic datapath is
// byte-identical — and v1 files load forever.
constexpr std::uint32_t kVersionJoint = 1;
constexpr std::uint32_t kVersionQuery = 2;

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void write_f64(std::ostream& out, double v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw ParseError("truncated design file (u32)");
  return v;
}
std::uint64_t read_u64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw ParseError("truncated design file (u64)");
  return v;
}
double read_f64(std::istream& in) {
  double v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw ParseError("truncated design file (f64)");
  return v;
}

}  // namespace

void save_design(const DatapathModule& module, std::ostream& out) {
  const bool joint_defaults =
      module.query() == QueryKind::kJoint &&
      std::all_of(module.default_evidence().begin(),
                  module.default_evidence().end(),
                  [](std::uint8_t byte) { return byte == 0; });
  write_u32(out, kMagic);
  write_u32(out, joint_defaults ? kVersionJoint : kVersionQuery);
  if (!joint_defaults) {
    write_u32(out, static_cast<std::uint32_t>(module.query()));
    write_u64(out, module.default_evidence().size());
    out.write(reinterpret_cast<const char*>(module.default_evidence().data()),
              static_cast<std::streamsize>(module.default_evidence().size()));
  }
  write_u64(out, module.input_features());
  write_u32(out, module.pipeline_depth());
  write_u32(out, module.result_op());

  write_u64(out, module.ops().size());
  for (const auto& op : module.ops()) {
    write_u32(out, static_cast<std::uint32_t>(op.kind));
    write_u32(out, op.lhs);
    write_u32(out, op.rhs);
    write_u32(out, op.variable);
    write_u32(out, op.table_index);
    write_f64(out, op.constant);
    write_u32(out, op.stage);
    write_u32(out, op.latency);
    write_u32(out, op.lhs_delay);
    write_u32(out, op.rhs_delay);
  }

  write_u64(out, module.tables().size());
  for (const auto& table : module.tables()) {
    write_u32(out, table.variable);
    write_u64(out, table.probability_by_byte.size());
    for (const double p : table.probability_by_byte) write_f64(out, p);
  }
  SPNHBM_REQUIRE(out.good(), "design serialisation stream failure");
}

DatapathModule load_design(std::istream& in) {
  if (read_u32(in) != kMagic) {
    throw ParseError("not a spnhbm design file (bad magic)");
  }
  const std::uint32_t version = read_u32(in);
  if (version != kVersionJoint && version != kVersionQuery) {
    throw ParseError("unsupported design file version");
  }
  QueryKind query = QueryKind::kJoint;
  std::vector<std::uint8_t> default_evidence;
  if (version == kVersionQuery) {
    const std::uint32_t raw_query = read_u32(in);
    if (raw_query > static_cast<std::uint32_t>(QueryKind::kMpe)) {
      throw ParseError("invalid query kind in design file");
    }
    query = static_cast<QueryKind>(raw_query);
    const std::uint64_t evidence_bytes = read_u64(in);
    if (evidence_bytes > 65536) {
      throw ParseError("implausible default-evidence size");
    }
    default_evidence.resize(evidence_bytes);
    in.read(reinterpret_cast<char*>(default_evidence.data()),
            static_cast<std::streamsize>(evidence_bytes));
    if (!in) throw ParseError("truncated design file (default evidence)");
  }
  const std::uint64_t features = read_u64(in);
  if (version == kVersionQuery && default_evidence.size() != features) {
    throw ParseError("default evidence does not span the input features");
  }
  const std::uint32_t pipeline_depth = read_u32(in);
  const std::uint32_t result_op = read_u32(in);

  const std::uint64_t op_count = read_u64(in);
  if (op_count > (1ull << 28)) throw ParseError("implausible op count");
  std::vector<DatapathOp> ops;
  ops.reserve(op_count);
  for (std::uint64_t i = 0; i < op_count; ++i) {
    DatapathOp op;
    const std::uint32_t kind = read_u32(in);
    // v1 predates the max op; a v1 file claiming one is corrupt.
    const auto max_kind = version >= kVersionQuery ? OpKind::kMax : OpKind::kAdd;
    if (kind > static_cast<std::uint32_t>(max_kind)) {
      throw ParseError("invalid op kind in design file");
    }
    op.kind = static_cast<OpKind>(kind);
    op.lhs = read_u32(in);
    op.rhs = read_u32(in);
    op.variable = read_u32(in);
    op.table_index = read_u32(in);
    op.constant = read_f64(in);
    op.stage = read_u32(in);
    op.latency = read_u32(in);
    op.lhs_delay = read_u32(in);
    op.rhs_delay = read_u32(in);
    // Producers must precede consumers (the evaluator relies on it).
    if (op.kind != OpKind::kHistogramLookup) {
      if (op.lhs >= i || (op.rhs != kNoOp && op.rhs >= i)) {
        throw ParseError("design file violates topological op order");
      }
    }
    ops.push_back(op);
  }

  const std::uint64_t table_count = read_u64(in);
  if (table_count > op_count) throw ParseError("implausible table count");
  std::vector<LookupTable> tables;
  tables.reserve(table_count);
  for (std::uint64_t t = 0; t < table_count; ++t) {
    LookupTable table;
    table.variable = read_u32(in);
    const std::uint64_t entries = read_u64(in);
    if (entries == 0 || entries > 65536) {
      throw ParseError("implausible lookup table size");
    }
    table.probability_by_byte.resize(entries);
    for (auto& p : table.probability_by_byte) p = read_f64(in);
    tables.push_back(std::move(table));
  }
  for (const auto& op : ops) {
    if (op.kind == OpKind::kHistogramLookup &&
        op.table_index >= tables.size()) {
      throw ParseError("op references a missing lookup table");
    }
  }
  if (result_op >= ops.size()) {
    throw ParseError("result op out of range in design file");
  }
  return DatapathModule(std::move(ops), std::move(tables), result_op,
                        features, pipeline_depth, query,
                        std::move(default_evidence));
}

void save_design_file(const DatapathModule& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot open design file for writing: " + path);
  save_design(module, out);
}

DatapathModule load_design_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open design file: " + path);
  return load_design(in);
}

bool is_design_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open file: " + path);
  std::uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  return in.gcount() == sizeof(magic) && magic == kMagic;
}

}  // namespace spnhbm::compiler
