#include "spnhbm/compiler/datapath.hpp"

#include <algorithm>
#include <map>

#include "spnhbm/spn/evaluate.hpp"
#include "spnhbm/spn/validate.hpp"
#include "spnhbm/util/error.hpp"
#include "spnhbm/util/strings.hpp"

namespace spnhbm::compiler {

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kHistogramLookup: return "hist";
    case OpKind::kMul: return "mul";
    case OpKind::kConstMul: return "cmul";
    case OpKind::kAdd: return "add";
    case OpKind::kMax: return "max";
  }
  return "?";
}

const char* query_kind_name(QueryKind kind) {
  switch (kind) {
    case QueryKind::kJoint: return "joint";
    case QueryKind::kMarginal: return "marginal";
    case QueryKind::kMpe: return "mpe";
  }
  return "?";
}

QueryKind parse_query_kind(const std::string& name) {
  if (name == "joint") return QueryKind::kJoint;
  if (name == "marginal") return QueryKind::kMarginal;
  if (name == "mpe") return QueryKind::kMpe;
  throw ParseError("unknown query kind '" + name +
                   "' (expected joint, marginal or mpe)");
}

DatapathModule::DatapathModule(std::vector<DatapathOp> ops,
                               std::vector<LookupTable> tables, OpId result_op,
                               std::size_t input_features,
                               std::uint32_t pipeline_depth, QueryKind query,
                               std::vector<std::uint8_t> default_evidence)
    : ops_(std::move(ops)),
      tables_(std::move(tables)),
      result_op_(result_op),
      input_features_(input_features),
      pipeline_depth_(pipeline_depth),
      query_(query),
      default_evidence_(std::move(default_evidence)) {
  SPNHBM_REQUIRE(result_op_ < ops_.size(), "result op out of range");
  if (default_evidence_.empty()) {
    default_evidence_.assign(
        input_features_, query_ == QueryKind::kJoint ? std::uint8_t{0}
                                                     : kMissingByte);
  }
  SPNHBM_REQUIRE(default_evidence_.size() == input_features_,
                 "default evidence must span every input feature");
}

std::size_t DatapathModule::count_ops(OpKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(ops_.begin(), ops_.end(),
                    [kind](const DatapathOp& op) { return op.kind == kind; }));
}

std::uint64_t DatapathModule::balance_register_stages() const {
  std::uint64_t total = 0;
  for (const auto& op : ops_) total += op.lhs_delay + op.rhs_delay;
  return total;
}

double DatapathModule::evaluate(const arith::ArithBackend& backend,
                                std::span<const std::uint8_t> sample) const {
  SPNHBM_REQUIRE(sample.size() >= input_features_,
                 "sample narrower than the datapath input");
  return evaluate(backend, SampleView::dense(sample));
}

double DatapathModule::evaluate(const arith::ArithBackend& backend,
                                const SampleView& sample) const {
  std::vector<std::uint64_t> values(ops_.size());
  for (OpId id = 0; id < ops_.size(); ++id) {
    const auto& op = ops_[id];
    switch (op.kind) {
      case OpKind::kHistogramLookup: {
        const auto& table = tables_[op.table_index];
        const std::uint8_t byte = sample[op.variable];
        SPNHBM_REQUIRE(byte < table.probability_by_byte.size(),
                       "feature byte outside lookup table");
        values[id] = backend.encode(table.probability_by_byte[byte]);
        break;
      }
      case OpKind::kMul:
        values[id] = backend.mul(values[op.lhs], values[op.rhs]);
        break;
      case OpKind::kConstMul:
        values[id] = backend.mul(values[op.lhs], backend.encode(op.constant));
        break;
      case OpKind::kAdd:
        values[id] = backend.add(values[op.lhs], values[op.rhs]);
        break;
      case OpKind::kMax:
        values[id] = backend.max(values[op.lhs], values[op.rhs]);
        break;
    }
  }
  return backend.decode(values[result_op_]);
}

std::string DatapathModule::report() const {
  std::string text = strformat(
      "datapath: %zu ops (%zu hist, %zu mul, %zu cmul, %zu add), %zu lookup "
      "tables, %zu input bytes, pipeline depth %u, II=%u, %llu balance "
      "register stages",
      ops_.size(), count_ops(OpKind::kHistogramLookup),
      count_ops(OpKind::kMul), count_ops(OpKind::kConstMul),
      count_ops(OpKind::kAdd), tables_.size(), input_features_,
      pipeline_depth_, initiation_interval(),
      static_cast<unsigned long long>(balance_register_stages()));
  // Joint datapaths keep the historical report byte-identical; non-joint
  // ones carry their query (and the max-tree ops MPE lowers to).
  if (query_ != QueryKind::kJoint) {
    text += strformat(", query %s", query_kind_name(query_));
    if (const std::size_t maxes = count_ops(OpKind::kMax); maxes > 0) {
      text += strformat(" (%zu max)", maxes);
    }
  }
  return text;
}

namespace {

class Lowering {
 public:
  Lowering(const spn::Spn& spn, const arith::ArithBackend& backend,
           const CompileOptions& options)
      : spn_(spn), backend_(backend), options_(options) {}

  DatapathModule run() {
    spn::validate_or_throw(spn_);
    std::vector<OpId> op_of_node(spn_.node_count(), kNoOp);
    for (const spn::NodeId id : spn_.reachable_topological()) {
      op_of_node[id] = lower_node(id, op_of_node);
    }
    const OpId result = op_of_node[spn_.root()];
    schedule();
    const auto depth = ops_[result].stage + ops_[result].latency;
    return DatapathModule(std::move(ops_), std::move(tables_), result,
                          spn_.variable_count(), depth, options_.query);
  }

 private:
  std::uint32_t op_latency(OpKind kind) const {
    switch (kind) {
      case OpKind::kHistogramLookup: return 2;  // BRAM read + register
      case OpKind::kMul:
      case OpKind::kConstMul:
        return static_cast<std::uint32_t>(backend_.mul_latency_cycles());
      case OpKind::kAdd:
        return static_cast<std::uint32_t>(backend_.add_latency_cycles());
      case OpKind::kMax:
        return static_cast<std::uint32_t>(backend_.max_latency_cycles());
    }
    return 1;
  }

  OpId push(DatapathOp op) {
    op.latency = op_latency(op.kind);
    ops_.push_back(op);
    return static_cast<OpId>(ops_.size() - 1);
  }

  std::uint32_t make_table(const spn::HistogramLeaf& leaf) {
    LookupTable table;
    table.variable = leaf.variable;
    table.probability_by_byte.resize(options_.input_domain, 0.0);
    for (std::size_t byte = 0; byte < options_.input_domain; ++byte) {
      table.probability_by_byte[byte] =
          spn::leaf_density(spn::NodePayload(leaf), static_cast<double>(byte));
    }
    if (options_.query != QueryKind::kJoint) {
      // The reserved "marginalised" slot: a missing variable contributes
      // 1 under sum-out semantics (log-space 0), and its best completion
      // under max-product — the most probable bucket's density.
      table.probability_by_byte.resize(kMissingByte + 1, 0.0);
      if (options_.query == QueryKind::kMarginal) {
        table.probability_by_byte[kMissingByte] = 1.0;
      } else {
        double best = 0.0;
        for (std::size_t byte = 0; byte < options_.input_domain; ++byte) {
          best = std::max(best, table.probability_by_byte[byte]);
        }
        table.probability_by_byte[kMissingByte] = best;
      }
    }
    if (options_.deduplicate_tables) {
      const auto key = std::make_pair(leaf.variable, table.probability_by_byte);
      const auto it = table_cache_.find(key);
      if (it != table_cache_.end()) return it->second;
      const auto index = static_cast<std::uint32_t>(tables_.size());
      table_cache_.emplace(key, index);
      tables_.push_back(std::move(table));
      return index;
    }
    tables_.push_back(std::move(table));
    return static_cast<std::uint32_t>(tables_.size() - 1);
  }

  /// Balanced binary reduction tree over `operands` with `kind` operators.
  OpId reduce_tree(std::vector<OpId> operands, OpKind kind) {
    SPNHBM_REQUIRE(!operands.empty(), "empty reduction");
    while (operands.size() > 1) {
      std::vector<OpId> next;
      next.reserve((operands.size() + 1) / 2);
      for (std::size_t i = 0; i + 1 < operands.size(); i += 2) {
        DatapathOp op;
        op.kind = kind;
        op.lhs = operands[i];
        op.rhs = operands[i + 1];
        next.push_back(push(op));
      }
      if (operands.size() % 2 == 1) next.push_back(operands.back());
      operands = std::move(next);
    }
    return operands.front();
  }

  OpId lower_node(spn::NodeId id, const std::vector<OpId>& op_of_node) {
    const auto& payload = spn_.node(id);
    if (const auto* histogram = std::get_if<spn::HistogramLeaf>(&payload)) {
      DatapathOp op;
      op.kind = OpKind::kHistogramLookup;
      op.variable = histogram->variable;
      op.table_index = make_table(*histogram);
      return push(op);
    }
    if (const auto* product = std::get_if<spn::ProductNode>(&payload)) {
      std::vector<OpId> operands;
      operands.reserve(product->children.size());
      for (const spn::NodeId child : product->children) {
        operands.push_back(op_of_node[child]);
      }
      return reduce_tree(std::move(operands), OpKind::kMul);
    }
    if (const auto* sum = std::get_if<spn::SumNode>(&payload)) {
      std::vector<OpId> operands;
      operands.reserve(sum->children.size());
      for (std::size_t c = 0; c < sum->children.size(); ++c) {
        DatapathOp weighted;
        weighted.kind = OpKind::kConstMul;
        weighted.lhs = op_of_node[sum->children[c]];
        weighted.constant = sum->weights[c];
        operands.push_back(push(weighted));
      }
      // Max-product: the sum node picks its best weighted child instead
      // of mixing them — same operand fan-in, comparator tree instead of
      // adder tree.
      return reduce_tree(std::move(operands),
                         options_.query == QueryKind::kMpe ? OpKind::kMax
                                                           : OpKind::kAdd);
    }
    throw Error(strformat(
        "node %u: %s leaves are not supported by the byte-input hardware "
        "flow (only histogram leaves map to lookup tables)",
        id, spn::node_kind_name(spn::node_kind(payload))));
  }

  /// ASAP pipeline scheduling + balance-register insertion.
  void schedule() {
    for (auto& op : ops_) {
      if (op.kind == OpKind::kHistogramLookup) {
        op.stage = 0;  // all lookups fire when the sample enters
        continue;
      }
      const auto ready = [this](OpId producer) {
        return ops_[producer].stage + ops_[producer].latency;
      };
      const std::uint32_t lhs_ready = ready(op.lhs);
      const std::uint32_t rhs_ready =
          (op.rhs != kNoOp) ? ready(op.rhs) : lhs_ready;
      op.stage = std::max(lhs_ready, rhs_ready);
      op.lhs_delay = op.stage - lhs_ready;
      if (op.rhs != kNoOp) op.rhs_delay = op.stage - rhs_ready;
    }
  }

  const spn::Spn& spn_;
  const arith::ArithBackend& backend_;
  CompileOptions options_;
  std::vector<DatapathOp> ops_;
  std::vector<LookupTable> tables_;
  std::map<std::pair<spn::VariableId, std::vector<double>>, std::uint32_t>
      table_cache_;
};

}  // namespace

DatapathModule compile_spn(const spn::Spn& spn,
                           const arith::ArithBackend& backend,
                           const CompileOptions& options) {
  SPNHBM_REQUIRE(options.input_domain >= 1 && options.input_domain <= 256,
                 "input domain must fit a byte");
  SPNHBM_REQUIRE(options.query == QueryKind::kJoint ||
                     options.input_domain <= kMissingByte,
                 "non-joint queries reserve byte 255 as the marginalised "
                 "slot; input domain must be <= 255");
  return Lowering(spn, backend, options).run();
}

}  // namespace spnhbm::compiler
