#include "spnhbm/compiler/sparse_evidence.hpp"

#include "spnhbm/util/error.hpp"
#include "spnhbm/util/strings.hpp"

namespace spnhbm::compiler {

void SparseBatch::add_sample(std::span<const std::uint16_t> sample_indices,
                             std::span<const std::uint8_t> sample_values) {
  SPNHBM_REQUIRE(sample_indices.size() == sample_values.size(),
                 "sparse sample needs one value per index");
  std::uint32_t previous = 0;
  bool first = true;
  for (const std::uint16_t index : sample_indices) {
    SPNHBM_REQUIRE(index < features, "sparse index outside the feature span");
    SPNHBM_REQUIRE(first || index > previous,
                   "sparse indices must be strictly increasing");
    previous = index;
    first = false;
  }
  indices.insert(indices.end(), sample_indices.begin(), sample_indices.end());
  values.insert(values.end(), sample_values.begin(), sample_values.end());
  offsets.push_back(static_cast<std::uint32_t>(indices.size()));
}

SampleView SparseBatch::view(std::size_t i,
                             std::span<const std::uint8_t> defaults) const {
  SPNHBM_REQUIRE(i < sample_count(), "sparse sample index out of range");
  const std::size_t begin = offsets[i];
  const std::size_t end = offsets[i + 1];
  return SampleView::sparse(
      std::span<const std::uint16_t>(indices).subspan(begin, end - begin),
      std::span<const std::uint8_t>(values).subspan(begin, end - begin),
      defaults);
}

std::vector<std::uint8_t> SparseBatch::densify(
    std::span<const std::uint8_t> defaults) const {
  SPNHBM_REQUIRE(defaults.size() == features,
                 "default evidence must span every feature");
  std::vector<std::uint8_t> rows;
  rows.reserve(sample_count() * features);
  for (std::size_t i = 0; i < sample_count(); ++i) {
    rows.insert(rows.end(), defaults.begin(), defaults.end());
    std::uint8_t* row = rows.data() + i * features;
    for (std::size_t at = offsets[i]; at < offsets[i + 1]; ++at) {
      row[indices[at]] = values[at];
    }
  }
  return rows;
}

SparseBatch sparse_from_dense(std::span<const std::uint8_t> samples,
                              std::size_t features,
                              std::span<const std::uint8_t> defaults) {
  SPNHBM_REQUIRE(features > 0, "sparse batches need at least one feature");
  SPNHBM_REQUIRE(features <= 0x10000, "sparse indices are 16-bit");
  SPNHBM_REQUIRE(samples.size() % features == 0,
                 "dense batch is not a whole number of samples");
  SPNHBM_REQUIRE(defaults.size() == features,
                 "default evidence must span every feature");
  SparseBatch batch;
  batch.features = features;
  const std::size_t count = samples.size() / features;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint8_t* row = samples.data() + i * features;
    for (std::size_t v = 0; v < features; ++v) {
      if (row[v] != defaults[v]) {
        batch.indices.push_back(static_cast<std::uint16_t>(v));
        batch.values.push_back(row[v]);
      }
    }
    batch.offsets.push_back(static_cast<std::uint32_t>(batch.indices.size()));
  }
  return batch;
}

std::vector<std::uint8_t> encode_sparse(const SparseBatch& batch) {
  std::vector<std::uint8_t> stream;
  stream.reserve(batch.encoded_bytes());
  for (std::size_t i = 0; i < batch.sample_count(); ++i) {
    const std::size_t begin = batch.offsets[i];
    const std::size_t end = batch.offsets[i + 1];
    const auto active = static_cast<std::uint16_t>(end - begin);
    stream.push_back(static_cast<std::uint8_t>(active));
    stream.push_back(static_cast<std::uint8_t>(active >> 8));
    for (std::size_t at = begin; at < end; ++at) {
      stream.push_back(static_cast<std::uint8_t>(batch.indices[at]));
      stream.push_back(static_cast<std::uint8_t>(batch.indices[at] >> 8));
      stream.push_back(batch.values[at]);
    }
  }
  return stream;
}

SparseBatch decode_sparse(std::span<const std::uint8_t> stream,
                          std::size_t features, std::size_t sample_count) {
  SPNHBM_REQUIRE(features > 0, "sparse batches need at least one feature");
  SparseBatch batch;
  batch.features = features;
  std::size_t at = 0;
  const auto need = [&](std::size_t bytes) {
    if (at + bytes > stream.size()) {
      throw ParseError("truncated sparse evidence stream");
    }
  };
  for (std::size_t i = 0; i < sample_count; ++i) {
    need(2);
    const std::uint16_t active = static_cast<std::uint16_t>(
        stream[at] | (static_cast<std::uint16_t>(stream[at + 1]) << 8));
    at += 2;
    if (active > features) {
      throw ParseError(strformat(
          "sparse sample %zu claims %u active indices over %zu features", i,
          static_cast<unsigned>(active), features));
    }
    std::uint16_t previous = 0;
    for (std::uint16_t pair = 0; pair < active; ++pair) {
      need(3);
      const std::uint16_t index = static_cast<std::uint16_t>(
          stream[at] | (static_cast<std::uint16_t>(stream[at + 1]) << 8));
      const std::uint8_t value = stream[at + 2];
      at += 3;
      if (index >= features) {
        throw ParseError(strformat(
            "sparse index %u out of range (%zu features)",
            static_cast<unsigned>(index), features));
      }
      if (pair > 0 && index <= previous) {
        throw ParseError(
            index == previous
                ? "duplicate sparse index"
                : "sparse indices must be strictly increasing");
      }
      previous = index;
      batch.indices.push_back(index);
      batch.values.push_back(value);
    }
    batch.offsets.push_back(static_cast<std::uint32_t>(batch.indices.size()));
  }
  if (at != stream.size()) {
    throw ParseError("trailing bytes after the sparse evidence stream");
  }
  return batch;
}

}  // namespace spnhbm::compiler
