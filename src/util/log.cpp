#include "spnhbm/util/log.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <functional>
#include <mutex>
#include <thread>

namespace spnhbm {

namespace {

LogLevel initial_level() {
  if (const char* env = std::getenv("SPNHBM_LOG_LEVEL")) {
    if (const auto parsed = parse_log_level(env)) return *parsed;
    std::fprintf(stderr, "spnhbm: ignoring invalid SPNHBM_LOG_LEVEL=%s\n", env);
  }
  return LogLevel::kWarn;
}

std::atomic<LogLevel>& level_atomic() {
  static std::atomic<LogLevel> level{initial_level()};
  return level;
}

std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

/// Short stable id for the calling thread (dense counter, not the opaque
/// std::thread::id hash) so log lines stay readable.
unsigned thread_ordinal() {
  static std::atomic<unsigned> next{0};
  thread_local unsigned ordinal = next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

thread_local std::uint64_t t_trace_id = 0;

}  // namespace

LogLevel log_level() {
  return level_atomic().load(std::memory_order_relaxed);
}

void set_log_level(LogLevel level) {
  level_atomic().store(level, std::memory_order_relaxed);
}

std::optional<LogLevel> parse_log_level(const std::string& text) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug" || lower == "0") return LogLevel::kDebug;
  if (lower == "info" || lower == "1") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning" || lower == "2")
    return LogLevel::kWarn;
  if (lower == "error" || lower == "3") return LogLevel::kError;
  if (lower == "off" || lower == "none" || lower == "4") return LogLevel::kOff;
  return std::nullopt;
}

std::string format_log_prefix(LogLevel level, const std::string& component) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm tm{};
#if defined(_WIN32)
  localtime_s(&tm, &seconds);
#else
  localtime_r(&seconds, &tm);
#endif
  char stamp[32];
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%S", &tm);
  char trace[40] = "";
  if (t_trace_id != 0) {
    std::snprintf(trace, sizeof(trace), " trace=%016llx",
                  static_cast<unsigned long long>(t_trace_id));
  }
  char prefix[200];
  std::snprintf(prefix, sizeof(prefix), "%s.%03d [%s] (t=%u)%s %s", stamp,
                static_cast<int>(millis), level_name(level), thread_ordinal(),
                trace, component.c_str());
  return prefix;
}

std::uint64_t current_trace_id() { return t_trace_id; }

void set_current_trace_id(std::uint64_t id) { t_trace_id = id; }

void log_message(LogLevel level, const std::string& component,
                 const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  const std::string prefix = format_log_prefix(level, component);
  const std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "%s: %s\n", prefix.c_str(), message.c_str());
}

}  // namespace spnhbm
