#include "spnhbm/util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace spnhbm {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& component,
                 const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  const std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%s] %s: %s\n", level_name(level), component.c_str(),
               message.c_str());
}

}  // namespace spnhbm
