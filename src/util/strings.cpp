#include "spnhbm/util/strings.hpp"

#include <cstdarg>
#include <cstdio>

namespace spnhbm {

std::string_view trim(std::string_view s) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
  };
  std::size_t begin = 0;
  while (begin < s.size() && is_space(s[begin])) ++begin;
  std::size_t end = s.size();
  while (end > begin && is_space(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string strformat(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

}  // namespace spnhbm
