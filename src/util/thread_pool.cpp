#include "spnhbm/util/thread_pool.hpp"

#include <algorithm>

#include "spnhbm/util/error.hpp"

namespace spnhbm {

ThreadPool::ThreadPool(std::size_t worker_count) {
  SPNHBM_REQUIRE(worker_count > 0, "thread pool needs at least one worker");
  workers_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    SPNHBM_REQUIRE(!stopping_, "submit on stopping pool");
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, worker_count() * 4);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t begin = 0; begin < n; begin += chunk_size) {
    const std::size_t end = std::min(begin + chunk_size, n);
    futures.push_back(submit([&fn, begin, end] { fn(begin, end); }));
  }
  for (auto& future : futures) future.get();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace spnhbm
