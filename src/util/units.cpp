#include "spnhbm/util/units.hpp"

#include "spnhbm/util/strings.hpp"

namespace spnhbm {

std::string format_bytes(std::uint64_t bytes) {
  if (bytes >= kGiB && bytes % kGiB == 0) {
    return strformat("%llu GiB", static_cast<unsigned long long>(bytes / kGiB));
  }
  if (bytes >= kMiB && bytes % kMiB == 0) {
    return strformat("%llu MiB", static_cast<unsigned long long>(bytes / kMiB));
  }
  if (bytes >= kKiB && bytes % kKiB == 0) {
    return strformat("%llu KiB", static_cast<unsigned long long>(bytes / kKiB));
  }
  if (bytes >= kGiB) {
    return strformat("%.2f GiB", static_cast<double>(bytes) / static_cast<double>(kGiB));
  }
  if (bytes >= kMiB) {
    return strformat("%.2f MiB", static_cast<double>(bytes) / static_cast<double>(kMiB));
  }
  if (bytes >= kKiB) {
    return strformat("%.2f KiB", static_cast<double>(bytes) / static_cast<double>(kKiB));
  }
  return strformat("%llu B", static_cast<unsigned long long>(bytes));
}

std::string format_rate(double per_second) {
  if (per_second >= 1e9) return strformat("%.2f Gsamples/s", per_second / 1e9);
  if (per_second >= 1e6) return strformat("%.2f Msamples/s", per_second / 1e6);
  if (per_second >= 1e3) return strformat("%.2f Ksamples/s", per_second / 1e3);
  return strformat("%.2f samples/s", per_second);
}

}  // namespace spnhbm
