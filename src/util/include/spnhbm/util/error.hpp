// Error types shared across the spnhbm libraries.
//
// The library follows the C++ Core Guidelines (E.2): errors that the caller
// cannot reasonably recover from locally are reported via exceptions derived
// from spnhbm::Error. Precondition violations in internal code use
// SPNHBM_REQUIRE, which throws std::logic_error with location context so a
// misuse is always attributable.
#pragma once

#include <stdexcept>
#include <string>

namespace spnhbm {

/// Base class for all recoverable spnhbm errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed textual model descriptions, bad config files, etc.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// Structurally invalid SPNs (violated smoothness/decomposability/weights).
class ValidationError : public Error {
 public:
  explicit ValidationError(const std::string& what)
      : Error("validation error: " + what) {}
};

/// A design does not fit the target device (resources, channels, routing).
class PlacementError : public Error {
 public:
  explicit PlacementError(const std::string& what)
      : Error("placement error: " + what) {}
};

/// Device memory exhaustion or invalid device addresses.
class DeviceMemoryError : public Error {
 public:
  explicit DeviceMemoryError(const std::string& what)
      : Error("device memory error: " + what) {}
};

/// Misuse of a runtime API (launching an unconfigured PE, etc.).
class RuntimeApiError : public Error {
 public:
  explicit RuntimeApiError(const std::string& what)
      : Error("runtime API error: " + what) {}
};

/// A knob value outside its valid range (zero block size, negative PE
/// count, a batch target of zero next to a flush deadline, ...). Raised at
/// the front door of the component that owns the knob, so a caller probing
/// the edge of the configuration space — the autotuner does this on
/// purpose — gets a typed, catchable rejection instead of a silently
/// "fixed up" value or a late std::logic_error.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what)
      : Error("config error: " + what) {}
};

namespace detail {
[[noreturn]] inline void require_failed(const char* cond, const char* file,
                                        int line, const std::string& msg) {
  throw std::logic_error(std::string("precondition failed: ") + cond + " at " +
                         file + ":" + std::to_string(line) +
                         (msg.empty() ? "" : (": " + msg)));
}
}  // namespace detail

}  // namespace spnhbm

/// Precondition check that always fires (also in release builds); internal
/// invariants are cheap enough here that we never want them compiled out.
#define SPNHBM_REQUIRE(cond, msg)                                        \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::spnhbm::detail::require_failed(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                    \
  } while (false)
