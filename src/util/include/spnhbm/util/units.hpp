// Strong unit helpers used throughout the simulation stack.
//
// Virtual time is kept in integer picoseconds (`Picoseconds`) so that both
// the 450 MHz HBM clock (2222 ps, truncated) and the 225 MHz PE clock
// (4444 ps) are representable without floating-point drift over long runs.
// Bandwidths and data sizes are kept in doubles / uint64 with explicit
// conversion helpers; there is a single definition of GiB vs GB so the
// binary/decimal distinction the paper leans on (460 GB/s == 428 GiB/s)
// cannot be confused silently.
#pragma once

#include <cstdint>
#include <string>

namespace spnhbm {

using Picoseconds = std::int64_t;

inline constexpr Picoseconds kPicosecondsPerNanosecond = 1'000;
inline constexpr Picoseconds kPicosecondsPerMicrosecond = 1'000'000;
inline constexpr Picoseconds kPicosecondsPerMillisecond = 1'000'000'000;
inline constexpr Picoseconds kPicosecondsPerSecond = 1'000'000'000'000;

constexpr Picoseconds nanoseconds(double ns) {
  return static_cast<Picoseconds>(ns * static_cast<double>(kPicosecondsPerNanosecond));
}
constexpr Picoseconds microseconds(double us) {
  return static_cast<Picoseconds>(us * static_cast<double>(kPicosecondsPerMicrosecond));
}
constexpr Picoseconds milliseconds(double ms) {
  return static_cast<Picoseconds>(ms * static_cast<double>(kPicosecondsPerMillisecond));
}
constexpr double to_seconds(Picoseconds ps) {
  return static_cast<double>(ps) / static_cast<double>(kPicosecondsPerSecond);
}

/// A fixed-frequency clock domain. Periods are truncated to integer
/// picoseconds, matching how the RTL tools would round the constraint.
class ClockDomain {
 public:
  constexpr explicit ClockDomain(double frequency_hz)
      : frequency_hz_(frequency_hz),
        period_ps_(static_cast<Picoseconds>(
            static_cast<double>(kPicosecondsPerSecond) / frequency_hz)) {}

  constexpr double frequency_hz() const { return frequency_hz_; }
  constexpr Picoseconds period() const { return period_ps_; }
  constexpr Picoseconds cycles(std::int64_t n) const { return n * period_ps_; }
  constexpr double cycles_to_seconds(std::int64_t n) const {
    return to_seconds(cycles(n));
  }

 private:
  double frequency_hz_;
  Picoseconds period_ps_;
};

// --- Data sizes -----------------------------------------------------------

inline constexpr std::uint64_t kKiB = 1024ull;
inline constexpr std::uint64_t kMiB = 1024ull * kKiB;
inline constexpr std::uint64_t kGiB = 1024ull * kMiB;
inline constexpr std::uint64_t kKB = 1000ull;
inline constexpr std::uint64_t kMB = 1000ull * kKB;
inline constexpr std::uint64_t kGB = 1000ull * kMB;

/// Bytes-per-second bandwidth with explicit binary/decimal accessors.
class Bandwidth {
 public:
  constexpr Bandwidth() : bytes_per_second_(0.0) {}
  static constexpr Bandwidth bytes_per_second(double v) { return Bandwidth(v); }
  static constexpr Bandwidth gib_per_second(double v) {
    return Bandwidth(v * static_cast<double>(kGiB));
  }
  static constexpr Bandwidth gb_per_second(double v) {
    return Bandwidth(v * static_cast<double>(kGB));
  }
  static constexpr Bandwidth gbit_per_second(double v) {
    return Bandwidth(v * static_cast<double>(kGB) / 8.0);
  }

  constexpr double as_bytes_per_second() const { return bytes_per_second_; }
  constexpr double as_gib_per_second() const {
    return bytes_per_second_ / static_cast<double>(kGiB);
  }
  constexpr double as_gb_per_second() const {
    return bytes_per_second_ / static_cast<double>(kGB);
  }

  /// Time to move `bytes` at this bandwidth.
  constexpr Picoseconds transfer_time(std::uint64_t bytes) const {
    return static_cast<Picoseconds>(
        static_cast<double>(bytes) / bytes_per_second_ *
        static_cast<double>(kPicosecondsPerSecond));
  }

 private:
  constexpr explicit Bandwidth(double bps) : bytes_per_second_(bps) {}
  double bytes_per_second_;
};

/// Pretty-prints a byte count ("4 KiB", "2.5 MiB", ...).
std::string format_bytes(std::uint64_t bytes);
/// Pretty-prints a sample rate ("133.14 Msamples/s").
std::string format_rate(double per_second);

}  // namespace spnhbm
