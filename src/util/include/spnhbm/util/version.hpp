// Build identity reported by `spnhbm --version` and carried in the RPC
// handshake, so a remote client can always tell which build it talks to.
#pragma once

namespace spnhbm {

/// Human-readable build version of the spnhbm libraries and tools.
inline constexpr const char* kVersionString = "0.5.0";

}  // namespace spnhbm
