// Small statistics helpers shared by the evaluation harness.
#pragma once

#include <cstddef>
#include <vector>

namespace spnhbm {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;  ///< Sample variance; 0 for fewer than 2 values.
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Geometric mean; all values must be positive.
double geometric_mean(const std::vector<double>& values);

/// p-th percentile (p in [0,100]) by linear interpolation; copies & sorts.
double percentile(std::vector<double> values, double p);

/// Pearson correlation of two equally-sized vectors.
double pearson_correlation(const std::vector<double>& x,
                           const std::vector<double>& y);

/// G-test statistic of independence over a joint count table laid out
/// row-major with `cols` columns. Used by the structure learner.
double g_test_statistic(const std::vector<double>& joint_counts,
                        std::size_t rows, std::size_t cols);

}  // namespace spnhbm
