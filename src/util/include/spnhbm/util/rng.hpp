// Deterministic random number generation.
//
// Everything in this repository that uses randomness (dataset synthesis,
// structure learning, property tests, traffic generators) draws from this
// xoshiro256** generator seeded through splitmix64, so every experiment is
// reproducible from a single integer seed.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "spnhbm/util/error.hpp"

namespace spnhbm {

/// xoshiro256** by Blackman & Vigna; fast, high-quality, and deterministic
/// across platforms (unlike std::mt19937 distributions, whose output is
/// implementation-defined for std::normal_distribution et al.).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the four lanes.
    std::uint64_t x = seed;
    for (auto& lane : s_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      lane = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound).
  std::uint64_t next_below(std::uint64_t bound) {
    SPNHBM_REQUIRE(bound > 0, "bound must be positive");
    // Lemire's multiply-shift rejection method, bias-free.
    std::uint64_t x = next_u64();
    unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
    auto l = static_cast<std::uint64_t>(m);
    if (l < bound) {
      const std::uint64_t t = (0 - bound) % bound;
      while (l < t) {
        x = next_u64();
        m = static_cast<unsigned __int128>(x) * bound;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform in [lo, hi).
  double next_uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Standard normal via Marsaglia polar method (deterministic given state).
  double next_normal();

  /// Samples an index according to `weights` (need not be normalised).
  std::size_t next_weighted(const std::vector<double>& weights);

  /// Zipf-distributed integer in [0, n) with exponent `s`.
  /// Used by the bag-of-words workload generator for word frequencies.
  std::size_t next_zipf(std::size_t n, double s);

  /// Derives an independent child generator (stable given the label).
  Rng fork(std::uint64_t label) const {
    Rng child;
    child.reseed(s_[0] ^ (label * 0xD2B74407B1CE6E93ull));
    return child;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4] = {};
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

inline double Rng::next_normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u = 0.0, v = 0.0, s = 0.0;
  do {
    u = next_uniform(-1.0, 1.0);
    v = next_uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return u * factor;
}

inline std::size_t Rng::next_weighted(const std::vector<double>& weights) {
  SPNHBM_REQUIRE(!weights.empty(), "weights must be non-empty");
  double total = 0.0;
  for (double w : weights) total += w;
  SPNHBM_REQUIRE(total > 0.0, "weights must sum to a positive value");
  double r = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

inline std::size_t Rng::next_zipf(std::size_t n, double s) {
  SPNHBM_REQUIRE(n > 0, "zipf support must be non-empty");
  // Inverse-CDF on the harmonic weights; n is small (vocabulary size), so a
  // linear scan is fine and keeps the generator allocation-free.
  double h = 0.0;
  for (std::size_t k = 1; k <= n; ++k) h += 1.0 / std::pow(static_cast<double>(k), s);
  double r = next_double() * h;
  for (std::size_t k = 1; k <= n; ++k) {
    r -= 1.0 / std::pow(static_cast<double>(k), s);
    if (r <= 0.0) return k - 1;
  }
  return n - 1;
}

}  // namespace spnhbm
