// ASCII table printer used by the benchmark harness to emit the paper's
// tables and figure data series in a readable, diffable form.
#pragma once

#include <string>
#include <vector>

namespace spnhbm {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Renders the table with column alignment and a header rule.
  std::string render() const;

  /// Renders as comma-separated values (for plotting scripts).
  std::string render_csv() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace spnhbm
