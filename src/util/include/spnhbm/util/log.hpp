// Minimal leveled logger.
//
// The simulator and runtime are chatty at Debug level (per-burst events);
// benchmarks run at Warn. The level is a process-global atomic so tests can
// flip it without synchronisation concerns.
#pragma once

#include <sstream>
#include <string>

namespace spnhbm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);

/// Emits one formatted line to stderr if `level` is enabled.
void log_message(LogLevel level, const std::string& component,
                 const std::string& message);

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogLine() { log_message(level_, component_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace spnhbm

#define SPNHBM_LOG(level, component)                         \
  if (static_cast<int>(level) < static_cast<int>(::spnhbm::log_level())) { \
  } else                                                     \
    ::spnhbm::detail::LogLine(level, component)

#define SPNHBM_DEBUG(component) SPNHBM_LOG(::spnhbm::LogLevel::kDebug, component)
#define SPNHBM_INFO(component) SPNHBM_LOG(::spnhbm::LogLevel::kInfo, component)
#define SPNHBM_WARN(component) SPNHBM_LOG(::spnhbm::LogLevel::kWarn, component)
#define SPNHBM_ERROR(component) SPNHBM_LOG(::spnhbm::LogLevel::kError, component)
