// Minimal leveled logger.
//
// The simulator and runtime are chatty at Debug level (per-burst events);
// benchmarks run at Warn. The level is a process-global atomic so tests can
// flip it without synchronisation concerns. Each line carries the wall-clock
// time and emitting thread so interleaved server/runtime output stays
// attributable:
//
//   2026-08-05T12:34:56.789 [INFO] (t=140215) server: listening
//
// The initial level comes from the SPNHBM_LOG_LEVEL environment variable
// when set (debug|info|warn|error|off, case-insensitive; numeric 0-4 also
// accepted) and defaults to Warn otherwise.
#pragma once

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>

namespace spnhbm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);

/// Parses "debug"/"info"/"warn"/"error"/"off" (any case) or "0".."4".
/// Returns nullopt for anything else. Used for SPNHBM_LOG_LEVEL.
std::optional<LogLevel> parse_log_level(const std::string& text);

/// Emits one formatted line to stderr if `level` is enabled.
void log_message(LogLevel level, const std::string& component,
                 const std::string& message);

/// Formats the prefix of a log line (timestamp, level, thread id,
/// component) without emitting it; exposed for tests. When the calling
/// thread has a current trace id set, the prefix carries
/// ` trace=<16-hex-digits>` so log lines correlate with trace spans.
std::string format_log_prefix(LogLevel level, const std::string& component);

/// The calling thread's current request trace id; 0 = none. Set by the
/// telemetry layer's TraceContextScope while a request is being handled
/// (declared here, below telemetry, so the logger can read it without a
/// dependency inversion).
std::uint64_t current_trace_id();
void set_current_trace_id(std::uint64_t id);

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogLine() { log_message(level_, component_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace spnhbm

#define SPNHBM_LOG(level, component)                         \
  if (static_cast<int>(level) < static_cast<int>(::spnhbm::log_level())) { \
  } else                                                     \
    ::spnhbm::detail::LogLine(level, component)

#define SPNHBM_DEBUG(component) SPNHBM_LOG(::spnhbm::LogLevel::kDebug, component)
#define SPNHBM_INFO(component) SPNHBM_LOG(::spnhbm::LogLevel::kInfo, component)
#define SPNHBM_WARN(component) SPNHBM_LOG(::spnhbm::LogLevel::kWarn, component)
#define SPNHBM_ERROR(component) SPNHBM_LOG(::spnhbm::LogLevel::kError, component)
