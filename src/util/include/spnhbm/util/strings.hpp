// String utilities used by the SPN text-format parser and report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace spnhbm {

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Splits on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// printf-style formatting into a std::string.
std::string strformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace spnhbm
