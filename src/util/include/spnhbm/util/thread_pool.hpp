// Fixed-size thread pool used by the native CPU inference baseline.
//
// Deliberately simple: a single mutex-protected deque is more than fast
// enough for the coarse-grained batch chunks the baseline submits, and keeps
// the implementation obviously correct (Core Guidelines CP.20-CP.25: RAII
// locks, no detached threads, join on destruction).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace spnhbm {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t worker_count);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  /// Enqueues a task; the returned future resolves when it completes.
  std::future<void> submit(std::function<void()> task);

  /// Runs `fn(chunk_begin, chunk_end)` over [0, n) split across the pool and
  /// blocks until every chunk is done. Exceptions from chunks propagate.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace spnhbm
