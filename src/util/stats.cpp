#include "spnhbm/util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "spnhbm/util/error.hpp"

namespace spnhbm {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double geometric_mean(const std::vector<double>& values) {
  SPNHBM_REQUIRE(!values.empty(), "geometric mean of empty set");
  double log_sum = 0.0;
  for (double v : values) {
    SPNHBM_REQUIRE(v > 0.0, "geometric mean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double percentile(std::vector<double> values, double p) {
  SPNHBM_REQUIRE(!values.empty(), "percentile of empty set");
  SPNHBM_REQUIRE(p >= 0.0 && p <= 100.0, "percentile out of range");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double pearson_correlation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  SPNHBM_REQUIRE(x.size() == y.size() && x.size() >= 2,
                 "correlation requires two equally-sized series");
  RunningStats sx, sy;
  for (double v : x) sx.add(v);
  for (double v : y) sy.add(v);
  double cov = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    cov += (x[i] - sx.mean()) * (y[i] - sy.mean());
  }
  cov /= static_cast<double>(x.size() - 1);
  const double denom = sx.stddev() * sy.stddev();
  if (denom == 0.0) return 0.0;
  return cov / denom;
}

double g_test_statistic(const std::vector<double>& joint_counts,
                        std::size_t rows, std::size_t cols) {
  SPNHBM_REQUIRE(joint_counts.size() == rows * cols,
                 "joint count table has wrong size");
  std::vector<double> row_sum(rows, 0.0), col_sum(cols, 0.0);
  double total = 0.0;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double v = joint_counts[r * cols + c];
      row_sum[r] += v;
      col_sum[c] += v;
      total += v;
    }
  }
  if (total <= 0.0) return 0.0;
  double g = 0.0;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double observed = joint_counts[r * cols + c];
      if (observed <= 0.0) continue;
      const double expected = row_sum[r] * col_sum[c] / total;
      g += observed * std::log(observed / expected);
    }
  }
  return 2.0 * g;
}

}  // namespace spnhbm
