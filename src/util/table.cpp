#include "spnhbm/util/table.hpp"

#include <algorithm>

#include "spnhbm/util/error.hpp"

namespace spnhbm {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  SPNHBM_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  SPNHBM_REQUIRE(row.size() == headers_.size(), "row arity mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += "| ";
      out += row[c];
      out.append(width[c] - row[c].size() + 1, ' ');
    }
    out += "|\n";
  };
  std::string out;
  emit_row(headers_, out);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += "|";
    out.append(width[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

std::string Table::render_csv() const {
  std::string out;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out += ',';
      out += row[c];
    }
    out += '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out;
}

}  // namespace spnhbm
