#include "spnhbm/runtime/inference_runtime.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <memory>
#include <string>

#include "spnhbm/compiler/sparse_evidence.hpp"
#include "spnhbm/util/strings.hpp"

namespace spnhbm::runtime {

std::string RunStats::describe() const {
  return strformat(
      "%llu samples in %.3f ms -> %s (%llu blocks, DMA %.1f%% busy, %llu "
      "bytes moved)",
      static_cast<unsigned long long>(samples), to_seconds(elapsed) * 1e3,
      format_rate(samples_per_second).c_str(),
      static_cast<unsigned long long>(blocks), dma_utilisation * 100.0,
      static_cast<unsigned long long>(dma_bytes));
}

InferenceRuntime::InferenceRuntime(sim::ProcessRunner& runner,
                                   tapasco::Device& device,
                                   const compiler::DatapathModule& module,
                                   RuntimeConfig config)
    : runner_(runner),
      device_(device),
      module_(module),
      config_(config),
      memory_(device.pe_count(), device.memory_capacity_per_pe()) {
  // Typed front-door validation (not SPNHBM_REQUIRE): the autotuner and
  // the CLI probe the edges of this space, and must be able to catch the
  // rejection as a recoverable error.
  if (config_.block_samples == 0) {
    throw ConfigError("RuntimeConfig::block_samples must be positive");
  }
  if (config_.threads_per_pe < 1 || config_.threads_per_pe > 8) {
    throw ConfigError("RuntimeConfig::threads_per_pe must be in 1..8, got " +
                      std::to_string(config_.threads_per_pe));
  }
  // Self-configuration (paper §IV-B): read the parameters from the
  // accelerator instead of asking the user for them.
  for (std::size_t pe = 0; pe < device_.pe_count(); ++pe) {
    const std::uint64_t features =
        device_.query_config(pe, fpga::ConfigQuery::kInputFeatures);
    SPNHBM_REQUIRE(features == module_.input_features(),
                   "PE configuration does not match the compiled module");
  }
}

sim::Process InferenceRuntime::control_thread(std::size_t pe_index,
                                              BlockCursor& cursor,
                                              sim::Resource& pe_lock,
                                              telemetry::TrackId track) {
  auto& scheduler = runner_.scheduler();
  const std::uint64_t features = module_.input_features();
  constexpr std::uint64_t kResultBytes = 8;

  // Per-thread device buffers sized for a full block (double buffering
  // happens across threads; each thread owns one in/out pair).
  const std::uint64_t max_in = config_.block_samples * features;
  const std::uint64_t max_out = config_.block_samples * kResultBytes;
  const DeviceBuffer input_buffer(memory_, pe_index, max_in);
  const DeviceBuffer output_buffer(memory_, pe_index, max_out);

  for (;;) {
    if (cursor.next_block >= cursor.block_count) break;
    const std::uint64_t block = cursor.next_block++;
    const std::uint64_t begin = block * config_.block_samples;
    const std::uint64_t samples = std::min<std::uint64_t>(
        config_.block_samples, cursor.total_samples - begin);
    const std::uint64_t in_bytes = samples * features;
    const std::uint64_t out_bytes = samples * kResultBytes;

    auto& tracer = telemetry::tracer();
    if (config_.include_transfers) {
      if (config_.model_host_staging) {
        // Host memcpy into the pinned DMA buffer.
        const Picoseconds span_start = scheduler.now();
        co_await sim::delay(
            scheduler, static_cast<Picoseconds>(
                           static_cast<double>(in_bytes) /
                           fpga::cal::kHostStagingBytesPerSecond *
                           static_cast<double>(kPicosecondsPerSecond)));
        tracer.complete_virtual(track, "stage_in", span_start,
                                scheduler.now());
      }
      const Picoseconds span_start = scheduler.now();
      co_await device_.copy_to_device_timed(pe_index, input_buffer.address(),
                                            in_bytes);
      tracer.complete_virtual(track, "h2d", span_start, scheduler.now());
    }

    // The PE runs one job at a time; with >1 control threads the launch
    // serialises here while the other thread's transfers overlap.
    co_await pe_lock.acquire();
    const Picoseconds compute_start = scheduler.now();
    try {
      co_await device_.launch_inference(pe_index, input_buffer.address(),
                                        output_buffer.address(), samples);
    } catch (...) {
      pe_lock.release();
      throw;
    }
    pe_lock.release();
    tracer.complete_virtual(track, "compute", compute_start, scheduler.now());

    if (config_.include_transfers) {
      const Picoseconds span_start = scheduler.now();
      co_await device_.copy_from_device_timed(
          pe_index, output_buffer.address(), out_bytes);
      tracer.complete_virtual(track, "d2h", span_start, scheduler.now());
      if (config_.model_host_staging) {
        const Picoseconds unstage_start = scheduler.now();
        co_await sim::delay(
            scheduler, static_cast<Picoseconds>(
                           static_cast<double>(out_bytes) /
                           fpga::cal::kHostStagingBytesPerSecond *
                           static_cast<double>(kPicosecondsPerSecond)));
        tracer.complete_virtual(track, "stage_out", unstage_start,
                                scheduler.now());
      }
    }
  }
}

RunStats InferenceRuntime::run(std::uint64_t total_samples) {
  SPNHBM_REQUIRE(total_samples > 0, "nothing to run");
  auto& scheduler = runner_.scheduler();
  const Picoseconds start = scheduler.now();
  const std::uint64_t dma_busy_before = device_.dma().busy_time();
  const std::uint64_t dma_bytes_before =
      device_.dma().bytes_to_device() + device_.dma().bytes_to_host();

  BlockCursor cursor;
  cursor.total_samples = total_samples;
  cursor.block_count =
      (total_samples + config_.block_samples - 1) / config_.block_samples;

  std::vector<std::unique_ptr<sim::Resource>> pe_locks;
  std::vector<sim::Process> threads;
  for (std::size_t pe = 0; pe < device_.pe_count(); ++pe) {
    pe_locks.push_back(std::make_unique<sim::Resource>(scheduler, 1));
    for (int t = 0; t < config_.threads_per_pe; ++t) {
      const telemetry::TrackId track = telemetry::tracer().register_track(
          "runtime/pe" + std::to_string(pe) + ".t" + std::to_string(t),
          telemetry::TraceClock::kVirtual);
      threads.push_back(
          runner_.spawn(control_thread(pe, cursor, *pe_locks.back(), track)));
    }
  }
  scheduler.run();
  runner_.check();
  for (const auto& thread : threads) {
    SPNHBM_REQUIRE(thread.done(), "control thread did not finish");
  }

  RunStats stats;
  stats.samples = total_samples;
  stats.elapsed = scheduler.now() - start;
  stats.samples_per_second =
      static_cast<double>(total_samples) / to_seconds(stats.elapsed);
  stats.blocks = cursor.block_count;
  stats.dma_utilisation =
      stats.elapsed > 0
          ? static_cast<double>(device_.dma().busy_time() - dma_busy_before) /
                static_cast<double>(stats.elapsed)
          : 0.0;
  stats.dma_bytes = device_.dma().bytes_to_device() +
                    device_.dma().bytes_to_host() - dma_bytes_before;
  return stats;
}

std::vector<double> InferenceRuntime::infer(
    std::span<const std::uint8_t> samples) {
  const std::uint64_t features = module_.input_features();
  SPNHBM_REQUIRE(features > 0 && samples.size() % features == 0,
                 "input is not a whole number of samples");
  const std::uint64_t count = samples.size() / features;
  SPNHBM_REQUIRE(count > 0, "nothing to infer");
  SPNHBM_REQUIRE(device_.backing_channel(0) != nullptr,
                 "functional inference needs a platform with backing store");

  auto& scheduler = runner_.scheduler();
  const DeviceBuffer input_buffer(memory_, 0, samples.size());
  const DeviceBuffer output_buffer(memory_, 0, count * 8);
  std::vector<std::uint8_t> raw_results(count * 8);

  sim::Process job = runner_.spawn([&]() -> sim::Process {
    co_await device_.copy_to_device(0, input_buffer.address(), samples);
    co_await device_.launch_inference(0, input_buffer.address(),
                                      output_buffer.address(), count);
    co_await device_.copy_from_device(0, output_buffer.address(), raw_results);
  });
  scheduler.run();
  runner_.check();
  SPNHBM_REQUIRE(job.done(), "inference job did not finish");

  std::vector<double> results(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, raw_results.data() + i * 8, 8);
    results[i] = std::bit_cast<double>(bits);
  }
  return results;
}

std::vector<double> InferenceRuntime::infer_sparse(
    std::span<const std::uint8_t> stream, std::size_t sample_count) {
  SPNHBM_REQUIRE(sample_count > 0, "nothing to infer");
  SPNHBM_REQUIRE(device_.backing_channel(0) != nullptr,
                 "functional inference needs a platform with backing store");
  // Validate on the host before any bytes move: a malformed stream must
  // fail here, not inside the device.
  compiler::decode_sparse(stream, module_.input_features(), sample_count);

  auto& scheduler = runner_.scheduler();
  const DeviceBuffer input_buffer(memory_, 0, stream.size());
  const DeviceBuffer output_buffer(memory_, 0, sample_count * 8);
  std::vector<std::uint8_t> raw_results(sample_count * 8);

  sim::Process job = runner_.spawn([&]() -> sim::Process {
    co_await device_.copy_to_device(0, input_buffer.address(), stream);
    co_await device_.launch_inference_sparse(
        0, input_buffer.address(), output_buffer.address(), sample_count,
        stream.size());
    co_await device_.copy_from_device(0, output_buffer.address(), raw_results);
  });
  scheduler.run();
  runner_.check();
  SPNHBM_REQUIRE(job.done(), "inference job did not finish");

  std::vector<double> results(sample_count);
  for (std::size_t i = 0; i < sample_count; ++i) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, raw_results.data() + i * 8, 8);
    results[i] = std::bit_cast<double>(bits);
  }
  return results;
}

}  // namespace spnhbm::runtime
