#include "spnhbm/runtime/memory_manager.hpp"

#include <algorithm>

#include "spnhbm/util/strings.hpp"

namespace spnhbm::runtime {

DeviceMemoryManager::DeviceMemoryManager(std::size_t channels,
                                         std::uint64_t capacity_per_channel)
    : capacity_(capacity_per_channel), arenas_(channels) {
  SPNHBM_REQUIRE(channels > 0, "need at least one channel");
  SPNHBM_REQUIRE(capacity_per_channel >= kAlignment, "capacity too small");
  for (std::size_t channel = 0; channel < arenas_.size(); ++channel) {
    Arena& arena = arenas_[channel];
    arena.free_blocks.emplace(0, capacity_per_channel);
    arena.free_bytes = capacity_per_channel;
    // Gauge names are per channel index; when several managers coexist
    // (e.g. across an engine hot-swap) the newest writer wins, which is
    // the manager actually serving traffic.
    arena.gauge_free = telemetry::metrics().gauge(
        strformat("runtime.devmem.ch%zu.bytes_free", channel));
    arena.gauge_free->set(static_cast<double>(arena.free_bytes));
  }
}

DeviceMemoryManager::Arena& DeviceMemoryManager::arena(std::size_t channel) {
  SPNHBM_REQUIRE(channel < arenas_.size(), "channel index out of range");
  return arenas_[channel];
}

const DeviceMemoryManager::Arena& DeviceMemoryManager::arena(
    std::size_t channel) const {
  SPNHBM_REQUIRE(channel < arenas_.size(), "channel index out of range");
  return arenas_[channel];
}

std::uint64_t DeviceMemoryManager::allocate(std::size_t channel,
                                            std::uint64_t bytes) {
  SPNHBM_REQUIRE(bytes > 0, "empty allocation");
  const std::uint64_t size = (bytes + kAlignment - 1) / kAlignment * kAlignment;
  const std::lock_guard<std::mutex> lock(mutex_);
  Arena& a = arena(channel);
  // First fit in address order.
  for (auto it = a.free_blocks.begin(); it != a.free_blocks.end(); ++it) {
    if (it->second < size) continue;
    const std::uint64_t address = it->first;
    const std::uint64_t leftover = it->second - size;
    a.free_blocks.erase(it);
    if (leftover > 0) {
      a.free_blocks.emplace(address + size, leftover);
    }
    a.allocations.emplace(address, size);
    a.free_bytes -= size;
    a.gauge_free->set(static_cast<double>(a.free_bytes));
    return address;
  }
  throw DeviceMemoryError(strformat(
      "channel %zu: cannot allocate %llu bytes", channel,
      static_cast<unsigned long long>(size)));
}

void DeviceMemoryManager::free(std::size_t channel, std::uint64_t address) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Arena& a = arena(channel);
  const auto allocation = a.allocations.find(address);
  if (allocation == a.allocations.end()) {
    throw DeviceMemoryError("free of an address that is not allocated");
  }
  std::uint64_t size = allocation->second;
  a.allocations.erase(allocation);
  a.free_bytes += size;
  a.gauge_free->set(static_cast<double>(a.free_bytes));

  // Coalesce with the following free block.
  auto next = a.free_blocks.lower_bound(address);
  if (next != a.free_blocks.end() && address + size == next->first) {
    size += next->second;
    next = a.free_blocks.erase(next);
  }
  // Coalesce with the preceding free block.
  if (next != a.free_blocks.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == address) {
      prev->second += size;
      return;
    }
  }
  a.free_blocks.emplace(address, size);
}

std::uint64_t DeviceMemoryManager::bytes_free(std::size_t channel) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return arena(channel).free_bytes;
}

std::uint64_t DeviceMemoryManager::bytes_allocated(std::size_t channel) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [address, size] : arena(channel).allocations) total += size;
  return total;
}

std::uint64_t DeviceMemoryManager::largest_free_block(
    std::size_t channel) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t largest = 0;
  for (const auto& [address, size] : arena(channel).free_blocks) {
    largest = std::max(largest, size);
  }
  return largest;
}

}  // namespace spnhbm::runtime
