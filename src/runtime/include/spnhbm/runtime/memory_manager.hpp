// Thread-safe device memory manager with per-HBM-channel address regions.
//
// TaPaSCo's memory-management API cannot split the device address space
// into distinct regions, so the paper's runtime brings its own manager
// (§IV-B): each HBM channel is an independent allocation arena, and
// allocation/free are safe to call from any host thread.
//
// Implementation: classic first-fit free list with immediate coalescing,
// 64-byte alignment (one 512-bit interface beat).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "spnhbm/telemetry/metrics.hpp"
#include "spnhbm/util/error.hpp"

namespace spnhbm::runtime {

class DeviceMemoryManager {
 public:
  DeviceMemoryManager(std::size_t channels, std::uint64_t capacity_per_channel);

  static constexpr std::uint64_t kAlignment = 64;

  /// Allocates `bytes` in `channel`'s region; returns the device address.
  /// Throws DeviceMemoryError when no sufficient free block exists.
  std::uint64_t allocate(std::size_t channel, std::uint64_t bytes);

  /// Frees a previous allocation (exact address required).
  void free(std::size_t channel, std::uint64_t address);

  std::uint64_t capacity_per_channel() const { return capacity_; }
  std::uint64_t bytes_free(std::size_t channel) const;
  std::uint64_t bytes_allocated(std::size_t channel) const;
  /// Largest single allocation currently possible in the channel.
  std::uint64_t largest_free_block(std::size_t channel) const;
  std::size_t channels() const { return arenas_.size(); }

 private:
  struct Arena {
    // free blocks: address -> size, address-ordered for coalescing
    std::map<std::uint64_t, std::uint64_t> free_blocks;
    // live allocations: address -> size
    std::map<std::uint64_t, std::uint64_t> allocations;
    // running total of free_blocks (also published as a telemetry gauge)
    std::uint64_t free_bytes = 0;
    std::shared_ptr<telemetry::Gauge> gauge_free;
  };

  Arena& arena(std::size_t channel);
  const Arena& arena(std::size_t channel) const;

  std::uint64_t capacity_;
  mutable std::mutex mutex_;
  std::vector<Arena> arenas_;
};

/// RAII allocation handle.
class DeviceBuffer {
 public:
  DeviceBuffer(DeviceMemoryManager& manager, std::size_t channel,
               std::uint64_t bytes)
      : manager_(&manager),
        channel_(channel),
        address_(manager.allocate(channel, bytes)),
        bytes_(bytes) {}
  ~DeviceBuffer() {
    if (manager_ != nullptr) manager_->free(channel_, address_);
  }
  DeviceBuffer(DeviceBuffer&& other) noexcept
      : manager_(other.manager_),
        channel_(other.channel_),
        address_(other.address_),
        bytes_(other.bytes_) {
    other.manager_ = nullptr;
  }
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(DeviceBuffer&&) = delete;

  std::uint64_t address() const { return address_; }
  std::uint64_t size() const { return bytes_; }

 private:
  DeviceMemoryManager* manager_;
  std::size_t channel_;
  std::uint64_t address_;
  std::uint64_t bytes_;
};

}  // namespace spnhbm::runtime
