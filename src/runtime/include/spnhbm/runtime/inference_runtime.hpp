// The multi-threaded host runtime (paper §IV-B).
//
// Splits an inference job into sub-jobs of `block_samples` samples and
// drives them with `threads_per_pe` control threads per accelerator.
// Each control thread loops:
//
//   1. stage the block into a pinned DMA buffer (host memcpy),
//   2. DMA the inputs into the PE's HBM channel,
//   3. launch the PE and wait for its completion interrupt,
//   4. DMA the results back and unstage them.
//
// With two threads per PE, thread B performs transfers for block n+1 while
// thread A waits on the computation of block n — the transfer/compute
// overlap scheme of the paper and [8]. Device buffers are double-buffered
// per control thread through the thread-safe DeviceMemoryManager.
//
// Control threads are virtual-time actors here (the runtime logic is
// identical; the scheduling substrate is the DES instead of pthreads).
#pragma once

#include <cstdint>
#include <vector>

#include "spnhbm/fpga/calibration.hpp"
#include "spnhbm/runtime/memory_manager.hpp"
#include "spnhbm/tapasco/device.hpp"
#include "spnhbm/telemetry/trace.hpp"

namespace spnhbm::runtime {

struct RuntimeConfig {
  std::size_t block_samples = fpga::cal::kDefaultBlockSamples;
  int threads_per_pe = 1;
  /// Include host<->device transfers (paper Fig. 4 right) or measure
  /// on-device computation only (Fig. 4 left).
  bool include_transfers = true;
  /// Model the host-side staging copy into pinned buffers.
  bool model_host_staging = true;
};

struct RunStats {
  std::uint64_t samples = 0;
  Picoseconds elapsed = 0;
  double samples_per_second = 0.0;
  std::uint64_t blocks = 0;
  double dma_utilisation = 0.0;
  std::uint64_t dma_bytes = 0;

  std::string describe() const;
};

class InferenceRuntime {
 public:
  /// Queries each PE's synthesis-time configuration (second execution
  /// mode) and verifies it against the compiled module.
  InferenceRuntime(sim::ProcessRunner& runner, tapasco::Device& device,
                   const compiler::DatapathModule& module,
                   RuntimeConfig config = {});

  const RuntimeConfig& config() const { return config_; }
  DeviceMemoryManager& memory() { return memory_; }

  /// Timing run: processes `total_samples` spread over all PEs and returns
  /// end-to-end statistics. Drives the simulation to completion.
  RunStats run(std::uint64_t total_samples);

  /// Functional end-to-end inference of real samples (row-major bytes,
  /// one row per sample): returns one result per sample (joint density,
  /// marginal, or max-product value depending on the module's query),
  /// computed by the accelerators through the full copy/launch/readback
  /// path.
  std::vector<double> infer(std::span<const std::uint8_t> samples);

  /// Functional inference over a CSR sparse-evidence stream of
  /// `sample_count` samples (see compiler/sparse_evidence.hpp for the
  /// layout). Only the stream's bytes cross PCIe and the PE's HBM
  /// channel — the bandwidth saving sparse queries exist for.
  std::vector<double> infer_sparse(std::span<const std::uint8_t> stream,
                                   std::size_t sample_count);

 private:
  struct BlockCursor {
    std::uint64_t next_block = 0;
    std::uint64_t block_count = 0;
    std::uint64_t total_samples = 0;
  };

  sim::Process control_thread(std::size_t pe_index, BlockCursor& cursor,
                              sim::Resource& pe_lock,
                              telemetry::TrackId track);

  sim::ProcessRunner& runner_;
  tapasco::Device& device_;
  const compiler::DatapathModule& module_;
  RuntimeConfig config_;
  DeviceMemoryManager memory_;
};

}  // namespace spnhbm::runtime
