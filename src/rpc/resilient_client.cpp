#include "spnhbm/rpc/resilient_client.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <future>
#include <utility>

#include "spnhbm/fault/fault.hpp"
#include "spnhbm/util/log.hpp"
#include "spnhbm/util/rng.hpp"
#include "spnhbm/util/strings.hpp"

namespace spnhbm::rpc {

namespace {

std::uint64_t fnv1a(std::uint64_t h, const std::uint8_t* data,
                    std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

std::uint64_t fnv1a(const std::string& s) {
  return fnv1a(0xCBF29CE484222325ull,
               reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// RpcClient::fail_outstanding prefixes transport losses with this, which
/// is how a lost-connection INTERNAL_ERROR is told apart from a genuine
/// server-side execution failure.
constexpr const char kTransportPrefix[] = "rpc error: ";

bool is_transport_error(Status status, const std::string& error) {
  return status == Status::kInternalError &&
         error.rfind(kTransportPrefix, 0) == 0;
}

void sleep_us(double us) {
  if (us > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::micro>(us));
  }
}

}  // namespace

const char* to_string(GiveUpReason reason) {
  switch (reason) {
    case GiveUpReason::kNone: return "none";
    case GiveUpReason::kConnectFailed: return "connect-failed";
    case GiveUpReason::kAttemptsExhausted: return "attempts-exhausted";
    case GiveUpReason::kRetryBudgetExpired: return "retry-budget-expired";
    case GiveUpReason::kNonRetryable: return "non-retryable";
    case GiveUpReason::kClientClosed: return "client-closed";
  }
  return "?";
}

ResilientClient::ResilientClient(ResilientClientConfig config)
    : config_(std::move(config)) {
  // Distinct labels land in far-apart key ranges, so concurrent clients
  // against one server cannot collide in its idempotency cache.
  key_base_ = splitmix64(fnv1a(config_.label) ^ config_.seed);
  retry_thread_ = std::thread([this] { retry_loop(); });
}

ResilientClient::~ResilientClient() { close(); }

double ResilientClient::backoff_us(std::uint64_t key, std::uint32_t attempt,
                                   double base, double cap) const {
  const std::uint32_t exponent = attempt > 0 ? attempt - 1 : 0;
  double wait = base * std::pow(config_.backoff_multiplier, exponent);
  wait = std::min(wait, cap);
  // The jitter is a pure function of (seed, key, attempt): identical
  // schedules on every run, independent of thread interleaving.
  Rng jitter_rng =
      Rng(config_.seed).fork(key * 0x9E3779B97F4A7C15ull + attempt);
  const double factor =
      1.0 + config_.jitter * (2.0 * jitter_rng.next_double() - 1.0);
  return std::max(0.0, wait * factor);
}

std::shared_ptr<RpcClient> ResilientClient::dial_with_backoff() {
  std::string last_error = "never dialed";
  const int budget = std::max(1, config_.max_connect_attempts);
  for (int attempt = 1; attempt <= budget; ++attempt) {
    const auto decision =
        fault::injector().decide("rpc.client.connect", config_.label);
    if (decision && decision.kind != fault::FaultKind::kStall &&
        decision.kind != fault::FaultKind::kDelay) {
      last_error = "injected dial failure (rpc.client.connect)";
    } else {
      if (decision) sleep_us(decision.duration_us);
      try {
        return RpcClient::connect(config_.host, config_.port);
      } catch (const std::exception& e) {
        last_error = e.what();
      }
    }
    if (attempt == budget) break;
    const double wait =
        backoff_us(key_base_, static_cast<std::uint32_t>(attempt),
                   config_.connect_backoff_base_us,
                   config_.connect_backoff_cap_us);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      retry_log_.push_back({0, static_cast<std::uint32_t>(attempt),
                            static_cast<std::uint64_t>(wait)});
    }
    sleep_us(wait);
  }
  throw RpcGiveUpError(
      GiveUpReason::kConnectFailed, Status::kInternalError,
      static_cast<std::uint32_t>(budget),
      strformat("no connection to %s:%u (%s)", config_.host.c_str(),
                static_cast<unsigned>(config_.port), last_error.c_str()));
}

std::shared_ptr<RpcClient> ResilientClient::acquire_client(
    std::unique_lock<std::mutex>& lock) {
  for (;;) {
    if (closed_) throw RpcError("resilient client is closed");
    if (client_ && client_->alive()) return client_;
    if (connecting_) {
      // Another thread is already dialing; wait for its verdict.
      cv_.wait(lock);
      continue;
    }
    connecting_ = true;
    std::shared_ptr<RpcClient> dead = std::move(client_);
    lock.unlock();
    // Joining the dead client's reader thread must happen without the
    // lock: its orphaned requests re-enter through on_response, which
    // takes it. (A sender still holding a reference defers the join to
    // its own scope — never the reader's.)
    dead.reset();
    std::shared_ptr<RpcClient> fresh;
    std::exception_ptr dial_failure;
    try {
      fresh = dial_with_backoff();
    } catch (...) {
      dial_failure = std::current_exception();
    }
    lock.lock();
    connecting_ = false;
    cv_.notify_all();
    if (dial_failure) std::rethrow_exception(dial_failure);
    client_ = std::move(fresh);
    connects_ += 1;
    SPNHBM_INFO("rpc") << config_.label << " connected to " << config_.host
                       << ":" << config_.port << " (connect #" << connects_
                       << ")";
  }
}

void ResilientClient::submit_with_callback(const std::string& model,
                                           std::vector<std::uint8_t> samples,
                                           std::uint64_t deadline_us,
                                           ResilientCallback callback,
                                           const QueryOptions& query) {
  auto request = std::make_shared<Request>();
  request->model = model;
  request->samples = std::move(samples);
  request->deadline_us = deadline_us;
  request->query = query;
  request->callback = std::move(callback);
  // The key folds in the request content (model + query shape + payload)
  // on top of the per-client (label, seed, sequence) stream: two clients
  // that happen to share a label and seed — e.g. two one-shot `infer`
  // processes — must not collide in the server's dedup cache unless they
  // really are retransmitting the same request. Still a pure function of
  // deterministic inputs, so retry schedules reproduce across runs.
  const std::uint8_t query_shape[2] = {query.query_kind, query.encoding};
  std::uint64_t content = fnv1a(fnv1a(request->model), request->samples.data(),
                                request->samples.size());
  content = fnv1a(content, query_shape, sizeof(query_shape));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) throw RpcError("resilient client is closed");
    std::uint64_t key =
        splitmix64(key_base_ ^ splitmix64(next_key_++) ^ content);
    if (key == 0) key = 0x9E3779B97F4A7C15ull;  // 0 means "no key"
    request->key = key;
    outstanding_ += 1;
  }
  request->first_sent = Clock::now();
  send_attempt(std::move(request));
}

std::vector<double> ResilientClient::infer(const std::string& model,
                                           std::vector<std::uint8_t> samples,
                                           std::uint64_t deadline_us,
                                           const QueryOptions& query) {
  auto promise = std::make_shared<std::promise<std::vector<double>>>();
  std::future<std::vector<double>> future = promise->get_future();
  submit_with_callback(
      model, std::move(samples), deadline_us,
      [promise](Status status, const std::vector<double>& results,
                const std::string& error, GiveUpReason reason) {
        if (status == Status::kOk) {
          promise->set_value(results);
        } else {
          if (reason == GiveUpReason::kNone) {
            reason = GiveUpReason::kNonRetryable;
          }
          promise->set_exception(std::make_exception_ptr(
              RpcGiveUpError(reason, status, 0, error)));
        }
      },
      query);
  return future.get();
}

ServerInfo ResilientClient::server_info() {
  std::shared_ptr<RpcClient> client;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    client = acquire_client(lock);
  }
  return client->server_info();
}

void ResilientClient::request_shutdown() {
  std::shared_ptr<RpcClient> client;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    client = acquire_client(lock);
  }
  client->request_shutdown();
}

std::size_t ResilientClient::outstanding() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return outstanding_;
}

std::uint64_t ResilientClient::connects() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return connects_;
}

std::vector<RetryEvent> ResilientClient::retry_log() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return retry_log_;
}

void ResilientClient::send_attempt(RequestPtr request) {
  for (;;) {
    std::shared_ptr<RpcClient> client;
    try {
      std::unique_lock<std::mutex> lock(mutex_);
      client = acquire_client(lock);
    } catch (const RpcGiveUpError& e) {
      finish(request, Status::kInternalError, {}, e.what(),
             GiveUpReason::kConnectFailed);
      return;
    } catch (const std::exception& e) {
      finish(request, Status::kInternalError, {}, e.what(),
             GiveUpReason::kClientClosed);
      return;
    }
    // A query-generic request against a pre-v4 server is terminal, not a
    // transport failure: no amount of reconnecting upgrades the peer.
    if (request->query.request2() &&
        client->server_info().protocol_version < kQueryProtocolVersion) {
      finish(request, Status::kInvalidRequest, {},
             strformat("server speaks protocol v%u; marginal/MPE/sparse "
                       "requests need v%u",
                       client->server_info().protocol_version,
                       kQueryProtocolVersion),
             GiveUpReason::kNonRetryable);
      return;
    }
    // The send happens outside the lock: a slow peer must not stall
    // unrelated submits or the response path.
    request->attempts += 1;
    try {
      RequestPtr tracked = request;
      client->submit_with_callback(
          request->model, request->samples, request->deadline_us,
          [this, tracked](Status status, const std::vector<double>& results,
                          const std::string& error) {
            on_response(tracked, status, results, error);
          },
          request->key, request->query);
      return;  // the response (or transport failure) drives the rest
    } catch (const std::exception& e) {
      // The connection died between acquire and send; nothing reached
      // the wire, so retry immediately — the next acquire re-dials.
      request->last_status = Status::kInternalError;
      request->last_error = std::string(kTransportPrefix) + e.what();
      if (config_.max_attempts > 0 &&
          request->attempts >=
              static_cast<std::uint32_t>(config_.max_attempts)) {
        finish(request, request->last_status, {}, request->last_error,
               GiveUpReason::kAttemptsExhausted);
        return;
      }
    }
  }
}

bool ResilientClient::should_retry(Status status,
                                   const std::string& error) const {
  if (is_retryable(status)) return true;
  if (is_transport_error(status, error)) return true;
  if (status == Status::kInternalError && config_.retry_internal_errors) {
    return true;
  }
  return false;
}

void ResilientClient::on_response(const RequestPtr& request, Status status,
                                  const std::vector<double>& results,
                                  const std::string& error) {
  if (status == Status::kOk) {
    finish(request, status, results, error, GiveUpReason::kNone);
    return;
  }
  if (!should_retry(status, error)) {
    finish(request, status, results, error, GiveUpReason::kNonRetryable);
    return;
  }
  request->last_status = status;
  request->last_error = error;
  schedule_retry(request);
}

void ResilientClient::schedule_retry(const RequestPtr& request) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (closed_) {
    lock.unlock();
    finish(request, request->last_status, {}, request->last_error,
           GiveUpReason::kClientClosed);
    return;
  }
  if (config_.max_attempts > 0 &&
      request->attempts >= static_cast<std::uint32_t>(config_.max_attempts)) {
    lock.unlock();
    finish(request, request->last_status, {}, request->last_error,
           GiveUpReason::kAttemptsExhausted);
    return;
  }
  const double wait = backoff_us(request->key, request->attempts,
                                 config_.backoff_base_us,
                                 config_.backoff_cap_us);
  const auto due =
      Clock::now() + std::chrono::microseconds(
                         static_cast<std::uint64_t>(wait));
  if (config_.retry_budget_us > 0.0) {
    const double elapsed_us =
        std::chrono::duration<double, std::micro>(due - request->first_sent)
            .count();
    if (elapsed_us > config_.retry_budget_us) {
      lock.unlock();
      finish(request, request->last_status, {}, request->last_error,
             GiveUpReason::kRetryBudgetExpired);
      return;
    }
  }
  retry_log_.push_back({request->key, request->attempts,
                        static_cast<std::uint64_t>(wait)});
  retry_queue_.emplace(due, request);
  cv_.notify_all();
}

void ResilientClient::finish(const RequestPtr& request, Status status,
                             const std::vector<double>& results,
                             const std::string& error, GiveUpReason reason) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    outstanding_ -= 1;
  }
  if (reason != GiveUpReason::kNone && reason != GiveUpReason::kNonRetryable) {
    SPNHBM_WARN("rpc") << config_.label << " gave up on request (key "
                       << request->key << ", " << to_string(reason)
                       << " after " << request->attempts
                       << " attempt(s)): " << error;
  }
  request->callback(status, results, error, reason);
}

void ResilientClient::retry_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (closed_) return;
    if (retry_queue_.empty()) {
      cv_.wait(lock);
      continue;
    }
    const auto due = retry_queue_.begin()->first;
    if (Clock::now() < due) {
      cv_.wait_until(lock, due);
      continue;
    }
    RequestPtr request = retry_queue_.begin()->second;
    retry_queue_.erase(retry_queue_.begin());
    lock.unlock();
    send_attempt(std::move(request));
    lock.lock();
  }
}

void ResilientClient::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return;
    closed_ = true;
  }
  cv_.notify_all();
  if (retry_thread_.joinable()) retry_thread_.join();
  std::shared_ptr<RpcClient> client;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    client = std::move(client_);
  }
  // Failing in-flight wire attempts routes them through on_response ->
  // schedule_retry, which sees closed_ and finishes them kClientClosed.
  client.reset();
  std::multimap<Clock::time_point, RequestPtr> abandoned;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    abandoned.swap(retry_queue_);
  }
  for (auto& [due, request] : abandoned) {
    (void)due;
    finish(request, request->last_status, {}, request->last_error,
           GiveUpReason::kClientClosed);
  }
}

}  // namespace spnhbm::rpc
