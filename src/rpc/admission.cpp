#include "spnhbm/rpc/admission.hpp"

#include <algorithm>

namespace spnhbm::rpc {

TokenBucket::TokenBucket(double rate_per_second, double burst)
    : rate_(rate_per_second),
      burst_(std::max(burst, 1.0)),
      tokens_(burst_) {}

bool TokenBucket::try_acquire(Clock::time_point now) {
  if (rate_ <= 0.0) return true;
  std::lock_guard<std::mutex> lock(mutex_);
  if (!primed_) {
    // The first call anchors the refill clock; the bucket starts full.
    last_refill_ = now;
    primed_ = true;
  }
  const std::chrono::duration<double> elapsed = now - last_refill_;
  if (elapsed.count() > 0.0) {
    tokens_ = std::min(burst_, tokens_ + elapsed.count() * rate_);
    last_refill_ = now;
  }
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

}  // namespace spnhbm::rpc
