#include "spnhbm/rpc/wire.hpp"

#include <bit>
#include <cstring>

#include "spnhbm/util/strings.hpp"

namespace spnhbm::rpc {

namespace {

/// Append-only little-endian encoder.
class Writer {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v) {
    for (int i = 0; i < 2; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    if (s.size() > 0xFFFF) throw WireError("string field exceeds 65535 bytes");
    u16(static_cast<std::uint16_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }
  void blob(const std::vector<std::uint8_t>& b) {
    u32(static_cast<std::uint32_t>(b.size()));
    bytes_.insert(bytes_.end(), b.begin(), b.end());
  }
  /// u32 length-prefixed text, for sections that may exceed the u16
  /// string cap (metrics expositions).
  void ltext(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian decoder over a frame body.
class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16() { return static_cast<std::uint16_t>(uint_le(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(uint_le(4)); }
  std::uint64_t u64() { return uint_le(8); }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    const std::size_t n = u16();
    const std::uint8_t* p = take(n);
    return std::string(reinterpret_cast<const char*>(p), n);
  }
  std::vector<std::uint8_t> blob() {
    const std::size_t n = u32();
    const std::uint8_t* p = take(n);
    return std::vector<std::uint8_t>(p, p + n);
  }
  std::string ltext() {
    const std::size_t n = u32();
    const std::uint8_t* p = take(n);
    return std::string(reinterpret_cast<const char*>(p), n);
  }
  bool at_end() const { return cursor_ == bytes_.size(); }
  std::size_t remaining() const { return bytes_.size() - cursor_; }
  void expect_end() const {
    if (cursor_ != bytes_.size()) {
      throw WireError(strformat("%zu trailing byte(s) after frame body",
                                bytes_.size() - cursor_));
    }
  }

 private:
  const std::uint8_t* take(std::size_t n) {
    if (bytes_.size() - cursor_ < n) throw WireError("truncated frame body");
    const std::uint8_t* p = bytes_.data() + cursor_;
    cursor_ += n;
    return p;
  }
  std::uint64_t uint_le(std::size_t n) {
    const std::uint8_t* p = take(n);
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    }
    return v;
  }

  const std::vector<std::uint8_t>& bytes_;
  std::size_t cursor_ = 0;
};

}  // namespace

std::string to_string(Status status) {
  switch (status) {
    case Status::kOk: return "OK";
    case Status::kInvalidRequest: return "INVALID_REQUEST";
    case Status::kUnknownModel: return "UNKNOWN_MODEL";
    case Status::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case Status::kNoHealthyEngine: return "NO_HEALTHY_ENGINE";
    case Status::kOverloaded: return "OVERLOADED";
    case Status::kShuttingDown: return "SHUTTING_DOWN";
    case Status::kInternalError: return "INTERNAL_ERROR";
  }
  return "UNKNOWN_STATUS";
}

bool is_retryable(Status status) {
  return status == Status::kOverloaded || status == Status::kNoHealthyEngine ||
         status == Status::kShuttingDown;
}

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  if (frame.body.size() > kMaxBodyBytes) {
    throw WireError("frame body exceeds kMaxBodyBytes");
  }
  Writer w;
  w.u32(kFrameMagic);
  w.u8(static_cast<std::uint8_t>(frame.type));
  w.u32(static_cast<std::uint32_t>(frame.body.size()));
  std::vector<std::uint8_t> bytes = w.take();
  bytes.insert(bytes.end(), frame.body.begin(), frame.body.end());
  return bytes;
}

std::uint32_t decode_frame_header(
    const std::uint8_t (&header)[kFrameHeaderBytes], FrameType& type) {
  std::uint32_t magic = 0;
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    magic |= static_cast<std::uint32_t>(header[i]) << (8 * i);
    length |= static_cast<std::uint32_t>(header[5 + i]) << (8 * i);
  }
  if (magic != kFrameMagic) {
    throw WireError(strformat("bad frame magic 0x%08x", magic));
  }
  const std::uint8_t raw_type = header[4];
  if (raw_type < static_cast<std::uint8_t>(FrameType::kHello) ||
      raw_type > static_cast<std::uint8_t>(FrameType::kRequest2)) {
    throw WireError(strformat("unknown frame type %u", raw_type));
  }
  if (length > kMaxBodyBytes) {
    throw WireError(strformat("frame body of %u bytes exceeds the %u cap",
                              length, kMaxBodyBytes));
  }
  type = static_cast<FrameType>(raw_type);
  return length;
}

Frame encode_hello(const HelloFrame& hello) {
  Writer w;
  w.u16(hello.protocol_version);
  w.str(hello.build_version);
  if (hello.models.size() > 0xFFFF) throw WireError("too many models");
  w.u16(static_cast<std::uint16_t>(hello.models.size()));
  for (const ModelInfo& model : hello.models) {
    w.str(model.id);
    w.u32(model.input_features);
  }
  return Frame{FrameType::kHello, w.take()};
}

HelloFrame decode_hello(const std::vector<std::uint8_t>& body) {
  Reader r(body);
  HelloFrame hello;
  hello.protocol_version = r.u16();
  hello.build_version = r.str();
  const std::size_t count = r.u16();
  hello.models.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ModelInfo model;
    model.id = r.str();
    model.input_features = r.u32();
    hello.models.push_back(std::move(model));
  }
  r.expect_end();
  return hello;
}

Frame encode_request(const RequestFrame& request) {
  Writer w;
  w.u64(request.request_id);
  w.str(request.model);
  w.u64(request.deadline_us);
  w.blob(request.samples);
  // Optional v2 trace block: a fixed 16 bytes, appended only for traced
  // requests so untraced traffic stays byte-identical to v1.
  if (request.trace.valid()) {
    w.u64(request.trace.trace_id);
    w.u64(request.trace.parent_span);
  }
  // Optional v3 idempotency key: a fixed 8 bytes after the trace block,
  // appended only when non-zero so plain traffic stays byte-identical.
  if (request.idempotency_key != 0) w.u64(request.idempotency_key);
  return Frame{FrameType::kRequest, w.take()};
}

RequestFrame decode_request(const std::vector<std::uint8_t>& body) {
  Reader r(body);
  RequestFrame request;
  request.request_id = r.u64();
  request.model = r.str();
  request.deadline_us = r.u64();
  request.samples = r.blob();
  // v1 frames (and untraced, keyless v2/v3 frames) end here. The tail
  // length alone identifies the optional blocks: 8 = idempotency key,
  // 16 = trace block, 24 = trace block + key. Any other remainder falls
  // through to expect_end() and is rejected, so a corrupt tail is still
  // caught.
  const std::size_t tail = r.remaining();
  if (tail == 16 || tail == 24) {
    request.trace.trace_id = r.u64();
    request.trace.parent_span = r.u64();
  }
  if (tail == 8 || tail == 24) request.idempotency_key = r.u64();
  r.expect_end();
  return request;
}

Frame encode_request2(const RequestFrame& request) {
  if (request.query_kind > 2) {
    throw WireError(strformat("query kind %u out of range (0..2)",
                              request.query_kind));
  }
  if (request.encoding > kEncodingSparse) {
    throw WireError(strformat("payload encoding %u out of range (0..1)",
                              request.encoding));
  }
  if (request.sample_count == 0) {
    throw WireError("REQUEST2 needs an explicit sample count");
  }
  Writer w;
  w.u64(request.request_id);
  w.str(request.model);
  w.u64(request.deadline_us);
  w.u8(request.query_kind);
  w.u8(request.encoding);
  w.u32(request.sample_count);
  w.blob(request.samples);
  // Same optional tail as kRequest: 16-byte trace block, 8-byte key.
  if (request.trace.valid()) {
    w.u64(request.trace.trace_id);
    w.u64(request.trace.parent_span);
  }
  if (request.idempotency_key != 0) w.u64(request.idempotency_key);
  return Frame{FrameType::kRequest2, w.take()};
}

RequestFrame decode_request2(const std::vector<std::uint8_t>& body) {
  Reader r(body);
  RequestFrame request;
  request.request_id = r.u64();
  request.model = r.str();
  request.deadline_us = r.u64();
  request.query_kind = r.u8();
  if (request.query_kind > 2) {
    throw WireError(strformat("query kind %u out of range (0..2)",
                              request.query_kind));
  }
  request.encoding = r.u8();
  if (request.encoding > kEncodingSparse) {
    throw WireError(strformat("payload encoding %u out of range (0..1)",
                              request.encoding));
  }
  request.sample_count = r.u32();
  if (request.sample_count == 0) {
    throw WireError("REQUEST2 needs an explicit sample count");
  }
  request.samples = r.blob();
  const std::size_t tail = r.remaining();
  if (tail == 16 || tail == 24) {
    request.trace.trace_id = r.u64();
    request.trace.parent_span = r.u64();
  }
  if (tail == 8 || tail == 24) request.idempotency_key = r.u64();
  r.expect_end();
  return request;
}

Frame encode_response(const ResponseFrame& response) {
  Writer w;
  w.u64(response.request_id);
  w.u8(static_cast<std::uint8_t>(response.status));
  if (response.status == Status::kOk) {
    w.u32(static_cast<std::uint32_t>(response.results.size()));
    for (const double p : response.results) w.f64(p);
  } else {
    w.str(response.error);
  }
  return Frame{FrameType::kResponse, w.take()};
}

ResponseFrame decode_response(const std::vector<std::uint8_t>& body) {
  Reader r(body);
  ResponseFrame response;
  response.request_id = r.u64();
  const std::uint8_t raw_status = r.u8();
  if (raw_status > static_cast<std::uint8_t>(Status::kInternalError)) {
    throw WireError(strformat("unknown status byte %u", raw_status));
  }
  response.status = static_cast<Status>(raw_status);
  if (response.status == Status::kOk) {
    const std::size_t count = r.u32();
    response.results.reserve(count);
    for (std::size_t i = 0; i < count; ++i) response.results.push_back(r.f64());
  } else {
    response.error = r.str();
  }
  r.expect_end();
  return response;
}

Frame encode_shutdown() { return Frame{FrameType::kShutdown, {}}; }

Frame encode_admin() { return Frame{FrameType::kAdmin, {}}; }

Frame encode_admin_reply(const AdminReplyFrame& reply) {
  Writer w;
  w.u16(reply.protocol_version);
  w.str(reply.build_version);
  w.ltext(reply.metrics_text);
  w.ltext(reply.health_text);
  w.ltext(reply.replicas_text);
  w.ltext(reply.tail_text);
  return Frame{FrameType::kAdminReply, w.take()};
}

AdminReplyFrame decode_admin_reply(const std::vector<std::uint8_t>& body) {
  Reader r(body);
  AdminReplyFrame reply;
  reply.protocol_version = r.u16();
  reply.build_version = r.str();
  reply.metrics_text = r.ltext();
  reply.health_text = r.ltext();
  reply.replicas_text = r.ltext();
  reply.tail_text = r.ltext();
  r.expect_end();
  return reply;
}

}  // namespace spnhbm::rpc
