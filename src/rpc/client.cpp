#include "spnhbm/rpc/client.hpp"

#include <atomic>
#include <utility>

#include "spnhbm/engine/service.hpp"
#include "spnhbm/telemetry/trace_context.hpp"
#include "spnhbm/util/strings.hpp"

namespace spnhbm::rpc {

std::uint32_t ServerInfo::input_features(const std::string& ref) const {
  const ModelInfo* match = nullptr;
  // Advertised ids are lane ids — "name@version" plus an optional
  // query-kind suffix ("#marginal"/"#mpe"). A bare-name ref matches only
  // within its own suffix, so "m" stays unambiguous when the server also
  // hosts "m@1#marginal".
  const auto [base, suffix] = engine::split_lane_ref(ref);
  for (const ModelInfo& model : models) {
    if (model.id == ref) return model.input_features;
    const auto [id_base, id_suffix] = engine::split_lane_ref(model.id);
    if (id_suffix != suffix) continue;
    const std::size_t at = id_base.rfind('@');
    if (at != std::string::npos && id_base.substr(0, at) == base) {
      if (match != nullptr) {
        throw RpcError("model reference '" + ref + "' is ambiguous");
      }
      match = &model;
    }
  }
  if (match == nullptr) throw RpcError("server hosts no model '" + ref + "'");
  return match->input_features;
}

std::unique_ptr<RpcClient> RpcClient::connect(const std::string& host,
                                              std::uint16_t port) {
  Socket socket = Socket::connect(host, port);
  // The hello is the first frame on every connection.
  std::uint8_t header[kFrameHeaderBytes];
  if (!socket.recv_exact(header, sizeof(header))) {
    throw RpcError("server closed the connection before the handshake");
  }
  FrameType type;
  const std::uint32_t body_length = decode_frame_header(header, type);
  if (type != FrameType::kHello) {
    throw WireError("expected a hello frame, got type " +
                    std::to_string(static_cast<unsigned>(type)));
  }
  std::vector<std::uint8_t> body(body_length);
  if (body_length > 0 && !socket.recv_exact(body.data(), body_length)) {
    throw RpcError("server closed the connection mid-handshake");
  }
  const HelloFrame hello = decode_hello(body);
  if (hello.protocol_version > kProtocolVersion) {
    throw RpcError(strformat(
        "server speaks protocol v%u, this client understands up to v%u",
        hello.protocol_version, kProtocolVersion));
  }
  ServerInfo info;
  info.protocol_version = hello.protocol_version;
  info.build_version = hello.build_version;
  info.models = hello.models;
  return std::unique_ptr<RpcClient>(
      new RpcClient(std::move(socket), std::move(info)));
}

RpcClient::RpcClient(Socket socket, ServerInfo info)
    : socket_(std::move(socket)), info_(std::move(info)) {
  if (telemetry::tracer().enabled()) {
    static std::atomic<std::uint64_t> next_client_ordinal{0};
    track_ = telemetry::tracer().register_track(
        "rpc/client" + std::to_string(next_client_ordinal.fetch_add(1)),
        telemetry::TraceClock::kWall);
  }
  reader_ = std::thread([this] { reader_loop(); });
}

RpcClient::~RpcClient() { close(); }

RpcClient::SentRequest RpcClient::send_request(
    const std::string& model, std::vector<std::uint8_t> samples,
    std::uint64_t deadline_us, std::uint64_t idempotency_key,
    const QueryOptions& query) {
  // Dense joint requests keep travelling as plain kRequest frames —
  // byte-identical to a v3 client — so only genuinely query-generic
  // traffic needs the v4 frame (and a v4 server).
  const bool request2 = query.request2();
  if (request2 && info_.protocol_version < kQueryProtocolVersion) {
    throw RpcError(strformat(
        "server speaks protocol v%u; marginal/MPE/sparse requests need v%u",
        info_.protocol_version, kQueryProtocolVersion));
  }
  RequestFrame request;
  request.model = model.empty() && !info_.models.empty()
                      ? info_.models.front().id
                      : model;
  request.deadline_us = deadline_us;
  request.samples = std::move(samples);
  if (request2) {
    request.query_kind = query.query_kind;
    request.encoding = query.encoding;
    request.sample_count = query.sample_count;
    if (request.sample_count == 0) {
      if (query.encoding == kEncodingSparse) {
        throw RpcError("sparse evidence needs an explicit sample count");
      }
      // Dense: derive the explicit count from the advertised input width.
      const std::uint32_t features = info_.input_features(request.model);
      if (features == 0 || request.samples.size() % features != 0) {
        throw RpcError(strformat(
            "payload of %zu bytes is not a positive multiple of model "
            "'%s's %u input features",
            request.samples.size(), request.model.c_str(), features));
      }
      request.sample_count =
          static_cast<std::uint32_t>(request.samples.size() / features);
    }
  }
  // Idempotency keys ride the v3 trailing block; an older peer would
  // reject the longer body, so the key is dropped (the retry is then
  // simply re-executed — correct, just not deduplicated).
  if (info_.protocol_version >= kIdempotencyProtocolVersion) {
    request.idempotency_key = idempotency_key;
  }
  // Mint a trace context for head-sampled requests — only when tracing is
  // on and the server speaks a protocol that carries the trace block (an
  // old peer would reject the longer REQUEST body).
  if (track_ != 0 && info_.protocol_version >= kTraceProtocolVersion &&
      telemetry::head_sampler().sample()) {
    request.trace.trace_id = telemetry::mint_trace_id();
  }
  std::lock_guard<std::mutex> lock(send_mutex_);
  if (closed_) throw RpcError("client is closed");
  request.request_id = next_request_id_++;
  const telemetry::Tracer::WallTime send_start = telemetry::Tracer::wall_now();
  const std::vector<std::uint8_t> wire = encode_frame(
      request2 ? encode_request2(request) : encode_request(request));
  socket_.send_all(wire.data(), wire.size());
  if (request.trace.valid()) {
    auto& tracer = telemetry::tracer();
    tracer.complete_wall(track_, "send", send_start,
                         telemetry::Tracer::wall_now());
    // Flow start: the arrow chain every downstream span joins.
    tracer.flow_wall(track_, "request", 's', request.trace.trace_id,
                     send_start);
  }
  return {request.request_id, request.trace};
}

void RpcClient::submit_with_callback(const std::string& model,
                                     std::vector<std::uint8_t> samples,
                                     std::uint64_t deadline_us,
                                     ResponseCallback callback,
                                     std::uint64_t idempotency_key,
                                     const QueryOptions& query) {
  // pending_mutex_ is held across the send, so the reader thread cannot
  // look a response up before its callback is registered, however fast
  // the server answers. (Lock order is always pending -> send; the
  // reader only ever takes pending.)
  std::unique_lock<std::mutex> pending_lock(pending_mutex_);
  if (reader_done_) {
    throw RpcError("connection lost; request not sent");
  }
  const SentRequest sent = send_request(model, std::move(samples),
                                        deadline_us, idempotency_key, query);
  pending_.emplace(sent.request_id,
                   PendingEntry{std::move(callback), sent.trace});
}

std::future<std::vector<double>> RpcClient::submit(
    const std::string& model, std::vector<std::uint8_t> samples,
    std::uint64_t deadline_us, std::uint64_t idempotency_key,
    const QueryOptions& query) {
  auto promise = std::make_shared<std::promise<std::vector<double>>>();
  std::future<std::vector<double>> future = promise->get_future();
  submit_with_callback(
      model, std::move(samples), deadline_us,
      [promise](Status status, const std::vector<double>& results,
                const std::string& error) {
        if (status == Status::kOk) {
          promise->set_value(results);
        } else {
          promise->set_exception(
              std::make_exception_ptr(RpcStatusError(status, error)));
        }
      },
      idempotency_key, query);
  return future;
}

std::vector<double> RpcClient::infer(const std::string& model,
                                     std::vector<std::uint8_t> samples,
                                     std::uint64_t deadline_us,
                                     const QueryOptions& query) {
  return submit(model, std::move(samples), deadline_us, /*idempotency_key=*/0,
                query)
      .get();
}

void RpcClient::request_shutdown() {
  const std::vector<std::uint8_t> wire = encode_frame(encode_shutdown());
  std::lock_guard<std::mutex> lock(send_mutex_);
  if (closed_) throw RpcError("client is closed");
  socket_.send_all(wire.data(), wire.size());
}

std::size_t RpcClient::outstanding() const {
  std::lock_guard<std::mutex> lock(pending_mutex_);
  return pending_.size();
}

bool RpcClient::alive() const {
  std::lock_guard<std::mutex> lock(pending_mutex_);
  return !reader_done_;
}

void RpcClient::reader_loop() {
  std::string failure = "connection closed";
  try {
    for (;;) {
      std::uint8_t header[kFrameHeaderBytes];
      if (!socket_.recv_exact(header, sizeof(header))) break;
      FrameType type;
      const std::uint32_t body_length = decode_frame_header(header, type);
      std::vector<std::uint8_t> body(body_length);
      if (body_length > 0 && !socket_.recv_exact(body.data(), body_length)) {
        throw RpcError("server closed mid-frame");
      }
      if (type != FrameType::kResponse) {
        throw WireError("unexpected server frame type " +
                        std::to_string(static_cast<unsigned>(type)));
      }
      const telemetry::Tracer::WallTime recv_time =
          telemetry::Tracer::wall_now();
      const ResponseFrame response = decode_response(body);
      PendingEntry entry;
      {
        std::lock_guard<std::mutex> lock(pending_mutex_);
        const auto it = pending_.find(response.request_id);
        if (it == pending_.end()) {
          throw WireError(strformat(
              "response for unknown request id %llu",
              static_cast<unsigned long long>(response.request_id)));
        }
        entry = std::move(it->second);
        pending_.erase(it);
      }
      entry.callback(response.status, response.results, response.error);
      if (entry.trace.valid()) {
        auto& tracer = telemetry::tracer();
        tracer.complete_wall(track_, "response", recv_time,
                             telemetry::Tracer::wall_now());
        // Flow end: terminates the request's arrow chain at the client.
        tracer.flow_wall(track_, "request", 'f', entry.trace.trace_id,
                         recv_time);
      }
    }
  } catch (const std::exception& e) {
    failure = e.what();
  }
  fail_outstanding(failure);
}

void RpcClient::fail_outstanding(const std::string& reason) {
  std::map<std::uint64_t, PendingEntry> orphaned;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    reader_done_ = true;  // later submits fail instead of hanging forever
    orphaned.swap(pending_);
  }
  for (auto& [id, entry] : orphaned) {
    (void)id;
    entry.callback(Status::kInternalError, {}, "rpc error: " + reason);
  }
}

void RpcClient::close() {
  {
    std::lock_guard<std::mutex> lock(send_mutex_);
    if (closed_) return;
    closed_ = true;
  }
  socket_.shutdown();
  if (reader_.joinable()) reader_.join();
  socket_.close();
}

}  // namespace spnhbm::rpc
