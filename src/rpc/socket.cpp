#include "spnhbm/rpc/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "spnhbm/util/strings.hpp"

namespace spnhbm::rpc {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw RpcError(what + ": " + std::strerror(errno));
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Socket Socket::connect(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Socket socket(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw RpcError("not a numeric IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    throw_errno(strformat("connect to %s:%u", host.c_str(), port));
  }
  set_nodelay(fd);
  return socket;
}

void Socket::send_all(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  while (size > 0) {
    const ssize_t sent = ::send(fd_, bytes, size, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    bytes += sent;
    size -= static_cast<std::size_t>(sent);
  }
}

bool Socket::recv_exact(void* data, std::size_t size) {
  auto* bytes = static_cast<std::uint8_t*>(data);
  std::size_t received = 0;
  while (received < size) {
    const ssize_t n = ::recv(fd_, bytes + received, size - received, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (n == 0) {
      if (received == 0) return false;  // clean EOF at a frame boundary
      throw RpcError(strformat("peer closed mid-frame (%zu of %zu bytes)",
                               received, size));
    }
    received += static_cast<std::size_t>(n);
  }
  return true;
}

void Socket::shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::Listener(std::uint16_t port, int backlog) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno(strformat("bind 127.0.0.1:%u", port));
  }
  if (::listen(fd_, backlog) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("listen");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

Socket Listener::accept() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      set_nodelay(fd);
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    // shutdown() turns a blocked accept into EINVAL (Linux); both it and
    // a closed fd mean "stop accepting", not an error.
    if (errno == EINVAL || errno == EBADF) return Socket();
    throw_errno("accept");
  }
}

void Listener::shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace spnhbm::rpc
