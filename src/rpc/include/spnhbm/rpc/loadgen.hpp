// Open-loop load generator for the RPC serving stack.
//
// "Open loop" means arrivals follow a precomputed schedule and do NOT
// wait for responses: if the server slows down, requests keep arriving
// at the configured rate and queueing delay becomes visible in the
// measured latency — the honest way to measure a serving system
// (closed-loop generators coordinate with the server and hide overload).
//
// The schedule is derived deterministically from (seed, arrival process,
// rate, count) via the repo-wide xoshiro generator, so a loadgen run is
// reproducible in *schedule*; wall-clock latencies of course vary with
// the machine. make_schedule() is exposed separately so tests can assert
// schedule determinism without opening sockets.
//
// Every response lands in one bucket of `by_status`, so the report
// satisfies sent == sum(by_status): nothing the generator fired can
// escape the accounting, mirroring the server-side conservation law.
//
// Connections ride the self-healing ResilientClient: a reset mid-run
// reconnects with deterministic backoff instead of failing the rest of
// the run. By default max_attempts = 1 so each request still gets
// exactly one wire attempt (an overloaded server shows up as OVERLOADED
// responses, not hidden retries); raising it turns on idempotency-keyed
// retries, and every final give-up is recorded per GiveUpReason in the
// report's give-up histogram.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "spnhbm/rpc/resilient_client.hpp"
#include "spnhbm/telemetry/metrics.hpp"

namespace spnhbm::rpc {

enum class ArrivalProcess : std::uint8_t {
  kFixed = 0,    ///< evenly spaced, period 1/rate
  kPoisson = 1,  ///< exponential inter-arrivals, mean 1/rate
  kBursty = 2,   ///< back-to-back bursts of `burst_size`, same mean rate
};

/// "fixed" / "poisson" / "bursty"; throws util Error on anything else.
ArrivalProcess parse_arrival_process(const std::string& name);
const char* to_string(ArrivalProcess process);

/// One model's share of a mixed-model load.
struct ModelTraffic {
  /// Model reference sent on the wire (empty = the server's default).
  std::string model;
  /// Relative share of the request stream; must be positive.
  double weight = 1.0;
  /// Request payloads for this model, cycled round-robin over its
  /// requests. Must be non-empty, each a multiple of the model's width
  /// (or valid CSR sparse streams when `query` selects them).
  std::vector<std::vector<std::uint8_t>> payloads;
  /// Query kind + payload encoding for this traffic share (wire v4);
  /// default = classic dense joint requests.
  QueryOptions query;
};

struct LoadgenConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Model reference sent with every request; empty = the server's first
  /// advertised model.
  std::string model;
  /// Request payloads, cycled round-robin across the run. Must be
  /// non-empty and each payload a multiple of the model's input width.
  std::vector<std::vector<std::uint8_t>> payloads;
  /// Query kind + payload encoding sent with every single-model request
  /// (wire v4); ignored when `traffic` is non-empty (each ModelTraffic
  /// carries its own).
  QueryOptions query;
  /// Mixed-model traffic (the fleet-serving path): when non-empty,
  /// `model`/`payloads` above are ignored and every request draws its
  /// model from this weighted mix, deterministically in `seed`.
  std::vector<ModelTraffic> traffic;
  std::size_t request_count = 100;
  /// Mean offered rate in requests/second.
  double rate_rps = 1000.0;
  ArrivalProcess arrival = ArrivalProcess::kPoisson;
  /// Burst size for ArrivalProcess::kBursty.
  std::size_t burst_size = 8;
  /// Client connections; requests are dealt round-robin across them.
  std::size_t connections = 1;
  std::uint64_t seed = 42;
  /// Per-request deadline forwarded on the wire; 0 = none.
  std::uint64_t deadline_us = 0;
  /// Send a kShutdown frame when done (CI teardown path).
  bool shutdown_server_after = false;
  /// Wire attempts per request (1 = classic open-loop accounting where a
  /// shed response lands in OVERLOADED; >1 = idempotency-keyed retries).
  int max_attempts = 1;
  /// Wall budget per logical request across retries; 0 = unbounded.
  double retry_budget_us = 0.0;
};

struct LoadgenReport {
  /// Requests handed to the wire (== request_count unless the connection
  /// died mid-run; transport failures still land in by_status).
  std::uint64_t sent = 0;
  /// Responses per wire status, indexed by static_cast<size_t>(Status).
  std::array<std::uint64_t, 8> by_status{};
  double wall_seconds = 0.0;
  /// The rate the schedule asked for vs. OK responses per wall second.
  double offered_rps = 0.0;
  double achieved_rps = 0.0;
  /// Requests sent per model reference (single-model runs have one
  /// entry); sums to `sent`.
  std::map<std::string, std::uint64_t> sent_by_model;
  /// Wall-clock latency of OK responses, send -> callback, microseconds.
  telemetry::HistogramSnapshot latency_us;
  /// Same latency, split per model reference (keys match sent_by_model),
  /// so a mixed-model run shows each model's own percentiles.
  std::map<std::string, telemetry::HistogramSnapshot> latency_by_model;
  /// Final outcomes per GiveUpReason, indexed by
  /// static_cast<size_t>(GiveUpReason); [0] (kNone) counts clean
  /// successes plus first-attempt terminal responses. Sums to `sent`.
  std::array<std::uint64_t, 6> giveup_by_reason{};
  /// Reconnects across all connections (0 = every socket survived).
  std::uint64_t reconnects = 0;

  std::uint64_t ok() const;
  std::uint64_t retryable() const;  ///< OVERLOADED + NO_HEALTHY_ENGINE + SHUTTING_DOWN
  std::uint64_t failed() const;     ///< sent - ok()
  /// failed() / sent, the number `loadgen --max-failure-rate` gates on;
  /// 0.0 when nothing was sent.
  double failure_fraction() const;
  /// sent == sum(by_status): every request got exactly one outcome.
  bool conserved() const;
  std::string describe() const;
  /// BENCH_*.json document ("bench": "loadgen"): an "overall" record plus
  /// one record per model, each carrying the latency percentiles — the
  /// shape tools/bench_compare consumes.
  std::string bench_json() const;
};

/// Arrival offsets from run start, in microseconds, sorted ascending.
/// Deterministic in (seed, arrival, rate_rps, burst_size, request_count).
std::vector<std::uint64_t> make_schedule(const LoadgenConfig& config);

/// Traffic-mix index (into config.traffic) per request, drawn from the
/// weighted mix on an independent deterministic stream of `seed`. Empty
/// when config.traffic is empty (single-model run).
std::vector<std::size_t> make_model_picks(const LoadgenConfig& config);

/// Connects, replays the schedule, waits for every response. Throws
/// RpcGiveUpError when the initial connections cannot be established
/// even after the dial-backoff episode.
LoadgenReport run_loadgen(const LoadgenConfig& config);

}  // namespace spnhbm::rpc
