// ResilientClient: a self-healing wrapper around RpcClient.
//
// A plain RpcClient dies with its socket: one reset and every caller
// sees RpcError forever. The resilient layer owns the connection
// lifecycle instead —
//
//   * automatic reconnect with capped exponential backoff and
//     deterministic jitter (every backoff is a pure function of the
//     seed, the request's idempotency key and the attempt index, so two
//     runs with the same seed and chaos plan produce the identical
//     retry/backoff schedule),
//   * per-request idempotency keys (wire v3), minted once per logical
//     request and reused across its retries, so a server that already
//     accepted the original answers the retry from its cache and the
//     conservation books never double-count,
//   * a retry policy per logical request: retryable statuses
//     (OVERLOADED, NO_HEALTHY_ENGINE, SHUTTING_DOWN) and transport
//     failures are retried up to `max_attempts` within the
//     `retry_budget_us` wall budget,
//   * typed give-up errors: when the layer abandons a request, the
//     outcome carries a GiveUpReason (connect failed, attempts
//     exhausted, retry budget expired, non-retryable status, client
//     closed) — infer() throws it as RpcGiveUpError, the callback path
//     hands it to the caller for the give-up histogram.
//
// Chaos: dialing consults fault::injector() at site "rpc.client.connect"
// (instance = the client's label); kFail makes the dial attempt fail
// without touching the network, so connect-retry paths are testable
// deterministically.
//
// Threading: submits may come from any thread; responses arrive on the
// wrapped client's reader thread; an internal retry thread re-sends
// scheduled retries when their backoff expires. Exactly one final
// outcome is delivered per accepted request — that invariant is what
// keeps the load generator's sent = Σ outcomes books exact.
#pragma once

#include <chrono>
#include <cstdint>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "spnhbm/rpc/client.hpp"

namespace spnhbm::rpc {

/// Why the resilient layer delivered a non-OK final outcome.
enum class GiveUpReason : std::uint8_t {
  kNone = 0,            ///< Success — not a give-up.
  kConnectFailed,       ///< Reconnect attempts exhausted.
  kAttemptsExhausted,   ///< Per-request attempt budget spent.
  kRetryBudgetExpired,  ///< The next retry would overrun retry_budget_us.
  kNonRetryable,        ///< Terminal status; retrying would not help.
  kClientClosed,        ///< close() abandoned the request.
};
const char* to_string(GiveUpReason reason);

/// Final failure of a logical request, with the typed reason attached.
class RpcGiveUpError : public Error {
 public:
  RpcGiveUpError(GiveUpReason reason, Status last_status,
                 std::uint32_t attempts, const std::string& detail)
      : Error(std::string("rpc give-up (") + to_string(reason) + " after " +
              std::to_string(attempts) + " attempt(s), last status " +
              rpc::to_string(last_status) + "): " + detail),
        reason_(reason),
        last_status_(last_status),
        attempts_(attempts) {}

  GiveUpReason reason() const { return reason_; }
  Status last_status() const { return last_status_; }
  std::uint32_t attempts() const { return attempts_; }

 private:
  GiveUpReason reason_;
  Status last_status_;
  std::uint32_t attempts_;
};

struct ResilientClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Names this client: the "rpc.client.connect" fault instance and the
  /// idempotency-key stream. Give concurrent clients distinct labels.
  std::string label = "client0";
  /// Seeds the deterministic backoff jitter and the key stream.
  std::uint64_t seed = 0x5eed;
  /// Attempts per logical request (first send included); <= 0 = unbounded.
  int max_attempts = 8;
  double backoff_base_us = 200.0;
  double backoff_multiplier = 2.0;
  double backoff_cap_us = 50'000.0;
  /// Jitter fraction: each backoff is scaled by 1 ± jitter (deterministic
  /// in (seed, key, attempt)).
  double jitter = 0.25;
  /// Total wall budget per logical request, first send -> last retry;
  /// 0 = unbounded. A retry that would land past the budget gives up
  /// with kRetryBudgetExpired instead.
  double retry_budget_us = 0.0;
  /// Dial attempts per reconnect episode before kConnectFailed.
  int max_connect_attempts = 10;
  double connect_backoff_base_us = 500.0;
  double connect_backoff_cap_us = 100'000.0;
  /// Also retry INTERNAL_ERROR responses that are not transport
  /// failures. Safe when the server deduplicates by idempotency key;
  /// the soak harness turns this on to guarantee eventual completion.
  bool retry_internal_errors = false;
};

/// Final-outcome callback: like ResponseCallback plus the give-up
/// reason (kNone on success and on plain non-retryable outcomes that
/// were delivered by the server on the first attempt — the reason is
/// kNonRetryable whenever the layer classified the status as terminal).
using ResilientCallback =
    std::function<void(Status, const std::vector<double>&, const std::string&,
                       GiveUpReason)>;

/// One scheduled backoff — the reproducibility witness for the
/// reconnect-determinism tests. key 0 = a connect (dial) backoff.
struct RetryEvent {
  std::uint64_t key = 0;
  std::uint32_t attempt = 0;
  std::uint64_t backoff_us = 0;
};

class ResilientClient {
 public:
  /// Does NOT dial yet; the first submit (or server_info()) connects.
  explicit ResilientClient(ResilientClientConfig config);
  ~ResilientClient();

  ResilientClient(const ResilientClient&) = delete;
  ResilientClient& operator=(const ResilientClient&) = delete;

  /// Sends one logical request; retries ride the same idempotency key.
  /// The callback fires exactly once with the final outcome (any thread:
  /// the caller's, the reader's, or the retry thread's). Throws RpcError
  /// only after close(). Non-default `query` options select marginal/MPE
  /// inference or sparse evidence (wire v4) and fold into the
  /// idempotency key, so two queries of different kinds over identical
  /// payloads never collide in the server's dedup cache.
  void submit_with_callback(const std::string& model,
                            std::vector<std::uint8_t> samples,
                            std::uint64_t deadline_us,
                            ResilientCallback callback,
                            const QueryOptions& query = {});

  /// Synchronous convenience wrapper; throws RpcGiveUpError on any
  /// non-OK final outcome.
  std::vector<double> infer(const std::string& model,
                            std::vector<std::uint8_t> samples,
                            std::uint64_t deadline_us = 0,
                            const QueryOptions& query = {});

  /// Hello identity of the current connection (dials when needed).
  ServerInfo server_info();
  /// Sends a SHUTDOWN frame over the current connection (dials when
  /// needed); propagates RpcGiveUpError when no connection can be made.
  void request_shutdown();

  /// Logical requests without a final outcome yet.
  std::size_t outstanding() const;
  /// Connections successfully established (1 = never reconnected).
  std::uint64_t connects() const;
  /// Every backoff scheduled so far. Entries are appended as retries
  /// are decided; compare as a (key, attempt)-sorted multiset when
  /// asserting cross-run determinism.
  std::vector<RetryEvent> retry_log() const;

  /// Abandons scheduled retries (kClientClosed outcomes), joins the
  /// retry thread and drops the connection. Idempotent.
  void close();

 private:
  using Clock = std::chrono::steady_clock;

  /// One logical request, alive until its final outcome is delivered.
  struct Request {
    std::string model;
    std::vector<std::uint8_t> samples;
    std::uint64_t deadline_us = 0;
    QueryOptions query;
    std::uint64_t key = 0;
    std::uint32_t attempts = 0;
    Clock::time_point first_sent;
    ResilientCallback callback;
    Status last_status = Status::kInternalError;
    std::string last_error;
  };
  using RequestPtr = std::shared_ptr<Request>;

  /// Pure function of (seed, key, attempt): the deterministic schedule.
  double backoff_us(std::uint64_t key, std::uint32_t attempt, double base,
                    double cap) const;

  /// Returns a usable client, reconnecting (with backoff) when the old
  /// one died. The returned shared_ptr keeps the connection alive while
  /// the caller sends on it outside the lock (a concurrent reconnect
  /// just drops the map entry, never the object under a sender). Throws
  /// RpcGiveUpError(kConnectFailed) on dial exhaustion and RpcError
  /// after close().
  std::shared_ptr<RpcClient> acquire_client(
      std::unique_lock<std::mutex>& lock);
  /// One dial episode; throws RpcGiveUpError when max_connect_attempts
  /// ran out.
  std::shared_ptr<RpcClient> dial_with_backoff();

  void send_attempt(RequestPtr request);
  void on_response(const RequestPtr& request, Status status,
                   const std::vector<double>& results,
                   const std::string& error);
  bool should_retry(Status status, const std::string& error) const;
  void schedule_retry(const RequestPtr& request);
  void finish(const RequestPtr& request, Status status,
              const std::vector<double>& results, const std::string& error,
              GiveUpReason reason);
  void retry_loop();

  ResilientClientConfig config_;
  std::uint64_t key_base_ = 0;

  mutable std::mutex mutex_;
  std::condition_variable cv_;  ///< connection hand-off + retry wake-ups
  std::shared_ptr<RpcClient> client_;
  bool connecting_ = false;
  bool closed_ = false;
  std::uint64_t next_key_ = 0;
  std::uint64_t connects_ = 0;
  std::size_t outstanding_ = 0;
  std::multimap<Clock::time_point, RequestPtr> retry_queue_;
  std::vector<RetryEvent> retry_log_;
  std::thread retry_thread_;
};

}  // namespace spnhbm::rpc
