// Admission control for the RPC front-end.
//
// Two independent gates sit between the socket reader and the
// InferenceServer, and a request must pass both to be submitted:
//
//   1. a token bucket bounding the *accepted request rate* (capacity
//      `burst`, refill `rate_per_second`), absorbing short bursts while
//      holding the long-run admission rate;
//   2. a queue-depth bound on the backing server's outstanding samples
//      (checked by the RpcServer via try_submit / outstanding_samples).
//
// A request failing either gate is shed with the retryable OVERLOADED
// status instead of blocking the socket thread — under overload the
// server keeps answering quickly rather than stalling every connection
// behind a full queue (open-loop clients would otherwise pile up
// unbounded kernel-buffer backlog).
//
// The bucket takes explicit timestamps so tests can drive it with a
// synthetic clock; the RpcServer feeds it std::chrono::steady_clock.
#pragma once

#include <chrono>
#include <mutex>

namespace spnhbm::rpc {

class TokenBucket {
 public:
  using Clock = std::chrono::steady_clock;

  /// `rate_per_second` <= 0 disables the limit (try_acquire always
  /// succeeds). `burst` < 1 is clamped to 1 token of capacity.
  TokenBucket(double rate_per_second, double burst);

  /// Takes one token if available (refilling for the time elapsed since
  /// the last call); false = shed. `now` must be monotone.
  bool try_acquire(Clock::time_point now);

  double rate_per_second() const { return rate_; }
  double burst() const { return burst_; }

 private:
  const double rate_;
  const double burst_;
  std::mutex mutex_;
  double tokens_;
  Clock::time_point last_refill_{};
  bool primed_ = false;
};

}  // namespace spnhbm::rpc
