// Minimal RAII wrappers over POSIX TCP sockets (the only platform this
// repo targets). Loopback-friendly: Listener binds 127.0.0.1 by default
// and port 0 asks the kernel for an ephemeral port, so CI jobs never
// collide on a fixed number.
//
// Blocking I/O throughout — the RPC layer dedicates a reader and a writer
// thread per connection, so nothing here needs to be non-blocking. All
// sends use MSG_NOSIGNAL: a peer hanging up surfaces as an RpcError, not
// a SIGPIPE.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "spnhbm/util/error.hpp"

namespace spnhbm::rpc {

/// Transport-level failures (connect refused, peer reset, short read).
class RpcError : public Error {
 public:
  explicit RpcError(const std::string& what) : Error("rpc error: " + what) {}
};

/// A connected TCP stream. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connects to host:port (numeric IPv4 host, e.g. "127.0.0.1") with
  /// TCP_NODELAY set. Throws RpcError on failure.
  static Socket connect(const std::string& host, std::uint16_t port);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes exactly `size` bytes (handling partial sends and EINTR);
  /// throws RpcError when the peer is gone.
  void send_all(const void* data, std::size_t size);

  /// Reads exactly `size` bytes. Returns false on a clean EOF *before the
  /// first byte* (orderly peer close between frames); throws RpcError on
  /// mid-read EOF or any other error.
  bool recv_exact(void* data, std::size_t size);

  /// Shuts down both directions, waking any thread blocked in recv/send
  /// on this socket. The fd stays open until destruction, so concurrent
  /// readers never race a file-descriptor reuse.
  void shutdown();
  void close();

 private:
  int fd_ = -1;
};

/// A listening TCP socket bound to the loopback interface.
class Listener {
 public:
  /// Binds and listens; `port` 0 picks an ephemeral port. Throws RpcError.
  explicit Listener(std::uint16_t port, int backlog = 64);
  ~Listener() { close(); }

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// The actually-bound port (resolves port 0 requests).
  std::uint16_t port() const { return port_; }

  /// Blocks for the next connection (TCP_NODELAY set). Returns an invalid
  /// Socket once shutdown() was called; throws RpcError on other errors.
  Socket accept();

  /// Wakes a blocked accept(); subsequent accepts return invalid sockets.
  void shutdown();
  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace spnhbm::rpc
