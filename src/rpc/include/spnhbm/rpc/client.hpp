// RpcClient: the library a remote caller links against.
//
// connect() performs the TCP connect and consumes the server's hello
// handshake, so server_info() (protocol version, build string, loaded
// models) is available before the first request. The client refuses to
// talk to a server speaking a newer protocol than it understands.
//
// Requests are fully pipelined: submit() assigns a request id, writes the
// frame (serialised by a send mutex — safe from any thread) and returns a
// future; a background reader thread matches response frames back to
// their promises. A non-OK response resolves the future with
// RpcStatusError carrying the typed wire status, so callers can
// distinguish retryable sheds (OVERLOADED, NO_HEALTHY_ENGINE) from hard
// failures. A dropped connection fails every outstanding future with
// RpcError.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "spnhbm/rpc/socket.hpp"
#include "spnhbm/rpc/wire.hpp"
#include "spnhbm/telemetry/trace.hpp"

namespace spnhbm::rpc {

/// A response with a non-OK wire status, as a typed exception.
class RpcStatusError : public Error {
 public:
  RpcStatusError(Status status, const std::string& message)
      : Error(to_string(status) + ": " + message), status_(status) {}

  Status status() const { return status_; }
  /// True for sheds the caller should back off and resend.
  bool retryable() const { return is_retryable(status_); }

 private:
  Status status_;
};

/// Server identity learned from the hello handshake.
struct ServerInfo {
  std::uint16_t protocol_version = 0;
  std::string build_version;
  std::vector<ModelInfo> models;

  /// Input width of model `ref` ("name@version" id or bare name when it
  /// uniquely prefixes one id). Throws RpcError when unknown.
  std::uint32_t input_features(const std::string& ref) const;
};

/// Query-generic request options (wire v4). The defaults describe the
/// classic dense joint request, which always travels as a plain kRequest
/// frame — byte-identical to a v3 client on the wire. Any non-default
/// field upgrades the request to a kRequest2 frame, which requires a
/// server whose HELLO advertised >= kQueryProtocolVersion; against an
/// older peer the submit throws RpcError client-side instead of sending
/// a frame the server cannot parse.
struct QueryOptions {
  /// 0 joint, 1 marginal, 2 MPE (compiler::QueryKind values).
  std::uint8_t query_kind = 0;
  /// kEncodingDense (sample rows) or kEncodingSparse (CSR evidence
  /// stream, see compiler/sparse_evidence.hpp).
  std::uint8_t encoding = kEncodingDense;
  /// Explicit sample count. Required (non-zero) for sparse payloads —
  /// they are not self-describing; derived from the payload size and the
  /// advertised input width when left 0 on dense ones.
  std::uint32_t sample_count = 0;

  /// True when this request must travel as a kRequest2 frame.
  bool request2() const {
    return query_kind != 0 || encoding != kEncodingDense;
  }
};

/// Completion callback: status, results (kOk only), error text (other
/// statuses). Invoked on the client's reader thread — keep it cheap.
using ResponseCallback = std::function<void(
    Status, const std::vector<double>&, const std::string&)>;

class RpcClient {
 public:
  /// Connects and blocks until the hello handshake arrives.
  static std::unique_ptr<RpcClient> connect(const std::string& host,
                                            std::uint16_t port);

  ~RpcClient();
  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  const ServerInfo& server_info() const { return info_; }

  /// Pipelined asynchronous request. `model` empty = the server's first
  /// advertised model. `deadline_us` 0 = no per-request deadline. The
  /// future carries one probability per sample row, or RpcStatusError /
  /// RpcError. A non-zero `idempotency_key` (v3 servers only; silently
  /// dropped for older peers) marks retries of one logical request so
  /// the server can deduplicate them. Non-default `query` options select
  /// marginal/MPE inference or sparse evidence (v4 servers only; throws
  /// RpcError against an older peer).
  std::future<std::vector<double>> submit(const std::string& model,
                                          std::vector<std::uint8_t> samples,
                                          std::uint64_t deadline_us = 0,
                                          std::uint64_t idempotency_key = 0,
                                          const QueryOptions& query = {});

  /// As submit(), but delivers the raw response via `callback` (on the
  /// reader thread) instead of a future — the open-loop load generator's
  /// path, where thousands of outstanding futures would be pure overhead.
  void submit_with_callback(const std::string& model,
                            std::vector<std::uint8_t> samples,
                            std::uint64_t deadline_us,
                            ResponseCallback callback,
                            std::uint64_t idempotency_key = 0,
                            const QueryOptions& query = {});

  /// Synchronous convenience wrapper around submit().get().
  std::vector<double> infer(const std::string& model,
                            std::vector<std::uint8_t> samples,
                            std::uint64_t deadline_us = 0,
                            const QueryOptions& query = {});

  /// Asks the serving process to drain and exit (admin/CI path).
  void request_shutdown();

  /// Requests not yet answered.
  std::size_t outstanding() const;

  /// False once the connection dropped (every further submit would throw
  /// RpcError). The self-healing wrapper polls this to decide whether a
  /// fresh connection is needed.
  bool alive() const;

  /// Closes the connection; outstanding futures fail with RpcError.
  /// Idempotent; the destructor calls it.
  void close();

 private:
  RpcClient(Socket socket, ServerInfo info);

  /// A request awaiting its response: the completion callback plus the
  /// trace context minted at send time (invalid when unsampled), so the
  /// reader thread can close the request's flow chain on the response.
  struct PendingEntry {
    ResponseCallback callback;
    telemetry::TraceContext trace;
  };

  struct SentRequest {
    std::uint64_t request_id = 0;
    telemetry::TraceContext trace;
  };

  SentRequest send_request(const std::string& model,
                           std::vector<std::uint8_t> samples,
                           std::uint64_t deadline_us,
                           std::uint64_t idempotency_key,
                           const QueryOptions& query);
  void reader_loop();
  void fail_outstanding(const std::string& reason);

  Socket socket_;
  ServerInfo info_;
  std::thread reader_;
  std::mutex send_mutex_;
  mutable std::mutex pending_mutex_;
  std::map<std::uint64_t, PendingEntry> pending_;
  /// Wall-clock telemetry track of this connection ("rpc/clientN"); 0
  /// while tracing is disabled.
  telemetry::TrackId track_ = 0;
  /// Set by the reader on exit (guarded by pending_mutex_); submits after
  /// a lost connection fail fast instead of leaving a future hanging.
  bool reader_done_ = false;
  std::uint64_t next_request_id_ = 1;
  bool closed_ = false;
};

}  // namespace spnhbm::rpc
