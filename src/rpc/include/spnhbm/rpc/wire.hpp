// The spnhbm remote-serving wire protocol (length-prefixed binary frames).
//
// Every frame on the TCP stream is
//
//   | u32 magic "SPNR" | u8 type | u32 body_length | body ... |
//
// with all integers little-endian. The magic on every frame makes stream
// desynchronisation detectable immediately instead of after a garbage
// length. Frame types:
//
//   kHello     server -> client, once per connection, immediately after
//              accept: protocol version, server build string, and the
//              list of loaded models (id + input width), so a client can
//              validate payload widths without a round trip.
//   kRequest   client -> server: caller-chosen request id (echoed in the
//              response), model reference ("name@version" or unambiguous
//              bare name), optional per-request deadline in microseconds
//              (0 = none), and the sample payload (rows of the model's
//              input_features bytes).
//   kResponse  server -> client: echoed request id, a Status byte, and —
//              on kOk — one f64 probability per sample row, otherwise a
//              human-readable error message.
//   kShutdown  client -> server: asks the serving process to drain and
//              exit (the loopback admin path used by CI smoke runs).
//   kAdmin     client -> server (v2): live-introspection poll with an
//              empty body; answered immediately with kAdminReply, out of
//              band of the inference stream.
//   kAdminReply server -> client (v2): build/version info plus text
//              sections — Prometheus metrics exposition, per-engine
//              health states, the fleet replica map, and the tail
//              sampler's slowest-request breakdowns.
//
// Strings are u16 length + bytes; payloads and long text sections are
// u32 length + bytes. Frame bodies are capped at kMaxBodyBytes — a peer
// announcing more is treated as a protocol violation, not an allocation
// request.
//
// Version negotiation: the HELLO layout is frozen. A v2 REQUEST may
// append an optional fixed-size trace block (trace id + parent span id)
// after the sample payload; v1 frames simply omit it, and a v2 client
// sends it only when the server's HELLO advertised version >= 2, so old
// and new peers interoperate in both directions. ADMIN frames are
// likewise only sent to servers that advertised v2.
//
// A v3 REQUEST may additionally append a fixed 8-byte idempotency key
// after the (optional) trace block. The trailing-bytes length alone
// disambiguates every combination — 0 (neither), 8 (key), 16 (trace),
// 24 (trace + key) — and any other remainder is a protocol violation.
// Self-healing clients mint one non-zero key per logical request and
// reuse it across retries, so a server that already accepted the
// original can answer the retry from its idempotency cache instead of
// executing (and double-counting) the work.
//
// v4 adds kRequest2, the query-generic request frame: after the deadline
// it carries a query-kind byte (0 joint, 1 marginal, 2 MPE), a payload
// encoding byte (0 dense rows, 1 CSR sparse evidence stream), and an
// explicit u32 sample count (dense frames must agree with payload size /
// input width; sparse payloads are not self-describing without it). The
// same optional trace/idempotency tail applies. A v4 client keeps
// sending plain kRequest for dense joint traffic — byte-identical to v3
// — and sends kRequest2 only when the server's HELLO advertised >= 4;
// against an older server, marginal/MPE/sparse requests fail client-side
// with a clear error instead of a protocol violation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "spnhbm/telemetry/trace_context.hpp"
#include "spnhbm/util/error.hpp"

namespace spnhbm::rpc {

/// Version of the frame layout described above. Bumped on any change a
/// v1 peer could not parse; the client refuses to talk to a *newer*
/// server but serves/accepts every version back to 1.
inline constexpr std::uint16_t kProtocolVersion = 4;
/// First version carrying REQUEST trace blocks and ADMIN frames.
inline constexpr std::uint16_t kTraceProtocolVersion = 2;
/// First version carrying REQUEST idempotency keys.
inline constexpr std::uint16_t kIdempotencyProtocolVersion = 3;
/// First version carrying REQUEST2 frames (query kinds + sparse evidence).
inline constexpr std::uint16_t kQueryProtocolVersion = 4;

inline constexpr std::uint32_t kFrameMagic = 0x52'4E'50'53;  // "SPNR"
inline constexpr std::uint32_t kMaxBodyBytes = 64u << 20;
/// Bytes before the body: magic + type + body length.
inline constexpr std::size_t kFrameHeaderBytes = 9;

/// Malformed or protocol-violating bytes on the wire.
class WireError : public Error {
 public:
  explicit WireError(const std::string& what)
      : Error("wire error: " + what) {}
};

enum class FrameType : std::uint8_t {
  kHello = 1,
  kRequest = 2,
  kResponse = 3,
  kShutdown = 4,
  kAdmin = 5,
  kAdminReply = 6,
  /// v4 query-generic request (query kind + payload encoding + explicit
  /// sample count); answered with the same kResponse as kRequest.
  kRequest2 = 7,
};

/// Response status. kOverloaded and kNoHealthyEngine are *retryable*: the
/// request was never executed and the client should back off and resend.
enum class Status : std::uint8_t {
  kOk = 0,
  /// Malformed request (payload not a multiple of the input width, ...).
  kInvalidRequest = 1,
  /// The model reference matched nothing (or was ambiguous).
  kUnknownModel = 2,
  kDeadlineExceeded = 3,
  /// Every engine of the model is quarantined; retryable.
  kNoHealthyEngine = 4,
  /// Shed by admission control (rate limit or queue depth); retryable.
  kOverloaded = 5,
  /// The server is draining; retryable against a replacement instance.
  kShuttingDown = 6,
  kInternalError = 7,
};
std::string to_string(Status status);
bool is_retryable(Status status);

struct ModelInfo {
  std::string id;  ///< "name@version"
  std::uint32_t input_features = 0;
};

struct HelloFrame {
  std::uint16_t protocol_version = kProtocolVersion;
  std::string build_version;
  std::vector<ModelInfo> models;
};

struct RequestFrame {
  std::uint64_t request_id = 0;
  std::string model;
  /// Relative per-request deadline in microseconds; 0 = none.
  std::uint64_t deadline_us = 0;
  std::vector<std::uint8_t> samples;
  /// Optional (v2) distributed-tracing context. Encoded as a fixed
  /// 16-byte trailing block only when valid; absent on v1 frames and on
  /// untraced v2 requests.
  telemetry::TraceContext trace;
  /// Optional (v3) idempotency key; 0 = none. Encoded as a fixed 8-byte
  /// trailing block (after the trace block when both are present) only
  /// when non-zero. Stable across retries of one logical request.
  std::uint64_t idempotency_key = 0;
  // --- v4 kRequest2 fields (defaults describe a plain kRequest) ----------
  /// Query kind: 0 joint, 1 marginal, 2 MPE. The server folds it into the
  /// lane address (model id + query-kind suffix).
  std::uint8_t query_kind = 0;
  /// Payload encoding: 0 dense sample rows, 1 CSR sparse evidence stream.
  std::uint8_t encoding = 0;
  /// Explicit sample count; a sparse payload is not self-describing
  /// without it, and dense frames must agree with samples.size() / width.
  /// 0 on plain kRequest frames (the width derives the count).
  std::uint32_t sample_count = 0;
};

/// Payload encodings of a kRequest2 frame.
inline constexpr std::uint8_t kEncodingDense = 0;
inline constexpr std::uint8_t kEncodingSparse = 1;

struct ResponseFrame {
  std::uint64_t request_id = 0;
  Status status = Status::kOk;
  std::vector<double> results;  ///< kOk only
  std::string error;            ///< non-kOk only
};

/// Live-introspection snapshot (v2). The long sections travel as u32
/// length-prefixed text (the Prometheus exposition of a loaded registry
/// does not fit the u16 string cap).
struct AdminReplyFrame {
  std::uint16_t protocol_version = kProtocolVersion;
  std::string build_version;
  std::string metrics_text;   ///< Prometheus text exposition
  std::string health_text;    ///< per-engine health lines
  std::string replicas_text;  ///< fleet replica map; empty = single server
  std::string tail_text;      ///< tail-sampler slowest-request breakdowns
};

struct Frame {
  FrameType type = FrameType::kHello;
  std::vector<std::uint8_t> body;
};

/// Serialises a frame (header + body) into contiguous wire bytes.
std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Parses and validates a frame header (magic, type, body length).
/// Returns the body length still to be read off the stream.
std::uint32_t decode_frame_header(
    const std::uint8_t (&header)[kFrameHeaderBytes], FrameType& type);

Frame encode_hello(const HelloFrame& hello);
Frame encode_request(const RequestFrame& request);
/// v4 query-generic request. Throws WireError for an out-of-range query
/// kind or encoding, or a zero sample count.
Frame encode_request2(const RequestFrame& request);
Frame encode_response(const ResponseFrame& response);
Frame encode_shutdown();
Frame encode_admin();
Frame encode_admin_reply(const AdminReplyFrame& reply);

/// Body decoders; throw WireError on truncated or trailing bytes.
HelloFrame decode_hello(const std::vector<std::uint8_t>& body);
RequestFrame decode_request(const std::vector<std::uint8_t>& body);
RequestFrame decode_request2(const std::vector<std::uint8_t>& body);
ResponseFrame decode_response(const std::vector<std::uint8_t>& body);
AdminReplyFrame decode_admin_reply(const std::vector<std::uint8_t>& body);

}  // namespace spnhbm::rpc
