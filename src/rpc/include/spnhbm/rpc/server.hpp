// RpcServer: the TCP front door of the serving stack.
//
// Accepts up to `max_connections` concurrent clients on a loopback
// listener and bridges wire-protocol frames into an existing (already
// started) engine::InferenceService — a local InferenceServer or a
// fleet router spanning several devices. Per connection the server runs
//
//   * a reader thread — parses frames, runs admission control and
//     submits accepted requests (always via the non-blocking
//     try_submit, so a full queue can never stall the socket), and
//   * a writer thread — sends the hello handshake, then resolves each
//     accepted request's future and streams responses back in request
//     order (TCP delivers in order anyway; per-request deadlines bound
//     head-of-line waits).
//
// Admission control (see rpc/admission.hpp): a token bucket on the
// accepted-request rate plus a queue-depth bound on the backing server's
// outstanding samples. A request failing either gate is answered
// immediately with the retryable OVERLOADED status. Typed engine errors
// map onto wire statuses: DeadlineExceededError -> DEADLINE_EXCEEDED,
// NoHealthyEngineError -> NO_HEALTHY_ENGINE, model resolution failures ->
// UNKNOWN_MODEL, submit-after-stop -> SHUTTING_DOWN.
//
// Accounting invariants (asserted by tests and printed by describe()):
//   received = accepted + rejected + shed + duplicates
//   accepted = completed + failed
// so no request can vanish between the socket and the engine fleet.
//
// Idempotency (wire v3): a REQUEST carrying a non-zero idempotency key
// is remembered in a bounded cache. When the same key arrives again —
// a self-healing client retrying after a lost connection — the server
// answers from the cache (or with a retryable OVERLOADED while the
// original is still resolving) instead of re-executing the work, and
// counts the frame under `duplicates`. Retried requests are therefore
// never double-counted in the accepted/completed books.
//
// Network chaos: the reader, writer, accept and handshake paths consult
// the process-global fault::injector() at the sites
//
//   rpc.accept    instance "listener" — kFail refuses (closes) the
//                 accepted socket; window rules give refusal windows
//   rpc.hello     instance "conn<N>"  — kFail closes the connection
//                 before the HELLO handshake
//   rpc.conn.rx   instance "conn<N>"  — per received frame: kFail
//                 resets the connection, kCorrupt XORs the body with
//                 corrupt_mask (a bit-flipped frame on the wire),
//                 kStall/kDelay sleep duration_us before processing
//   rpc.conn.tx   instance "conn<N>"  — per sent frame: kFail resets
//                 the connection, kStall/kDelay model a slow peer by
//                 sleeping duration_us before the write
//
// keyed by the (site, instance, op-index) scheme, so a disarmed run is
// byte-identical and an armed run is reproducible by seed.
//
// The virtual-time simulation below the engines is untouched: everything
// here runs in wall time, on real threads, and registers wall-clock
// telemetry lanes ("rpc/conn<N>") plus rpc.* counters.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "spnhbm/engine/service.hpp"
#include "spnhbm/rpc/admission.hpp"
#include "spnhbm/rpc/socket.hpp"
#include "spnhbm/rpc/wire.hpp"
#include "spnhbm/telemetry/metrics.hpp"
#include "spnhbm/telemetry/trace.hpp"
#include "spnhbm/telemetry/trace_context.hpp"
#include "spnhbm/util/version.hpp"

namespace spnhbm::rpc {

struct AdmissionConfig {
  /// Token-bucket rate limit on accepted requests; <= 0 disables it.
  double rate_limit_rps = 0.0;
  /// Bucket capacity; <= 0 defaults to max(rate_limit_rps, 1).
  double burst = 0.0;
  /// Shed once the backing server's outstanding samples reach this bound
  /// (0 = rely on the server's own queue bound via try_submit).
  std::size_t max_outstanding_samples = 0;
};

struct RpcServerConfig {
  /// 0 = ephemeral port; read the bound one back via port().
  std::uint16_t port = 0;
  std::size_t max_connections = 64;
  AdmissionConfig admission;
  /// Advertised in the handshake.
  std::string build_version = kVersionString;
  /// Slowest traced requests retained for the ADMIN plane (ring bound).
  std::size_t tail_sample_capacity = 64;
  /// Idempotency entries retained (oldest evicted first). A retry whose
  /// key was already evicted is simply re-executed — safe, just no
  /// longer deduplicated.
  std::size_t idempotency_cache_capacity = 65536;
};

struct RpcServerStats {
  std::uint64_t connections_accepted = 0;
  /// Connections closed immediately because max_connections was reached.
  std::uint64_t connections_rejected = 0;
  /// Connections closed by an injected rpc.accept refusal fault.
  std::uint64_t connections_refused = 0;
  /// Request frames read off all sockets.
  std::uint64_t received = 0;
  /// Requests submitted into the InferenceServer (got a future).
  std::uint64_t accepted = 0;
  /// Pre-admission rejects: malformed payloads + unknown model refs.
  std::uint64_t rejected = 0;
  /// Retryable sheds, by gate.
  std::uint64_t shed_rate_limit = 0;
  std::uint64_t shed_queue_depth = 0;
  std::uint64_t shed_no_healthy_engine = 0;
  std::uint64_t shed_shutting_down = 0;
  /// Accepted requests that resolved OK / with an error status.
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  /// Of `failed`: deadline expirations (rpc- or engine-level).
  std::uint64_t deadline_exceeded = 0;
  /// Retried REQUESTs answered from the idempotency cache (or told to
  /// retry while the original was in flight) instead of re-executed.
  std::uint64_t duplicates = 0;
  /// Wall-clock request latency, frame receipt -> response sent.
  telemetry::HistogramSnapshot request_latency_us;

  std::uint64_t shed() const {
    return shed_rate_limit + shed_queue_depth + shed_no_healthy_engine +
           shed_shutting_down;
  }
  /// Both conservation identities hold.
  bool conserved() const {
    return received == accepted + rejected + shed() + duplicates &&
           accepted == completed + failed;
  }
  std::string describe() const;
};

class RpcServer {
 public:
  /// `server` is any InferenceService — a local InferenceServer or a
  /// fleet::FleetRouter spanning several devices. It must outlive the
  /// RpcServer and must already be start()ed (or be started before the
  /// first client connects). Binds the listener right here — throws
  /// RpcError when the port is taken — so port() is valid immediately;
  /// no client is accepted before start().
  RpcServer(engine::InferenceService& server, RpcServerConfig config = {});
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Starts the accept thread.
  void start();
  /// Stops accepting, shuts every connection down, resolves all in-flight
  /// requests (counting them, even when the response can no longer be
  /// delivered) and joins all threads. Idempotent.
  void stop();

  /// The bound port (resolves a port-0 request to the kernel's pick).
  std::uint16_t port() const { return port_; }

  /// True once a client sent a kShutdown frame.
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }
  /// Blocks until a kShutdown frame arrives or stop() is called.
  void wait_for_shutdown_request();

  std::size_t active_connections() const;
  RpcServerStats stats() const;
  /// Slowest retained traced requests (the ADMIN plane's tail view).
  const telemetry::TailSampler& tail_sampler() const { return tail_; }

 private:
  struct Outgoing {
    /// Pre-encoded frame (handshake or immediate reject)…
    std::vector<std::uint8_t> wire;
    /// …or an accepted request still resolving.
    std::optional<std::future<std::vector<double>>> future;
    std::uint64_t request_id = 0;
    std::uint64_t deadline_us = 0;
    std::chrono::steady_clock::time_point received;
    /// Trace context of the request (invalid when untraced).
    telemetry::TraceContext trace;
    /// Lane id + sample count, kept for the tail sampler's records.
    std::string model;
    std::uint64_t sample_count = 0;
    /// Non-zero when the request carried an idempotency key: the writer
    /// publishes the resolved response into the cache under this key.
    std::uint64_t idempotency_key = 0;
    /// ADMIN replies skip the request-latency accounting.
    bool admin = false;
  };

  /// One idempotency-cache slot: pending until the writer resolves the
  /// original, then the replayable response.
  struct IdempotencyEntry {
    bool done = false;
    ResponseFrame response;
  };

  struct Connection {
    Socket socket;
    std::uint64_t id = 0;
    std::thread reader;
    std::thread writer;
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Outgoing> outbox;
    bool reader_done = false;
    bool writer_done = false;
    telemetry::TrackId track = 0;
  };

  void accept_loop();
  void reader_loop(Connection& connection);
  void writer_loop(Connection& connection);
  /// Admission + submit; returns the outbox entry for the request.
  /// `request2` marks a v4 kRequest2 frame: the query-kind byte folds
  /// into the lane address (model ref + suffix), the explicit sample
  /// count is cross-checked (dense) or trusted to the sparse decoder,
  /// and a sparse payload routes through try_submit_sparse.
  Outgoing handle_request(Connection& connection, RequestFrame request,
                          bool request2 = false);
  /// Snapshot of the live plane, pre-encoded as an ADMIN reply.
  Outgoing handle_admin();
  ResponseFrame resolve(Outgoing& outgoing);
  void enqueue(Connection& connection, Outgoing outgoing);
  HelloFrame make_hello() const;

  engine::InferenceService& server_;
  RpcServerConfig config_;
  TokenBucket bucket_;
  Listener listener_;
  std::uint16_t port_ = 0;
  std::thread acceptor_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_requested_{false};
  mutable std::mutex mutex_;  ///< connections_ + stats_ + shutdown cv
  std::condition_variable cv_shutdown_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::uint64_t next_connection_id_ = 0;
  RpcServerStats stats_;
  /// Idempotency cache (guarded by mutex_): key -> entry, plus the
  /// insertion order for bounded eviction.
  std::map<std::uint64_t, IdempotencyEntry> idempotency_cache_;
  std::deque<std::uint64_t> idempotency_order_;
  telemetry::TailSampler tail_;
  std::shared_ptr<telemetry::Histogram> latency_us_;
  std::shared_ptr<telemetry::Counter> ctr_connections_;
  std::shared_ptr<telemetry::Counter> ctr_received_;
  std::shared_ptr<telemetry::Counter> ctr_accepted_;
  std::shared_ptr<telemetry::Counter> ctr_rejected_;
  std::shared_ptr<telemetry::Counter> ctr_shed_rate_limit_;
  std::shared_ptr<telemetry::Counter> ctr_shed_queue_depth_;
  std::shared_ptr<telemetry::Counter> ctr_completed_;
  std::shared_ptr<telemetry::Counter> ctr_failed_;
  std::shared_ptr<telemetry::Counter> ctr_duplicates_;
};

}  // namespace spnhbm::rpc
