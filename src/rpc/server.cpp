#include "spnhbm/rpc/server.hpp"

#include <algorithm>
#include <utility>

#include "spnhbm/compiler/datapath.hpp"
#include "spnhbm/engine/server.hpp"
#include "spnhbm/fault/fault.hpp"
#include "spnhbm/util/log.hpp"
#include "spnhbm/util/strings.hpp"

namespace spnhbm::rpc {

namespace {

using SteadyClock = std::chrono::steady_clock;

double us_since(SteadyClock::time_point start, SteadyClock::time_point end) {
  return std::chrono::duration<double, std::micro>(end - start).count();
}

/// Wall sleep for injected stall/delay decisions (network sites have no
/// virtual clock; a slow peer is wall-clock slow).
void fault_sleep(const fault::FaultDecision& decision) {
  if (decision.duration_us > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::micro>(
        decision.duration_us));
  }
}

}  // namespace

std::string RpcServerStats::describe() const {
  std::string text = strformat(
      "%llu connections (%llu rejected, %llu fault-refused); %llu requests "
      "= %llu accepted + %llu rejected + %llu shed (%llu rate-limit, "
      "%llu queue-depth, %llu no-healthy-engine, %llu shutting-down) + "
      "%llu duplicates; accepted = %llu completed + %llu failed "
      "(%llu deadline-exceeded)",
      static_cast<unsigned long long>(connections_accepted),
      static_cast<unsigned long long>(connections_rejected),
      static_cast<unsigned long long>(connections_refused),
      static_cast<unsigned long long>(received),
      static_cast<unsigned long long>(accepted),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(shed()),
      static_cast<unsigned long long>(shed_rate_limit),
      static_cast<unsigned long long>(shed_queue_depth),
      static_cast<unsigned long long>(shed_no_healthy_engine),
      static_cast<unsigned long long>(shed_shutting_down),
      static_cast<unsigned long long>(duplicates),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(failed),
      static_cast<unsigned long long>(deadline_exceeded));
  text += conserved() ? "; conservation ok" : "; conservation VIOLATED";
  if (request_latency_us.count > 0) {
    text += "; rpc latency us " + request_latency_us.summary();
  }
  return text;
}

RpcServer::RpcServer(engine::InferenceService& server, RpcServerConfig config)
    : server_(server),
      config_(std::move(config)),
      bucket_(config_.admission.rate_limit_rps,
              config_.admission.burst > 0.0
                  ? config_.admission.burst
                  : std::max(config_.admission.rate_limit_rps, 1.0)),
      listener_(config_.port),
      tail_(std::max<std::size_t>(config_.tail_sample_capacity, 1)) {
  port_ = listener_.port();
  latency_us_ = std::make_shared<telemetry::Histogram>();
  auto& registry = telemetry::metrics();
  registry.attach_histogram("rpc.request_latency_us", latency_us_);
  ctr_connections_ = registry.counter("rpc.connections");
  ctr_received_ = registry.counter("rpc.requests");
  ctr_accepted_ = registry.counter("rpc.accepted");
  ctr_rejected_ = registry.counter("rpc.rejected");
  ctr_shed_rate_limit_ = registry.counter("rpc.shed_rate_limit");
  ctr_shed_queue_depth_ = registry.counter("rpc.shed_queue_depth");
  ctr_completed_ = registry.counter("rpc.completed");
  ctr_failed_ = registry.counter("rpc.failed");
  ctr_duplicates_ = registry.counter("rpc.duplicates");
}

RpcServer::~RpcServer() { stop(); }

void RpcServer::start() {
  SPNHBM_REQUIRE(!started_.exchange(true), "RpcServer already started");
  acceptor_ = std::thread([this] { accept_loop(); });
}

void RpcServer::stop() {
  if (!started_.load()) return;
  if (stopping_.exchange(true)) return;  // first caller runs the teardown
  listener_.shutdown();
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    connections.swap(connections_);
  }
  for (auto& connection : connections) {
    connection->socket.shutdown();
  }
  for (auto& connection : connections) {
    if (connection->reader.joinable()) connection->reader.join();
    if (connection->writer.joinable()) connection->writer.join();
  }
  listener_.close();
  cv_shutdown_.notify_all();
}

void RpcServer::wait_for_shutdown_request() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_shutdown_.wait(lock, [this] {
    return shutdown_requested_.load(std::memory_order_acquire) ||
           stopping_.load();
  });
}

std::size_t RpcServer::active_connections() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t active = 0;
  for (const auto& connection : connections_) {
    std::lock_guard<std::mutex> connection_lock(connection->mutex);
    if (!connection->reader_done || !connection->writer_done) active += 1;
  }
  return active;
}

RpcServerStats RpcServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RpcServerStats snapshot = stats_;
  snapshot.request_latency_us = latency_us_->snapshot();
  return snapshot;
}

HelloFrame RpcServer::make_hello() const {
  HelloFrame hello;
  hello.build_version = config_.build_version;
  for (const std::string& id : server_.served_models()) {
    ModelInfo model;
    model.id = id;
    model.input_features =
        static_cast<std::uint32_t>(server_.input_features(id));
    hello.models.push_back(std::move(model));
  }
  return hello;
}

void RpcServer::accept_loop() {
  for (;;) {
    Socket socket = listener_.accept();
    if (!socket.valid()) return;  // listener shut down
    if (stopping_.load()) return;
    // Injected accept() refusal: the accepted socket is closed before the
    // handshake, modelling a refusal window on the listener.
    if (auto decision = fault::injector().decide("rpc.accept", "listener")) {
      if (decision.kind == fault::FaultKind::kStall ||
          decision.kind == fault::FaultKind::kDelay) {
        fault_sleep(decision);
      } else {
        SPNHBM_WARN("rpc") << "injected accept refusal (rpc.accept)";
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.connections_refused += 1;
        continue;  // Socket destructor closes the connection
      }
    }
    std::lock_guard<std::mutex> lock(mutex_);
    // Reap finished connections so long-lived servers do not accumulate
    // one entry per client ever seen.
    for (auto it = connections_.begin(); it != connections_.end();) {
      Connection& c = **it;
      bool finished;
      {
        // Only reap once BOTH threads have run to completion: the writer
        // may still be resolving its last popped entry (and taking the
        // server mutex for stats) after the outbox looks empty.
        std::lock_guard<std::mutex> connection_lock(c.mutex);
        finished = c.reader_done && c.writer_done;
      }
      if (finished) {
        if (c.reader.joinable()) c.reader.join();
        if (c.writer.joinable()) c.writer.join();
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
    if (connections_.size() >= config_.max_connections) {
      stats_.connections_rejected += 1;
      continue;  // Socket destructor closes the connection
    }
    auto connection = std::make_unique<Connection>();
    connection->socket = std::move(socket);
    connection->id = next_connection_id_++;
    connection->track = telemetry::tracer().register_track(
        "rpc/conn" + std::to_string(connection->id),
        telemetry::TraceClock::kWall);
    stats_.connections_accepted += 1;
    ctr_connections_->add(1);
    Connection& ref = *connection;
    connection->reader = std::thread([this, &ref] { reader_loop(ref); });
    connection->writer = std::thread([this, &ref] { writer_loop(ref); });
    connections_.push_back(std::move(connection));
  }
}

void RpcServer::enqueue(Connection& connection, Outgoing outgoing) {
  {
    std::lock_guard<std::mutex> lock(connection.mutex);
    connection.outbox.push_back(std::move(outgoing));
  }
  connection.cv.notify_one();
}

void RpcServer::reader_loop(Connection& connection) {
  const std::string fault_instance = "conn" + std::to_string(connection.id);
  try {
    for (;;) {
      std::uint8_t header[kFrameHeaderBytes];
      if (!connection.socket.recv_exact(header, sizeof(header))) break;
      FrameType type;
      const std::uint32_t body_length = decode_frame_header(header, type);
      std::vector<std::uint8_t> body(body_length);
      if (body_length > 0 &&
          !connection.socket.recv_exact(body.data(), body_length)) {
        throw RpcError("peer closed between frame header and body");
      }
      // Injected receive-path faults, one decision per frame: a reset
      // drops the connection, a corruption bit-flips the body (the
      // decoder then rejects it like any malformed frame), a stall
      // models a slow network before processing.
      if (auto decision =
              fault::injector().decide("rpc.conn.rx", fault_instance)) {
        switch (decision.kind) {
          case fault::FaultKind::kFail:
          case fault::FaultKind::kHang:
            throw RpcError("injected connection reset (rpc.conn.rx)");
          case fault::FaultKind::kCorrupt:
            for (auto& byte : body) byte ^= decision.corrupt_mask;
            break;
          default:
            fault_sleep(decision);
            break;
        }
      }
      switch (type) {
        case FrameType::kRequest:
          enqueue(connection, handle_request(connection, decode_request(body)));
          break;
        case FrameType::kRequest2:
          enqueue(connection, handle_request(connection, decode_request2(body),
                                             /*request2=*/true));
          break;
        case FrameType::kAdmin:
          enqueue(connection, handle_admin());
          break;
        case FrameType::kShutdown:
          SPNHBM_INFO("rpc") << "shutdown requested by connection "
                             << connection.id;
          shutdown_requested_.store(true, std::memory_order_release);
          cv_shutdown_.notify_all();
          break;
        default:
          throw WireError(strformat("unexpected client frame type %u",
                                    static_cast<unsigned>(type)));
      }
    }
  } catch (const std::exception& e) {
    if (!stopping_.load()) {
      SPNHBM_WARN("rpc") << "connection " << connection.id
                         << " dropped: " << e.what();
    }
    // Protocol violations and injected resets close the connection; the
    // explicit shutdown makes the close visible to the peer immediately
    // (the writer keeps draining futures for the accounting books).
    connection.socket.shutdown();
  }
  {
    std::lock_guard<std::mutex> lock(connection.mutex);
    connection.reader_done = true;
  }
  connection.cv.notify_all();
}

RpcServer::Outgoing RpcServer::handle_admin() {
  AdminReplyFrame reply;
  reply.build_version = config_.build_version;
  reply.metrics_text = telemetry::metrics().prometheus_text();
  reply.health_text = server_.health_text();
  reply.replicas_text = server_.replicas_text();
  reply.tail_text = tail_.describe();
  Outgoing outgoing;
  outgoing.admin = true;
  outgoing.received = SteadyClock::now();
  outgoing.wire = encode_frame(encode_admin_reply(reply));
  return outgoing;
}

RpcServer::Outgoing RpcServer::handle_request(Connection& connection,
                                              RequestFrame request,
                                              bool request2) {
  const auto received = SteadyClock::now();
  // The lane address folds the query-kind byte into the model reference
  // ("m@1" + kind 1 -> "m@1#marginal"), matching the suffixed lane ids
  // the serving layer advertises in HELLO.
  std::string lane_ref = request.model;
  if (request2 && request.query_kind != 0) {
    lane_ref += engine::query_lane_suffix(
        static_cast<compiler::QueryKind>(request.query_kind));
  }
  const bool sparse = request2 && request.encoding == kEncodingSparse;
  Outgoing outgoing;
  outgoing.request_id = request.request_id;
  outgoing.deadline_us = request.deadline_us;
  outgoing.received = received;
  outgoing.trace = request.trace;
  outgoing.model = lane_ref;

  ResponseFrame response;
  response.request_id = request.request_id;

  // Idempotency (v3): a key seen before marks a client retry. Answer
  // from the cache once the original completed OK — or with a retryable
  // status while it is still in flight — so completed work is never
  // re-executed and the frame lands in the `duplicates` book instead of
  // the accepted/completed ones. Failed executions drop their key on
  // resolution, so a retry of a failure re-executes from scratch.
  if (request.idempotency_key != 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = idempotency_cache_.find(request.idempotency_key);
    if (it != idempotency_cache_.end()) {
      stats_.received += 1;
      stats_.duplicates += 1;
      ctr_received_->add(1);
      ctr_duplicates_->add(1);
      if (it->second.done) {
        response = it->second.response;
        response.request_id = request.request_id;
      } else {
        response.status = Status::kOverloaded;
        response.error = "duplicate of an in-flight request (retryable)";
      }
      outgoing.wire = encode_frame(encode_response(response));
      return outgoing;
    }
  }

  auto reject = [&](Status status, const std::string& error,
                    std::uint64_t RpcServerStats::* bucket,
                    const std::shared_ptr<telemetry::Counter>& counter) {
    response.status = status;
    response.error = error;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stats_.received += 1;
      stats_.*bucket += 1;
    }
    ctr_received_->add(1);
    counter->add(1);
    outgoing.wire = encode_frame(encode_response(response));
  };

  // 1. Model resolution (width lookup doubles as the existence check).
  if (request.model.empty()) {
    reject(Status::kInvalidRequest, "request carries no model reference",
           &RpcServerStats::rejected, ctr_rejected_);
    return outgoing;
  }
  std::size_t features = 0;
  try {
    features = server_.input_features(lane_ref);
  } catch (const std::exception& e) {
    reject(Status::kUnknownModel, e.what(), &RpcServerStats::rejected,
           ctr_rejected_);
    return outgoing;
  }
  // 2. Payload validation. Dense payloads must be whole rows (and agree
  //    with an explicit REQUEST2 sample count); sparse streams are fully
  //    validated by the serving layer's decoder below.
  if (!sparse) {
    if (request.samples.empty() || request.samples.size() % features != 0) {
      reject(Status::kInvalidRequest,
             strformat("payload of %zu bytes is not a positive multiple of "
                       "the model's %zu input features",
                       request.samples.size(), features),
             &RpcServerStats::rejected, ctr_rejected_);
      return outgoing;
    }
    if (request2 &&
        request.sample_count != request.samples.size() / features) {
      reject(Status::kInvalidRequest,
             strformat("explicit sample count %u disagrees with the payload "
                       "(%zu rows of %zu bytes)",
                       request.sample_count, request.samples.size() / features,
                       features),
             &RpcServerStats::rejected, ctr_rejected_);
      return outgoing;
    }
  }
  // 3. Admission: token bucket, then queue depth. Shed responses go out
  //    immediately; the socket thread never blocks on queue space.
  if (!bucket_.try_acquire(received)) {
    reject(Status::kOverloaded, "shed by rate limit (retryable)",
           &RpcServerStats::shed_rate_limit, ctr_shed_rate_limit_);
    return outgoing;
  }
  if (config_.admission.max_outstanding_samples > 0 &&
      server_.outstanding_samples() >=
          config_.admission.max_outstanding_samples) {
    reject(Status::kOverloaded, "shed by queue depth (retryable)",
           &RpcServerStats::shed_queue_depth, ctr_shed_queue_depth_);
    return outgoing;
  }
  // 4. Submit (non-blocking; a full server queue is queue-depth shedding).
  //    Sparse streams route through try_submit_sparse, whose front-door
  //    decoder throws ParseError on a malformed payload — an invalid
  //    request, not an engine fault.
  try {
    outgoing.sample_count =
        sparse ? request.sample_count : request.samples.size() / features;
    auto future =
        sparse ? server_.try_submit_sparse(lane_ref, std::move(request.samples),
                                           request.sample_count, request.trace)
               : server_.try_submit(lane_ref, std::move(request.samples),
                                    request.trace);
    if (!future.has_value()) {
      reject(Status::kOverloaded, "shed by server queue bound (retryable)",
             &RpcServerStats::shed_queue_depth, ctr_shed_queue_depth_);
      return outgoing;
    }
    outgoing.future = std::move(future);
  } catch (const ParseError& e) {
    reject(Status::kInvalidRequest, e.what(), &RpcServerStats::rejected,
           ctr_rejected_);
    return outgoing;
  } catch (const engine::NoHealthyEngineError& e) {
    reject(Status::kNoHealthyEngine, e.what(),
           &RpcServerStats::shed_no_healthy_engine, ctr_failed_);
    return outgoing;
  } catch (const std::exception& e) {
    // A stopped / stopping InferenceServer surfaces as RuntimeApiError.
    reject(Status::kShuttingDown, e.what(),
           &RpcServerStats::shed_shutting_down, ctr_failed_);
    return outgoing;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.received += 1;
    stats_.accepted += 1;
    // Register the accepted key as in-flight; the writer publishes the
    // resolved response into this slot. Bounded: oldest entries fall out
    // first (an evicted key's late retry is simply re-executed).
    if (request.idempotency_key != 0) {
      outgoing.idempotency_key = request.idempotency_key;
      idempotency_cache_.emplace(request.idempotency_key, IdempotencyEntry{});
      idempotency_order_.push_back(request.idempotency_key);
      while (idempotency_order_.size() > config_.idempotency_cache_capacity) {
        idempotency_cache_.erase(idempotency_order_.front());
        idempotency_order_.pop_front();
      }
    }
  }
  ctr_received_->add(1);
  ctr_accepted_->add(1);
  if (request.trace.valid()) {
    auto& tracer = telemetry::tracer();
    tracer.complete_wall(connection.track, "admission", received,
                         SteadyClock::now());
    tracer.flow_wall(connection.track, "request", 't', request.trace.trace_id,
                     received);
  }
  return outgoing;
}

ResponseFrame RpcServer::resolve(Outgoing& outgoing) {
  ResponseFrame response;
  response.request_id = outgoing.request_id;
  if (outgoing.deadline_us > 0) {
    const auto deadline =
        outgoing.received + std::chrono::microseconds(outgoing.deadline_us);
    if (outgoing.future->wait_until(deadline) != std::future_status::ready) {
      // The engine may still compute the batch; only the response is due.
      response.status = Status::kDeadlineExceeded;
      response.error = strformat(
          "per-request deadline of %llu us expired before completion",
          static_cast<unsigned long long>(outgoing.deadline_us));
      return response;
    }
  }
  try {
    response.results = outgoing.future->get();
    response.status = Status::kOk;
  } catch (const engine::DeadlineExceededError& e) {
    response.status = Status::kDeadlineExceeded;
    response.error = e.what();
  } catch (const engine::NoHealthyEngineError& e) {
    response.status = Status::kNoHealthyEngine;
    response.error = e.what();
  } catch (const RuntimeApiError& e) {
    response.status = Status::kShuttingDown;
    response.error = e.what();
  } catch (const std::exception& e) {
    response.status = Status::kInternalError;
    response.error = e.what();
  }
  return response;
}

void RpcServer::writer_loop(Connection& connection) {
  const std::string fault_instance = "conn" + std::to_string(connection.id);
  bool peer_writable = true;
  auto send_frame = [&](const std::vector<std::uint8_t>& wire) {
    if (!peer_writable) return;
    // Injected send-path faults, one decision per frame: a reset drops
    // the connection mid-stream ("connection reset after N frames" via
    // window/every triggers), a stall models a slow peer draining its
    // receive window.
    if (auto decision =
            fault::injector().decide("rpc.conn.tx", fault_instance)) {
      if (decision.kind == fault::FaultKind::kStall ||
          decision.kind == fault::FaultKind::kDelay) {
        fault_sleep(decision);
      } else {
        SPNHBM_WARN("rpc") << "connection " << connection.id
                           << " injected send reset (rpc.conn.tx)";
        connection.socket.shutdown();
        peer_writable = false;
        return;
      }
    }
    try {
      connection.socket.send_all(wire.data(), wire.size());
    } catch (const std::exception& e) {
      // Keep draining futures for the accounting invariants even when the
      // responses can no longer be delivered.
      if (!stopping_.load()) {
        SPNHBM_WARN("rpc") << "connection " << connection.id
                           << " send failed: " << e.what();
      }
      peer_writable = false;
    }
  };

  // Injected HELLO rejection: the connection is closed before the
  // handshake, so the client's connect() fails and its reconnect/backoff
  // path is exercised.
  if (auto decision = fault::injector().decide("rpc.hello", fault_instance)) {
    if (decision.kind == fault::FaultKind::kStall ||
        decision.kind == fault::FaultKind::kDelay) {
      fault_sleep(decision);
    } else {
      SPNHBM_WARN("rpc") << "connection " << connection.id
                         << " injected hello rejection (rpc.hello)";
      connection.socket.shutdown();
      peer_writable = false;
    }
  }
  if (peer_writable) send_frame(encode_frame(encode_hello(make_hello())));
  for (;;) {
    Outgoing outgoing;
    {
      std::unique_lock<std::mutex> lock(connection.mutex);
      connection.cv.wait(lock, [&] {
        return !connection.outbox.empty() || connection.reader_done;
      });
      if (connection.outbox.empty()) break;  // reader done, outbox drained
      outgoing = std::move(connection.outbox.front());
      connection.outbox.pop_front();
    }
    Status status = Status::kOk;
    if (outgoing.future.has_value()) {
      ResponseFrame response = resolve(outgoing);
      status = response.status;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (response.status == Status::kOk) {
          stats_.completed += 1;
        } else {
          stats_.failed += 1;
          if (response.status == Status::kDeadlineExceeded) {
            stats_.deadline_exceeded += 1;
          }
        }
        if (outgoing.idempotency_key != 0) {
          auto it = idempotency_cache_.find(outgoing.idempotency_key);
          if (it != idempotency_cache_.end()) {
            if (response.status == Status::kOk) {
              it->second.done = true;
              it->second.response = response;
            } else {
              // A failed execution must not pin the key: the client's
              // retry asks for a re-execution, not a replay of the
              // failure. Only completed work is dedup-protected.
              idempotency_cache_.erase(it);
            }
          }
        }
      }
      (response.status == Status::kOk ? ctr_completed_ : ctr_failed_)->add(1);
      outgoing.wire = encode_frame(encode_response(response));
    }
    send_frame(outgoing.wire);
    if (outgoing.admin) continue;  // not a request: no latency accounting
    const auto now = SteadyClock::now();
    const double latency_us = us_since(outgoing.received, now);
    latency_us_->record(latency_us);
    auto& tracer = telemetry::tracer();
    if (tracer.enabled() && connection.track != 0) {
      tracer.complete_wall(connection.track, "request", outgoing.received,
                           now);
    }
    if (outgoing.trace.valid()) {
      // Server-side flow step across the whole frame-to-response window,
      // then the record competes for a slot in the tail ring.
      tracer.flow_wall(connection.track, "request", 't',
                       outgoing.trace.trace_id, outgoing.received);
      telemetry::RequestTraceRecord record;
      record.trace_id = outgoing.trace.trace_id;
      record.model = outgoing.model;
      record.status = to_string(status);
      record.sample_count = outgoing.sample_count;
      record.latency_us = latency_us;
      record.spans.push_back({"request", 0.0, latency_us, 0});
      tail_.offer(std::move(record));
    }
  }
  {
    std::lock_guard<std::mutex> lock(connection.mutex);
    connection.writer_done = true;
  }
  connection.cv.notify_all();
}

}  // namespace spnhbm::rpc
