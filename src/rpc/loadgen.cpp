#include "spnhbm/rpc/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "spnhbm/rpc/resilient_client.hpp"
#include "spnhbm/telemetry/json.hpp"
#include "spnhbm/util/error.hpp"
#include "spnhbm/util/rng.hpp"
#include "spnhbm/util/strings.hpp"

namespace spnhbm::rpc {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t to_us(double seconds) {
  return static_cast<std::uint64_t>(std::llround(seconds * 1e6));
}

}  // namespace

ArrivalProcess parse_arrival_process(const std::string& name) {
  if (name == "fixed") return ArrivalProcess::kFixed;
  if (name == "poisson") return ArrivalProcess::kPoisson;
  if (name == "bursty" || name == "burst") return ArrivalProcess::kBursty;
  throw ParseError("unknown arrival process '" + name +
                   "' (expected fixed, poisson or bursty)");
}

const char* to_string(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::kFixed: return "fixed";
    case ArrivalProcess::kPoisson: return "poisson";
    case ArrivalProcess::kBursty: return "bursty";
  }
  return "?";
}

std::vector<std::uint64_t> make_schedule(const LoadgenConfig& config) {
  SPNHBM_REQUIRE(config.rate_rps > 0.0, "loadgen rate must be positive");
  const double period = 1.0 / config.rate_rps;
  std::vector<std::uint64_t> offsets;
  offsets.reserve(config.request_count);
  Rng rng(config.seed);
  double now = 0.0;
  switch (config.arrival) {
    case ArrivalProcess::kFixed:
      for (std::size_t i = 0; i < config.request_count; ++i) {
        offsets.push_back(to_us(static_cast<double>(i) * period));
      }
      break;
    case ArrivalProcess::kPoisson:
      for (std::size_t i = 0; i < config.request_count; ++i) {
        offsets.push_back(to_us(now));
        // Exponential inter-arrival; 1 - u avoids log(0).
        now += -std::log(1.0 - rng.next_double()) * period;
      }
      break;
    case ArrivalProcess::kBursty: {
      const std::size_t burst = std::max<std::size_t>(config.burst_size, 1);
      // A whole burst lands at one instant; bursts are spaced so the
      // mean rate still matches rate_rps.
      const double burst_period = period * static_cast<double>(burst);
      for (std::size_t i = 0; i < config.request_count; ++i) {
        const std::size_t burst_index = i / burst;
        offsets.push_back(
            to_us(static_cast<double>(burst_index) * burst_period));
      }
      break;
    }
  }
  return offsets;
}

std::vector<std::size_t> make_model_picks(const LoadgenConfig& config) {
  if (config.traffic.empty()) return {};
  double total_weight = 0.0;
  for (const auto& traffic : config.traffic) {
    SPNHBM_REQUIRE(traffic.weight > 0.0, "traffic weights must be positive");
    total_weight += traffic.weight;
  }
  // An independent stream from the arrival schedule's, so adding a model
  // to the mix never perturbs the arrival instants.
  Rng rng(config.seed ^ 0x6d6f64656c6dULL);
  std::vector<std::size_t> picks;
  picks.reserve(config.request_count);
  for (std::size_t i = 0; i < config.request_count; ++i) {
    double draw = rng.next_double() * total_weight;
    std::size_t pick = config.traffic.size() - 1;
    for (std::size_t t = 0; t < config.traffic.size(); ++t) {
      draw -= config.traffic[t].weight;
      if (draw < 0.0) {
        pick = t;
        break;
      }
    }
    picks.push_back(pick);
  }
  return picks;
}

LoadgenReport run_loadgen(const LoadgenConfig& config) {
  if (config.traffic.empty()) {
    SPNHBM_REQUIRE(!config.payloads.empty(),
                   "loadgen needs at least one payload");
  } else {
    for (const auto& traffic : config.traffic) {
      SPNHBM_REQUIRE(!traffic.payloads.empty(),
                     "every traffic entry needs at least one payload");
    }
  }
  SPNHBM_REQUIRE(config.connections > 0, "loadgen needs at least one connection");

  std::vector<std::unique_ptr<ResilientClient>> clients;
  clients.reserve(config.connections);
  for (std::size_t i = 0; i < config.connections; ++i) {
    ResilientClientConfig client_config;
    client_config.host = config.host;
    client_config.port = config.port;
    client_config.label = "loadgen" + std::to_string(i);
    client_config.seed = config.seed;
    client_config.max_attempts = std::max(config.max_attempts, 1);
    client_config.retry_budget_us = config.retry_budget_us;
    clients.push_back(
        std::make_unique<ResilientClient>(std::move(client_config)));
    // Dial eagerly so an unreachable server still fails fast, like the
    // old plain-client path did.
    clients.back()->server_info();
  }

  const std::vector<std::uint64_t> schedule = make_schedule(config);
  const std::vector<std::size_t> picks = make_model_picks(config);
  // Per-model payload cursors, so each model cycles its own payloads no
  // matter how the mix interleaves.
  std::vector<std::size_t> payload_cursor(config.traffic.size(), 0);
  std::map<std::string, std::uint64_t> sent_by_model;

  // Shared completion state; callbacks run on the clients' reader threads.
  const telemetry::HistogramOptions latency_options{
      /*first_bucket=*/1.0, /*growth=*/1.5, /*bucket_count=*/64};
  auto latency = std::make_shared<telemetry::Histogram>(latency_options);
  telemetry::metrics().attach_histogram("rpc.loadgen_latency_us", latency);
  // One histogram per model reference, created up front so callbacks can
  // record without taking the shared mutex.
  std::map<std::string, std::shared_ptr<telemetry::Histogram>> model_latency;
  if (config.traffic.empty()) {
    model_latency[config.model] =
        std::make_shared<telemetry::Histogram>(latency_options);
  } else {
    for (const auto& traffic : config.traffic) {
      if (!model_latency.count(traffic.model)) {
        model_latency[traffic.model] =
            std::make_shared<telemetry::Histogram>(latency_options);
      }
    }
  }
  std::mutex mutex;
  std::condition_variable cv;
  std::array<std::uint64_t, 8> by_status{};
  std::array<std::uint64_t, 6> giveup_by_reason{};
  std::uint64_t outstanding = 0;

  const Clock::time_point start = Clock::now();
  std::uint64_t sent = 0;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    // Open loop: sleep to the scheduled instant no matter how the server
    // is doing, then fire. A late wakeup just fires immediately.
    std::this_thread::sleep_until(start + std::chrono::microseconds(schedule[i]));
    ResilientClient& client = *clients[i % clients.size()];
    const std::string* model;
    const std::vector<std::uint8_t>* payload;
    const QueryOptions* query;
    if (picks.empty()) {
      model = &config.model;
      payload = &config.payloads[i % config.payloads.size()];
      query = &config.query;
    } else {
      const ModelTraffic& traffic = config.traffic[picks[i]];
      model = &traffic.model;
      payload = &traffic.payloads[payload_cursor[picks[i]]++ %
                                  traffic.payloads.size()];
      query = &traffic.query;
    }
    const Clock::time_point fired = Clock::now();
    telemetry::Histogram* per_model = model_latency.at(*model).get();
    const auto on_response = [&, fired, per_model](Status status,
                                                   const std::vector<double>&,
                                                   const std::string&,
                                                   GiveUpReason reason) {
      if (status == Status::kOk) {
        const double us = std::chrono::duration<double, std::micro>(
                              Clock::now() - fired)
                              .count();
        latency->record(us);
        per_model->record(us);
      }
      std::lock_guard<std::mutex> lock(mutex);
      ++by_status[static_cast<std::size_t>(status) % by_status.size()];
      ++giveup_by_reason[static_cast<std::size_t>(reason) %
                         giveup_by_reason.size()];
      --outstanding;
      cv.notify_all();
    };
    try {
      {
        std::lock_guard<std::mutex> lock(mutex);
        ++outstanding;
      }
      client.submit_with_callback(*model, *payload, config.deadline_us,
                                  on_response, *query);
      ++sent;
      ++sent_by_model[*model];
    } catch (const Error&) {
      // submit throws only after close(); the request never left, but it
      // must still land in exactly one accounting bucket.
      ++sent;
      ++sent_by_model[*model];
      std::lock_guard<std::mutex> lock(mutex);
      ++by_status[static_cast<std::size_t>(Status::kInternalError)];
      ++giveup_by_reason[static_cast<std::size_t>(GiveUpReason::kClientClosed)];
      --outstanding;
    }
  }

  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return outstanding == 0; });
  }
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();

  if (config.shutdown_server_after) {
    try {
      clients.front()->request_shutdown();
    } catch (const Error&) {
      // Server already gone — that is what shutdown wanted anyway.
    }
  }
  LoadgenReport report;
  for (auto& client : clients) {
    const std::uint64_t connects = client->connects();
    if (connects > 1) report.reconnects += connects - 1;
    client->close();
  }
  report.sent = sent;
  {
    std::lock_guard<std::mutex> lock(mutex);
    report.by_status = by_status;
    report.giveup_by_reason = giveup_by_reason;
  }
  report.wall_seconds = wall;
  report.sent_by_model = std::move(sent_by_model);
  report.offered_rps = config.rate_rps;
  report.achieved_rps =
      wall > 0.0 ? static_cast<double>(report.ok()) / wall : 0.0;
  report.latency_us = latency->snapshot();
  for (const auto& [model, histogram] : model_latency) {
    report.latency_by_model[model] = histogram->snapshot();
  }
  return report;
}

std::uint64_t LoadgenReport::ok() const {
  return by_status[static_cast<std::size_t>(Status::kOk)];
}

std::uint64_t LoadgenReport::retryable() const {
  return by_status[static_cast<std::size_t>(Status::kOverloaded)] +
         by_status[static_cast<std::size_t>(Status::kNoHealthyEngine)] +
         by_status[static_cast<std::size_t>(Status::kShuttingDown)];
}

std::uint64_t LoadgenReport::failed() const { return sent - ok(); }

double LoadgenReport::failure_fraction() const {
  return sent > 0 ? static_cast<double>(failed()) / static_cast<double>(sent)
                  : 0.0;
}

bool LoadgenReport::conserved() const {
  std::uint64_t total = 0;
  for (const std::uint64_t n : by_status) total += n;
  return total == sent;
}

std::string LoadgenReport::describe() const {
  std::string out;
  out += strformat("loadgen: sent=%llu ok=%llu retryable=%llu wall=%.3fs\n",
                   static_cast<unsigned long long>(sent),
                   static_cast<unsigned long long>(ok()),
                   static_cast<unsigned long long>(retryable()), wall_seconds);
  out += strformat("  offered %.1f req/s, achieved %.1f req/s (ok only)\n",
                   offered_rps, achieved_rps);
  if (sent_by_model.size() > 1) {
    for (const auto& [model, count] : sent_by_model) {
      out += strformat("  model %-24s %llu requests",
                       (model.empty() ? "<default>" : model.c_str()),
                       static_cast<unsigned long long>(count));
      const auto it = latency_by_model.find(model);
      if (it != latency_by_model.end() && it->second.count > 0) {
        out += "; latency_us " + it->second.summary();
      }
      out += "\n";
    }
  }
  for (std::size_t i = 0; i < by_status.size(); ++i) {
    if (by_status[i] == 0) continue;
    out += strformat("  status %-17s %llu\n",
                     to_string(static_cast<Status>(i)).c_str(),
                     static_cast<unsigned long long>(by_status[i]));
  }
  // The give-up histogram: why requests ended without an OK. Index 0
  // (kNone) is the non-give-up bucket, so start at 1.
  for (std::size_t i = 1; i < giveup_by_reason.size(); ++i) {
    if (giveup_by_reason[i] == 0) continue;
    out += strformat("  give-up %-20s %llu\n",
                     to_string(static_cast<GiveUpReason>(i)),
                     static_cast<unsigned long long>(giveup_by_reason[i]));
  }
  if (reconnects > 0) {
    out += strformat("  reconnects: %llu\n",
                     static_cast<unsigned long long>(reconnects));
  }
  out += "  latency_us: " + latency_us.summary() + "\n";
  out += strformat("  conservation (sent == sum over statuses): %s\n",
                   conserved() ? "ok" : "VIOLATED");
  return out;
}

std::string LoadgenReport::bench_json() const {
  telemetry::JsonWriter w;
  const auto emit_latency = [&w](const telemetry::HistogramSnapshot& snap) {
    w.key("latency_mean_us")
        .value(snap.count > 0 ? snap.sum / static_cast<double>(snap.count)
                              : 0.0);
    w.key("latency_p50_us").value(snap.p50());
    w.key("latency_p95_us").value(snap.p95());
    w.key("latency_p99_us").value(snap.p99());
  };
  w.begin_object();
  w.key("bench").value("loadgen");
  w.key("records").begin_array();
  w.begin_object();
  w.key("name").value("overall");
  w.key("sent").value(sent);
  w.key("ok").value(ok());
  w.key("failed").value(failed());
  w.key("offered_rps").value(offered_rps);
  w.key("achieved_rps").value(achieved_rps);
  w.key("wall_seconds").value(wall_seconds);
  w.key("reconnects").value(reconnects);
  // Full give-up histogram (zeros included) so baseline comparisons see
  // a stable field set run over run.
  for (std::size_t i = 1; i < giveup_by_reason.size(); ++i) {
    w.key(std::string("giveup_") + to_string(static_cast<GiveUpReason>(i)))
        .value(giveup_by_reason[i]);
  }
  emit_latency(latency_us);
  w.end_object();
  for (const auto& [model, count] : sent_by_model) {
    w.begin_object();
    w.key("name").value(model.empty() ? "<default>" : model);
    w.key("sent").value(count);
    const auto it = latency_by_model.find(model);
    emit_latency(it != latency_by_model.end() ? it->second
                                              : telemetry::HistogramSnapshot{});
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace spnhbm::rpc
