#include "spnhbm/tune/tuner.hpp"

#include <algorithm>
#include <set>
#include <vector>

#include "spnhbm/compiler/datapath.hpp"
#include "spnhbm/util/error.hpp"
#include "spnhbm/util/strings.hpp"

namespace spnhbm::tune {
namespace {

constexpr std::size_t kMinBlock = std::size_t{1} << 10;
constexpr std::size_t kMaxBlock = std::size_t{1} << 20;
constexpr std::size_t kMinBatch = 64;
constexpr std::size_t kMaxBatch = std::size_t{1} << 16;
constexpr std::uint64_t kMinFlushUs = 100;
constexpr std::uint64_t kMaxFlushUs = 10000;

/// A climb move: label for the search log + the mutation it applies.
struct Move {
  const char* label;
  void (*apply)(model::TunedConfig&, int max_pe);
};

constexpr Move kMoves[] = {
    {"block/2",
     [](model::TunedConfig& c, int) {
       c.block_samples = std::max(c.block_samples / 2, kMinBlock);
     }},
    {"block*2",
     [](model::TunedConfig& c, int) {
       c.block_samples = std::min(c.block_samples * 2, kMaxBlock);
     }},
    {"batch/2",
     [](model::TunedConfig& c, int) {
       c.batch_samples = std::max(c.batch_samples / 2, kMinBatch);
     }},
    {"batch*2",
     [](model::TunedConfig& c, int) {
       c.batch_samples = std::min(c.batch_samples * 2, kMaxBatch);
     }},
    {"flush/2",
     [](model::TunedConfig& c, int) {
       c.flush_deadline_us = std::max(c.flush_deadline_us / 2, kMinFlushUs);
     }},
    {"flush*2",
     [](model::TunedConfig& c, int) {
       c.flush_deadline_us = std::min(c.flush_deadline_us * 2, kMaxFlushUs);
     }},
    {"pe-1",
     [](model::TunedConfig& c, int) { c.pe_count = std::max(c.pe_count - 1, 1); }},
    {"pe+1",
     [](model::TunedConfig& c, int max_pe) {
       c.pe_count = std::min(c.pe_count + 1, max_pe);
     }},
    {"pack",
     [](model::TunedConfig& c, int) {
       c.hbm_pes_per_channel = c.hbm_pes_per_channel == 1 ? 2 : 1;
     }},
    {"xbar",
     [](model::TunedConfig& c, int) { c.hbm_crossbar = !c.hbm_crossbar; }},
};

}  // namespace

model::TunedConfig default_config(const model::ModelArtifact& artifact,
                                  fpga::Platform platform, int max_pe_count) {
  model::TunedConfig config;
  config.block_samples = fpga::cal::kDefaultBlockSamples;
  config.pe_count = fpga::max_placeable_pes(artifact.module(),
                                            artifact.backend().kind(), platform);
  if (max_pe_count > 0) config.pe_count = std::min(config.pe_count, max_pe_count);
  config.hbm_pes_per_channel = 1;
  config.hbm_crossbar = false;
  config.batch_samples = 1024;
  config.flush_deadline_us = 1000;
  return config;
}

model::TuningManifest TuneResult::manifest(
    const model::ModelArtifact& artifact) const {
  model::TuningManifest manifest;
  manifest.model_id = artifact.id();
  manifest.content_hash_hex = artifact.content_hash_hex();
  manifest.query = compiler::query_kind_name(artifact.module().query());
  manifest.seed = seed;
  manifest.config = best;
  manifest.tuned_samples_per_second = best_score.samples_per_second;
  manifest.baseline_samples_per_second = baseline_score.samples_per_second;
  manifest.candidates_evaluated = candidates_evaluated;
  return manifest;
}

TuneResult tune(const model::ModelHandle& model, const TuneOptions& options) {
  TuneResult result;
  result.seed = options.seed != 0 ? options.seed : options.workload.seed;
  WorkloadSpec spec = options.workload;
  spec.seed = result.seed;
  const auto trace = make_trace(spec);

  const int placeable = fpga::max_placeable_pes(
      model->module(), model->backend().kind(), options.platform);
  const int max_pe = options.max_pe_count > 0
                         ? std::min(options.max_pe_count, placeable)
                         : placeable;

  std::string log;
  log += "# spnhbm tune v1\n";
  log += strformat("# model %s hash=%s query=%s\n", model->id().c_str(),
                   model->content_hash_hex().c_str(),
                   compiler::query_kind_name(model->module().query()));
  log += "# workload " + spec.describe() + "\n";
  log += strformat("# budget max_evaluations=%zu max_pe=%d\n",
                   options.max_evaluations, max_pe);

  // Score cache keyed on the config's canonical description — revisiting
  // a config (grid overlap, climb backtrack) is free and not re-counted
  // against the budget.
  std::set<std::string> visited;
  std::uint64_t evaluations = 0;
  auto evaluate = [&](const model::TunedConfig& config) {
    ++evaluations;
    return score_candidate(model, config, spec, trace, options.platform);
  };

  result.baseline = default_config(*model, options.platform, options.max_pe_count);
  result.baseline_score = evaluate(result.baseline);
  visited.insert(result.baseline.describe());
  log += "baseline " + result.baseline.describe() + " -> " +
         result.baseline_score.describe() + "\n";
  if (!result.baseline_score.feasible) {
    throw ConfigError("tuning baseline is infeasible for " + model->id() +
                      ": " + result.baseline_score.rejection);
  }

  result.best = result.baseline;
  result.best_score = result.baseline_score;

  auto consider = [&](const model::TunedConfig& config, const char* origin) {
    if (evaluations >= options.max_evaluations) return false;
    if (!visited.insert(config.describe()).second) return false;
    const auto score = evaluate(config);
    const bool improved = score.better_than(result.best_score);
    log += strformat("eval %llu %s ",
                     static_cast<unsigned long long>(evaluations), origin) +
           config.describe() + " -> " + score.describe() +
           (improved ? " [best]\n" : "\n");
    if (improved) {
      result.best = config;
      result.best_score = score;
    }
    return improved;
  };

  // --- Grid seed: the coarse corners of the space -------------------------
  const std::size_t blocks[] = {std::size_t{1} << 14, std::size_t{1} << 16,
                                std::size_t{1} << 18};
  const int pes[] = {1, max_pe};
  for (const auto block : blocks) {
    for (const auto pe : pes) {
      // Blocks are the distribution granule: a batch smaller than
      // block*pe leaves PEs idle, so the grid pairs every (block, pe)
      // corner with one batch that keeps every PE busy ("full") next to
      // the fixed sizes — without it, hill climbing can never cross the
      // ridge from small-batch/one-PE configs to batch-parallel ones.
      const std::size_t full = std::clamp(
          block * static_cast<std::size_t>(pe), kMinBatch, kMaxBatch);
      const std::size_t batches[] = {1024, 4096, full};
      for (const auto batch : batches) {
        model::TunedConfig candidate = result.baseline;
        candidate.block_samples = block;
        candidate.pe_count = pe;
        candidate.batch_samples = batch;
        consider(candidate, "grid");
      }
    }
  }

  // --- Hill climb from the grid winner ------------------------------------
  bool moved = true;
  while (moved && evaluations < options.max_evaluations) {
    moved = false;
    const model::TunedConfig here = result.best;
    for (const auto& move : kMoves) {
      model::TunedConfig neighbour = here;
      move.apply(neighbour, max_pe);
      if (neighbour == here) continue;  // clamped into a no-op
      const auto origin = std::string("climb[") + move.label + "]";
      if (consider(neighbour, origin.c_str())) moved = true;
    }
  }

  result.candidates_evaluated = evaluations;
  log += "best " + result.best.describe() + " -> " +
         result.best_score.describe() +
         strformat(" after %llu evaluations\n",
                   static_cast<unsigned long long>(evaluations));
  result.search_log = std::move(log);
  return result;
}

}  // namespace spnhbm::tune
