// Simulator-backed cost model for tuning candidates.
//
// score_candidate() builds a fresh FpgaSimEngine composed exactly as the
// candidate prescribes (PE count, block size, HBM channel packing,
// crossbar routing) and replays the workload trace against it in virtual
// time. The replay mirrors the InferenceServer dispatcher: requests
// coalesce greedily up to the candidate's batch_samples, a partial batch
// flushes once its oldest request has waited flush_deadline_us, sparse
// streams ride alone, and the engine serves one batch at a time. Dense
// batch service times come from the block-pipelined timing path
// (InferenceRuntime::run), memoised per batch size; sparse service times
// come from timing real CSR streams through infer_sparse. Everything is
// virtual-time DES — scoring a candidate takes milliseconds of wall
// clock and is bit-reproducible from the trace.
//
// Candidates that cannot be composed (placement deficit, invalid knobs,
// device memory exhausted by the block size) score as infeasible with
// the typed error's message as the rejection reason — the tuner treats
// them as search-space walls rather than failures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "spnhbm/fpga/resource_model.hpp"
#include "spnhbm/model/artifact.hpp"
#include "spnhbm/model/tuning.hpp"
#include "spnhbm/tune/workload.hpp"

namespace spnhbm::tune {

/// How one candidate fared on the workload.
struct CandidateScore {
  bool feasible = false;
  /// Samples served per second of virtual time, first arrival to last
  /// completion. The tuner's objective (higher is better).
  double samples_per_second = 0.0;
  /// Mean request latency (arrival -> last slice completed), microseconds.
  double mean_latency_us = 0.0;
  /// Virtual makespan of the whole trace in microseconds.
  std::uint64_t makespan_us = 0;
  /// Batches the replayed dispatcher formed.
  std::uint64_t batches = 0;
  /// Why the candidate was rejected (infeasible candidates only).
  std::string rejection;

  /// "thr=... samples/s mean_lat=...us batches=..." or "infeasible: ...".
  std::string describe() const;
  /// Strictly better under the tuner's objective: higher throughput,
  /// ties broken by lower mean latency.
  bool better_than(const CandidateScore& other) const;
};

/// Scores `config` for `model` by replaying `trace` (from make_trace on
/// `spec`; passed in so one trace serves every candidate) on a fresh
/// simulated card of `platform`. Never throws for infeasible candidates.
CandidateScore score_candidate(const model::ModelHandle& model,
                               const model::TunedConfig& config,
                               const WorkloadSpec& spec,
                               const std::vector<WorkloadRequest>& trace,
                               fpga::Platform platform);

}  // namespace spnhbm::tune
