// Representative serving workloads for the autotuner.
//
// The tuner does not score candidates on a synthetic steady-state stream:
// batching and flush-deadline knobs only matter under a request mix with
// sizes and arrival gaps. A WorkloadSpec describes that mix — request
// count, sample-count distribution, open-loop arrival rate, dense/sparse
// split — and make_trace() expands it into a deterministic request trace
// (seeded xoshiro, no wall-clock entropy), so the same spec + seed always
// yields the same trajectory through the cost model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace spnhbm::tune {

struct WorkloadSpec {
  /// Requests in the trace.
  std::size_t requests = 48;
  /// Mean samples per request; individual requests draw log-uniformly
  /// from [mean/4, mean*4] (heavy-ish tail, like real batch queries).
  std::size_t mean_request_samples = 4096;
  /// Open-loop mean inter-arrival gap in (virtual) microseconds,
  /// exponentially distributed. 0 = everything arrives at time zero
  /// (a pure-throughput workload; flush deadlines become irrelevant).
  std::uint64_t mean_interarrival_us = 200;
  /// Fraction of requests submitted as sparse CSR evidence streams.
  double sparse_fraction = 0.0;
  /// Active-feature fraction of each sparse request.
  double sparse_density = 0.25;
  /// Seed of the whole trace (sizes, gaps, sparse placement).
  std::uint64_t seed = 42;

  /// "requests=48 mean_samples=4096 interarrival_us=200 ..."
  std::string describe() const;
};

/// One request of the expanded trace.
struct WorkloadRequest {
  std::uint64_t arrival_us = 0;  ///< virtual arrival time
  std::size_t samples = 0;
  bool sparse = false;
};

/// Expands `spec` into its deterministic trace, sorted by arrival.
std::vector<WorkloadRequest> make_trace(const WorkloadSpec& spec);

}  // namespace spnhbm::tune
