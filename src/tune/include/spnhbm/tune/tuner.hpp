// The configuration autotuner: grid seed + hill-climbing refinement over
// the serving knobs {block_samples, pe_count, hbm channel packing,
// crossbar routing, batch_samples, flush_deadline_us}, scored by the
// calibrated simulator (cost_model.hpp) on a representative workload.
//
// The search is deterministic: the workload trace is seeded, the grid is
// a fixed list, the climb always moves to the best strictly-improving
// neighbour, and every number in the search log is formatted with fixed
// precision — so the same model + spec + seed reproduces the same log
// byte for byte and the same winning config. Infeasible candidates
// (placement deficits, invalid knob combinations, device memory
// exhaustion) are logged with their typed rejection and treated as walls.
//
// tune() returns both the winner and the baseline it had to beat —
// default_config(), the hand-picked defaults a careful operator would
// choose without a tuner (calibrated block size, maximum routable PEs,
// dedicated HBM channels, a round batch size) — plus a ready-to-save
// TuningManifest via TuneResult::manifest().
#pragma once

#include <cstdint>
#include <string>

#include "spnhbm/fpga/resource_model.hpp"
#include "spnhbm/model/artifact.hpp"
#include "spnhbm/model/tuning.hpp"
#include "spnhbm/tune/cost_model.hpp"
#include "spnhbm/tune/workload.hpp"

namespace spnhbm::tune {

struct TuneOptions {
  /// The representative workload each candidate is scored on.
  WorkloadSpec workload;
  /// Overrides workload.seed when nonzero (the CLI's --seed).
  std::uint64_t seed = 0;
  /// Search budget: total candidates scored (baseline + grid + climb).
  /// The climb stops early when no neighbour improves.
  std::size_t max_evaluations = 48;
  /// Upper bound on searched PE counts; 0 = the platform's routable
  /// maximum for this model. Lower it to tune for a partition slice.
  int max_pe_count = 0;
  fpga::Platform platform = fpga::Platform::kHbmXupVvh;
};

struct TuneResult {
  model::TunedConfig best;
  CandidateScore best_score;
  /// What the search had to beat; see default_config().
  model::TunedConfig baseline;
  CandidateScore baseline_score;
  std::uint64_t candidates_evaluated = 0;
  /// The seed the trajectory actually used (options.seed or the
  /// workload's); recorded in the manifest for reproduction.
  std::uint64_t seed = 0;
  /// Structured, line-oriented log of the whole trajectory —
  /// byte-identical across runs with the same inputs.
  std::string search_log;

  /// True when the search found something strictly better than baseline.
  bool improved() const { return best_score.better_than(baseline_score); }
  /// Assembles the versioned manifest for `artifact` (which must be the
  /// tuned model: the manifest embeds its content hash and query kind).
  model::TuningManifest manifest(const model::ModelArtifact& artifact) const;
};

/// The hand-picked defaults the tuner must beat: calibrated block size,
/// the largest routable PE count (capped at `max_pe_count` when > 0),
/// dedicated HBM channels, no crossbar, batch=1024, 1 ms flush.
model::TunedConfig default_config(const model::ModelArtifact& artifact,
                                  fpga::Platform platform,
                                  int max_pe_count = 0);

/// Runs the full search for `model`. Throws ConfigError when even the
/// baseline is infeasible (the model cannot serve on the platform at all).
TuneResult tune(const model::ModelHandle& model,
                const TuneOptions& options = {});

}  // namespace spnhbm::tune
