#include "spnhbm/tune/workload.hpp"

#include <algorithm>
#include <cmath>

#include "spnhbm/util/rng.hpp"
#include "spnhbm/util/strings.hpp"

namespace spnhbm::tune {

std::string WorkloadSpec::describe() const {
  return strformat(
      "requests=%zu mean_samples=%zu interarrival_us=%llu sparse=%.2f "
      "density=%.2f seed=%llu",
      requests, mean_request_samples,
      static_cast<unsigned long long>(mean_interarrival_us), sparse_fraction,
      sparse_density, static_cast<unsigned long long>(seed));
}

std::vector<WorkloadRequest> make_trace(const WorkloadSpec& spec) {
  Rng sizes = Rng(spec.seed).fork(1);
  Rng gaps = Rng(spec.seed).fork(2);
  Rng kinds = Rng(spec.seed).fork(3);

  std::vector<WorkloadRequest> trace;
  trace.reserve(spec.requests);
  std::uint64_t clock_us = 0;
  const double mean = static_cast<double>(std::max<std::size_t>(
      spec.mean_request_samples, 1));
  for (std::size_t i = 0; i < spec.requests; ++i) {
    WorkloadRequest request;
    request.arrival_us = clock_us;
    // Log-uniform in [mean/4, mean*4]: most requests sit near the mean,
    // but both small interactive queries and big batch queries appear.
    const double magnitude = sizes.next_uniform(-1.0, 1.0);
    request.samples = static_cast<std::size_t>(
        std::max(1.0, std::round(mean * std::pow(4.0, magnitude))));
    request.sparse = kinds.next_double() < spec.sparse_fraction;
    trace.push_back(request);
    if (spec.mean_interarrival_us > 0) {
      // Exponential gaps (Poisson arrivals); clamp the log argument away
      // from zero so the trace never stalls on a pathological draw.
      const double u = std::max(gaps.next_double(), 1e-12);
      clock_us += static_cast<std::uint64_t>(std::ceil(
          -std::log(u) * static_cast<double>(spec.mean_interarrival_us)));
    }
  }
  return trace;
}

}  // namespace spnhbm::tune
