#include "spnhbm/tune/cost_model.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <map>
#include <numeric>

#include "spnhbm/compiler/sparse_evidence.hpp"
#include "spnhbm/engine/fpga_engine.hpp"
#include "spnhbm/util/error.hpp"
#include "spnhbm/util/rng.hpp"
#include "spnhbm/util/strings.hpp"

namespace spnhbm::tune {
namespace {

constexpr double kPsPerUs = 1e6;

/// Deterministic CSR evidence stream for sparse request `index`: every
/// sample activates round(density * features) distinct features chosen by
/// a per-request fork of the workload seed.
std::vector<std::uint8_t> make_sparse_stream(const WorkloadSpec& spec,
                                             std::size_t index,
                                             std::size_t samples,
                                             std::size_t features) {
  Rng rng = Rng(spec.seed).fork(0x5AB5ull + index);
  const auto active = std::clamp<std::size_t>(
      static_cast<std::size_t>(spec.sparse_density *
                               static_cast<double>(features)),
      1, features);
  std::vector<std::uint16_t> universe(features);
  std::iota(universe.begin(), universe.end(), std::uint16_t{0});
  compiler::SparseBatch batch;
  batch.features = features;
  std::vector<std::uint16_t> indices(active);
  std::vector<std::uint8_t> values(active);
  for (std::size_t s = 0; s < samples; ++s) {
    // Partial Fisher-Yates: the first `active` entries become a uniform
    // distinct subset, then sort for the strictly-increasing CSR order.
    for (std::size_t j = 0; j < active; ++j) {
      const auto pick = j + rng.next_below(features - j);
      std::swap(universe[j], universe[pick]);
      indices[j] = universe[j];
      values[j] = static_cast<std::uint8_t>(rng.next_below(250));
    }
    std::sort(indices.begin(), indices.begin() + static_cast<long>(active));
    batch.add_sample(indices, values);
  }
  return compiler::encode_sparse(batch);
}

/// One request still waiting in the replayed dispatcher queue.
struct PendingRequest {
  std::size_t index = 0;
  double arrival_us = 0.0;
  std::size_t remaining = 0;
  bool sparse = false;
};

}  // namespace

std::string CandidateScore::describe() const {
  if (!feasible) return "infeasible: " + rejection;
  return strformat("thr=%.1f samples/s mean_lat=%.1fus batches=%llu",
                   samples_per_second, mean_latency_us,
                   static_cast<unsigned long long>(batches));
}

bool CandidateScore::better_than(const CandidateScore& other) const {
  if (!feasible) return false;
  if (!other.feasible) return true;
  if (samples_per_second != other.samples_per_second) {
    return samples_per_second > other.samples_per_second;
  }
  return mean_latency_us < other.mean_latency_us;
}

CandidateScore score_candidate(const model::ModelHandle& model,
                               const model::TunedConfig& config,
                               const WorkloadSpec& spec,
                               const std::vector<WorkloadRequest>& trace,
                               fpga::Platform platform) {
  CandidateScore score;
  if (trace.empty()) {
    score.rejection = "empty workload trace";
    return score;
  }
  try {
    config.validate();

    engine::FpgaEngineConfig ec;
    ec.platform = platform;
    ec.pe_count = config.pe_count;
    ec.block_samples = config.block_samples;
    ec.hbm_pes_per_channel = config.hbm_pes_per_channel;
    ec.hbm_crossbar = config.hbm_crossbar;
    // Timing-only compositions are much cheaper to replay; sparse streams
    // need the functional path (infer_sparse evaluates for real).
    const bool any_sparse = spec.sparse_fraction > 0.0;
    ec.compute_results = any_sparse;
    engine::FpgaSimEngine engine(model, ec);
    auto& runtime = engine.runtime();
    const std::size_t features = model->input_features();

    // Service-time oracles, all in virtual microseconds. Dense batches
    // ride the block-pipelined timing path and are memoised per size (the
    // simulated card is stateless between runs, so the time is a pure
    // function of the batch size).
    std::map<std::size_t, double> dense_service;
    auto dense_service_us = [&](std::size_t samples) {
      auto it = dense_service.find(samples);
      if (it != dense_service.end()) return it->second;
      const auto stats = runtime.run(samples);
      const double us = static_cast<double>(stats.elapsed) / kPsPerUs;
      dense_service.emplace(samples, us);
      return us;
    };
    auto sparse_service_us = [&](std::size_t index, std::size_t samples) {
      const auto stream = make_sparse_stream(spec, index, samples, features);
      const auto before = engine.virtual_now();
      runtime.infer_sparse(stream, samples);
      const auto after = engine.virtual_now();
      return static_cast<double>(after - before) / kPsPerUs;
    };

    // --- Open-loop replay of the server dispatcher -----------------------
    const std::size_t target = config.batch_samples;
    const double flush_us = static_cast<double>(config.flush_deadline_us);
    std::deque<PendingRequest> queue;
    std::size_t queued_samples = 0;
    std::size_t next_arrival = 0;
    double engine_free = 0.0;
    double last_completion = 0.0;
    std::vector<double> latency(trace.size(), 0.0);

    auto admit_until = [&](double now) {
      while (next_arrival < trace.size() &&
             static_cast<double>(trace[next_arrival].arrival_us) <= now) {
        const auto& request = trace[next_arrival];
        queue.push_back({next_arrival,
                         static_cast<double>(request.arrival_us),
                         request.samples, request.sparse});
        queued_samples += request.samples;
        ++next_arrival;
      }
    };

    while (next_arrival < trace.size() || !queue.empty()) {
      if (queue.empty()) {
        admit_until(static_cast<double>(trace[next_arrival].arrival_us));
      }
      // Earliest instant the dispatcher could act on the current front.
      double ready = std::max(engine_free, queue.front().arrival_us);
      admit_until(ready);
      if (queued_samples < target && !queue.front().sparse) {
        // Partial dense batch: wait until arrivals fill it or the oldest
        // request's flush deadline expires, whichever comes first.
        const double flush_at = queue.front().arrival_us + flush_us;
        double fill_at = std::numeric_limits<double>::infinity();
        std::size_t cumulative = queued_samples;
        for (std::size_t j = next_arrival; j < trace.size(); ++j) {
          cumulative += trace[j].samples;
          if (cumulative >= target) {
            fill_at = static_cast<double>(trace[j].arrival_us);
            break;
          }
        }
        double dispatch_at = std::min(fill_at, flush_at);
        if (!std::isfinite(dispatch_at)) dispatch_at = flush_at;
        ready = std::max(ready, dispatch_at);
        admit_until(ready);
      }

      double service = 0.0;
      std::vector<std::size_t> completed;
      if (queue.front().sparse) {
        // Sparse streams ride alone, exactly like the live dispatcher.
        PendingRequest request = queue.front();
        queue.pop_front();
        queued_samples -= request.remaining;
        service = sparse_service_us(request.index, request.remaining);
        completed.push_back(request.index);
      } else {
        std::size_t batch = 0;
        while (batch < target && !queue.empty() && !queue.front().sparse) {
          const auto take =
              std::min(target - batch, queue.front().remaining);
          queue.front().remaining -= take;
          batch += take;
          queued_samples -= take;
          if (queue.front().remaining == 0) {
            completed.push_back(queue.front().index);
            queue.pop_front();
          } else {
            break;  // the batch is full; the tail waits for the next one
          }
        }
        service = dense_service_us(batch);
      }
      const double start = std::max(ready, engine_free);
      const double done = start + service;
      engine_free = done;
      last_completion = std::max(last_completion, done);
      for (const auto index : completed) {
        latency[index] = done - static_cast<double>(trace[index].arrival_us);
      }
      ++score.batches;
    }

    const double first_arrival = static_cast<double>(trace.front().arrival_us);
    const double makespan = std::max(last_completion - first_arrival, 1e-9);
    std::size_t total_samples = 0;
    for (const auto& request : trace) total_samples += request.samples;
    score.feasible = true;
    score.samples_per_second =
        static_cast<double>(total_samples) * 1e6 / makespan;
    score.mean_latency_us =
        std::accumulate(latency.begin(), latency.end(), 0.0) /
        static_cast<double>(latency.size());
    score.makespan_us = static_cast<std::uint64_t>(makespan);
  } catch (const ConfigError& error) {
    score = CandidateScore{};
    score.rejection = error.what();
  } catch (const PlacementError& error) {
    score = CandidateScore{};
    score.rejection = error.what();
  } catch (const DeviceMemoryError& error) {
    score = CandidateScore{};
    score.rejection = error.what();
  }
  return score;
}

}  // namespace spnhbm::tune
