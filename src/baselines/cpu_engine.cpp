#include "spnhbm/baselines/cpu_engine.hpp"

#include <algorithm>
#include <chrono>
#include <vector>

#include "spnhbm/util/rng.hpp"

namespace spnhbm::baselines {

CpuInferenceEngine::CpuInferenceEngine(const compiler::DatapathModule& module,
                                       std::size_t threads)
    : module_(module), pool_(std::make_unique<ThreadPool>(threads)) {}

void CpuInferenceEngine::infer_block(std::span<const std::uint8_t> samples,
                                     std::size_t begin, std::size_t end,
                                     std::span<double> results) const {
  const std::size_t features = module_.input_features();
  const auto& ops = module_.ops();
  const auto& tables = module_.tables();
  // Lane-blocked struct-of-arrays evaluation: values[op][lane]. The inner
  // per-op loops are trivially auto-vectorisable.
  std::vector<double> values(ops.size() * kLanes);
  for (std::size_t block = begin; block < end; block += kLanes) {
    const std::size_t lanes = std::min(kLanes, end - block);
    for (std::size_t op_index = 0; op_index < ops.size(); ++op_index) {
      const auto& op = ops[op_index];
      double* out = values.data() + op_index * kLanes;
      switch (op.kind) {
        case compiler::OpKind::kHistogramLookup: {
          const auto& table = tables[op.table_index].probability_by_byte;
          for (std::size_t lane = 0; lane < lanes; ++lane) {
            const std::uint8_t byte =
                samples[(block + lane) * features + op.variable];
            out[lane] = table[byte];
          }
          break;
        }
        case compiler::OpKind::kMul: {
          const double* lhs = values.data() + op.lhs * kLanes;
          const double* rhs = values.data() + op.rhs * kLanes;
          for (std::size_t lane = 0; lane < kLanes; ++lane) {
            out[lane] = lhs[lane] * rhs[lane];
          }
          break;
        }
        case compiler::OpKind::kConstMul: {
          const double* lhs = values.data() + op.lhs * kLanes;
          const double constant = op.constant;
          for (std::size_t lane = 0; lane < kLanes; ++lane) {
            out[lane] = lhs[lane] * constant;
          }
          break;
        }
        case compiler::OpKind::kAdd: {
          const double* lhs = values.data() + op.lhs * kLanes;
          const double* rhs = values.data() + op.rhs * kLanes;
          for (std::size_t lane = 0; lane < kLanes; ++lane) {
            out[lane] = lhs[lane] + rhs[lane];
          }
          break;
        }
        case compiler::OpKind::kMax: {
          const double* lhs = values.data() + op.lhs * kLanes;
          const double* rhs = values.data() + op.rhs * kLanes;
          for (std::size_t lane = 0; lane < kLanes; ++lane) {
            out[lane] = std::max(lhs[lane], rhs[lane]);
          }
          break;
        }
      }
    }
    const double* root = values.data() + module_.result_op() * kLanes;
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      results[block + lane] = root[lane];
    }
  }
}

void CpuInferenceEngine::infer(std::span<const std::uint8_t> samples,
                               std::span<double> results) {
  const std::size_t features = module_.input_features();
  SPNHBM_REQUIRE(features > 0 && samples.size() == results.size() * features,
                 "samples/results size mismatch");
  if (results.empty()) return;
  // Chunk on lane boundaries so blocks never straddle threads.
  const std::size_t lane_groups = (results.size() + kLanes - 1) / kLanes;
  pool_->parallel_for(lane_groups, [&](std::size_t group_begin,
                                       std::size_t group_end) {
    const std::size_t begin = group_begin * kLanes;
    const std::size_t end = std::min(group_end * kLanes, results.size());
    infer_block(samples, begin, end, results);
  });
}

double CpuInferenceEngine::measure_throughput(std::size_t sample_count,
                                              std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t features = module_.input_features();
  std::vector<std::uint8_t> samples(sample_count * features);
  for (auto& byte : samples) {
    byte = static_cast<std::uint8_t>(rng.next_below(256));
  }
  std::vector<double> results(sample_count);
  const auto start = std::chrono::steady_clock::now();
  infer(samples, results);
  const auto stop = std::chrono::steady_clock::now();
  const double seconds =
      std::chrono::duration<double>(stop - start).count();
  return static_cast<double>(sample_count) / seconds;
}

}  // namespace spnhbm::baselines
