#include "spnhbm/baselines/reference_platforms.hpp"

#include "spnhbm/util/error.hpp"

namespace spnhbm::baselines {

double PlatformCurve::at(std::size_t benchmark_size) const {
  for (const auto& [size, rate] : samples_per_second) {
    if (size == benchmark_size) return rate;
  }
  throw Error("no reference data for this benchmark size");
}

PlatformCurve paper_hbm_curve() {
  // NIPS10 and NIPS80: published absolutes (§V-B, §V-C). NIPS20/30/40:
  // 85% of the 11.64 GiB/s aggregate DMA rate over (N + 8) bytes/sample —
  // the paper's own bottleneck arithmetic (85% matches both anchors:
  // 614.7M is 88.5% of the 18 B cap, 116.6M is 82% of the 88 B cap).
  return PlatformCurve{
      "HBM (paper)",
      "published absolutes + published DMA-bound interpolation",
      {{10, 614.7e6},
       {20, 379.5e6},
       {30, 279.6e6},
       {40, 221.4e6},
       {80, 116.6e6}}};
}

PlatformCurve xeon_e5_2680v3_curve() {
  // HBM(paper) divided by per-benchmark speedups chosen to satisfy every
  // published constraint: CPU wins NIPS10 (speedup < 1), 1.21x at NIPS20
  // (stated), 2.46x max at NIPS80 (stated), geometric mean 1.6x (stated).
  // Chosen speedups: {0.88, 1.21, 1.85, 2.16, 2.46} -> geo-mean 1.5995.
  return PlatformCurve{"Xeon E5-2680 v3",
                       "reconstructed from published speedups (geo 1.6x)",
                       {{10, 698.5e6},
                        {20, 313.6e6},
                        {30, 151.1e6},
                        {40, 102.5e6},
                        {80, 47.4e6}}};
}

PlatformCurve tesla_v100_curve() {
  // Speedups {5.5, 6.5, 7.0, 7.5, 8.4} -> geo-mean 6.91x, max 8.4x at
  // NIPS80 (both stated). The V100 loses because batch-wise SPN inference
  // is memory-bound with low arithmetic intensity and pays kernel-launch
  // plus PCIe overheads per batch (§V-D).
  return PlatformCurve{"Tesla V100",
                       "reconstructed from published speedups (geo 6.9x)",
                       {{10, 111.8e6},
                        {20, 58.4e6},
                        {30, 39.9e6},
                        {40, 29.5e6},
                        {80, 13.881e6}}};
}

PlatformCurve aws_f1_curve() {
  // Speedups {1.22, 1.25, 1.28, 1.22, 1.50} -> geo-mean 1.29x ("close to
  // the geo.-mean ... for almost all examples"), 1.50x at NIPS80 (stated:
  // the prior work fit only two NIPS80 PEs).
  return PlatformCurve{"AWS F1 [8]",
                       "reconstructed from published speedups (geo 1.29x)",
                       {{10, 503.9e6},
                        {20, 303.6e6},
                        {30, 218.4e6},
                        {40, 181.5e6},
                        {80, 77.7e6}}};
}

std::vector<PlatformCurve> all_reference_curves() {
  return {paper_hbm_curve(), aws_f1_curve(), xeon_e5_2680v3_curve(),
          tesla_v100_curve()};
}

}  // namespace spnhbm::baselines
