// Reference platform throughput curves for the paper's Fig. 6 comparison.
//
// The paper compares the HBM architecture against three platforms measured
// on hardware we do not have: a 12-core Xeon E5-2680 v3 (vectorised CPU
// inference), an NVIDIA Tesla V100, and the prior-work AWS F1 design [8].
// It publishes only two absolute HBM anchors (NIPS10: 614.7 Msamples/s at
// 5 PEs; NIPS80: 116.6 Msamples/s) plus per-platform *speedups* (CPU: geo
// 1.6x, max 2.46x at NIPS80, CPU wins NIPS10; V100: geo 6.9x, max 8.4x;
// F1 [8]: geo 1.29x, max 1.50x at NIPS80).
//
// This module reconstructs absolute per-benchmark platform curves from
// those published numbers (documented per value below) so the benchmark
// harness can regenerate the figure with the same shape: who wins, by
// roughly what factor, and where the CPU/FPGA crossover falls. The F1
// curve is additionally cross-validated by this repo's own F1 simulation
// (DDR + float64 datapaths + EDMA-class DMA).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace spnhbm::baselines {

struct PlatformCurve {
  std::string platform;
  std::string provenance;
  /// benchmark size (10, 20, ...) -> samples per second
  std::vector<std::pair<std::size_t, double>> samples_per_second;

  double at(std::size_t benchmark_size) const;
};

/// Paper-anchored HBM end-to-end curve (best case per benchmark).
/// NIPS10/NIPS80 are the published absolutes; the sizes in between follow
/// the paper's own bottleneck arithmetic: throughput ~ 85% of the
/// aggregate DMA rate divided by (N + 8) bytes per sample.
PlatformCurve paper_hbm_curve();

/// Xeon E5-2680 v3, reconstructed from the published speedups.
PlatformCurve xeon_e5_2680v3_curve();

/// NVIDIA Tesla V100, reconstructed from the published speedups.
PlatformCurve tesla_v100_curve();

/// AWS F1 prior work [8], reconstructed from the published speedups.
PlatformCurve aws_f1_curve();

/// All four curves (HBM, F1, CPU, GPU) in display order.
std::vector<PlatformCurve> all_reference_curves();

}  // namespace spnhbm::baselines
