// Native CPU inference baseline (really runs on the host).
//
// The paper's CPU baseline is vectorised multi-threaded batch inference on
// a 12-core Xeon E5-2680 v3. This engine reproduces that implementation
// style: the compiled datapath is flattened into a linear double-precision
// operator program and evaluated over *lanes* of samples simultaneously
// (struct-of-arrays layout, so the compiler auto-vectorises across the
// batch) with a thread pool splitting the batch across cores.
//
// Because the container this repo is built in may have any core count, the
// engine reports its own measured throughput; the paper-scale Xeon numbers
// for Fig. 6 come from baselines/reference_platforms.hpp.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "spnhbm/compiler/datapath.hpp"
#include "spnhbm/util/thread_pool.hpp"

namespace spnhbm::baselines {

class CpuInferenceEngine {
 public:
  static constexpr std::size_t kLanes = 8;

  CpuInferenceEngine(const compiler::DatapathModule& module,
                     std::size_t threads);

  /// Batch inference: `samples` holds rows of `input_features()` bytes;
  /// one joint probability per row is written to `results`.
  void infer(std::span<const std::uint8_t> samples,
             std::span<double> results);

  /// Measured end-to-end throughput (samples/s) over a synthetic batch.
  double measure_throughput(std::size_t sample_count,
                            std::uint64_t seed = 1);

  std::size_t threads() const { return pool_->worker_count(); }
  const compiler::DatapathModule& module() const { return module_; }

 private:
  void infer_block(std::span<const std::uint8_t> samples, std::size_t begin,
                   std::size_t end, std::span<double> results) const;

  const compiler::DatapathModule& module_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace spnhbm::baselines
