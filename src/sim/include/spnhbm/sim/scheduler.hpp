// Discrete-event simulation (DES) scheduler.
//
// The entire hardware substrate (HBM channels, AXI interconnect, PCIe DMA,
// accelerator cores, host control threads) runs as C++20 coroutine
// processes on this scheduler in *virtual time* measured in integer
// picoseconds. Events scheduled for the same instant run in FIFO order of
// scheduling (tie-broken by a monotone sequence number), which makes every
// simulation bit-reproducible regardless of host timing.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "spnhbm/util/error.hpp"
#include "spnhbm/util/units.hpp"

namespace spnhbm::sim {

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current virtual time.
  Picoseconds now() const { return now_; }

  /// Schedules a coroutine resumption at absolute virtual time `t` >= now.
  void schedule_at(Picoseconds t, std::coroutine_handle<> handle) {
    SPNHBM_REQUIRE(t >= now_, "cannot schedule into the past");
    queue_.push(Entry{t, next_seq_++, handle, {}});
  }

  /// Schedules a plain callback at absolute virtual time `t` >= now.
  void call_at(Picoseconds t, std::function<void()> callback) {
    SPNHBM_REQUIRE(t >= now_, "cannot schedule into the past");
    queue_.push(Entry{t, next_seq_++, nullptr, std::move(callback)});
  }

  /// Runs a single event. Returns false when the queue is empty.
  bool step() {
    if (queue_.empty()) return false;
    Entry entry = queue_.top();
    queue_.pop();
    now_ = entry.time;
    ++events_processed_;
    if (entry.handle) {
      entry.handle.resume();
    } else {
      entry.callback();
    }
    return true;
  }

  /// Runs until the event queue drains.
  void run() {
    while (step()) {
    }
  }

  /// Runs until the queue drains or virtual time would exceed `deadline`.
  /// Events strictly after the deadline stay queued.
  void run_until(Picoseconds deadline) {
    while (!queue_.empty() && queue_.top().time <= deadline) {
      step();
    }
    if (now_ < deadline) now_ = deadline;
  }

  bool empty() const { return queue_.empty(); }
  /// Number of events actually executed (not merely scheduled).
  std::uint64_t events_processed() const { return events_processed_; }
  /// Number of events ever scheduled, including those still queued.
  std::uint64_t events_scheduled() const { return next_seq_; }

 private:
  struct Entry {
    Picoseconds time;
    std::uint64_t seq;
    std::coroutine_handle<> handle;
    std::function<void()> callback;
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  Picoseconds now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
};

/// Awaitable produced by `delay()`: suspends the process for `dt` of
/// virtual time. A zero delay still yields through the event queue, which
/// is useful to enforce deterministic interleaving.
struct DelayAwaitable {
  Scheduler& scheduler;
  Picoseconds dt;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> handle) const {
    scheduler.schedule_at(scheduler.now() + dt, handle);
  }
  void await_resume() const noexcept {}
};

inline DelayAwaitable delay(Scheduler& scheduler, Picoseconds dt) {
  SPNHBM_REQUIRE(dt >= 0, "negative delay");
  return DelayAwaitable{scheduler, dt};
}

}  // namespace spnhbm::sim
