// Coroutine process type for the DES scheduler.
//
// A `Process` is a fire-and-forget coroutine that models one hardware unit
// or host thread. It is created suspended and started by
// `Scheduler::spawn`, which enqueues its first resumption at the current
// virtual time — so process start order is deterministic, too.
//
// Lifetime: the coroutine frame destroys itself at final suspension; the
// `Process` handle only holds a shared completion state (done flag, stored
// exception, waiter list), so dropping the handle is always safe.
#pragma once

#include <coroutine>
#include <exception>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "spnhbm/sim/scheduler.hpp"

namespace spnhbm::sim {

class Process {
 public:
  struct State {
    bool done = false;
    std::exception_ptr exception;
    bool exception_consumed = false;
    Scheduler* scheduler = nullptr;
    std::vector<std::coroutine_handle<>> waiters;
    /// Keeps a spawning closure alive for the lifetime of the process
    /// (lambda coroutines access their captures through the closure
    /// object, which must therefore outlive the coroutine frame).
    std::shared_ptr<void> keep_alive;
  };

  struct promise_type {
    std::shared_ptr<State> state = std::make_shared<State>();

    Process get_return_object() {
      return Process(state,
                     std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      bool await_suspend(std::coroutine_handle<promise_type> handle) noexcept {
        auto& state = *handle.promise().state;
        state.done = true;
        if (state.scheduler != nullptr) {
          for (auto waiter : state.waiters) {
            state.scheduler->schedule_at(state.scheduler->now(), waiter);
          }
        }
        state.waiters.clear();
        return false;  // do not suspend: the frame is destroyed right here
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    void unhandled_exception() { state->exception = std::current_exception(); }
  };

  Process() = default;

  bool done() const { return !state_ || state_->done; }
  bool failed() const { return state_ && state_->exception != nullptr; }

  /// Rethrows the process' stored exception, if any (marks it consumed).
  void rethrow_if_failed() const {
    if (state_ && state_->exception) {
      state_->exception_consumed = true;
      std::rethrow_exception(state_->exception);
    }
  }

  /// Awaitable that resumes the awaiting process once this one finishes;
  /// rethrows this process' exception into the awaiter.
  struct JoinAwaitable {
    std::shared_ptr<State> state;
    bool await_ready() const noexcept { return state->done; }
    void await_suspend(std::coroutine_handle<> handle) const {
      state->waiters.push_back(handle);
    }
    void await_resume() const {
      if (state->exception) {
        state->exception_consumed = true;
        std::rethrow_exception(state->exception);
      }
    }
  };
  JoinAwaitable join() const {
    SPNHBM_REQUIRE(state_ != nullptr, "join on empty process");
    return JoinAwaitable{state_};
  }

 private:
  friend class ProcessRunner;
  Process(std::shared_ptr<State> state, std::coroutine_handle<> handle)
      : state_(std::move(state)), handle_(handle) {}

  std::shared_ptr<State> state_;
  std::coroutine_handle<> handle_;
};

/// Starts processes on a scheduler and tracks their completion states so a
/// process that dies with an unjoined exception cannot fail silently:
/// `check()` (called by the simulation drivers after `run()`) rethrows the
/// first unconsumed exception.
class ProcessRunner {
 public:
  explicit ProcessRunner(Scheduler& scheduler) : scheduler_(scheduler) {}

  /// Enqueues the process' first step at the current virtual time.
  ///
  /// CAUTION: when spawning a *lambda* coroutine, do not invoke a temporary
  /// closure (`runner.spawn([&]{...}())` dangles its captures) — either
  /// keep the closure alive yourself or use the factory overload below.
  Process spawn(Process process) {
    SPNHBM_REQUIRE(process.state_ != nullptr, "spawn of empty process");
    process.state_->scheduler = &scheduler_;
    scheduler_.schedule_at(scheduler_.now(), process.handle_);
    states_.push_back(process.state_);
    return process;
  }

  /// Spawns the process produced by `factory()` and keeps the factory
  /// closure alive for the process' whole lifetime — the safe way to spawn
  /// capturing-lambda coroutines.
  template <typename Factory>
    requires std::is_invocable_r_v<Process, Factory&>
  Process spawn(Factory factory) {
    auto holder = std::make_shared<Factory>(std::move(factory));
    Process process = (*holder)();
    SPNHBM_REQUIRE(process.state_ != nullptr, "spawn of empty process");
    process.state_->keep_alive = holder;
    return spawn(std::move(process));
  }

  /// Throws the first stored-and-unconsumed process exception, if any.
  void check() const {
    for (const auto& state : states_) {
      if (state->exception && !state->exception_consumed) {
        state->exception_consumed = true;
        std::rethrow_exception(state->exception);
      }
    }
  }

  /// True once every spawned process has finished.
  bool all_done() const {
    for (const auto& state : states_) {
      if (!state->done) return false;
    }
    return true;
  }

  Scheduler& scheduler() { return scheduler_; }

 private:
  Scheduler& scheduler_;
  std::vector<std::shared_ptr<Process::State>> states_;
};

}  // namespace spnhbm::sim
