// Virtual-time synchronisation primitives: bounded FIFO channels with
// back-pressure and a FIFO-fair counting resource (semaphore).
//
// Both primitives use *exact hand-off*: when a waiter is woken, its
// operation has already been completed on its behalf (the value moved, the
// permit assigned), so there are no spurious wakeups or retry loops and
// fairness is strict FIFO — the same behaviour as a hardware ready/valid
// handshake chain.
#pragma once

#include <coroutine>
#include <deque>
#include <optional>
#include <utility>

#include "spnhbm/sim/scheduler.hpp"

namespace spnhbm::sim {

/// Bounded single-clock FIFO. Models a hardware FIFO between two units:
/// `put` blocks (in virtual time) while full, `get` blocks while empty.
template <typename T>
class Fifo {
 public:
  Fifo(Scheduler& scheduler, std::size_t capacity)
      : scheduler_(scheduler), capacity_(capacity) {
    SPNHBM_REQUIRE(capacity_ > 0, "fifo capacity must be positive");
  }

  Fifo(const Fifo&) = delete;
  Fifo& operator=(const Fifo&) = delete;

  std::size_t size() const { return items_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return items_.empty(); }

  struct PutAwaitable {
    Fifo& fifo;
    T value;
    bool await_ready() {
      // Jump the queue only if nobody is already waiting to put.
      if (fifo.pending_puts_.empty() && fifo.try_put_now(std::move(value))) {
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> handle) {
      fifo.pending_puts_.push_back(PendingPut{std::move(value), handle});
    }
    void await_resume() const noexcept {}
  };

  struct GetAwaitable {
    Fifo& fifo;
    std::optional<T> result;
    bool await_ready() {
      if (fifo.pending_gets_.empty()) {
        result = fifo.try_get_now();
        if (result.has_value()) return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> handle) {
      fifo.pending_gets_.push_back(PendingGet{&result, handle});
    }
    T await_resume() { return std::move(*result); }
  };

  /// co_await fifo.put(value);
  PutAwaitable put(T value) { return PutAwaitable{*this, std::move(value)}; }
  /// T value = co_await fifo.get();
  GetAwaitable get() { return GetAwaitable{*this, std::nullopt}; }

  /// Non-blocking put; returns false if full (used by test drivers).
  bool try_put(T value) {
    if (!pending_puts_.empty()) return false;
    return try_put_now(std::move(value));
  }

 private:
  struct PendingPut {
    T value;
    std::coroutine_handle<> handle;
  };
  struct PendingGet {
    std::optional<T>* slot;
    std::coroutine_handle<> handle;
  };

  // Attempts an immediate put. Hands the value straight to a waiting getter
  // if there is one; otherwise stores it if there is room.
  bool try_put_now(T&& value) {
    if (!pending_gets_.empty() && items_.empty()) {
      PendingGet getter = pending_gets_.front();
      pending_gets_.pop_front();
      *getter.slot = std::move(value);
      scheduler_.schedule_at(scheduler_.now(), getter.handle);
      return true;
    }
    if (items_.size() < capacity_) {
      items_.push_back(std::move(value));
      return true;
    }
    return false;
  }

  // Attempts an immediate get; refills from a pending putter if one exists.
  std::optional<T> try_get_now() {
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    if (!pending_puts_.empty()) {
      PendingPut putter = std::move(pending_puts_.front());
      pending_puts_.pop_front();
      if (!try_put_now(std::move(putter.value))) {
        SPNHBM_REQUIRE(false, "fifo hand-off invariant violated");
      }
      scheduler_.schedule_at(scheduler_.now(), putter.handle);
    }
    return value;
  }

  Scheduler& scheduler_;
  std::size_t capacity_;
  std::deque<T> items_;
  std::deque<PendingPut> pending_puts_;
  std::deque<PendingGet> pending_gets_;
};

/// FIFO-fair counting resource; models an arbitrated shared unit such as the
/// PCIe DMA engine or a memory-channel port. `co_await acquire()` then
/// `release()` when done.
class Resource {
 public:
  Resource(Scheduler& scheduler, std::size_t permits)
      : scheduler_(scheduler), available_(permits), total_(permits) {
    SPNHBM_REQUIRE(permits > 0, "resource needs at least one permit");
  }

  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  struct AcquireAwaitable {
    Resource& resource;
    bool await_ready() {
      if (resource.waiters_.empty() && resource.available_ > 0) {
        --resource.available_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> handle) {
      resource.waiters_.push_back(handle);
    }
    void await_resume() const noexcept {}
  };

  AcquireAwaitable acquire() { return AcquireAwaitable{*this}; }

  void release() {
    SPNHBM_REQUIRE(available_ < total_ || !waiters_.empty(),
                   "release without matching acquire");
    if (!waiters_.empty()) {
      // Exact hand-off: the permit passes directly to the first waiter.
      auto handle = waiters_.front();
      waiters_.pop_front();
      scheduler_.schedule_at(scheduler_.now(), handle);
    } else {
      ++available_;
    }
  }

  std::size_t available() const { return available_; }
  std::size_t waiting() const { return waiters_.size(); }

 private:
  Scheduler& scheduler_;
  std::size_t available_;
  std::size_t total_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Broadcast notification: wakes every process currently waiting.
class Notify {
 public:
  explicit Notify(Scheduler& scheduler) : scheduler_(scheduler) {}

  struct WaitAwaitable {
    Notify& notify;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> handle) {
      notify.waiters_.push_back(handle);
    }
    void await_resume() const noexcept {}
  };

  WaitAwaitable wait() { return WaitAwaitable{*this}; }

  void notify_all() {
    for (auto handle : waiters_) {
      scheduler_.schedule_at(scheduler_.now(), handle);
    }
    waiters_.clear();
  }

  std::size_t waiting() const { return waiters_.size(); }

 private:
  Scheduler& scheduler_;
  std::deque<std::coroutine_handle<>> waiters_;
};

}  // namespace spnhbm::sim
