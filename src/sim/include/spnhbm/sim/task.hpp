// Awaitable sub-coroutine for device models.
//
// `Task<T>` is a lazy coroutine awaited from a `Process` (or another Task):
//
//   sim::Task<void> MemoryChannel::access(...);
//   ...
//   co_await channel.access(addr, bytes, /*is_write=*/false);
//
// It starts when awaited (symmetric transfer), resumes the awaiter when it
// finishes, and propagates exceptions. This is what lets a hardware unit
// expose timed operations ("this burst takes N cycles of channel time")
// without every caller hand-rolling acquire/delay/release sequences.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "spnhbm/util/error.hpp"

namespace spnhbm::sim {

template <typename T = void>
class [[nodiscard]] Task;

namespace detail {

struct TaskPromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> handle) noexcept {
      auto continuation = handle.promise().continuation;
      return continuation ? continuation : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() { exception = std::current_exception(); }
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::TaskPromiseBase {
    std::optional<T> value;
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value = std::move(v); }
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    handle_.promise().continuation = awaiter;
    return handle_;  // symmetric transfer: start the task now
  }
  T await_resume() {
    auto& promise = handle_.promise();
    if (promise.exception) std::rethrow_exception(promise.exception);
    SPNHBM_REQUIRE(promise.value.has_value(), "task finished without a value");
    return std::move(*promise.value);
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> handle) : handle_(handle) {}
  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::TaskPromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    handle_.promise().continuation = awaiter;
    return handle_;
  }
  void await_resume() {
    auto& promise = handle_.promise();
    if (promise.exception) std::rethrow_exception(promise.exception);
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> handle) : handle_(handle) {}
  std::coroutine_handle<promise_type> handle_;
};

}  // namespace spnhbm::sim
