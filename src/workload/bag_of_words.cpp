#include "spnhbm/workload/bag_of_words.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "spnhbm/util/rng.hpp"

namespace spnhbm::workload {

spn::DataMatrix make_bag_of_words(const CorpusConfig& config) {
  SPNHBM_REQUIRE(config.documents > 0 && config.vocabulary > 0,
                 "corpus must be non-empty");
  SPNHBM_REQUIRE(config.topics > 0, "need at least one topic");
  Rng rng(config.seed);

  // Per-topic word distributions: a Zipf base tilted by a topic-specific
  // random emphasis, so words co-occur within topics (=> correlations).
  std::vector<std::vector<double>> topic_word(config.topics);
  for (std::size_t t = 0; t < config.topics; ++t) {
    Rng topic_rng = rng.fork(1000 + t);
    auto& weights = topic_word[t];
    weights.resize(config.vocabulary);
    double total = 0.0;
    for (std::size_t w = 0; w < config.vocabulary; ++w) {
      const double zipf =
          1.0 / std::pow(static_cast<double>(w + 1), config.zipf_exponent);
      const double emphasis = std::exp(topic_rng.next_normal() * 1.2);
      weights[w] = zipf * emphasis;
      total += weights[w];
    }
    for (auto& v : weights) v /= total;
  }

  // Mildly skewed topic popularity.
  std::vector<double> topic_prior(config.topics);
  for (std::size_t t = 0; t < config.topics; ++t) {
    topic_prior[t] = 1.0 / static_cast<double>(t + 1);
  }

  spn::DataMatrix data(config.documents, config.vocabulary);
  for (std::size_t d = 0; d < config.documents; ++d) {
    const std::size_t topic = rng.next_weighted(topic_prior);
    // Document length ~ Poisson-ish via rounded exponential mixture; a
    // simple deterministic-in-seed approximation is fine here.
    const double length_factor = 0.5 + rng.next_double();
    const auto tokens = static_cast<std::size_t>(
        std::llround(config.document_length * length_factor));
    std::vector<double> counts(config.vocabulary, 0.0);
    for (std::size_t i = 0; i < tokens; ++i) {
      counts[rng.next_weighted(topic_word[topic])] += 1.0;
    }
    for (std::size_t w = 0; w < config.vocabulary; ++w) {
      data.set(d, w, std::min(counts[w], 255.0));
    }
  }
  return data;
}

compiler::SparseBatch sparse_queries(const spn::DataMatrix& corpus,
                                     std::size_t active_words) {
  SPNHBM_REQUIRE(corpus.cols() <= 0xFFFF,
                 "sparse evidence indices are 16-bit");
  compiler::SparseBatch batch;
  batch.features = corpus.cols();
  std::vector<std::pair<std::uint16_t, std::uint8_t>> active;
  std::vector<std::uint16_t> indices;
  std::vector<std::uint8_t> values;
  for (std::size_t d = 0; d < corpus.rows(); ++d) {
    active.clear();
    for (std::size_t w = 0; w < corpus.cols(); ++w) {
      const double count = std::clamp(corpus.at(d, w), 0.0, 255.0);
      const auto byte = static_cast<std::uint8_t>(std::llround(count));
      if (byte != 0) {
        active.emplace_back(static_cast<std::uint16_t>(w), byte);
      }
    }
    if (active_words > 0 && active.size() > active_words) {
      // Keep the highest-count words; stable sort breaks count ties
      // toward lower word indices, so the selection is deterministic.
      std::stable_sort(active.begin(), active.end(),
                       [](const auto& a, const auto& b) {
                         return a.second > b.second;
                       });
      active.resize(active_words);
      std::sort(active.begin(), active.end());
    }
    indices.clear();
    values.clear();
    for (const auto& [index, value] : active) {
      indices.push_back(index);
      values.push_back(value);
    }
    batch.add_sample(indices, values);
  }
  return batch;
}

}  // namespace spnhbm::workload
