#include "spnhbm/workload/model_zoo.hpp"

#include "spnhbm/spn/learn.hpp"
#include "spnhbm/spn/validate.hpp"
#include "spnhbm/util/strings.hpp"
#include "spnhbm/workload/bag_of_words.hpp"

namespace spnhbm::workload {

const std::vector<std::size_t>& nips_benchmark_sizes() {
  static const std::vector<std::size_t> sizes{10, 20, 30, 40, 80};
  return sizes;
}

NipsModel make_nips_model(std::size_t variables, std::uint64_t seed) {
  SPNHBM_REQUIRE(variables >= 2 && variables <= 255,
                 "NIPS model size out of range");
  CorpusConfig corpus;
  corpus.vocabulary = variables;
  corpus.seed = seed;
  // More features -> longer documents, like taking a wider slice of the
  // same corpus.
  corpus.document_length = 2.0 * static_cast<double>(variables);
  const auto data = make_bag_of_words(corpus);

  spn::LearnOptions options;
  options.seed = seed ^ (variables * 0x9E3779B97F4A7C15ull);
  // Tuned so structure size grows with the variable count roughly the way
  // the published resource table implies (see fpga/calibration.hpp).
  options.min_instances = 640;
  options.independence_threshold = 0.25;
  options.histogram_buckets = 16;

  NipsModel model;
  model.name = strformat("NIPS%zu", variables);
  model.variables = variables;
  model.spn = spn::learn_spn(data, options);
  spn::validate_or_throw(model.spn);
  return model;
}

std::vector<NipsModel> make_nips_suite(std::uint64_t seed) {
  std::vector<NipsModel> suite;
  suite.reserve(nips_benchmark_sizes().size());
  for (const std::size_t size : nips_benchmark_sizes()) {
    suite.push_back(make_nips_model(size, seed));
  }
  return suite;
}

}  // namespace spnhbm::workload
