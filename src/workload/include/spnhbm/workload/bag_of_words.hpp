// Synthetic NIPS-like bag-of-words corpus.
//
// The paper's benchmarks are SPNs learned over the first 10/20/.../80
// variables of the UCI NIPS bag-of-words dataset (word counts per
// document). The corpus itself is not redistributable here, so this module
// synthesises a statistically similar one (see DESIGN.md substitution
// table):
//   * word marginals follow a Zipf law (natural-language frequency);
//   * documents are drawn from a small number of latent topics, which
//     induces the inter-word correlations that LearnSPN turns into sum
//     (cluster) and product (independence) splits;
//   * counts are clamped to a byte, matching the accelerator's
//     single-byte-per-feature input encoding.
//
// Everything is deterministic in the seed.
#pragma once

#include <cstdint>

#include "spnhbm/compiler/sparse_evidence.hpp"
#include "spnhbm/spn/dataset.hpp"

namespace spnhbm::workload {

struct CorpusConfig {
  std::size_t documents = 4096;
  std::size_t vocabulary = 80;  ///< number of word features (columns)
  std::size_t topics = 4;
  /// Mean words drawn per document (word *tokens*, spread over features).
  double document_length = 160.0;
  double zipf_exponent = 1.05;
  std::uint64_t seed = 20220530;  ///< default: paper's IPDPS 2022 week
};

/// Generates a documents x vocabulary matrix of byte-clamped word counts.
spn::DataMatrix make_bag_of_words(const CorpusConfig& config);

/// Emits the corpus as CSR sparse evidence, one sample per document.
///
/// Bag-of-words queries are naturally sparse — most word counts are zero
/// — so each sample carries only {word index, byte count} pairs. With
/// `active_words` = 0 every non-zero count is a pair (the lossless sparse
/// twin of the dense matrix, for joint datapaths whose default evidence
/// is zero). With `active_words` > 0 each document contributes at most
/// its `active_words` highest-count words (ties broken toward lower
/// indices) — the shape of a marginal/MPE query observing a handful of
/// words, the rest unobserved (absent pairs read the model's default
/// byte, kMissingByte on non-joint datapaths).
compiler::SparseBatch sparse_queries(const spn::DataMatrix& corpus,
                                     std::size_t active_words = 0);

}  // namespace spnhbm::workload
