// Synthetic NIPS-like bag-of-words corpus.
//
// The paper's benchmarks are SPNs learned over the first 10/20/.../80
// variables of the UCI NIPS bag-of-words dataset (word counts per
// document). The corpus itself is not redistributable here, so this module
// synthesises a statistically similar one (see DESIGN.md substitution
// table):
//   * word marginals follow a Zipf law (natural-language frequency);
//   * documents are drawn from a small number of latent topics, which
//     induces the inter-word correlations that LearnSPN turns into sum
//     (cluster) and product (independence) splits;
//   * counts are clamped to a byte, matching the accelerator's
//     single-byte-per-feature input encoding.
//
// Everything is deterministic in the seed.
#pragma once

#include <cstdint>

#include "spnhbm/spn/dataset.hpp"

namespace spnhbm::workload {

struct CorpusConfig {
  std::size_t documents = 4096;
  std::size_t vocabulary = 80;  ///< number of word features (columns)
  std::size_t topics = 4;
  /// Mean words drawn per document (word *tokens*, spread over features).
  double document_length = 160.0;
  double zipf_exponent = 1.05;
  std::uint64_t seed = 20220530;  ///< default: paper's IPDPS 2022 week
};

/// Generates a documents x vocabulary matrix of byte-clamped word counts.
spn::DataMatrix make_bag_of_words(const CorpusConfig& config);

}  // namespace spnhbm::workload
