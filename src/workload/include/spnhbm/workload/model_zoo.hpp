// The NIPS benchmark model zoo.
//
// Reconstructs the paper's benchmark suite: Mixed SPNs (histogram leaves)
// learned over the first N word features of the (synthetic) NIPS
// bag-of-words corpus, for N in {10, 20, 30, 40, 80} — the sizes named in
// the paper. Each model also carries the per-sample transfer sizes the
// evaluation reasons with (N input bytes + 8 result bytes; e.g. NIPS10 =
// 144 bits per sample).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "spnhbm/spn/graph.hpp"

namespace spnhbm::workload {

struct NipsModel {
  std::string name;            ///< "NIPS10", ...
  std::size_t variables = 0;   ///< word features == input bytes per sample
  spn::Spn spn;

  std::size_t input_bytes_per_sample() const { return variables; }
  static constexpr std::size_t result_bytes_per_sample() { return 8; }
  std::size_t total_bytes_per_sample() const {
    return input_bytes_per_sample() + result_bytes_per_sample();
  }
};

/// Benchmark sizes used throughout the paper's evaluation.
const std::vector<std::size_t>& nips_benchmark_sizes();

/// Builds the learned model for `variables` word features. Deterministic in
/// (variables, seed); validated before returning.
NipsModel make_nips_model(std::size_t variables,
                          std::uint64_t seed = 20220530);

/// Builds the full suite (one model per benchmark size).
std::vector<NipsModel> make_nips_suite(std::uint64_t seed = 20220530);

}  // namespace spnhbm::workload
