#include "spnhbm/fpga/partition.hpp"

#include <algorithm>

#include "spnhbm/util/strings.hpp"

namespace spnhbm::fpga {

namespace {

/// Fabric cost of one tenant: its PEs plus the per-PE interconnect share
/// (SmartConnect + register slices). The shell itself is shared and
/// accounted once, in reserved().
ResourceVector tenant_cost(const compiler::DatapathModule& module,
                           arith::FormatKind format, int pe_slots) {
  const auto& infra = cal::kInfraHbm;
  ResourceVector cost =
      estimate_pe(module, format) * static_cast<double>(pe_slots);
  cost.kluts_logic += infra.kluts_per_pe * static_cast<double>(pe_slots);
  cost.kregs += infra.kregs_per_pe * static_cast<double>(pe_slots);
  return cost;
}

ResourceVector shared_infrastructure() {
  const auto& infra = cal::kInfraHbm;
  return ResourceVector{infra.kluts_logic, infra.kluts_mem, infra.kregs,
                        infra.bram, infra.dsp};
}

}  // namespace

PartitionTable::PartitionTable(PartitionBudget budget) : budget_(budget) {
  SPNHBM_REQUIRE(budget_.pe_slots >= 0 && budget_.hbm_channels >= 0,
                 "partition budget must be non-negative");
  SPNHBM_REQUIRE(budget_.utilisation > 0.0 && budget_.utilisation <= 1.0,
                 "utilisation must be in (0, 1]");
  channel_used_.assign(static_cast<std::size_t>(budget_.hbm_channels), false);
}

const Partition& PartitionTable::reserve(
    const std::string& name, const compiler::DatapathModule& module,
    arith::FormatKind format, int pe_slots) {
  if (pe_slots < 1) {
    throw PlacementError("partition '" + name + "' needs at least one PE slot");
  }
  if (partitions_.count(name) > 0) {
    throw PlacementError("partition '" + name + "' already exists");
  }
  // Discrete budgets first: PE slots and one HBM channel per PE.
  std::vector<ResourceDeficit> deficits;
  const int used_slots = budget_.pe_slots - free_pe_slots();
  if (used_slots + pe_slots > budget_.pe_slots) {
    deficits.push_back({"PE slots",
                        static_cast<double>(used_slots + pe_slots),
                        static_cast<double>(budget_.pe_slots)});
  }
  const int used_channels = budget_.hbm_channels - free_channels();
  if (used_channels + pe_slots > budget_.hbm_channels) {
    deficits.push_back({"HBM channels",
                        static_cast<double>(used_channels + pe_slots),
                        static_cast<double>(budget_.hbm_channels)});
  }
  // Fabric budget: shell + every resident tenant + the incoming one.
  const ResourceVector occupied =
      reserved() + tenant_cost(module, format, pe_slots);
  for (auto& deficit : resource_deficits(occupied, routable_budget())) {
    deficits.push_back(std::move(deficit));
  }
  if (!deficits.empty()) {
    throw PlacementDeficitError(
        strformat("tenant '%s' (%d PE slot(s)) does not fit next to %zu "
                  "resident partition(s)",
                  name.c_str(), pe_slots, partitions_.size()),
        std::move(deficits));
  }

  Partition partition;
  partition.name = name;
  partition.pe_slots = pe_slots;
  partition.resources = tenant_cost(module, format, pe_slots);
  for (int channel = 0;
       channel < budget_.hbm_channels &&
       partition.hbm_channels.size() < static_cast<std::size_t>(pe_slots);
       ++channel) {
    if (channel_used_[static_cast<std::size_t>(channel)]) continue;
    channel_used_[static_cast<std::size_t>(channel)] = true;
    partition.hbm_channels.push_back(channel);
  }
  return partitions_.emplace(name, std::move(partition)).first->second;
}

void PartitionTable::release(const std::string& name) {
  auto it = partitions_.find(name);
  if (it == partitions_.end()) {
    throw PlacementError("unknown partition: " + name);
  }
  for (const int channel : it->second.hbm_channels) {
    channel_used_[static_cast<std::size_t>(channel)] = false;
  }
  partitions_.erase(it);
}

bool PartitionTable::contains(const std::string& name) const {
  return partitions_.count(name) > 0;
}

const Partition& PartitionTable::at(const std::string& name) const {
  auto it = partitions_.find(name);
  if (it == partitions_.end()) {
    throw PlacementError("unknown partition: " + name);
  }
  return it->second;
}

std::vector<Partition> PartitionTable::partitions() const {
  std::vector<Partition> all;
  all.reserve(partitions_.size());
  for (const auto& [name, partition] : partitions_) {
    (void)name;
    all.push_back(partition);  // map order: sorted by name
  }
  return all;
}

int PartitionTable::free_pe_slots() const {
  int used = 0;
  for (const auto& [name, partition] : partitions_) {
    (void)name;
    used += partition.pe_slots;
  }
  return budget_.pe_slots - used;
}

int PartitionTable::free_channels() const {
  return budget_.hbm_channels -
         static_cast<int>(std::count(channel_used_.begin(),
                                     channel_used_.end(), true));
}

ResourceVector PartitionTable::reserved() const {
  ResourceVector total = shared_infrastructure();
  for (const auto& [name, partition] : partitions_) {
    (void)name;
    total += partition.resources;
  }
  return total;
}

ResourceVector PartitionTable::routable_budget() const {
  return vu37p_budget() * budget_.utilisation;
}

double PartitionTable::bitstream_fraction(const std::string& name) const {
  const Partition& partition = at(name);
  return static_cast<double>(partition.pe_slots) /
         static_cast<double>(budget_.pe_slots);
}

std::string PartitionTable::describe() const {
  std::string text = strformat(
      "%zu partition(s), %d/%d PE slots free, %d/%d channels free",
      partitions_.size(), free_pe_slots(), budget_.pe_slots, free_channels(),
      budget_.hbm_channels);
  for (const auto& [name, partition] : partitions_) {
    std::string channels;
    for (const int channel : partition.hbm_channels) {
      channels += (channels.empty() ? "" : ",") + std::to_string(channel);
    }
    text += strformat("\n  %s: %d PE(s) on channel(s) %s — %s", name.c_str(),
                      partition.pe_slots, channels.c_str(),
                      partition.resources.describe().c_str());
  }
  return text;
}

}  // namespace spnhbm::fpga
