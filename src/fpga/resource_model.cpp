#include "spnhbm/fpga/resource_model.hpp"

#include <algorithm>
#include <cmath>

#include "spnhbm/util/strings.hpp"

namespace spnhbm::fpga {

ResourceVector& ResourceVector::operator+=(const ResourceVector& other) {
  kluts_logic += other.kluts_logic;
  kluts_mem += other.kluts_mem;
  kregs += other.kregs;
  bram36 += other.bram36;
  dsp += other.dsp;
  return *this;
}

ResourceVector ResourceVector::operator+(const ResourceVector& other) const {
  ResourceVector result = *this;
  result += other;
  return result;
}

ResourceVector ResourceVector::operator*(double factor) const {
  return ResourceVector{kluts_logic * factor, kluts_mem * factor,
                        kregs * factor, bram36 * factor, dsp * factor};
}

bool ResourceVector::fits_within(const ResourceVector& budget) const {
  return kluts_logic <= budget.kluts_logic && kluts_mem <= budget.kluts_mem &&
         kregs <= budget.kregs && bram36 <= budget.bram36 && dsp <= budget.dsp;
}

std::string ResourceVector::describe() const {
  return strformat(
      "%.1f kLUT logic, %.1f kLUT mem, %.1f kRegs, %.0f BRAM, %.0f DSP",
      kluts_logic, kluts_mem, kregs, bram36, dsp);
}

std::string ResourceDeficit::describe() const {
  return strformat("%s: %.1f required vs %.1f available (short %.1f)",
                   resource.c_str(), required, available, deficit());
}

std::vector<ResourceDeficit> resource_deficits(const ResourceVector& required,
                                               const ResourceVector& budget) {
  std::vector<ResourceDeficit> deficits;
  const auto check = [&](const char* name, double need, double have) {
    if (need > have) deficits.push_back({name, need, have});
  };
  check("kLUT logic", required.kluts_logic, budget.kluts_logic);
  check("kLUT mem", required.kluts_mem, budget.kluts_mem);
  check("kRegs", required.kregs, budget.kregs);
  check("BRAM36", required.bram36, budget.bram36);
  check("DSP48", required.dsp, budget.dsp);
  return deficits;
}

std::string describe_deficits(const std::vector<ResourceDeficit>& deficits) {
  std::string text;
  for (const auto& deficit : deficits) {
    if (!text.empty()) text += "\n";
    text += deficit.describe();
  }
  return text;
}

namespace {

std::string deficit_message(const std::string& context,
                            const std::vector<ResourceDeficit>& deficits) {
  std::string message = context;
  for (const auto& deficit : deficits) {
    message += "\n  " + deficit.describe();
  }
  return message;
}

}  // namespace

PlacementDeficitError::PlacementDeficitError(
    const std::string& context, std::vector<ResourceDeficit> deficits)
    : PlacementError(deficit_message(context, deficits)),
      deficits_(std::move(deficits)) {}

ResourceVector vu37p_budget() {
  // "Available" row of Table I (New columns).
  return ResourceVector{1304.0, 601.0, 2607.0, 2016.0, 9024.0};
}

ResourceVector f1_vu9p_budget() {
  // "Available" row of Table I ([8] columns).
  return ResourceVector{1182.0, 592.0, 2364.0, 2160.0, 6840.0};
}

namespace {

const cal::OperatorCosts& costs_for(arith::FormatKind format) {
  switch (format) {
    case arith::FormatKind::kFloat64: return cal::kFloat64Costs;
    case arith::FormatKind::kPosit: return cal::kPositCosts;
    case arith::FormatKind::kCfp:
    case arith::FormatKind::kLns: return cal::kCfpCosts;
  }
  return cal::kCfpCosts;
}

}  // namespace

ResourceVector estimate_pe(const compiler::DatapathModule& module,
                           arith::FormatKind format) {
  const auto& costs = costs_for(format);
  const auto& base = format == arith::FormatKind::kFloat64 ? cal::kPeBaseF1
                                                           : cal::kPeBaseNew;
  const double muls = static_cast<double>(
      module.count_ops(compiler::OpKind::kMul) +
      module.count_ops(compiler::OpKind::kConstMul));
  const double adds =
      static_cast<double>(module.count_ops(compiler::OpKind::kAdd));
  const double hists =
      static_cast<double>(module.count_ops(compiler::OpKind::kHistogramLookup));
  const double tables = static_cast<double>(module.tables().size());

  double op_register_bits = 0.0;
  for (const auto& op : module.ops()) {
    op_register_bits += static_cast<double>(op.latency) * costs.value_width_bits;
  }
  const double balance_luts =
      static_cast<double>(module.balance_register_stages()) *
      costs.value_width_bits / 16.0;  // SRL-packed delay lines

  ResourceVector pe;
  pe.dsp = costs.dsp_per_mul * muls;
  pe.kluts_logic = (costs.lut_mul * muls + costs.lut_add * adds +
                    costs.lut_hist * hists + base.lut_pe_base) /
                   1000.0;
  pe.kregs = (op_register_bits + base.regs_pe_base) / 1000.0;
  pe.kluts_mem =
      (costs.lutmem_table * tables + balance_luts + base.lutmem_pe_base) /
      1000.0;
  pe.bram36 = base.bram_fifo_pe + std::ceil(costs.bram_per_table * tables);
  return pe;
}

ResourceVector estimate_design(const compiler::DatapathModule& module,
                               arith::FormatKind format,
                               const DesignSpec& spec) {
  SPNHBM_REQUIRE(spec.pe_count >= 1, "design needs at least one PE");
  const auto& infra = spec.platform == Platform::kF1 ? cal::kInfraF1Shell
                                                     : cal::kInfraHbm;
  ResourceVector design = estimate_pe(module, format) *
                          static_cast<double>(spec.pe_count);
  design.kluts_logic += infra.kluts_logic +
                        infra.kluts_per_pe * static_cast<double>(spec.pe_count);
  design.kluts_mem += infra.kluts_mem;
  design.kregs += infra.kregs +
                  infra.kregs_per_pe * static_cast<double>(spec.pe_count);
  design.bram36 += infra.bram;
  design.dsp += infra.dsp;
  if (spec.platform == Platform::kF1) {
    SPNHBM_REQUIRE(spec.memory_controllers >= 1 &&
                       spec.memory_controllers <= cal::kF1MaxMemoryChannels,
                   "F1 supports 1..4 DDR channels");
    const auto& ctrl = cal::kDdrControllerCost;
    const auto n = static_cast<double>(spec.memory_controllers);
    design.kluts_logic += ctrl.kluts_logic * n;
    design.kluts_mem += ctrl.kluts_mem * n;
    design.kregs += ctrl.kregs * n;
    design.bram36 += ctrl.bram * n;
  }
  return design;
}

void check_placement(const compiler::DatapathModule& module,
                     arith::FormatKind format, const DesignSpec& spec) {
  const ResourceVector budget =
      (spec.platform == Platform::kF1 ? f1_vu9p_budget() : vu37p_budget()) *
      cal::kRoutableUtilisation;
  const ResourceVector design = estimate_design(module, format, spec);
  auto deficits = resource_deficits(design, budget);
  if (spec.platform == Platform::kHbmXupVvh) {
    SPNHBM_REQUIRE(spec.pe_count <= 32,
                   "HBM platform has 32 channels (one per PE)");
    if (spec.pe_count > cal::kMaxRoutablePes) {
      deficits.push_back({"PE slots", static_cast<double>(spec.pe_count),
                          static_cast<double>(cal::kMaxRoutablePes)});
    }
  }
  if (!deficits.empty()) {
    throw PlacementDeficitError(
        strformat("%d PE(s) do not place on this device", spec.pe_count),
        std::move(deficits));
  }
}

int max_placeable_pes(const compiler::DatapathModule& module,
                      arith::FormatKind format, Platform platform) {
  const int cap = platform == Platform::kHbmXupVvh
                      ? cal::kMaxRoutablePes
                      : cal::kF1MaxMemoryChannels;
  int best = 0;
  for (int n = 1; n <= cap; ++n) {
    DesignSpec spec;
    spec.platform = platform;
    spec.pe_count = n;
    spec.memory_controllers =
        platform == Platform::kF1
            ? std::min(n, cal::kF1MaxMemoryChannels)
            : 1;
    try {
      check_placement(module, format, spec);
      best = n;
    } catch (const PlacementError&) {
      break;
    }
  }
  return best;
}

}  // namespace spnhbm::fpga
