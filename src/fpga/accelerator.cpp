#include "spnhbm/fpga/accelerator.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <vector>

#include "spnhbm/compiler/sparse_evidence.hpp"
#include "spnhbm/util/log.hpp"

namespace spnhbm::fpga {

SpnAccelerator::SpnAccelerator(sim::ProcessRunner& runner,
                               const compiler::DatapathModule& module,
                               const arith::ArithBackend& backend,
                               axi::AxiPort& data_port,
                               hbm::HbmChannel* backing,
                               AcceleratorConfig config)
    : runner_(runner),
      module_(module),
      backend_(backend),
      data_port_(data_port),
      backing_(backing),
      config_(config),
      done_notify_(runner.scheduler()) {
  SPNHBM_REQUIRE(module_.input_features() > 0, "datapath has no inputs");
  const std::size_t samples_per_burst = std::max<std::size_t>(
      1, config_.load_burst_bytes / module_.input_features());
  const std::size_t sample_tokens = std::max<std::size_t>(
      2, config_.sample_fifo_samples / samples_per_burst);
  const std::size_t result_tokens = std::max<std::size_t>(
      2, config_.result_fifo_results / samples_per_burst);
  sample_buffer_ = std::make_unique<sim::Fifo<BurstToken>>(runner.scheduler(),
                                                           sample_tokens);
  result_buffer_ = std::make_unique<sim::Fifo<BurstToken>>(runner.scheduler(),
                                                           result_tokens);
  track_ = telemetry::tracer().register_track(config_.label,
                                              telemetry::TraceClock::kVirtual);
  auto& registry = telemetry::metrics();
  ctr_jobs_ = registry.counter("accelerator.jobs");
  ctr_samples_ = registry.counter("accelerator.samples");
}

void SpnAccelerator::write_register(Reg reg, std::uint64_t value) {
  switch (reg) {
    case Reg::kControl:
      if (value == 1) {
        start_inference();
      } else if (value == 2) {
        run_config_query();
      } else {
        throw RuntimeApiError("unknown control command");
      }
      return;
    case Reg::kInputAddress: input_address_ = value; return;
    case Reg::kOutputAddress: output_address_ = value; return;
    case Reg::kSampleCount: sample_count_ = value; return;
    case Reg::kInputBytes: input_bytes_ = value; return;
    case Reg::kStatus:
    case Reg::kReturnValue:
      throw RuntimeApiError("register is read-only");
  }
  throw RuntimeApiError("unknown register");
}

std::uint64_t SpnAccelerator::read_register(Reg reg) const {
  switch (reg) {
    case Reg::kControl: return 0;
    case Reg::kStatus:
      return (busy_ ? 1u : 0u) | (done_ ? 2u : 0u);
    case Reg::kInputAddress: return input_address_;
    case Reg::kOutputAddress: return output_address_;
    case Reg::kSampleCount: return sample_count_;
    case Reg::kInputBytes: return input_bytes_;
    case Reg::kReturnValue: return return_value_;
  }
  throw RuntimeApiError("unknown register");
}

void SpnAccelerator::run_config_query() {
  // Second execution mode (paper §IV-B): the runtime queries synthesis-time
  // parameters instead of supplying them manually. Completes combinationally
  // from the register file's point of view.
  switch (static_cast<ConfigQuery>(sample_count_)) {
    case ConfigQuery::kInputFeatures:
      return_value_ = module_.input_features();
      return;
    case ConfigQuery::kPipelineDepth:
      return_value_ = module_.pipeline_depth();
      return;
    case ConfigQuery::kInterfaceBytes:
      return_value_ = config_.interface_bytes;
      return;
    case ConfigQuery::kClockHz:
      return_value_ = static_cast<std::uint64_t>(config_.clock.frequency_hz());
      return;
    case ConfigQuery::kQueryKind:
      return_value_ = static_cast<std::uint64_t>(module_.query());
      return;
  }
  throw RuntimeApiError("unknown configuration query");
}

void SpnAccelerator::start_inference() {
  if (busy_) throw RuntimeApiError("accelerator is already running");
  SPNHBM_REQUIRE(sample_count_ > 0, "sample count must be set before start");
  busy_ = true;
  done_ = false;
  runner_.spawn(job_process());
}

sim::Task<void> SpnAccelerator::wait_done() {
  if (done_) co_return;
  co_await done_notify_.wait();
}

sim::Process SpnAccelerator::job_process() {
  const std::uint64_t samples = sample_count_;
  const std::uint64_t input_address = input_address_;
  const std::uint64_t output_address = output_address_;
  const std::uint64_t input_bytes = input_bytes_;
  const Picoseconds job_start = runner_.scheduler().now();

  sim::Process load =
      runner_.spawn(load_unit(input_address, samples, input_bytes));
  sim::Process datapath = runner_.spawn(datapath_unit(samples));
  sim::Process store = runner_.spawn(store_unit(output_address, samples));
  co_await load.join();
  co_await datapath.join();
  co_await store.join();

  if (config_.compute_results && backing_ != nullptr) {
    evaluate_block(input_address, output_address, samples, input_bytes);
  }
  samples_processed_ += samples;
  ctr_jobs_->add(1);
  ctr_samples_->add(samples);
  telemetry::tracer().complete_virtual(track_, "job", job_start,
                                       runner_.scheduler().now());
  busy_ = false;
  done_ = true;
  done_notify_.notify_all();
}

sim::Process SpnAccelerator::load_unit(std::uint64_t input_address,
                                       std::uint64_t samples,
                                       std::uint64_t input_bytes) {
  const std::uint64_t features = module_.input_features();
  // Dense layout bursts samples x features bytes. A sparse stream bursts
  // exactly its encoded size — this is where the HBM read traffic drops
  // with the active-index density. Sample boundaries inside a sparse
  // burst are variable-length; the decoder emits samples proportionally
  // to the bytes received (exact at the final burst), which preserves the
  // II = 1 consumption rate downstream.
  const std::uint64_t total_bytes =
      input_bytes != 0 ? input_bytes : samples * features;
  std::uint64_t bytes_done = 0;
  std::uint64_t samples_emitted = 0;
  while (bytes_done < total_bytes) {
    const auto burst = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        config_.load_burst_bytes, total_bytes - bytes_done));
    co_await data_port_.transfer(
        axi::BurstRequest{input_address + bytes_done, burst, false});
    bytes_done += burst;
    // Samples fully contained in the data received so far.
    const std::uint64_t now_available =
        input_bytes != 0 ? (bytes_done == total_bytes
                                ? samples
                                : bytes_done * samples / total_bytes)
                         : bytes_done / features;
    BurstToken token;
    token.samples = now_available - samples_emitted;
    token.last = bytes_done == total_bytes;
    samples_emitted = now_available;
    if (token.samples > 0 || token.last) {
      co_await sample_buffer_->put(token);
    }
  }
}

sim::Process SpnAccelerator::datapath_unit(std::uint64_t samples) {
  // II = 1: consumes one sample per PE cycle once filled. Within a burst
  // the linear-rate pipeline is modelled analytically (exact for II = 1).
  auto& scheduler = runner_.scheduler();
  std::uint64_t remaining = samples;
  bool first = true;
  while (remaining > 0) {
    BurstToken token = co_await sample_buffer_->get();
    if (first && token.samples > 0) {
      // Pipeline fill: the first result trails the first sample by the
      // datapath depth.
      const Picoseconds fill_start = scheduler.now();
      co_await sim::delay(scheduler,
                          config_.clock.cycles(module_.pipeline_depth()));
      telemetry::tracer().complete_virtual(track_, "pipeline_fill", fill_start,
                                           scheduler.now());
      first = false;
    }
    co_await sim::delay(
        scheduler,
        config_.clock.cycles(static_cast<std::int64_t>(token.samples)));
    remaining -= std::min<std::uint64_t>(remaining, token.samples);
    co_await result_buffer_->put(token);
  }
}

sim::Process SpnAccelerator::store_unit(std::uint64_t output_address,
                                        std::uint64_t samples) {
  constexpr std::uint64_t kResultBytes = 8;
  const std::uint64_t total_bytes = samples * kResultBytes;
  std::uint64_t pending_bytes = 0;
  std::uint64_t written = 0;
  std::uint64_t consumed_samples = 0;
  while (consumed_samples < samples) {
    BurstToken token = co_await result_buffer_->get();
    consumed_samples += token.samples;
    pending_bytes += token.samples * kResultBytes;
    // Write out in full bursts; flush the remainder on the last token.
    while (pending_bytes >= config_.load_burst_bytes ||
           (token.last && pending_bytes > 0)) {
      const auto burst = static_cast<std::uint32_t>(std::min<std::uint64_t>(
          pending_bytes, config_.load_burst_bytes));
      co_await data_port_.transfer(
          axi::BurstRequest{output_address + written, burst, true});
      written += burst;
      pending_bytes -= burst;
    }
  }
  SPNHBM_REQUIRE(written == total_bytes, "store unit byte count mismatch");
}

void SpnAccelerator::evaluate_block(std::uint64_t input_address,
                                    std::uint64_t output_address,
                                    std::uint64_t samples,
                                    std::uint64_t input_bytes) {
  const std::size_t features = module_.input_features();
  std::vector<std::uint8_t> outputs(samples * 8);
  const auto emit = [&](std::uint64_t s, double result) {
    const auto bits = std::bit_cast<std::uint64_t>(result);
    std::memcpy(outputs.data() + s * 8, &bits, 8);
  };
  if (input_bytes != 0) {
    // Sparse path: decode the CSR stream in-core and evaluate each sample
    // against the module's default evidence — the marginalised slot for
    // non-joint datapaths.
    std::vector<std::uint8_t> stream(input_bytes);
    backing_->read_backdoor(input_address, stream);
    const compiler::SparseBatch batch =
        compiler::decode_sparse(stream, features, samples);
    for (std::uint64_t s = 0; s < samples; ++s) {
      emit(s, module_.evaluate(backend_,
                               batch.view(s, module_.default_evidence())));
    }
  } else {
    std::vector<std::uint8_t> inputs(samples * features);
    backing_->read_backdoor(input_address, inputs);
    for (std::uint64_t s = 0; s < samples; ++s) {
      emit(s,
           module_.evaluate(backend_, std::span<const std::uint8_t>(inputs)
                                          .subspan(s * features, features)));
    }
  }
  backing_->write_backdoor(output_address, outputs);
}

}  // namespace spnhbm::fpga
