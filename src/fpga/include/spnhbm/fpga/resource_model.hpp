// FPGA resource estimation and placement feasibility.
//
// Reproduces the paper's Table I: per-design resource vectors (kLUT as
// logic, kLUT as memory, kRegs, BRAM36, DSP48) for N accelerator instances
// of a compiled datapath on either the HBM platform (this work, Bittware
// XUP-VVH / VU37P) or the prior-work AWS F1 platform (VU9P + shell + soft
// DDR4 controllers). All constants live in calibration.hpp.
#pragma once

#include <string>
#include <vector>

#include "spnhbm/compiler/datapath.hpp"
#include "spnhbm/fpga/calibration.hpp"

namespace spnhbm::fpga {

struct ResourceVector {
  double kluts_logic = 0.0;
  double kluts_mem = 0.0;
  double kregs = 0.0;
  double bram36 = 0.0;
  double dsp = 0.0;

  ResourceVector& operator+=(const ResourceVector& other);
  ResourceVector operator+(const ResourceVector& other) const;
  ResourceVector operator*(double factor) const;
  /// True if every component is <= the corresponding budget component.
  bool fits_within(const ResourceVector& budget) const;
  std::string describe() const;
};

/// Device budgets — the "Available" row of Table I.
ResourceVector vu37p_budget();   ///< Bittware XUP-VVH (this work)
ResourceVector f1_vu9p_budget(); ///< AWS F1 (prior work [8])

/// One over-budget resource of a failed placement: what the design needs
/// vs what the device offers (after the routable-utilisation margin).
/// `resource` also covers the discrete budgets ("PE slots",
/// "HBM channels") that have no ResourceVector component.
struct ResourceDeficit {
  std::string resource;
  double required = 0.0;
  double available = 0.0;
  double deficit() const { return required - available; }
  /// "kLUT logic: 812.3 required vs 643.2 available (short 169.1)"
  std::string describe() const;
};

/// The over-budget components of `required` against `budget`, one entry
/// per Table I resource that does not fit (empty = the design places).
std::vector<ResourceDeficit> resource_deficits(const ResourceVector& required,
                                               const ResourceVector& budget);

/// One line per deficit, '\n'-joined (empty for an empty list).
std::string describe_deficits(const std::vector<ResourceDeficit>& deficits);

/// PlacementError that carries the per-resource breakdown: every placement
/// failure in this module reports required vs available for each
/// over-budget resource instead of a bare "does not fit".
class PlacementDeficitError : public PlacementError {
 public:
  PlacementDeficitError(const std::string& context,
                        std::vector<ResourceDeficit> deficits);
  const std::vector<ResourceDeficit>& deficits() const { return deficits_; }

 private:
  std::vector<ResourceDeficit> deficits_;
};

enum class Platform { kHbmXupVvh, kF1 };

struct DesignSpec {
  Platform platform = Platform::kHbmXupVvh;
  int pe_count = 1;
  /// F1 only: number of soft DDR controllers composed into the design
  /// (HBM controllers are hardened and free).
  int memory_controllers = 1;
};

/// Resource cost of one PE instance of the compiled datapath.
ResourceVector estimate_pe(const compiler::DatapathModule& module,
                           arith::FormatKind format);

/// Full-design estimate: PEs + platform infrastructure (+ controllers).
ResourceVector estimate_design(const compiler::DatapathModule& module,
                               arith::FormatKind format,
                               const DesignSpec& spec);

/// Throws PlacementError (with a resource breakdown) if the design does
/// not fit the platform within the routable-utilisation margin.
void check_placement(const compiler::DatapathModule& module,
                     arith::FormatKind format, const DesignSpec& spec);

/// Largest PE count that places on the platform (respecting the routing
/// cap and, on F1, one controller per PE up to the channel limit).
int max_placeable_pes(const compiler::DatapathModule& module,
                      arith::FormatKind format, Platform platform);

}  // namespace spnhbm::fpga
