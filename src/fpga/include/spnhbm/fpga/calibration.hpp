// Calibration constants for the simulated platforms.
//
// Every number in the performance and resource models that is fitted to
// published data lives HERE, in one place, with its provenance:
//   [P]  stated directly in the paper under reproduction (IPDPS'22),
//   [8]  stated in or derived from the prior work (H2RC'19),
//   [C]  calibrated: chosen so the simulation reproduces the paper's
//        measured anchors (Fig. 2 plateau, Fig. 4 anchors, Table I),
//   [V]  vendor datasheet (Xilinx UltraScale+ / PCIe specs).
//
// See DESIGN.md §1 for the substitution rationale and EXPERIMENTS.md for
// paper-vs-simulated numbers.
#pragma once

#include "spnhbm/util/units.hpp"

namespace spnhbm::fpga::cal {

// --- Clocks ---------------------------------------------------------------
inline constexpr double kPeClockHz = 225e6;        // [P] §IV-A
inline constexpr double kHbmClockHz = 450e6;       // [P] §II-B
inline constexpr double kF1PeClockHz = 250e6;      // [8] AWS shell clock

// --- Accelerator micro-architecture ----------------------------------------
inline constexpr int kPeInterfaceBytes = 64;       // [P] 512-bit data path
inline constexpr int kLoadBurstBytes = 4096;       // [C] AXI4 max burst
inline constexpr int kSampleFifoSamples = 2048;    // [C] sample buffer
inline constexpr int kResultFifoResults = 1024;    // [C] result buffer

// --- Host runtime ----------------------------------------------------------
/// Host-side staging copy into DMA-able pinned buffers. [C] commodity Xeon
/// single-thread memcpy rate; serialises with the control thread's loop and
/// is one of the two mechanisms behind the 1-PE end-to-end anchor.
inline constexpr double kHostStagingBytesPerSecond = 16.0e9;
/// Job launch overhead per sub-job: AXI4-Lite register writes, doorbell,
/// completion interrupt and handler. [C]
inline constexpr Picoseconds kJobLaunchOverhead = microseconds(50);
/// Default block size (samples per sub-job) of the runtime. [C]
inline constexpr std::size_t kDefaultBlockSamples = 1u << 18;

// --- PCIe / DMA (see pcie::dma_config_for_generation) ----------------------
// 100 Gb/s-class engine, 40 us setup, 4 us per-transfer overhead: [P] §V-C
// names the engine class; latencies [C].

// --- F1 / prior-work platform [8] -------------------------------------------
/// AWS EDMA practical streaming rate (slower than XDMA-class engines). [C]
inline constexpr double kF1DmaGbps = 75.0;
/// DDR4-2133 channels on F1. [V]
inline constexpr int kF1MaxMemoryChannels = 4;

// --- Resource model ---------------------------------------------------------
// Formulas (per PE, from the compiled datapath):
//   DSP        = dsp_per_mul * (#mul + #cmul)
//   kLUT logic = (lut_mul*(#mul+#cmul) + lut_add*#add + lut_hist*#hist
//                 + lut_pe_base) / 1000
//   kRegs      = (sum_ops latency*width + regs_pe_base) / 1000
//   kLUT mem   = (lutmem_table*#tables + balance_stages*width/16 [SRLs]
//                 + lutmem_pe_base) / 1000
//   BRAM       = bram_fifo_pe (+ table BRAM for the float64 flow)
// Infrastructure is added once per design (plus per-PE interconnect).
// All constants [C], fitted to Table I; fit quality recorded in
// EXPERIMENTS.md.

struct OperatorCosts {
  double dsp_per_mul;
  double lut_mul;
  double lut_add;
  double lut_hist;
  double lutmem_table;   ///< 0 => tables live in BRAM instead
  double bram_per_table;  ///< used when lutmem_table == 0
  double value_width_bits;
};

/// CFP/LNS operators of this work ([4]/[11] generation).
inline constexpr OperatorCosts kCfpCosts{1.0, 60.0, 300.0, 25.0,
                                         20.0, 0.0, 30.0};
/// Double-precision Vivado FP cores of the prior work [8].
inline constexpr OperatorCosts kFloat64Costs{3.0, 500.0, 800.0, 25.0,
                                             0.0, 0.5, 64.0};
/// PACoGen posit<32,2> operators ([4]: larger than CFP due to regime
/// decode/encode and the 32-bit datapath).
inline constexpr OperatorCosts kPositCosts{2.0, 220.0, 520.0, 25.0,
                                           22.0, 0.0, 32.0};

struct UnitBaseCosts {
  double lut_pe_base;
  double regs_pe_base;
  double lutmem_pe_base;
  double bram_fifo_pe;
};
inline constexpr UnitBaseCosts kPeBaseNew{4000.0, 6000.0, 300.0, 8.0};
inline constexpr UnitBaseCosts kPeBaseF1{6000.0, 8000.0, 300.0, 12.0};

struct InfrastructureCosts {
  double kluts_logic;
  double kluts_mem;
  double kregs;
  double bram;
  double dsp;
  /// Per-PE interconnect (SmartConnect + register slices).
  double kluts_per_pe;
  double kregs_per_pe;
};
/// XUP-VVH platform: TaPaSCo + PCIe/DMA + HBM attachment (controllers are
/// hardened IP => no logic [P] §V-A).
inline constexpr InfrastructureCosts kInfraHbm{140.0, 58.0, 200.0, 90.0, 0.0,
                                               1.2, 2.0};
/// F1: AWS shell (fixed) — the per-soft-DDR-controller cost is separate.
inline constexpr InfrastructureCosts kInfraF1Shell{120.0, 28.0, 180.0, 200.0,
                                                   0.0, 1.0, 1.5};
struct SoftControllerCost {
  double kluts_logic = 28.0;  ///< [C] DDR4 MIG-class controller
  double kluts_mem = 1.5;
  double kregs = 17.0;
  double bram = 10.0;
};
inline constexpr SoftControllerCost kDdrControllerCost{};

/// Fraction of each device resource usable before routing fails.
/// [C] models the paper's "routing scarcity" replication limit.
inline constexpr double kRoutableUtilisation = 0.8;
/// Empirical replication cap of the TaPaSCo composition on the VU37P
/// (paper: eight accelerators was the largest routable design).
inline constexpr int kMaxRoutablePes = 8;

// --- Reconfiguration ---------------------------------------------------------
/// ICAP configuration port throughput: 32 bits per cycle at 100 MHz. [V]
inline constexpr double kIcapBytesPerSecond = 400e6;
/// Full-device bitstream sizes. [V] VU37P (XUP-VVH) / VU9P (F1) config
/// bitstreams; swapping a served model reprograms the whole shell in this
/// flow (no partial reconfiguration), so an activate() charges
/// bitstream / ICAP-rate (~0.45 s) before the new design answers.
inline constexpr double kBitstreamBytesHbm = 180e6;
inline constexpr double kBitstreamBytesF1 = 170e6;

}  // namespace spnhbm::fpga::cal
