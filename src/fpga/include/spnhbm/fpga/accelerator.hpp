// Cycle-calibrated simulation of one SPN accelerator core (paper Fig. 3).
//
// Units modelled, at burst granularity in virtual time:
//   * Load Unit      — issues AXI4 read bursts against the attached memory
//                      port and feeds the Sample Buffer;
//   * Sample Buffer  — bounded FIFO of input samples (back-pressures the
//                      Load Unit, exactly like the RTL FIFO);
//   * SPN Datapath   — the compiled pipelined operator graph; consumes one
//                      sample per PE cycle (II = 1) after the pipeline
//                      fill; modelled analytically within a burst, which is
//                      exact for a linear-rate pipeline;
//   * Result Buffer  — packs 64-bit results into 512-bit words;
//   * Store Unit     — writes result bursts back to memory.
//
// Control happens through an AXI4-Lite register file with 64-bit address
// registers (the paper's HBM adaptation) and two execution modes: normal
// inference and configuration read-out (paper §IV-B).
//
// The functional path is real: in `compute_results` mode the core reads
// input bytes from the memory's backing store, evaluates every sample
// bit-accurately through the datapath's arithmetic backend, and writes the
// results back — so end-to-end runs produce checkable probabilities.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "spnhbm/axi/port.hpp"
#include "spnhbm/compiler/datapath.hpp"
#include "spnhbm/fpga/calibration.hpp"
#include "spnhbm/hbm/hbm.hpp"
#include "spnhbm/sim/channel.hpp"
#include "spnhbm/sim/process.hpp"
#include "spnhbm/telemetry/metrics.hpp"
#include "spnhbm/telemetry/trace.hpp"

namespace spnhbm::fpga {

/// AXI4-Lite register map (64-bit registers, paper §III-B).
enum class Reg : std::uint32_t {
  kControl = 0x00,      ///< write 1: start inference, write 2: config mode
  kStatus = 0x08,       ///< bit 0: busy, bit 1: done
  kInputAddress = 0x10,  ///< device address of the input samples
  kOutputAddress = 0x18,  ///< device address for the results
  kSampleCount = 0x20,
  kReturnValue = 0x28,  ///< config mode result
  /// Total bytes of a CSR sparse-evidence stream at kInputAddress; 0 (the
  /// reset value) selects the dense samples x features layout. With sparse
  /// input the load unit bursts exactly these bytes — the HBM traffic
  /// shrinks with the active-index density.
  kInputBytes = 0x30,
};

/// Config-mode selectors (written to kSampleCount before starting mode 2).
enum class ConfigQuery : std::uint64_t {
  kInputFeatures = 0,
  kPipelineDepth = 1,
  kInterfaceBytes = 2,
  kClockHz = 3,
  /// The compiled query kind (compiler::QueryKind) — lets the runtime
  /// discover whether a bitstream computes joint, marginal or max-product
  /// values without trusting the host-side artifact metadata.
  kQueryKind = 4,
};

struct AcceleratorConfig {
  ClockDomain clock{cal::kPeClockHz};
  std::uint32_t interface_bytes = cal::kPeInterfaceBytes;
  std::uint32_t load_burst_bytes = cal::kLoadBurstBytes;
  std::size_t sample_fifo_samples = cal::kSampleFifoSamples;
  std::size_t result_fifo_results = cal::kResultFifoResults;
  /// Evaluate samples functionally (off for timing-only sweeps).
  bool compute_results = true;
  /// Telemetry label (trace track name); TapascoDevice sets "pe<i>".
  std::string label = "pe";
};

class SpnAccelerator {
 public:
  /// `data_port` is the timing path to memory; `backing` (optional) is the
  /// functional backing store behind that port.
  SpnAccelerator(sim::ProcessRunner& runner,
                 const compiler::DatapathModule& module,
                 const arith::ArithBackend& backend, axi::AxiPort& data_port,
                 hbm::HbmChannel* backing, AcceleratorConfig config = {});

  // --- AXI4-Lite access ------------------------------------------------
  void write_register(Reg reg, std::uint64_t value);
  std::uint64_t read_register(Reg reg) const;

  /// Completes when the current job finishes (level-triggered: returns
  /// immediately if idle).
  sim::Task<void> wait_done();

  bool busy() const { return busy_; }
  const AcceleratorConfig& config() const { return config_; }
  const compiler::DatapathModule& module() const { return module_; }

  /// Samples processed over the accelerator's lifetime.
  std::uint64_t samples_processed() const { return samples_processed_; }

 private:
  struct BurstToken {
    std::uint64_t samples = 0;
    bool last = false;
  };

  void start_inference();
  void run_config_query();
  sim::Process job_process();
  sim::Process load_unit(std::uint64_t input_address, std::uint64_t samples,
                         std::uint64_t input_bytes);
  sim::Process datapath_unit(std::uint64_t samples);
  sim::Process store_unit(std::uint64_t output_address, std::uint64_t samples);
  void evaluate_block(std::uint64_t input_address,
                      std::uint64_t output_address, std::uint64_t samples,
                      std::uint64_t input_bytes);

  sim::ProcessRunner& runner_;
  const compiler::DatapathModule& module_;
  const arith::ArithBackend& backend_;
  axi::AxiPort& data_port_;
  hbm::HbmChannel* backing_;
  AcceleratorConfig config_;

  // Register file.
  std::uint64_t input_address_ = 0;
  std::uint64_t output_address_ = 0;
  std::uint64_t sample_count_ = 0;
  std::uint64_t input_bytes_ = 0;  // 0 = dense layout
  std::uint64_t return_value_ = 0;
  bool busy_ = false;
  bool done_ = true;

  std::unique_ptr<sim::Fifo<BurstToken>> sample_buffer_;
  std::unique_ptr<sim::Fifo<BurstToken>> result_buffer_;
  sim::Notify done_notify_;
  std::uint64_t samples_processed_ = 0;
  telemetry::TrackId track_ = 0;
  std::shared_ptr<telemetry::Counter> ctr_jobs_;
  std::shared_ptr<telemetry::Counter> ctr_samples_;
};

}  // namespace spnhbm::fpga
