// Spatial partitioning of one device among co-resident SPN datapaths.
//
// The paper's Table I shows a single VU37P has room for ~8 NIPS80
// datapaths, yet the classic flow hosts exactly one model per bitstream.
// A PartitionTable divides the device's reconfigurable fabric into named
// partitions — disjoint PE slots and disjoint HBM channels — so several
// compiled datapaths can be resident at once and one tenant can be added
// or evicted by partial reconfiguration of only its partition while the
// others keep serving.
//
// Resource accounting: the platform infrastructure (TaPaSCo shell,
// PCIe/DMA, hardened HBM attachment) is resident once and shared; each
// partition then costs its PEs (estimate_pe x pe_slots) plus the per-PE
// interconnect share (SmartConnect + register slices). reserve() admits a
// tenant only when
//
//   infra + sum(partition costs) <= Table I budget x routable utilisation,
//   sum(PE slots)               <= the replication limit (8 on the VU37P),
//   sum(HBM channels)           <= the 32 independent channels,
//
// and a failure reports the per-resource deficit (required vs available)
// via PlacementDeficitError — never a bare boolean.
//
// Spatial isolation is what makes per-partition contention models honest:
// disjoint PE slots and disjoint HBM channels share no queue, so one
// tenant's load never appears in another tenant's latency (the crossbar
// is not used; §II-B's independent-channel property).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "spnhbm/fpga/resource_model.hpp"

namespace spnhbm::fpga {

/// One named partition: a tenant's slice of the device.
struct Partition {
  std::string name;
  int pe_slots = 0;
  /// The HBM channel indices backing this partition's PEs (one channel
  /// per PE, disjoint across partitions).
  std::vector<int> hbm_channels;
  /// The partition's fabric cost: PEs + per-PE interconnect share.
  ResourceVector resources;
};

/// Discrete device budgets the table partitions. Defaults model the
/// XUP-VVH: the paper's 8-PE routable replication limit and the 32
/// independent HBM channels. Tests and what-if studies shrink them.
struct PartitionBudget {
  int pe_slots = cal::kMaxRoutablePes;
  int hbm_channels = 32;
  /// Fabric fraction usable before routing fails.
  double utilisation = cal::kRoutableUtilisation;
};

class PartitionTable {
 public:
  /// Spatial multi-tenancy needs per-PE channel isolation, so only the
  /// HBM platform is supported (F1 shares soft DDR controllers).
  explicit PartitionTable(PartitionBudget budget = {});

  /// Admits a tenant of `pe_slots` PEs of the compiled datapath: checks
  /// the combined fabric budget plus the PE-slot and channel limits,
  /// assigns the lowest free HBM channels (one per PE) and records the
  /// partition. Throws PlacementDeficitError (with required-vs-available
  /// per resource) when the tenant does not fit, PlacementError when
  /// `name` is already taken or `pe_slots` < 1.
  const Partition& reserve(const std::string& name,
                           const compiler::DatapathModule& module,
                           arith::FormatKind format, int pe_slots);

  /// Frees the partition's PE slots and channels. Throws PlacementError
  /// for an unknown name.
  void release(const std::string& name);

  bool contains(const std::string& name) const;
  /// Throws PlacementError for an unknown name.
  const Partition& at(const std::string& name) const;
  /// All partitions, sorted by name.
  std::vector<Partition> partitions() const;
  std::size_t size() const { return partitions_.size(); }

  const PartitionBudget& budget() const { return budget_; }
  int free_pe_slots() const;
  int free_channels() const;
  /// Platform infrastructure + all partitions (what is on the fabric now).
  ResourceVector reserved() const;
  /// The routable fabric budget (Table I "Available" x utilisation).
  ResourceVector routable_budget() const;

  /// This partition's share of a full-device bitstream — the partial
  /// reconfiguration cost model: reprogramming one partition streams
  /// pe_slots / total-PE-slots of the full bitstream through the ICAP.
  double bitstream_fraction(const std::string& name) const;

  /// One line per partition: name, PE slots, channels, resources.
  std::string describe() const;

 private:
  PartitionBudget budget_;
  std::map<std::string, Partition> partitions_;
  std::vector<bool> channel_used_;
};

}  // namespace spnhbm::fpga
