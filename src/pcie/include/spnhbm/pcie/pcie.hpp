// PCIe link + DMA engine model — the bottleneck the paper's evaluation
// identifies (§V-B/V-C).
//
// Host<->device block transfers go through a single DMA engine (the
// TaPaSCo platform DMA): descriptors for both directions are serviced from
// one FIFO queue, so the *aggregate* H2D+D2H throughput is capped by the
// engine's streaming rate — ~100 Gb/s-class for PCIe 3.0 x16 engines like
// XDMA/Corundum (11.64 GiB/s), per the paper's §V-C discussion. Each
// transfer additionally pays a setup latency (descriptor write, doorbell,
// completion interrupt) that does *not* occupy the engine.
//
// Link generations 3.0-6.0 are configurable to reproduce the paper's
// forward-looking scaling discussion.
#pragma once

#include <cstdint>

#include "spnhbm/sim/channel.hpp"
#include "spnhbm/sim/scheduler.hpp"
#include "spnhbm/sim/task.hpp"
#include "spnhbm/telemetry/metrics.hpp"
#include "spnhbm/telemetry/trace.hpp"
#include "spnhbm/util/error.hpp"
#include "spnhbm/util/rng.hpp"
#include "spnhbm/util/units.hpp"

namespace spnhbm::pcie {

enum class Direction { kHostToDevice, kDeviceToHost };

struct PcieGeneration {
  int generation = 3;
  /// Theoretical one-direction bandwidth of an x16 link.
  Bandwidth theoretical;
  /// Practical one-direction DMA-engine streaming rate.
  Bandwidth practical;
};

/// The paper's §V-C numbers: 15.754 GB/s theoretical / ~11.64 GiB/s
/// practical for 3.0, then ~23 / 46 / 92 GiB/s practical for 4.0/5.0/6.0.
PcieGeneration pcie_generation(int generation);

struct DmaEngineConfig {
  /// Aggregate streaming rate of the engine (both directions share it).
  Bandwidth engine_bandwidth = Bandwidth::gbit_per_second(100.0);
  /// Descriptor setup + doorbell + completion latency per transfer
  /// (pipelined: does not occupy the engine).
  Picoseconds setup_latency = microseconds(40);
  /// Engine-occupying per-transfer overhead (descriptor fetch, TLP
  /// framing ramp).
  Picoseconds per_transfer_overhead = microseconds(12);
  /// Fault injection: probability that a transfer fails with DmaError
  /// after consuming its engine time (models link CRC errors / descriptor
  /// aborts; deterministic in `failure_seed`). 0 disables injection.
  double failure_rate = 0.0;
  std::uint64_t failure_seed = 0xD0A0;
};

/// Thrown by DmaEngine::transfer on an injected transfer failure; the
/// caller (the runtime's control thread) retries the transfer.
class DmaError : public Error {
 public:
  explicit DmaError(const std::string& what) : Error("DMA error: " + what) {}
};

DmaEngineConfig dma_config_for_generation(int generation);

class DmaEngine {
 public:
  DmaEngine(sim::Scheduler& scheduler, DmaEngineConfig config = {});

  const DmaEngineConfig& config() const { return config_; }

  /// Moves `bytes` across the link; completes when the transfer is done.
  sim::Task<void> transfer(std::uint64_t bytes, Direction direction);

  std::uint64_t bytes_to_device() const { return bytes_to_device_; }
  std::uint64_t bytes_to_host() const { return bytes_to_host_; }
  Picoseconds busy_time() const { return busy_time_; }
  std::uint64_t transfers() const { return transfers_; }
  std::uint64_t failed_transfers() const { return failed_transfers_; }

  /// Engine utilisation over an observation window.
  double utilisation(Picoseconds window) const {
    return window > 0 ? static_cast<double>(busy_time_) /
                            static_cast<double>(window)
                      : 0.0;
  }

 private:
  sim::Scheduler& scheduler_;
  DmaEngineConfig config_;
  sim::Resource engine_;
  Rng failure_rng_;
  telemetry::TrackId track_ = 0;
  std::shared_ptr<telemetry::Counter> ctr_transfers_;
  std::shared_ptr<telemetry::Counter> ctr_bytes_h2d_;
  std::shared_ptr<telemetry::Counter> ctr_bytes_d2h_;
  std::shared_ptr<telemetry::Counter> ctr_failures_;
  std::uint64_t bytes_to_device_ = 0;
  std::uint64_t bytes_to_host_ = 0;
  Picoseconds busy_time_ = 0;
  std::uint64_t transfers_ = 0;
  std::uint64_t failed_transfers_ = 0;
};

}  // namespace spnhbm::pcie
