#include "spnhbm/pcie/pcie.hpp"

#include "spnhbm/fault/fault.hpp"
#include "spnhbm/util/log.hpp"

namespace spnhbm::pcie {

PcieGeneration pcie_generation(int generation) {
  switch (generation) {
    case 3:
      return {3, Bandwidth::gb_per_second(15.754),
              Bandwidth::gbit_per_second(100.0)};  // 11.64 GiB/s
    case 4:
      return {4, Bandwidth::gb_per_second(31.508),
              Bandwidth::gib_per_second(23.0)};
    case 5:
      return {5, Bandwidth::gb_per_second(63.015),
              Bandwidth::gib_per_second(46.0)};
    case 6:
      return {6, Bandwidth::gb_per_second(126.03),
              Bandwidth::gib_per_second(92.0)};
    default:
      throw Error("unsupported PCIe generation");
  }
}

DmaEngineConfig dma_config_for_generation(int generation) {
  DmaEngineConfig config;
  config.engine_bandwidth = pcie_generation(generation).practical;
  return config;
}

DmaEngine::DmaEngine(sim::Scheduler& scheduler, DmaEngineConfig config)
    : scheduler_(scheduler),
      config_(config),
      engine_(scheduler, 1),
      failure_rng_(config.failure_seed) {
  SPNHBM_REQUIRE(config_.failure_rate >= 0.0 && config_.failure_rate < 1.0,
                 "failure rate must be in [0, 1)");
  track_ = telemetry::tracer().register_track("pcie/dma",
                                              telemetry::TraceClock::kVirtual);
  auto& registry = telemetry::metrics();
  ctr_transfers_ = registry.counter("pcie.transfers");
  ctr_bytes_h2d_ = registry.counter("pcie.bytes_h2d");
  ctr_bytes_d2h_ = registry.counter("pcie.bytes_d2h");
  ctr_failures_ = registry.counter("pcie.failed_transfers");
}

sim::Task<void> DmaEngine::transfer(std::uint64_t bytes, Direction direction) {
  SPNHBM_REQUIRE(bytes > 0, "empty DMA transfer");
  // Injected transfer faults: decided up front (so the op index is the
  // transfer's issue order), applied after the engine time is consumed —
  // a failed transfer still burnt its descriptor slot and link time.
  fault::FaultDecision injected;
  if (fault::injector().armed()) {
    injected = fault::injector().decide("pcie.dma", "dma");
    if (injected.kind != fault::FaultKind::kNone) {
      // Annotate the fault onto the DMA lane at issue time: stalls show
      // up ahead of the stretched h2d/d2h span, fail/corrupt ahead of the
      // aborted transfer's DmaError.
      telemetry::tracer().instant_virtual(
          track_, fault::trace_label(injected.kind), scheduler_.now());
    }
  }
  // Setup (descriptor + doorbell): latency only, overlappable across
  // transfers.
  co_await sim::delay(scheduler_, config_.setup_latency);
  co_await engine_.acquire();
  const Picoseconds start = scheduler_.now();
  const Picoseconds occupancy =
      config_.engine_bandwidth.transfer_time(bytes) +
      config_.per_transfer_overhead +
      (injected.kind == fault::FaultKind::kStall ||
               injected.kind == fault::FaultKind::kDelay ||
               injected.kind == fault::FaultKind::kHang
           ? microseconds(injected.duration_us)
           : 0);
  busy_time_ += occupancy;
  ++transfers_;
  ctr_transfers_->add(1);
  if (direction == Direction::kHostToDevice) {
    bytes_to_device_ += bytes;
    ctr_bytes_h2d_->add(bytes);
  } else {
    bytes_to_host_ += bytes;
    ctr_bytes_d2h_->add(bytes);
  }
  co_await sim::delay(scheduler_, occupancy);
  engine_.release();
  telemetry::tracer().complete_virtual(
      track_, direction == Direction::kHostToDevice ? "h2d" : "d2h", start,
      scheduler_.now());
  // Continue a traced request's flow chain through its DMA transfers
  // (the worker thread driving the DES publishes the trace id).
  if (const std::uint64_t trace_id = current_trace_id()) {
    telemetry::tracer().flow_virtual(track_, "request", 't', trace_id, start);
  }
  if (injected.kind == fault::FaultKind::kFail ||
      injected.kind == fault::FaultKind::kCorrupt ||
      (config_.failure_rate > 0.0 &&
       failure_rng_.next_double() < config_.failure_rate)) {
    // The transfer consumed engine time but delivered a CRC/abort error;
    // the host driver must re-queue it.
    ++failed_transfers_;
    ctr_failures_->add(1);
    throw DmaError("transfer aborted (injected fault)");
  }
}

}  // namespace spnhbm::pcie
