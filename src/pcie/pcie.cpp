#include "spnhbm/pcie/pcie.hpp"

namespace spnhbm::pcie {

PcieGeneration pcie_generation(int generation) {
  switch (generation) {
    case 3:
      return {3, Bandwidth::gb_per_second(15.754),
              Bandwidth::gbit_per_second(100.0)};  // 11.64 GiB/s
    case 4:
      return {4, Bandwidth::gb_per_second(31.508),
              Bandwidth::gib_per_second(23.0)};
    case 5:
      return {5, Bandwidth::gb_per_second(63.015),
              Bandwidth::gib_per_second(46.0)};
    case 6:
      return {6, Bandwidth::gb_per_second(126.03),
              Bandwidth::gib_per_second(92.0)};
    default:
      throw Error("unsupported PCIe generation");
  }
}

DmaEngineConfig dma_config_for_generation(int generation) {
  DmaEngineConfig config;
  config.engine_bandwidth = pcie_generation(generation).practical;
  return config;
}

DmaEngine::DmaEngine(sim::Scheduler& scheduler, DmaEngineConfig config)
    : scheduler_(scheduler),
      config_(config),
      engine_(scheduler, 1),
      failure_rng_(config.failure_seed) {
  SPNHBM_REQUIRE(config_.failure_rate >= 0.0 && config_.failure_rate < 1.0,
                 "failure rate must be in [0, 1)");
}

sim::Task<void> DmaEngine::transfer(std::uint64_t bytes, Direction direction) {
  SPNHBM_REQUIRE(bytes > 0, "empty DMA transfer");
  // Setup (descriptor + doorbell): latency only, overlappable across
  // transfers.
  co_await sim::delay(scheduler_, config_.setup_latency);
  co_await engine_.acquire();
  const Picoseconds occupancy =
      config_.engine_bandwidth.transfer_time(bytes) +
      config_.per_transfer_overhead;
  busy_time_ += occupancy;
  ++transfers_;
  if (direction == Direction::kHostToDevice) {
    bytes_to_device_ += bytes;
  } else {
    bytes_to_host_ += bytes;
  }
  co_await sim::delay(scheduler_, occupancy);
  engine_.release();
  if (config_.failure_rate > 0.0 &&
      failure_rng_.next_double() < config_.failure_rate) {
    // The transfer consumed engine time but delivered a CRC/abort error;
    // the host driver must re-queue it.
    ++failed_transfers_;
    throw DmaError("transfer aborted (injected fault)");
  }
}

}  // namespace spnhbm::pcie
