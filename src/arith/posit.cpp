#include "spnhbm/arith/posit.hpp"

#include <cmath>

#include "spnhbm/util/strings.hpp"

namespace spnhbm::arith {

namespace {

struct Unpacked {
  bool is_zero = false;
  bool is_nar = false;
  bool sign = false;
  std::int64_t scale = 0;        // k * 2^es + e
  std::uint64_t significand = 0;  // hidden one at bit 63
};

std::uint32_t width_mask(const PositFormat& format) {
  return format.width == 32 ? 0xFFFFFFFFu
                            : ((1u << format.width) - 1u);
}

std::uint32_t sign_bit(const PositFormat& format) {
  return 1u << (format.width - 1);
}

Unpacked unpack(const PositFormat& format, std::uint32_t bits) {
  bits &= width_mask(format);
  Unpacked u;
  if (bits == 0) {
    u.is_zero = true;
    return u;
  }
  if (bits == sign_bit(format)) {
    u.is_nar = true;
    return u;
  }
  u.sign = (bits & sign_bit(format)) != 0;
  if (u.sign) {
    bits = (~bits + 1u) & width_mask(format);  // two's complement magnitude
  }
  // Walk the regime starting below the sign bit.
  const int body_bits = format.width - 1;
  int position = body_bits - 1;  // index within the body (0-based from lsb)
  const auto bit_at = [&](int index) -> int {
    return index >= 0 ? static_cast<int>((bits >> index) & 1u) : 0;
  };
  const int regime_bit = bit_at(position);
  int run = 0;
  while (position - run >= 0 && bit_at(position - run) == regime_bit) ++run;
  const std::int64_t k = regime_bit == 1 ? run - 1 : -run;
  position -= run;  // now at the regime terminator (or past the end)
  position -= 1;    // skip the terminator

  // Exponent bits (missing low bits are zero).
  std::int64_t exponent = 0;
  for (int e = 0; e < format.exponent_size; ++e) {
    exponent = (exponent << 1) | bit_at(position);
    --position;
  }
  u.scale = k * format.useed_log2() + exponent;

  // Fraction: remaining `position + 1` bits, hidden one at bit 63.
  u.significand = 1ull << 63;
  if (position >= 0) {
    const std::uint64_t fraction = bits & ((1u << (position + 1)) - 1u);
    u.significand |= fraction << (63 - (position + 1));
  }
  return u;
}

/// Packs (sign, scale, significand with hidden one at bit 63, sticky) into
/// a posit with correct tapered rounding: the unbounded body bit string is
/// rounded as an integer to `width-1` bits, nearest-even.
std::uint32_t pack(const PositFormat& format, bool sign, std::int64_t scale,
                   std::uint64_t significand, bool sticky) {
  // Saturate the scale: posits never overflow/underflow past
  // maxpos/minpos.
  bool saturated_significand = false;
  if (scale > format.max_scale()) {
    scale = format.max_scale();
    significand = 1ull << 63;  // maxpos has an empty fraction
    sticky = false;
    saturated_significand = true;
  } else if (scale < -format.max_scale()) {
    scale = -format.max_scale();
    significand = 1ull << 63;
    sticky = false;
    saturated_significand = true;
  }

  const std::int64_t useed_log2 = format.useed_log2();
  std::int64_t k = scale >= 0 ? scale / useed_log2
                              : -(((-scale) + useed_log2 - 1) / useed_log2);
  const std::int64_t exponent = scale - k * useed_log2;  // in [0, 2^es)

  // Build the unbounded body: regime, exponent, fraction.
  unsigned __int128 body = 0;
  int body_length = 0;
  const auto push_bit = [&](int bit) {
    body = (body << 1) | static_cast<unsigned>(bit);
    ++body_length;
  };
  if (k >= 0) {
    for (std::int64_t i = 0; i <= k; ++i) push_bit(1);
    push_bit(0);
  } else {
    for (std::int64_t i = 0; i < -k; ++i) push_bit(0);
    push_bit(1);
  }
  for (int e = format.exponent_size - 1; e >= 0; --e) {
    push_bit(static_cast<int>((exponent >> e) & 1));
  }
  // Fraction bits (without the hidden one), highest first.
  const std::uint64_t fraction = significand << 1;  // drop hidden bit
  for (int f = 63; f >= 1; --f) {
    push_bit(static_cast<int>((fraction >> f) & 1));
  }

  // Round the body to width-1 bits, nearest-even with sticky.
  const int keep = format.width - 1;
  std::uint32_t rounded;
  if (body_length <= keep) {
    rounded = static_cast<std::uint32_t>(body << (keep - body_length));
  } else {
    const int drop = body_length - keep;
    const unsigned __int128 dropped_mask =
        (static_cast<unsigned __int128>(1) << drop) - 1;
    const unsigned __int128 dropped = body & dropped_mask;
    rounded = static_cast<std::uint32_t>(body >> drop);
    const unsigned __int128 half = static_cast<unsigned __int128>(1)
                                   << (drop - 1);
    const bool guard = (dropped & half) != 0;
    const bool rest = ((dropped & (half - 1)) != 0) || sticky;
    if (guard && (rest || (rounded & 1u))) {
      ++rounded;
    }
  }
  // Never round past maxpos or down to zero.
  (void)saturated_significand;
  const std::uint32_t maxpos = sign_bit(format) - 1u;
  if (rounded > maxpos) rounded = maxpos;
  if (rounded == 0) rounded = 1u;  // minpos

  if (sign) {
    rounded = (~rounded + 1u) & width_mask(format);
  }
  return rounded;
}

Unpacked unpack_double(double value) {
  Unpacked u;
  if (value == 0.0) {
    u.is_zero = true;
    return u;
  }
  if (std::isnan(value)) {
    u.is_nar = true;
    return u;
  }
  u.sign = std::signbit(value);
  if (std::isinf(value)) {
    u.scale = 1 << 20;  // saturates in pack()
    u.significand = 1ull << 63;
    return u;
  }
  int exponent = 0;
  const double fraction = std::frexp(std::fabs(value), &exponent);
  // fraction in [0.5, 1): significand = fraction * 2^64, hidden at bit 63.
  u.significand = static_cast<std::uint64_t>(std::ldexp(fraction, 64));
  u.scale = exponent - 1;
  return u;
}

}  // namespace

std::string PositFormat::describe() const {
  return strformat("posit<%d,%d>", width, exponent_size);
}

std::uint32_t posit_zero(const PositFormat& format) {
  format.validate();
  return 0;
}

std::uint32_t posit_nar(const PositFormat& format) {
  format.validate();
  return sign_bit(format);
}

double posit_maxpos(const PositFormat& format) {
  format.validate();
  return std::ldexp(1.0, static_cast<int>(format.max_scale()));
}

double posit_minpos(const PositFormat& format) {
  format.validate();
  return std::ldexp(1.0, -static_cast<int>(format.max_scale()));
}

std::uint32_t posit_encode(const PositFormat& format, double value) {
  format.validate();
  const Unpacked u = unpack_double(value);
  if (u.is_zero) return 0;
  if (u.is_nar) return posit_nar(format);
  return pack(format, u.sign, u.scale, u.significand, false);
}

double posit_decode(const PositFormat& format, std::uint32_t bits) {
  format.validate();
  const Unpacked u = unpack(format, bits);
  if (u.is_zero) return 0.0;
  if (u.is_nar) return std::nan("");
  const double magnitude =
      std::ldexp(static_cast<double>(u.significand),
                 static_cast<int>(u.scale) - 63);
  return u.sign ? -magnitude : magnitude;
}

std::uint32_t posit_mul(const PositFormat& format, std::uint32_t a,
                        std::uint32_t b) {
  format.validate();
  const Unpacked ua = unpack(format, a);
  const Unpacked ub = unpack(format, b);
  if (ua.is_nar || ub.is_nar) return posit_nar(format);
  if (ua.is_zero || ub.is_zero) return 0;
  const bool sign = ua.sign != ub.sign;
  unsigned __int128 product =
      static_cast<unsigned __int128>(ua.significand) * ub.significand;
  // product in [2^126, 2^128)
  std::int64_t scale = ua.scale + ub.scale;
  std::uint64_t significand;
  bool sticky;
  if ((product >> 127) != 0) {
    significand = static_cast<std::uint64_t>(product >> 64);
    sticky = static_cast<std::uint64_t>(product) != 0;
    scale += 1;
  } else {
    significand = static_cast<std::uint64_t>(product >> 63);
    sticky = (static_cast<std::uint64_t>(product) & ((1ull << 63) - 1)) != 0;
  }
  return pack(format, sign, scale, significand, sticky);
}

std::uint32_t posit_add(const PositFormat& format, std::uint32_t a,
                        std::uint32_t b) {
  format.validate();
  Unpacked ua = unpack(format, a);
  Unpacked ub = unpack(format, b);
  if (ua.is_nar || ub.is_nar) return posit_nar(format);
  if (ua.is_zero) return b & width_mask(format);
  if (ub.is_zero) return a & width_mask(format);

  // Order by magnitude: (scale, significand).
  if (ua.scale < ub.scale ||
      (ua.scale == ub.scale && ua.significand < ub.significand)) {
    std::swap(ua, ub);
  }
  const std::int64_t d = ua.scale - ub.scale;
  unsigned __int128 big = static_cast<unsigned __int128>(ua.significand) << 32;
  unsigned __int128 small =
      static_cast<unsigned __int128>(ub.significand) << 32;
  bool sticky = false;
  if (d > 0) {
    if (d >= 96) {
      sticky = small != 0;
      small = 0;
    } else {
      sticky = (small & ((static_cast<unsigned __int128>(1) << d) - 1)) != 0;
      small >>= d;
    }
  }

  std::int64_t scale = ua.scale;
  bool sign = ua.sign;
  unsigned __int128 sum;
  if (ua.sign == ub.sign) {
    sum = big + small;
    if ((sum >> 96) != 0) {  // carried past the hidden position (bit 95)
      sticky = sticky || (sum & 1) != 0;
      sum >>= 1;
      scale += 1;
    }
  } else {
    sum = big - small;
    if (sum == 0 && !sticky) return 0;  // exact cancellation
    while ((sum >> 95) == 0) {
      sum <<= 1;
      scale -= 1;
    }
  }
  const auto significand = static_cast<std::uint64_t>(sum >> 32);
  sticky = sticky ||
           (static_cast<std::uint64_t>(sum) & 0xFFFFFFFFull) != 0;
  return pack(format, sign, scale, significand, sticky);
}

}  // namespace spnhbm::arith
