#include "spnhbm/arith/lns.hpp"

#include <cmath>

#include "spnhbm/util/strings.hpp"

namespace spnhbm::arith {

namespace {
/// Smallest power of two >= v.
int ceil_log2(int v) {
  int bits = 0;
  while ((1 << bits) < v) ++bits;
  return bits;
}
}  // namespace

std::string LnsFormat::describe() const {
  return strformat("LNS<i=%d,f=%d,lut=%d>", integer_bits, fraction_bits,
                   lut_address_bits);
}

LnsContext::LnsContext(LnsFormat format) : format_(format) {
  format_.validate();
  const int f = format_.fraction_bits;
  // Fixed-point log range: [-2^(i-1), 2^(i-1)) in log2 units.
  min_log_ = -(std::int64_t{1} << (format_.integer_bits - 1 + f));
  max_log_ = (std::int64_t{1} << (format_.integer_bits - 1 + f)) - 1;
  zero_code_ = 0;  // offset encoding: code 0 == min_log_ == reserved zero

  // Δ+(d) is evaluated for d in [-cutoff, 0]; beyond the cutoff the small
  // operand contributes less than half an ulp. Cutoff is rounded up to a
  // power of two so the LUT index is a plain shift, as in the RTL.
  const int cutoff_log2 = ceil_log2(f + 2);
  cutoff_fixed_ = std::int64_t{1} << (cutoff_log2 + f);
  lut_shift_ = cutoff_log2 + f - format_.lut_address_bits;
  SPNHBM_REQUIRE(lut_shift_ >= 0,
                 "LUT address width exceeds Δ argument resolution");

  const std::size_t entries =
      (std::size_t{1} << format_.lut_address_bits) + 1;
  delta_lut_.resize(entries);
  for (std::size_t k = 0; k < entries; ++k) {
    const std::int64_t t_fixed = static_cast<std::int64_t>(k) << lut_shift_;
    const double d = -std::ldexp(static_cast<double>(t_fixed), -f);
    const double delta = std::log2(1.0 + std::exp2(d));
    delta_lut_[k] =
        static_cast<std::int64_t>(std::llround(std::ldexp(delta, f)));
  }
}

std::int64_t LnsContext::to_fixed_log(std::uint64_t bits) const {
  return static_cast<std::int64_t>(bits) + min_log_;
}

std::uint64_t LnsContext::from_fixed_log(std::int64_t log_fixed) const {
  // Saturate into the nonzero code range [min_log_+1, max_log_].
  if (log_fixed < min_log_ + 1) log_fixed = min_log_ + 1;
  if (log_fixed > max_log_) log_fixed = max_log_;
  return static_cast<std::uint64_t>(log_fixed - min_log_);
}

std::uint64_t LnsContext::encode(double value) const {
  if (!(value > 0.0) || std::isnan(value)) return zero_code_;
  if (std::isinf(value)) return from_fixed_log(max_log_);
  const double log_value = std::log2(value);
  const double scaled = std::ldexp(log_value, format_.fraction_bits);
  // Clamp before the llround to avoid UB on huge magnitudes.
  if (scaled <= static_cast<double>(min_log_)) return from_fixed_log(min_log_ + 1);
  if (scaled >= static_cast<double>(max_log_)) return from_fixed_log(max_log_);
  return from_fixed_log(std::llround(scaled));
}

double LnsContext::decode(std::uint64_t bits) const {
  if (bits == zero_code_) return 0.0;
  const double log_value =
      std::ldexp(static_cast<double>(to_fixed_log(bits)), -format_.fraction_bits);
  return std::exp2(log_value);
}

std::uint64_t LnsContext::mul(std::uint64_t a, std::uint64_t b) const {
  if (a == zero_code_ || b == zero_code_) return zero_code_;
  // Fixed-point addition of the logs; from_fixed_log saturates.
  return from_fixed_log(to_fixed_log(a) + to_fixed_log(b));
}

std::int64_t LnsContext::delta_plus(std::int64_t d_fixed) const {
  const std::int64_t t = -d_fixed;  // t >= 0
  if (t >= cutoff_fixed_) return 0;
  const std::size_t index = static_cast<std::size_t>(t >> lut_shift_);
  const std::int64_t frac = t & ((std::int64_t{1} << lut_shift_) - 1);
  const std::int64_t lo = delta_lut_[index];
  const std::int64_t hi = delta_lut_[index + 1];
  // Piecewise-linear interpolation, matching the hardware operator.
  return lo + (((hi - lo) * frac) >> lut_shift_);
}

std::uint64_t LnsContext::add(std::uint64_t a, std::uint64_t b) const {
  if (a == zero_code_) return b;
  if (b == zero_code_) return a;
  std::int64_t la = to_fixed_log(a);
  std::int64_t lb = to_fixed_log(b);
  if (la < lb) std::swap(la, lb);
  const std::int64_t d = lb - la;  // <= 0
  return from_fixed_log(la + delta_plus(d));
}

double LnsContext::min_positive() const {
  return std::exp2(
      std::ldexp(static_cast<double>(min_log_ + 1), -format_.fraction_bits));
}

double LnsContext::max_value() const {
  return std::exp2(
      std::ldexp(static_cast<double>(max_log_), -format_.fraction_bits));
}

}  // namespace spnhbm::arith
