#include "spnhbm/arith/error_analysis.hpp"

#include <cmath>

#include "spnhbm/arith/backend.hpp"

namespace spnhbm::arith {

double relative_error(double x, double reference) {
  if (reference == 0.0) return x == 0.0 ? 0.0 : std::fabs(x);
  return std::fabs(x - reference) / std::fabs(reference);
}

ErrorReport roundtrip_error(const ArithBackend& backend,
                            const std::vector<double>& reference_values) {
  ErrorReport report;
  double relative_sum = 0.0;
  for (double reference : reference_values) {
    const double decoded = backend.decode(backend.encode(reference));
    const double abs_err = std::fabs(decoded - reference);
    const double rel_err = relative_error(decoded, reference);
    report.max_absolute = std::max(report.max_absolute, abs_err);
    report.max_relative = std::max(report.max_relative, rel_err);
    relative_sum += rel_err;
    ++report.samples;
  }
  if (report.samples > 0) {
    report.mean_relative = relative_sum / static_cast<double>(report.samples);
  }
  return report;
}

ErrorReport accumulation_error(
    const ArithBackend& backend,
    const std::vector<std::vector<double>>& chains) {
  ErrorReport report;
  double relative_sum = 0.0;
  // sum over chains of (product over chain values): the canonical SPN
  // bottom-up shape (mixture of factorisations).
  std::uint64_t accumulator = backend.encode(0.0);
  double reference_accumulator = 0.0;
  for (const auto& chain : chains) {
    std::uint64_t product = backend.encode(1.0);
    double reference_product = 1.0;
    for (double value : chain) {
      product = backend.mul(product, backend.encode(value));
      reference_product *= value;
    }
    accumulator = backend.add(accumulator, product);
    reference_accumulator += reference_product;

    const double decoded = backend.decode(accumulator);
    const double abs_err = std::fabs(decoded - reference_accumulator);
    const double rel_err = relative_error(decoded, reference_accumulator);
    report.max_absolute = std::max(report.max_absolute, abs_err);
    report.max_relative = std::max(report.max_relative, rel_err);
    relative_sum += rel_err;
    ++report.samples;
  }
  if (report.samples > 0) {
    report.mean_relative = relative_sum / static_cast<double>(report.samples);
  }
  return report;
}

}  // namespace spnhbm::arith
