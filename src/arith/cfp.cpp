#include "spnhbm/arith/cfp.hpp"

#include <cmath>

#include "spnhbm/util/strings.hpp"

namespace spnhbm::arith {

namespace {

struct Unpacked {
  bool sign = false;
  int exponent_field = 0;    // biased
  std::uint64_t mantissa = 0;  // m bits, no implicit one
  bool is_zero() const { return exponent_field == 0; }
};

Unpacked unpack(const CfpFormat& format, std::uint64_t bits) {
  Unpacked u;
  const std::uint64_t mant_mask = (format.mantissa_bits == 64)
                                      ? ~0ull
                                      : ((1ull << format.mantissa_bits) - 1);
  u.mantissa = bits & mant_mask;
  u.exponent_field = static_cast<int>((bits >> format.mantissa_bits) &
                                      ((1ull << format.exponent_bits) - 1));
  if (format.has_sign) {
    u.sign = ((bits >> (format.mantissa_bits + format.exponent_bits)) & 1) != 0;
  }
  return u;
}

std::uint64_t pack(const CfpFormat& format, bool sign, int exponent_field,
                   std::uint64_t mantissa) {
  std::uint64_t bits = mantissa |
                       (static_cast<std::uint64_t>(exponent_field)
                        << format.mantissa_bits);
  if (format.has_sign && sign) {
    bits |= 1ull << (format.mantissa_bits + format.exponent_bits);
  }
  return bits;
}

std::uint64_t saturated(const CfpFormat& format, bool sign) {
  return pack(format, sign, format.max_exponent_field(),
              (1ull << format.mantissa_bits) - 1);
}

/// Rounds a value of the form `significand . grs` (3 guard bits) to an
/// integer significand according to the format's rounding mode.
std::uint64_t round_grs(const CfpFormat& format, std::uint64_t with_grs) {
  const std::uint64_t integer = with_grs >> 3;
  if (format.rounding == Rounding::kTruncate) return integer;
  const std::uint64_t grs = with_grs & 0x7;
  if (grs > 0x4) return integer + 1;              // > half: up
  if (grs == 0x4) return integer + (integer & 1);  // tie: to even
  return integer;                                  // < half: down
}

}  // namespace

std::string CfpFormat::describe() const {
  return strformat("CFP<e=%d,m=%d,%s,%s>", exponent_bits, mantissa_bits,
                   has_sign ? "signed" : "unsigned",
                   rounding == Rounding::kNearestEven ? "rne" : "rz");
}

std::uint64_t cfp_encode(const CfpFormat& format, double value) {
  format.validate();
  bool sign = std::signbit(value);
  if (sign && !format.has_sign) return 0;  // clamp negatives in unsigned mode
  double magnitude = std::fabs(value);
  if (magnitude == 0.0 || std::isnan(magnitude)) return 0;
  if (std::isinf(magnitude)) return saturated(format, sign);

  int exponent = 0;
  const double fraction = std::frexp(magnitude, &exponent);  // in [0.5, 1)
  exponent -= 1;  // now magnitude = (2*fraction) * 2^exponent, 2*fraction in [1,2)

  // Exact scaled significand: (2 * fraction) * 2^m, in [2^m, 2^(m+1)).
  const double scaled = std::ldexp(fraction, format.mantissa_bits + 1);
  auto integer = static_cast<std::uint64_t>(scaled);
  const double leftover = scaled - static_cast<double>(integer);
  if (format.rounding == Rounding::kNearestEven) {
    if (leftover > 0.5 || (leftover == 0.5 && (integer & 1) != 0)) ++integer;
  }
  if (integer >= (1ull << (format.mantissa_bits + 1))) {
    integer >>= 1;
    ++exponent;
  }

  const int exponent_field = exponent + format.bias();
  if (exponent_field <= 0) return 0;  // flush to zero, no subnormals
  if (exponent_field > format.max_exponent_field()) {
    return saturated(format, sign);
  }
  const std::uint64_t mantissa =
      integer & ((1ull << format.mantissa_bits) - 1);
  return pack(format, sign, exponent_field, mantissa);
}

double cfp_decode(const CfpFormat& format, std::uint64_t bits) {
  format.validate();
  const Unpacked u = unpack(format, bits);
  if (u.is_zero()) return 0.0;
  const double significand =
      1.0 + std::ldexp(static_cast<double>(u.mantissa), -format.mantissa_bits);
  const double magnitude =
      std::ldexp(significand, u.exponent_field - format.bias());
  return u.sign ? -magnitude : magnitude;
}

std::uint64_t cfp_mul(const CfpFormat& format, std::uint64_t a,
                      std::uint64_t b) {
  format.validate();
  const Unpacked ua = unpack(format, a);
  const Unpacked ub = unpack(format, b);
  const bool sign = ua.sign != ub.sign;
  if (ua.is_zero() || ub.is_zero()) return 0;

  const int m = format.mantissa_bits;
  const std::uint64_t sig_a = (1ull << m) | ua.mantissa;
  const std::uint64_t sig_b = (1ull << m) | ub.mantissa;
  unsigned __int128 product =
      static_cast<unsigned __int128>(sig_a) * sig_b;  // in [2^2m, 2^(2m+2))

  int exponent = (ua.exponent_field - format.bias()) +
                 (ub.exponent_field - format.bias());
  int shift = m;  // bits to drop to return to an (m+1)-bit significand
  if ((product >> (2 * m + 1)) != 0) {
    shift = m + 1;
    ++exponent;
  }

  // Keep 3 guard bits, OR the rest into sticky.
  std::uint64_t with_grs = 0;
  if (shift >= 3) {
    const int drop = shift - 3;
    const unsigned __int128 dropped_mask =
        (static_cast<unsigned __int128>(1) << drop) - 1;
    const bool sticky = (product & dropped_mask) != 0;
    with_grs = static_cast<std::uint64_t>(product >> drop);
    if (sticky) with_grs |= 1;
  } else {
    with_grs = static_cast<std::uint64_t>(product) << (3 - shift);
  }

  std::uint64_t significand = round_grs(format, with_grs);
  if (significand >= (1ull << (m + 1))) {
    significand >>= 1;
    ++exponent;
  }

  const int exponent_field = exponent + format.bias();
  if (exponent_field <= 0) return 0;
  if (exponent_field > format.max_exponent_field()) {
    return saturated(format, sign);
  }
  return pack(format, sign, exponent_field,
              significand & ((1ull << m) - 1));
}

std::uint64_t cfp_add(const CfpFormat& format, std::uint64_t a,
                      std::uint64_t b) {
  format.validate();
  Unpacked ua = unpack(format, a);
  Unpacked ub = unpack(format, b);
  if (ua.is_zero()) return b;
  if (ub.is_zero()) return a;

  const int m = format.mantissa_bits;
  // Order by magnitude: (exponent, mantissa) lexicographically.
  if (ua.exponent_field < ub.exponent_field ||
      (ua.exponent_field == ub.exponent_field && ua.mantissa < ub.mantissa)) {
    std::swap(ua, ub);
  }
  const int d = ua.exponent_field - ub.exponent_field;

  // (m+1)-bit significands with 3 guard bits appended.
  const std::uint64_t big = (((1ull << m) | ua.mantissa) << 3);
  std::uint64_t small = (((1ull << m) | ub.mantissa) << 3);
  if (d > 0) {
    if (d >= 64) {
      small = (small != 0) ? 1 : 0;  // pure sticky
    } else {
      const bool sticky = (small & ((1ull << d) - 1)) != 0;
      small >>= d;
      if (sticky) small |= 1;
    }
  }

  int exponent_field = ua.exponent_field;
  std::uint64_t with_grs = 0;
  bool sign = ua.sign;

  if (ua.sign == ub.sign) {
    with_grs = big + small;
    if (with_grs >= (1ull << (m + 4))) {  // significand grew past m+1 bits
      const bool sticky = (with_grs & 1) != 0;
      with_grs >>= 1;
      if (sticky) with_grs |= 1;
      ++exponent_field;
    }
  } else {
    with_grs = big - small;
    if (with_grs == 0) return 0;  // exact cancellation
    // Normalise left until the implicit one is back in position m (+3 grs).
    while ((with_grs >> (m + 3)) == 0) {
      with_grs <<= 1;
      --exponent_field;
      if (exponent_field <= 0) return 0;  // flush to zero
    }
  }

  std::uint64_t significand = round_grs(format, with_grs);
  if (significand >= (1ull << (m + 1))) {
    significand >>= 1;
    ++exponent_field;
  }
  if (exponent_field <= 0) return 0;
  if (exponent_field > format.max_exponent_field()) {
    return saturated(format, sign);
  }
  return pack(format, sign, exponent_field,
              significand & ((1ull << m) - 1));
}

std::uint64_t cfp_max_value(const CfpFormat& format) {
  format.validate();
  return saturated(format, false);
}

double cfp_min_positive(const CfpFormat& format) {
  format.validate();
  return std::ldexp(1.0, 1 - format.bias());
}

}  // namespace spnhbm::arith
