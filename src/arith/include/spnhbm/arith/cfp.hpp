// Custom Floating Point (CFP) arithmetic.
//
// Bit-accurate software model of the FPGA-optimised floating-point format
// from Sommer et al., "Comparison of Arithmetic Number Formats for Inference
// in Sum-Product Networks on FPGAs" (FCCM 2020), which the paper uses inside
// the generated SPN datapaths:
//   * configurable exponent and mantissa widths,
//   * optional sign bit (SPN probabilities are non-negative, so the SPN
//     datapath configuration omits it),
//   * no subnormals (flush to zero), no NaN/Inf (saturate to the largest
//     finite value on overflow),
//   * round-to-nearest-even or truncation.
//
// Operations are implemented with exact integer significand arithmetic and a
// guard/round/sticky rounding step, so results match what the RTL operators
// produce — re-rounding double results would introduce double-rounding
// differences.
#pragma once

#include <cstdint>
#include <string>

#include "spnhbm/util/error.hpp"

namespace spnhbm::arith {

enum class Rounding { kNearestEven, kTruncate };

struct CfpFormat {
  int exponent_bits = 8;
  int mantissa_bits = 23;
  bool has_sign = false;
  Rounding rounding = Rounding::kNearestEven;

  int total_bits() const {
    return exponent_bits + mantissa_bits + (has_sign ? 1 : 0);
  }
  int bias() const { return (1 << (exponent_bits - 1)) - 1; }
  int max_exponent_field() const { return (1 << exponent_bits) - 1; }

  void validate() const {
    SPNHBM_REQUIRE(exponent_bits >= 2 && exponent_bits <= 16,
                   "CFP exponent width out of range");
    SPNHBM_REQUIRE(mantissa_bits >= 1 && mantissa_bits <= 52,
                   "CFP mantissa width out of range");
    SPNHBM_REQUIRE(total_bits() <= 64, "CFP format exceeds 64 bits");
  }

  std::string describe() const;
};

/// Encodes `value` into the format's bit pattern (rounding as configured).
/// Negative inputs in an unsigned format clamp to zero.
std::uint64_t cfp_encode(const CfpFormat& format, double value);

/// Decodes a bit pattern to double (exact: double is strictly wider).
double cfp_decode(const CfpFormat& format, std::uint64_t bits);

/// Bit-accurate addition. Unsigned formats: plain magnitude addition.
/// Signed formats: full add/sub with sign resolution.
std::uint64_t cfp_add(const CfpFormat& format, std::uint64_t a, std::uint64_t b);

/// Bit-accurate multiplication.
std::uint64_t cfp_mul(const CfpFormat& format, std::uint64_t a, std::uint64_t b);

/// Largest finite value's bit pattern (saturation target).
std::uint64_t cfp_max_value(const CfpFormat& format);

/// Smallest positive normal value as a double (underflow threshold).
double cfp_min_positive(const CfpFormat& format);

}  // namespace spnhbm::arith
