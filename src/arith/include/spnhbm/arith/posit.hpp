// Posit arithmetic (Gustafson type III unums).
//
// The FCCM'20 format study the paper builds on ([4]) also evaluated posit
// datapaths generated with PACoGen. This is a bit-accurate software model
// of standard posits:
//   * configurable width n (2..32) and exponent size es (0..3);
//   * tapered precision: a unary regime field trades range against
//     fraction bits, so precision is highest near 1.0 — attractive for
//     probabilities;
//   * no underflow to zero / no overflow to infinity: results saturate at
//     minpos/maxpos, which is why deep SPN products never vanish in posit
//     arithmetic (the property [4] measures against CFP/LNS).
//
// Values here are non-negative probabilities; negative operands are
// supported through the standard two's-complement encoding nonetheless.
// NaR is produced only for operations on NaR.
#pragma once

#include <cstdint>
#include <string>

#include "spnhbm/util/error.hpp"

namespace spnhbm::arith {

struct PositFormat {
  int width = 32;          ///< total bits (n)
  int exponent_size = 2;   ///< es

  void validate() const {
    SPNHBM_REQUIRE(width >= 3 && width <= 32, "posit width out of range");
    SPNHBM_REQUIRE(exponent_size >= 0 && exponent_size <= 3,
                   "posit es out of range");
  }
  /// useed = 2^(2^es): one regime step scales by this factor.
  std::int64_t useed_log2() const { return std::int64_t{1} << exponent_size; }
  /// Largest representable scale exponent: (n-2) * 2^es.
  std::int64_t max_scale() const { return (width - 2) * useed_log2(); }

  std::string describe() const;
};

/// Bit patterns are kept in the low `width` bits of a uint32.
std::uint32_t posit_encode(const PositFormat& format, double value);
double posit_decode(const PositFormat& format, std::uint32_t bits);
std::uint32_t posit_add(const PositFormat& format, std::uint32_t a,
                        std::uint32_t b);
std::uint32_t posit_mul(const PositFormat& format, std::uint32_t a,
                        std::uint32_t b);

/// Special values.
std::uint32_t posit_zero(const PositFormat& format);
std::uint32_t posit_nar(const PositFormat& format);
/// Largest / smallest positive representable values (saturation targets).
double posit_maxpos(const PositFormat& format);
double posit_minpos(const PositFormat& format);

}  // namespace spnhbm::arith
