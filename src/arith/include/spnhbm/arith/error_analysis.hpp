// Numeric error analysis helpers for comparing reduced-precision formats
// against the double-precision reference — used by the format-ablation
// benchmark (DESIGN.md §5.4) and the arithmetic property tests.
#pragma once

#include <cstddef>
#include <vector>

namespace spnhbm::arith {

class ArithBackend;

struct ErrorReport {
  double max_absolute = 0.0;
  double max_relative = 0.0;
  double mean_relative = 0.0;
  std::size_t samples = 0;
};

/// Relative error |x - reference| / |reference| (0 when both are zero).
double relative_error(double x, double reference);

/// Round-trips every reference value through the backend and accumulates
/// encode/decode error statistics.
ErrorReport roundtrip_error(const ArithBackend& backend,
                            const std::vector<double>& reference_values);

/// Evaluates sum(product chains) in the backend vs double and reports the
/// accumulated error — a proxy for SPN bottom-up evaluation error.
ErrorReport accumulation_error(const ArithBackend& backend,
                               const std::vector<std::vector<double>>& chains);

}  // namespace spnhbm::arith
