// Uniform interface over the number formats the datapath generator supports.
//
// The compiler picks a backend (CFP, LNS, or float64 for reference/baseline
// designs); the datapath executor then evaluates every sum/product operator
// through this interface, bit-accurately in the chosen format. Latencies
// feed the pipeline scheduler; resource costs live in the FPGA cost model
// (`spnhbm/fpga/resource_model.hpp`), keyed by `kind()`.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "spnhbm/arith/cfp.hpp"
#include "spnhbm/arith/lns.hpp"
#include "spnhbm/arith/posit.hpp"

namespace spnhbm::arith {

enum class FormatKind { kFloat64, kCfp, kLns, kPosit };

const char* format_kind_name(FormatKind kind);

class ArithBackend {
 public:
  virtual ~ArithBackend() = default;

  virtual FormatKind kind() const = 0;
  virtual std::string describe() const = 0;
  /// Storage width of one value in bits.
  virtual int width_bits() const = 0;

  virtual std::uint64_t encode(double value) const = 0;
  virtual double decode(std::uint64_t bits) const = 0;
  virtual std::uint64_t add(std::uint64_t a, std::uint64_t b) const = 0;
  virtual std::uint64_t mul(std::uint64_t a, std::uint64_t b) const = 0;
  /// max(a, b) in the format — the sum-node operator of a max-product
  /// (MPE) datapath. Every supported format orders like its decoded
  /// value, so the default compares decoded operands and returns the
  /// winning encoding unchanged (bit-exact: no re-round happens).
  virtual std::uint64_t max(std::uint64_t a, std::uint64_t b) const {
    return decode(a) >= decode(b) ? a : b;
  }

  /// Pipeline latency of the operator in PE clock cycles (feeds the
  /// datapath scheduler; values follow the FCCM'20 / FPT'19 operator
  /// implementations).
  virtual int add_latency_cycles() const = 0;
  virtual int mul_latency_cycles() const = 0;
  /// A max unit is a comparator + mux: one cycle in every format.
  virtual int max_latency_cycles() const { return 1; }

  /// Smallest representable positive value (for underflow analyses).
  virtual double min_positive() const = 0;
};

/// IEEE double reference backend (models the prior-work [8] datapaths,
/// which used double-precision Vivado floating-point cores).
std::unique_ptr<ArithBackend> make_float64_backend();

std::unique_ptr<ArithBackend> make_cfp_backend(CfpFormat format);

std::unique_ptr<ArithBackend> make_lns_backend(LnsFormat format);

std::unique_ptr<ArithBackend> make_posit_backend(PositFormat format);

/// The CFP configuration the paper adopts from [4] for its datapaths
/// (unsigned, 8-bit exponent / 22-bit mantissa, round-to-nearest-even).
CfpFormat paper_cfp_format();

/// The LNS configuration from [11] (8 integer / 22 fraction bits, 2^11 LUT).
LnsFormat paper_lns_format();

/// The PACoGen posit configuration evaluated in [4] (posit<32,2>).
PositFormat paper_posit_format();

}  // namespace spnhbm::arith
