// Logarithmic Number System (LNS) arithmetic.
//
// Software model of the resource-efficient logarithmic number scale from
// Weber et al. (FPT 2019), the second number format supported by the
// paper's datapath generator. A value x > 0 is represented by
// log2(x) in two's-complement fixed point with `integer_bits` integer and
// `fraction_bits` fractional bits; zero is a reserved code. SPN
// probabilities are non-negative, so no sign of x is stored.
//
//   * multiplication is a fixed-point addition of the logs (exact,
//     saturating) — this is why LNS is attractive for product-heavy SPNs;
//   * addition uses the Gaussian logarithm Δ+(d) = log2(1 + 2^d), d <= 0,
//     evaluated with a piecewise-linear interpolated lookup table, exactly
//     as the hardware operator does. The LUT address width is configurable;
//     wider LUTs trade BRAM for accuracy.
//
// LNS can represent extremely small probabilities (down to 2^-2^(i-1)),
// which is the property [11] exploits for deep SPNs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "spnhbm/util/error.hpp"

namespace spnhbm::arith {

struct LnsFormat {
  int integer_bits = 8;     ///< integer bits of log2(x), including sign
  int fraction_bits = 24;   ///< fractional bits of log2(x)
  int lut_address_bits = 10;  ///< Δ-LUT entries = 2^lut_address_bits

  // Offset-encoded: 2^(i+f) codes cover the log range, lowest code is zero.
  int total_bits() const { return integer_bits + fraction_bits; }

  void validate() const {
    SPNHBM_REQUIRE(integer_bits >= 2 && integer_bits <= 16,
                   "LNS integer width out of range");
    SPNHBM_REQUIRE(fraction_bits >= 4 && fraction_bits <= 40,
                   "LNS fraction width out of range");
    SPNHBM_REQUIRE(lut_address_bits >= 4 && lut_address_bits <= 16,
                   "LNS LUT address width out of range");
  }

  std::string describe() const;
};

/// Precomputed Δ+-LUT plus format; build once, then use the free functions.
/// Mirrors the synthesised operator: the LUT contents would be baked into
/// BRAM at generation time.
class LnsContext {
 public:
  explicit LnsContext(LnsFormat format);

  const LnsFormat& format() const { return format_; }

  /// Reserved bit pattern for zero (the most negative log value).
  std::uint64_t zero_code() const { return zero_code_; }

  std::uint64_t encode(double value) const;
  double decode(std::uint64_t bits) const;
  std::uint64_t mul(std::uint64_t a, std::uint64_t b) const;
  std::uint64_t add(std::uint64_t a, std::uint64_t b) const;

  /// Smallest positive representable value.
  double min_positive() const;
  /// Largest representable value.
  double max_value() const;

  /// Δ-LUT size in entries (the BRAM the operator consumes).
  std::size_t lut_entries() const { return delta_lut_.size(); }

 private:
  std::int64_t to_fixed_log(std::uint64_t bits) const;
  std::uint64_t from_fixed_log(std::int64_t log_fixed) const;
  std::int64_t delta_plus(std::int64_t d_fixed) const;

  LnsFormat format_;
  std::int64_t min_log_ = 0;  // inclusive, reserved for zero
  std::int64_t max_log_ = 0;  // inclusive
  std::uint64_t zero_code_ = 0;
  // Δ+(d) sampled at 2^lut_address_bits points over d in [-cutoff, 0],
  // stored in fixed point, linearly interpolated between samples.
  std::vector<std::int64_t> delta_lut_;
  std::int64_t cutoff_fixed_ = 0;
  int lut_shift_ = 0;  // d-to-index shift
};

}  // namespace spnhbm::arith
