#include "spnhbm/arith/backend.hpp"

#include <bit>
#include <cmath>
#include <limits>

namespace spnhbm::arith {

const char* format_kind_name(FormatKind kind) {
  switch (kind) {
    case FormatKind::kFloat64: return "float64";
    case FormatKind::kCfp: return "cfp";
    case FormatKind::kLns: return "lns";
    case FormatKind::kPosit: return "posit";
  }
  return "?";
}

namespace {

class Float64Backend final : public ArithBackend {
 public:
  FormatKind kind() const override { return FormatKind::kFloat64; }
  std::string describe() const override { return "float64"; }
  int width_bits() const override { return 64; }

  std::uint64_t encode(double value) const override {
    return std::bit_cast<std::uint64_t>(value);
  }
  double decode(std::uint64_t bits) const override {
    return std::bit_cast<double>(bits);
  }
  std::uint64_t add(std::uint64_t a, std::uint64_t b) const override {
    return encode(decode(a) + decode(b));
  }
  std::uint64_t mul(std::uint64_t a, std::uint64_t b) const override {
    return encode(decode(a) * decode(b));
  }
  // Vivado double-precision FP cores: deep pipelines (the reason [8]'s
  // datapaths were long and resource-hungry).
  int add_latency_cycles() const override { return 14; }
  int mul_latency_cycles() const override { return 15; }
  double min_positive() const override {
    return std::numeric_limits<double>::min();
  }
};

class CfpBackend final : public ArithBackend {
 public:
  explicit CfpBackend(CfpFormat format) : format_(format) { format_.validate(); }

  FormatKind kind() const override { return FormatKind::kCfp; }
  std::string describe() const override { return format_.describe(); }
  int width_bits() const override { return format_.total_bits(); }

  std::uint64_t encode(double value) const override {
    return cfp_encode(format_, value);
  }
  double decode(std::uint64_t bits) const override {
    return cfp_decode(format_, bits);
  }
  std::uint64_t add(std::uint64_t a, std::uint64_t b) const override {
    return cfp_add(format_, a, b);
  }
  std::uint64_t mul(std::uint64_t a, std::uint64_t b) const override {
    return cfp_mul(format_, a, b);
  }
  // FCCM'20 operators: shallow pipelines tuned for the 225 MHz target.
  int add_latency_cycles() const override { return 4; }
  int mul_latency_cycles() const override { return 5; }
  double min_positive() const override { return cfp_min_positive(format_); }

 private:
  CfpFormat format_;
};

class LnsBackend final : public ArithBackend {
 public:
  explicit LnsBackend(LnsFormat format) : context_(format) {}

  FormatKind kind() const override { return FormatKind::kLns; }
  std::string describe() const override { return context_.format().describe(); }
  int width_bits() const override { return context_.format().total_bits(); }

  std::uint64_t encode(double value) const override {
    return context_.encode(value);
  }
  double decode(std::uint64_t bits) const override {
    return context_.decode(bits);
  }
  std::uint64_t add(std::uint64_t a, std::uint64_t b) const override {
    return context_.add(a, b);
  }
  std::uint64_t mul(std::uint64_t a, std::uint64_t b) const override {
    return context_.mul(a, b);
  }
  // LNS: mul is a fixed-point add (1 cycle); add needs the Δ-LUT path.
  int add_latency_cycles() const override { return 6; }
  int mul_latency_cycles() const override { return 1; }
  double min_positive() const override { return context_.min_positive(); }

 private:
  LnsContext context_;
};

class PositBackend final : public ArithBackend {
 public:
  explicit PositBackend(PositFormat format) : format_(format) {
    format_.validate();
  }

  FormatKind kind() const override { return FormatKind::kPosit; }
  std::string describe() const override { return format_.describe(); }
  int width_bits() const override { return format_.width; }

  std::uint64_t encode(double value) const override {
    return posit_encode(format_, value);
  }
  double decode(std::uint64_t bits) const override {
    return posit_decode(format_, static_cast<std::uint32_t>(bits));
  }
  std::uint64_t add(std::uint64_t a, std::uint64_t b) const override {
    return posit_add(format_, static_cast<std::uint32_t>(a),
                     static_cast<std::uint32_t>(b));
  }
  std::uint64_t mul(std::uint64_t a, std::uint64_t b) const override {
    return posit_mul(format_, static_cast<std::uint32_t>(a),
                     static_cast<std::uint32_t>(b));
  }
  // PACoGen operators: regime decode/encode adds stages over CFP ([4]).
  int add_latency_cycles() const override { return 7; }
  int mul_latency_cycles() const override { return 8; }
  double min_positive() const override { return posit_minpos(format_); }

 private:
  PositFormat format_;
};

}  // namespace

std::unique_ptr<ArithBackend> make_float64_backend() {
  return std::make_unique<Float64Backend>();
}

std::unique_ptr<ArithBackend> make_cfp_backend(CfpFormat format) {
  return std::make_unique<CfpBackend>(format);
}

std::unique_ptr<ArithBackend> make_lns_backend(LnsFormat format) {
  return std::make_unique<LnsBackend>(format);
}

CfpFormat paper_cfp_format() {
  CfpFormat format;
  format.exponent_bits = 8;
  format.mantissa_bits = 22;
  format.has_sign = false;
  format.rounding = Rounding::kNearestEven;
  return format;
}

std::unique_ptr<ArithBackend> make_posit_backend(PositFormat format) {
  return std::make_unique<PositBackend>(format);
}

LnsFormat paper_lns_format() {
  LnsFormat format;
  format.integer_bits = 8;
  format.fraction_bits = 22;
  format.lut_address_bits = 11;
  return format;
}

PositFormat paper_posit_format() {
  PositFormat format;
  format.width = 32;
  format.exponent_size = 2;
  return format;
}

}  // namespace spnhbm::arith
