// TaPaSCo-style platform composition and device API.
//
// Mirrors the open-source TaPaSCo framework the paper builds on (§IV-A):
// a *composition* instantiates N processing elements (the generated SPN
// accelerators), binds each to memory (a dedicated HBM channel via AXI
// SmartConnect + register slices on this work's platform; shared DDR4
// channels with soft controllers on the prior-work F1 platform), and
// exposes a host-side device object with copy/launch/wait primitives over
// the PCIe DMA engine.
//
// Composition runs the placement check (resource model) first — exactly
// where the real toolflow would fail in synthesis.
#pragma once

#include <memory>
#include <vector>

#include "spnhbm/axi/smart_connect.hpp"
#include "spnhbm/ddr/ddr.hpp"
#include "spnhbm/fpga/accelerator.hpp"
#include "spnhbm/fpga/resource_model.hpp"
#include "spnhbm/hbm/hbm.hpp"
#include "spnhbm/pcie/pcie.hpp"

namespace spnhbm::tapasco {

/// A PE refused its job launch (injected fault): the control register write
/// was rejected before the accelerator touched any data, so the job can be
/// retried on the same or another device without cleanup.
class PeLaunchError : public Error {
 public:
  explicit PeLaunchError(const std::string& what)
      : Error("PE launch error: " + what) {}
};

struct CompositionConfig {
  fpga::Platform platform = fpga::Platform::kHbmXupVvh;
  int pe_count = 1;
  /// F1 only: DDR channels/controllers composed in (1..4).
  int memory_channels = 1;
  /// HBM only: route PEs through the (slower) global crossbar.
  bool hbm_crossbar = false;
  /// HBM only: PEs sharing one channel. 1 composes the paper's
  /// dedicated-channel architecture; k > 1 packs k PEs onto each channel
  /// (they contend for its bandwidth and split its capacity), which frees
  /// channels for other tenants on a partitioned device. The autotuner
  /// searches this dimension.
  int hbm_pes_per_channel = 1;
  int pcie_generation = 3;
  /// Evaluate samples functionally (disable for timing-only sweeps).
  bool compute_results = true;
  /// Skip the placement feasibility check (used by what-if scaling
  /// studies that deliberately exceed the device, e.g. paper Fig. 5).
  bool skip_placement_check = false;
  /// DMA fault-injection probability per transfer (tests/chaos runs);
  /// failed transfers are transparently re-queued by the device driver.
  double dma_failure_rate = 0.0;
};

class Device {
 public:
  /// Composes the design; throws PlacementError if it does not fit.
  Device(sim::ProcessRunner& runner, const compiler::DatapathModule& module,
         const arith::ArithBackend& backend, CompositionConfig config);

  std::size_t pe_count() const { return accelerators_.size(); }
  fpga::SpnAccelerator& pe(std::size_t index);
  pcie::DmaEngine& dma() { return *dma_; }
  const CompositionConfig& config() const { return config_; }

  /// Device address-space capacity visible to one PE (its HBM channel on
  /// this work's platform, the shared DDR on F1).
  std::uint64_t memory_capacity_per_pe() const;

  /// Copies host data into PE-local device memory: occupies the DMA engine
  /// and the target memory channel concurrently (the transfer streams
  /// through both), then deposits the bytes in the backing store.
  sim::Task<void> copy_to_device(std::size_t pe_index, std::uint64_t address,
                                 std::span<const std::uint8_t> data);

  /// Copies results back to the host.
  sim::Task<void> copy_from_device(std::size_t pe_index, std::uint64_t address,
                                   std::span<std::uint8_t> out);

  /// Timing-only variants (no host buffer; used by sweeps with
  /// compute_results disabled).
  sim::Task<void> copy_to_device_timed(std::size_t pe_index,
                                       std::uint64_t address,
                                       std::uint64_t bytes);
  sim::Task<void> copy_from_device_timed(std::size_t pe_index,
                                         std::uint64_t address,
                                         std::uint64_t bytes);

  /// TaPaSCo-style job: set registers, start, wait for completion.
  /// Includes the AXI4-Lite launch + interrupt overhead.
  sim::Task<void> launch_inference(std::size_t pe_index,
                                   std::uint64_t input_address,
                                   std::uint64_t output_address,
                                   std::uint64_t samples);

  /// Sparse-evidence job: the input region holds a CSR evidence stream of
  /// `input_bytes` total (not samples x features dense rows). The PE's
  /// load unit bursts exactly those bytes from its channel.
  sim::Task<void> launch_inference_sparse(std::size_t pe_index,
                                          std::uint64_t input_address,
                                          std::uint64_t output_address,
                                          std::uint64_t samples,
                                          std::uint64_t input_bytes);

  /// Configuration read-out via the PE's second execution mode.
  std::uint64_t query_config(std::size_t pe_index, fpga::ConfigQuery query);

  /// The backing channel of a PE (HBM platform only; nullptr on F1).
  hbm::HbmChannel* backing_channel(std::size_t pe_index);

 private:
  /// Channel backing PE `pe_index` under the configured packing.
  std::size_t channel_of(std::size_t pe_index) const;
  /// Translates a PE-relative device address into the PE's slice of its
  /// (possibly shared) channel.
  std::uint64_t channel_address(std::size_t pe_index,
                                std::uint64_t address) const;
  sim::Task<void> dma_and_channel(std::size_t pe_index, std::uint64_t address,
                                  std::uint64_t bytes, bool to_device);
  sim::Task<void> launch_job(std::size_t pe_index, std::uint64_t input_address,
                             std::uint64_t output_address,
                             std::uint64_t samples, std::uint64_t input_bytes);

  sim::ProcessRunner& runner_;
  CompositionConfig config_;
  std::unique_ptr<hbm::HbmDevice> hbm_;
  std::vector<std::unique_ptr<ddr::DdrChannel>> ddr_channels_;
  std::vector<std::unique_ptr<axi::SmartConnect>> smart_connects_;
  std::vector<std::unique_ptr<axi::RegisterSlice>> register_slices_;
  std::vector<std::unique_ptr<fpga::SpnAccelerator>> accelerators_;
  std::unique_ptr<pcie::DmaEngine> dma_;
};

}  // namespace spnhbm::tapasco
