#include "spnhbm/tapasco/device.hpp"

#include <string>

#include "spnhbm/fault/fault.hpp"

namespace spnhbm::tapasco {

Device::Device(sim::ProcessRunner& runner,
               const compiler::DatapathModule& module,
               const arith::ArithBackend& backend, CompositionConfig config)
    : runner_(runner), config_(config) {
  // Typed front-door validation: the autotuner probes the edges of this
  // space on purpose, so out-of-range knobs must be catchable rejections,
  // not logic errors or silently "fixed up" values.
  if (config_.pe_count < 1) {
    throw ConfigError("composition needs at least one PE, got " +
                      std::to_string(config_.pe_count));
  }
  if (config_.hbm_pes_per_channel < 1) {
    throw ConfigError("hbm_pes_per_channel must be >= 1, got " +
                      std::to_string(config_.hbm_pes_per_channel));
  }
  if (!config_.skip_placement_check) {
    fpga::DesignSpec spec;
    spec.platform = config_.platform;
    spec.pe_count = config_.pe_count;
    spec.memory_controllers = config_.memory_channels;
    fpga::check_placement(module, backend.kind(), spec);
  }

  auto& scheduler = runner.scheduler();
  pcie::DmaEngineConfig dma_config =
      pcie::dma_config_for_generation(config_.pcie_generation);
  dma_config.failure_rate = config_.dma_failure_rate;
  if (config_.platform == fpga::Platform::kF1) {
    // AWS EDMA class engine: slower streaming rate than XDMA.
    dma_config.engine_bandwidth =
        Bandwidth::gbit_per_second(fpga::cal::kF1DmaGbps);
  }
  dma_ = std::make_unique<pcie::DmaEngine>(scheduler, dma_config);

  fpga::AcceleratorConfig accel_config;
  accel_config.compute_results = config_.compute_results;

  if (config_.platform == fpga::Platform::kHbmXupVvh) {
    const int channels_needed =
        (config_.pe_count + config_.hbm_pes_per_channel - 1) /
        config_.hbm_pes_per_channel;
    if (channels_needed > 32) {
      throw ConfigError(std::to_string(config_.pe_count) + " PE(s) at " +
                        std::to_string(config_.hbm_pes_per_channel) +
                        " per channel need " +
                        std::to_string(channels_needed) +
                        " HBM channels; the device has 32");
    }
    hbm::HbmDeviceConfig hbm_config;
    hbm_config.crossbar_enabled = config_.hbm_crossbar;
    hbm_ = std::make_unique<hbm::HbmDevice>(scheduler, hbm_config);
    for (int i = 0; i < config_.pe_count; ++i) {
      // PE -> register slice -> SmartConnect (clock/width/protocol
      // conversion) -> HBM channel (paper §IV-A). With the default
      // packing of one PE per channel this is the paper's dedicated
      // channel; packed PEs share their channel's port and therefore
      // serialise on its bandwidth.
      const std::size_t channel = channel_of(static_cast<std::size_t>(i));
      smart_connects_.push_back(std::make_unique<axi::SmartConnect>(
          scheduler, hbm_->port(channel)));
      register_slices_.push_back(std::make_unique<axi::RegisterSlice>(
          scheduler, *smart_connects_.back()));
      accel_config.label = "pe" + std::to_string(i);
      accelerators_.push_back(std::make_unique<fpga::SpnAccelerator>(
          runner, module, backend, *register_slices_.back(),
          &hbm_->channel(channel), accel_config));
    }
  } else {
    SPNHBM_REQUIRE(config_.memory_channels >= 1 &&
                       config_.memory_channels <= fpga::cal::kF1MaxMemoryChannels,
                   "F1 supports 1..4 DDR channels");
    accel_config.clock = ClockDomain(fpga::cal::kF1PeClockHz);
    accel_config.compute_results = false;  // DDR model is timing-only
    for (int c = 0; c < config_.memory_channels; ++c) {
      ddr_channels_.push_back(std::make_unique<ddr::DdrChannel>(scheduler));
    }
    for (int i = 0; i < config_.pe_count; ++i) {
      auto& channel =
          *ddr_channels_[static_cast<std::size_t>(i) % ddr_channels_.size()];
      register_slices_.push_back(std::make_unique<axi::RegisterSlice>(
          scheduler, channel.port()));
      accel_config.label = "pe" + std::to_string(i);
      accelerators_.push_back(std::make_unique<fpga::SpnAccelerator>(
          runner, module, backend, *register_slices_.back(), nullptr,
          accel_config));
    }
  }
}

fpga::SpnAccelerator& Device::pe(std::size_t index) {
  SPNHBM_REQUIRE(index < accelerators_.size(), "PE index out of range");
  return *accelerators_[index];
}

hbm::HbmChannel* Device::backing_channel(std::size_t pe_index) {
  SPNHBM_REQUIRE(pe_index < accelerators_.size(), "PE index out of range");
  if (!hbm_) return nullptr;
  return &hbm_->channel(channel_of(pe_index));
}

std::size_t Device::channel_of(std::size_t pe_index) const {
  return pe_index / static_cast<std::size_t>(config_.hbm_pes_per_channel);
}

std::uint64_t Device::channel_address(std::size_t pe_index,
                                      std::uint64_t address) const {
  if (!hbm_) return address;
  const auto slot =
      pe_index % static_cast<std::size_t>(config_.hbm_pes_per_channel);
  return address + slot * memory_capacity_per_pe();
}

std::uint64_t Device::memory_capacity_per_pe() const {
  if (hbm_) {
    // Packed PEs split their channel's 256 MiB region into equal slices.
    return hbm_->channel(0).config().capacity_bytes /
           static_cast<std::uint64_t>(config_.hbm_pes_per_channel);
  }
  return ddr_channels_.front()->config().capacity_bytes /
         static_cast<std::uint64_t>(config_.pe_count);
}

sim::Task<void> Device::dma_and_channel(std::size_t pe_index,
                                        std::uint64_t address,
                                        std::uint64_t bytes, bool to_device) {
  // The stream occupies the DMA engine and the destination memory channel
  // concurrently; completion is bounded by the slower of the two. Failed
  // transfers (injected faults) are re-queued by this driver layer, up to
  // a bounded retry budget.
  constexpr int kMaxDmaAttempts = 8;
  auto& accel_port =
      hbm_ ? hbm_->channel(channel_of(pe_index)).port()
           : ddr_channels_[pe_index % ddr_channels_.size()]->port();
  const pcie::Direction direction = to_device
                                        ? pcie::Direction::kHostToDevice
                                        : pcie::Direction::kDeviceToHost;
  for (int attempt = 1;; ++attempt) {
    sim::Process channel_side =
        runner_.spawn([&accel_port, address, bytes, to_device]() -> sim::Process {
          co_await axi::linear_transfer(accel_port, address, bytes, to_device);
        });
    std::exception_ptr failure;
    try {
      co_await dma_->transfer(bytes, direction);
    } catch (const pcie::DmaError&) {
      failure = std::current_exception();
    }
    try {
      co_await channel_side.join();
    } catch (const hbm::HbmEccError&) {
      // ECC-detected corruption on the memory side. A write stream can be
      // re-queued here — the data is re-sent and overwrites the corrupted
      // line. A read cannot: only re-running the producing job recomputes
      // the data, so read-side ECC errors propagate to the host runtime.
      if (!to_device) throw;
      if (!failure) failure = std::current_exception();
    }
    if (!failure) co_return;
    if (attempt >= kMaxDmaAttempts) std::rethrow_exception(failure);
  }
}

sim::Task<void> Device::copy_to_device(std::size_t pe_index,
                                       std::uint64_t address,
                                       std::span<const std::uint8_t> data) {
  SPNHBM_REQUIRE(pe_index < accelerators_.size(), "PE index out of range");
  const std::uint64_t device_address = channel_address(pe_index, address);
  co_await dma_and_channel(pe_index, device_address, data.size(), true);
  if (hbm_) {
    hbm_->channel(channel_of(pe_index)).write_backdoor(device_address, data);
  }
}

sim::Task<void> Device::copy_from_device(std::size_t pe_index,
                                         std::uint64_t address,
                                         std::span<std::uint8_t> out) {
  SPNHBM_REQUIRE(pe_index < accelerators_.size(), "PE index out of range");
  const std::uint64_t device_address = channel_address(pe_index, address);
  co_await dma_and_channel(pe_index, device_address, out.size(), false);
  if (hbm_) {
    hbm_->channel(channel_of(pe_index)).read_backdoor(device_address, out);
  }
}

sim::Task<void> Device::copy_to_device_timed(std::size_t pe_index,
                                             std::uint64_t address,
                                             std::uint64_t bytes) {
  co_await dma_and_channel(pe_index, channel_address(pe_index, address),
                           bytes, true);
}

sim::Task<void> Device::copy_from_device_timed(std::size_t pe_index,
                                               std::uint64_t address,
                                               std::uint64_t bytes) {
  co_await dma_and_channel(pe_index, channel_address(pe_index, address),
                           bytes, false);
}

sim::Task<void> Device::launch_inference(std::size_t pe_index,
                                         std::uint64_t input_address,
                                         std::uint64_t output_address,
                                         std::uint64_t samples) {
  co_await launch_job(pe_index, input_address, output_address, samples, 0);
}

sim::Task<void> Device::launch_inference_sparse(std::size_t pe_index,
                                                std::uint64_t input_address,
                                                std::uint64_t output_address,
                                                std::uint64_t samples,
                                                std::uint64_t input_bytes) {
  SPNHBM_REQUIRE(input_bytes > 0, "sparse job needs a non-empty stream");
  co_await launch_job(pe_index, input_address, output_address, samples,
                      input_bytes);
}

sim::Task<void> Device::launch_job(std::size_t pe_index,
                                   std::uint64_t input_address,
                                   std::uint64_t output_address,
                                   std::uint64_t samples,
                                   std::uint64_t input_bytes) {
  auto& scheduler = runner_.scheduler();
  fpga::SpnAccelerator& accelerator = pe(pe_index);
  if (fault::injector().armed()) {
    const fault::FaultDecision decision = fault::injector().decide(
        "pe.launch", "pe" + std::to_string(pe_index));
    switch (decision.kind) {
      case fault::FaultKind::kFail:
      case fault::FaultKind::kCorrupt:
        // Rejected before any register is touched: nothing to clean up.
        throw PeLaunchError("pe" + std::to_string(pe_index) +
                            " rejected job launch (injected)");
      case fault::FaultKind::kStall:
      case fault::FaultKind::kDelay:
      case fault::FaultKind::kHang:
        // Slow doorbell path (interrupt storm / driver contention).
        co_await sim::delay(scheduler, microseconds(decision.duration_us));
        break;
      case fault::FaultKind::kNone:
        break;
    }
  }
  // AXI4-Lite register writes + doorbell. The PE addresses its channel
  // slice directly, so the host driver writes translated addresses.
  co_await sim::delay(scheduler, fpga::cal::kJobLaunchOverhead / 2);
  accelerator.write_register(fpga::Reg::kInputAddress,
                             channel_address(pe_index, input_address));
  accelerator.write_register(fpga::Reg::kOutputAddress,
                             channel_address(pe_index, output_address));
  accelerator.write_register(fpga::Reg::kSampleCount, samples);
  // Always written: a stale non-zero value from a previous sparse job
  // must not turn a dense launch sparse.
  accelerator.write_register(fpga::Reg::kInputBytes, input_bytes);
  accelerator.write_register(fpga::Reg::kControl, 1);
  co_await accelerator.wait_done();
  // Completion interrupt + handler.
  co_await sim::delay(scheduler, fpga::cal::kJobLaunchOverhead / 2);
}

std::uint64_t Device::query_config(std::size_t pe_index,
                                   fpga::ConfigQuery query) {
  fpga::SpnAccelerator& accelerator = pe(pe_index);
  accelerator.write_register(fpga::Reg::kSampleCount,
                             static_cast<std::uint64_t>(query));
  accelerator.write_register(fpga::Reg::kControl, 2);
  return accelerator.read_register(fpga::Reg::kReturnValue);
}

}  // namespace spnhbm::tapasco
