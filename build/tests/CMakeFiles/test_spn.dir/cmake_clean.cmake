file(REMOVE_RECURSE
  "CMakeFiles/test_spn.dir/spn/test_discretise.cpp.o"
  "CMakeFiles/test_spn.dir/spn/test_discretise.cpp.o.d"
  "CMakeFiles/test_spn.dir/spn/test_evaluate.cpp.o"
  "CMakeFiles/test_spn.dir/spn/test_evaluate.cpp.o.d"
  "CMakeFiles/test_spn.dir/spn/test_graph.cpp.o"
  "CMakeFiles/test_spn.dir/spn/test_graph.cpp.o.d"
  "CMakeFiles/test_spn.dir/spn/test_io_csv.cpp.o"
  "CMakeFiles/test_spn.dir/spn/test_io_csv.cpp.o.d"
  "CMakeFiles/test_spn.dir/spn/test_learn.cpp.o"
  "CMakeFiles/test_spn.dir/spn/test_learn.cpp.o.d"
  "CMakeFiles/test_spn.dir/spn/test_queries.cpp.o"
  "CMakeFiles/test_spn.dir/spn/test_queries.cpp.o.d"
  "CMakeFiles/test_spn.dir/spn/test_text_format.cpp.o"
  "CMakeFiles/test_spn.dir/spn/test_text_format.cpp.o.d"
  "CMakeFiles/test_spn.dir/spn/test_transform.cpp.o"
  "CMakeFiles/test_spn.dir/spn/test_transform.cpp.o.d"
  "CMakeFiles/test_spn.dir/spn/test_validate.cpp.o"
  "CMakeFiles/test_spn.dir/spn/test_validate.cpp.o.d"
  "test_spn"
  "test_spn.pdb"
  "test_spn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
