
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/spn/test_discretise.cpp" "tests/CMakeFiles/test_spn.dir/spn/test_discretise.cpp.o" "gcc" "tests/CMakeFiles/test_spn.dir/spn/test_discretise.cpp.o.d"
  "/root/repo/tests/spn/test_evaluate.cpp" "tests/CMakeFiles/test_spn.dir/spn/test_evaluate.cpp.o" "gcc" "tests/CMakeFiles/test_spn.dir/spn/test_evaluate.cpp.o.d"
  "/root/repo/tests/spn/test_graph.cpp" "tests/CMakeFiles/test_spn.dir/spn/test_graph.cpp.o" "gcc" "tests/CMakeFiles/test_spn.dir/spn/test_graph.cpp.o.d"
  "/root/repo/tests/spn/test_io_csv.cpp" "tests/CMakeFiles/test_spn.dir/spn/test_io_csv.cpp.o" "gcc" "tests/CMakeFiles/test_spn.dir/spn/test_io_csv.cpp.o.d"
  "/root/repo/tests/spn/test_learn.cpp" "tests/CMakeFiles/test_spn.dir/spn/test_learn.cpp.o" "gcc" "tests/CMakeFiles/test_spn.dir/spn/test_learn.cpp.o.d"
  "/root/repo/tests/spn/test_queries.cpp" "tests/CMakeFiles/test_spn.dir/spn/test_queries.cpp.o" "gcc" "tests/CMakeFiles/test_spn.dir/spn/test_queries.cpp.o.d"
  "/root/repo/tests/spn/test_text_format.cpp" "tests/CMakeFiles/test_spn.dir/spn/test_text_format.cpp.o" "gcc" "tests/CMakeFiles/test_spn.dir/spn/test_text_format.cpp.o.d"
  "/root/repo/tests/spn/test_transform.cpp" "tests/CMakeFiles/test_spn.dir/spn/test_transform.cpp.o" "gcc" "tests/CMakeFiles/test_spn.dir/spn/test_transform.cpp.o.d"
  "/root/repo/tests/spn/test_validate.cpp" "tests/CMakeFiles/test_spn.dir/spn/test_validate.cpp.o" "gcc" "tests/CMakeFiles/test_spn.dir/spn/test_validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spn/CMakeFiles/spnhbm_spn.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/spnhbm_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/arith/CMakeFiles/spnhbm_arith.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spnhbm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
