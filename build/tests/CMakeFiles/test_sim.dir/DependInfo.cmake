
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_channel.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_channel.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_channel.cpp.o.d"
  "/root/repo/tests/sim/test_process.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_process.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_process.cpp.o.d"
  "/root/repo/tests/sim/test_scheduler.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_scheduler.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_scheduler.cpp.o.d"
  "/root/repo/tests/sim/test_sim_properties.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_sim_properties.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_sim_properties.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/spnhbm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
