
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/arith/test_backend.cpp" "tests/CMakeFiles/test_arith.dir/arith/test_backend.cpp.o" "gcc" "tests/CMakeFiles/test_arith.dir/arith/test_backend.cpp.o.d"
  "/root/repo/tests/arith/test_cfp.cpp" "tests/CMakeFiles/test_arith.dir/arith/test_cfp.cpp.o" "gcc" "tests/CMakeFiles/test_arith.dir/arith/test_cfp.cpp.o.d"
  "/root/repo/tests/arith/test_lns.cpp" "tests/CMakeFiles/test_arith.dir/arith/test_lns.cpp.o" "gcc" "tests/CMakeFiles/test_arith.dir/arith/test_lns.cpp.o.d"
  "/root/repo/tests/arith/test_posit.cpp" "tests/CMakeFiles/test_arith.dir/arith/test_posit.cpp.o" "gcc" "tests/CMakeFiles/test_arith.dir/arith/test_posit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arith/CMakeFiles/spnhbm_arith.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spnhbm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
