# Empty dependencies file for test_hbm.
# This may be replaced when dependencies are built.
