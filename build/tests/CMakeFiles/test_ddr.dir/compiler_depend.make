# Empty compiler generated dependencies file for test_ddr.
# This may be replaced when dependencies are built.
