file(REMOVE_RECURSE
  "CMakeFiles/test_ddr.dir/ddr/test_ddr.cpp.o"
  "CMakeFiles/test_ddr.dir/ddr/test_ddr.cpp.o.d"
  "test_ddr"
  "test_ddr.pdb"
  "test_ddr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ddr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
