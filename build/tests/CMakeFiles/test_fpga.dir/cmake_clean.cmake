file(REMOVE_RECURSE
  "CMakeFiles/test_fpga.dir/fpga/test_accelerator.cpp.o"
  "CMakeFiles/test_fpga.dir/fpga/test_accelerator.cpp.o.d"
  "CMakeFiles/test_fpga.dir/fpga/test_accelerator_sweep.cpp.o"
  "CMakeFiles/test_fpga.dir/fpga/test_accelerator_sweep.cpp.o.d"
  "CMakeFiles/test_fpga.dir/fpga/test_resource_model.cpp.o"
  "CMakeFiles/test_fpga.dir/fpga/test_resource_model.cpp.o.d"
  "test_fpga"
  "test_fpga.pdb"
  "test_fpga[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
