
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tapasco/test_device.cpp" "tests/CMakeFiles/test_tapasco.dir/tapasco/test_device.cpp.o" "gcc" "tests/CMakeFiles/test_tapasco.dir/tapasco/test_device.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tapasco/CMakeFiles/spnhbm_tapasco.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/spnhbm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/spnhbm_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/spnhbm_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/hbm/CMakeFiles/spnhbm_hbm.dir/DependInfo.cmake"
  "/root/repo/build/src/ddr/CMakeFiles/spnhbm_ddr.dir/DependInfo.cmake"
  "/root/repo/build/src/axi/CMakeFiles/spnhbm_axi.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/spnhbm_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/spn/CMakeFiles/spnhbm_spn.dir/DependInfo.cmake"
  "/root/repo/build/src/arith/CMakeFiles/spnhbm_arith.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spnhbm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
