# Empty dependencies file for test_tapasco.
# This may be replaced when dependencies are built.
