file(REMOVE_RECURSE
  "CMakeFiles/test_tapasco.dir/tapasco/test_device.cpp.o"
  "CMakeFiles/test_tapasco.dir/tapasco/test_device.cpp.o.d"
  "test_tapasco"
  "test_tapasco.pdb"
  "test_tapasco[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tapasco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
