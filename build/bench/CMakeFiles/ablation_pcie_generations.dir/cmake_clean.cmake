file(REMOVE_RECURSE
  "CMakeFiles/ablation_pcie_generations.dir/ablation_pcie_generations.cpp.o"
  "CMakeFiles/ablation_pcie_generations.dir/ablation_pcie_generations.cpp.o.d"
  "ablation_pcie_generations"
  "ablation_pcie_generations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pcie_generations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
