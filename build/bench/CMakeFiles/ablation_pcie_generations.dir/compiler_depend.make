# Empty compiler generated dependencies file for ablation_pcie_generations.
# This may be replaced when dependencies are built.
