file(REMOVE_RECURSE
  "CMakeFiles/ablation_crossbar.dir/ablation_crossbar.cpp.o"
  "CMakeFiles/ablation_crossbar.dir/ablation_crossbar.cpp.o.d"
  "ablation_crossbar"
  "ablation_crossbar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_crossbar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
