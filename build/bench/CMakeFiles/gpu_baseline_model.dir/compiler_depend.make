# Empty compiler generated dependencies file for gpu_baseline_model.
# This may be replaced when dependencies are built.
