file(REMOVE_RECURSE
  "CMakeFiles/gpu_baseline_model.dir/gpu_baseline_model.cpp.o"
  "CMakeFiles/gpu_baseline_model.dir/gpu_baseline_model.cpp.o.d"
  "gpu_baseline_model"
  "gpu_baseline_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_baseline_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
