# Empty compiler generated dependencies file for micro_arithmetic.
# This may be replaced when dependencies are built.
