file(REMOVE_RECURSE
  "CMakeFiles/micro_arithmetic.dir/micro_arithmetic.cpp.o"
  "CMakeFiles/micro_arithmetic.dir/micro_arithmetic.cpp.o.d"
  "micro_arithmetic"
  "micro_arithmetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_arithmetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
