# Empty compiler generated dependencies file for fig2_hbm_channel.
# This may be replaced when dependencies are built.
