file(REMOVE_RECURSE
  "CMakeFiles/fig2_hbm_channel.dir/fig2_hbm_channel.cpp.o"
  "CMakeFiles/fig2_hbm_channel.dir/fig2_hbm_channel.cpp.o.d"
  "fig2_hbm_channel"
  "fig2_hbm_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_hbm_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
