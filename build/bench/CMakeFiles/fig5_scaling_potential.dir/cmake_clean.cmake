file(REMOVE_RECURSE
  "CMakeFiles/fig5_scaling_potential.dir/fig5_scaling_potential.cpp.o"
  "CMakeFiles/fig5_scaling_potential.dir/fig5_scaling_potential.cpp.o.d"
  "fig5_scaling_potential"
  "fig5_scaling_potential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_scaling_potential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
