file(REMOVE_RECURSE
  "CMakeFiles/fig6_end_to_end.dir/fig6_end_to_end.cpp.o"
  "CMakeFiles/fig6_end_to_end.dir/fig6_end_to_end.cpp.o.d"
  "fig6_end_to_end"
  "fig6_end_to_end.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
