file(REMOVE_RECURSE
  "CMakeFiles/spnhbm_cli.dir/spnhbm_cli.cpp.o"
  "CMakeFiles/spnhbm_cli.dir/spnhbm_cli.cpp.o.d"
  "spnhbm"
  "spnhbm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spnhbm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
