# Empty dependencies file for spnhbm_cli.
# This may be replaced when dependencies are built.
