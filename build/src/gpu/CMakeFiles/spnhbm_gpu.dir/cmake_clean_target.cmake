file(REMOVE_RECURSE
  "libspnhbm_gpu.a"
)
