# Empty dependencies file for spnhbm_gpu.
# This may be replaced when dependencies are built.
