file(REMOVE_RECURSE
  "CMakeFiles/spnhbm_gpu.dir/execution_model.cpp.o"
  "CMakeFiles/spnhbm_gpu.dir/execution_model.cpp.o.d"
  "libspnhbm_gpu.a"
  "libspnhbm_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spnhbm_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
