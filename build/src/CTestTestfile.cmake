# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("arith")
subdirs("spn")
subdirs("workload")
subdirs("compiler")
subdirs("axi")
subdirs("hbm")
subdirs("ddr")
subdirs("pcie")
subdirs("fpga")
subdirs("tapasco")
subdirs("runtime")
subdirs("baselines")
subdirs("network")
subdirs("gpu")
