# Empty compiler generated dependencies file for spnhbm_ddr.
# This may be replaced when dependencies are built.
