file(REMOVE_RECURSE
  "libspnhbm_ddr.a"
)
