file(REMOVE_RECURSE
  "CMakeFiles/spnhbm_ddr.dir/ddr.cpp.o"
  "CMakeFiles/spnhbm_ddr.dir/ddr.cpp.o.d"
  "libspnhbm_ddr.a"
  "libspnhbm_ddr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spnhbm_ddr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
