# Empty dependencies file for spnhbm_spn.
# This may be replaced when dependencies are built.
