file(REMOVE_RECURSE
  "libspnhbm_spn.a"
)
