file(REMOVE_RECURSE
  "CMakeFiles/spnhbm_spn.dir/dataset.cpp.o"
  "CMakeFiles/spnhbm_spn.dir/dataset.cpp.o.d"
  "CMakeFiles/spnhbm_spn.dir/discretise.cpp.o"
  "CMakeFiles/spnhbm_spn.dir/discretise.cpp.o.d"
  "CMakeFiles/spnhbm_spn.dir/dot_export.cpp.o"
  "CMakeFiles/spnhbm_spn.dir/dot_export.cpp.o.d"
  "CMakeFiles/spnhbm_spn.dir/evaluate.cpp.o"
  "CMakeFiles/spnhbm_spn.dir/evaluate.cpp.o.d"
  "CMakeFiles/spnhbm_spn.dir/graph.cpp.o"
  "CMakeFiles/spnhbm_spn.dir/graph.cpp.o.d"
  "CMakeFiles/spnhbm_spn.dir/io_csv.cpp.o"
  "CMakeFiles/spnhbm_spn.dir/io_csv.cpp.o.d"
  "CMakeFiles/spnhbm_spn.dir/learn.cpp.o"
  "CMakeFiles/spnhbm_spn.dir/learn.cpp.o.d"
  "CMakeFiles/spnhbm_spn.dir/queries.cpp.o"
  "CMakeFiles/spnhbm_spn.dir/queries.cpp.o.d"
  "CMakeFiles/spnhbm_spn.dir/random_spn.cpp.o"
  "CMakeFiles/spnhbm_spn.dir/random_spn.cpp.o.d"
  "CMakeFiles/spnhbm_spn.dir/text_format.cpp.o"
  "CMakeFiles/spnhbm_spn.dir/text_format.cpp.o.d"
  "CMakeFiles/spnhbm_spn.dir/transform.cpp.o"
  "CMakeFiles/spnhbm_spn.dir/transform.cpp.o.d"
  "CMakeFiles/spnhbm_spn.dir/validate.cpp.o"
  "CMakeFiles/spnhbm_spn.dir/validate.cpp.o.d"
  "libspnhbm_spn.a"
  "libspnhbm_spn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spnhbm_spn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
