
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spn/dataset.cpp" "src/spn/CMakeFiles/spnhbm_spn.dir/dataset.cpp.o" "gcc" "src/spn/CMakeFiles/spnhbm_spn.dir/dataset.cpp.o.d"
  "/root/repo/src/spn/discretise.cpp" "src/spn/CMakeFiles/spnhbm_spn.dir/discretise.cpp.o" "gcc" "src/spn/CMakeFiles/spnhbm_spn.dir/discretise.cpp.o.d"
  "/root/repo/src/spn/dot_export.cpp" "src/spn/CMakeFiles/spnhbm_spn.dir/dot_export.cpp.o" "gcc" "src/spn/CMakeFiles/spnhbm_spn.dir/dot_export.cpp.o.d"
  "/root/repo/src/spn/evaluate.cpp" "src/spn/CMakeFiles/spnhbm_spn.dir/evaluate.cpp.o" "gcc" "src/spn/CMakeFiles/spnhbm_spn.dir/evaluate.cpp.o.d"
  "/root/repo/src/spn/graph.cpp" "src/spn/CMakeFiles/spnhbm_spn.dir/graph.cpp.o" "gcc" "src/spn/CMakeFiles/spnhbm_spn.dir/graph.cpp.o.d"
  "/root/repo/src/spn/io_csv.cpp" "src/spn/CMakeFiles/spnhbm_spn.dir/io_csv.cpp.o" "gcc" "src/spn/CMakeFiles/spnhbm_spn.dir/io_csv.cpp.o.d"
  "/root/repo/src/spn/learn.cpp" "src/spn/CMakeFiles/spnhbm_spn.dir/learn.cpp.o" "gcc" "src/spn/CMakeFiles/spnhbm_spn.dir/learn.cpp.o.d"
  "/root/repo/src/spn/queries.cpp" "src/spn/CMakeFiles/spnhbm_spn.dir/queries.cpp.o" "gcc" "src/spn/CMakeFiles/spnhbm_spn.dir/queries.cpp.o.d"
  "/root/repo/src/spn/random_spn.cpp" "src/spn/CMakeFiles/spnhbm_spn.dir/random_spn.cpp.o" "gcc" "src/spn/CMakeFiles/spnhbm_spn.dir/random_spn.cpp.o.d"
  "/root/repo/src/spn/text_format.cpp" "src/spn/CMakeFiles/spnhbm_spn.dir/text_format.cpp.o" "gcc" "src/spn/CMakeFiles/spnhbm_spn.dir/text_format.cpp.o.d"
  "/root/repo/src/spn/transform.cpp" "src/spn/CMakeFiles/spnhbm_spn.dir/transform.cpp.o" "gcc" "src/spn/CMakeFiles/spnhbm_spn.dir/transform.cpp.o.d"
  "/root/repo/src/spn/validate.cpp" "src/spn/CMakeFiles/spnhbm_spn.dir/validate.cpp.o" "gcc" "src/spn/CMakeFiles/spnhbm_spn.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/spnhbm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/arith/CMakeFiles/spnhbm_arith.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
