# Empty dependencies file for spnhbm_axi.
# This may be replaced when dependencies are built.
