
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/axi/port.cpp" "src/axi/CMakeFiles/spnhbm_axi.dir/port.cpp.o" "gcc" "src/axi/CMakeFiles/spnhbm_axi.dir/port.cpp.o.d"
  "/root/repo/src/axi/smart_connect.cpp" "src/axi/CMakeFiles/spnhbm_axi.dir/smart_connect.cpp.o" "gcc" "src/axi/CMakeFiles/spnhbm_axi.dir/smart_connect.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/spnhbm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
