file(REMOVE_RECURSE
  "CMakeFiles/spnhbm_axi.dir/port.cpp.o"
  "CMakeFiles/spnhbm_axi.dir/port.cpp.o.d"
  "CMakeFiles/spnhbm_axi.dir/smart_connect.cpp.o"
  "CMakeFiles/spnhbm_axi.dir/smart_connect.cpp.o.d"
  "libspnhbm_axi.a"
  "libspnhbm_axi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spnhbm_axi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
