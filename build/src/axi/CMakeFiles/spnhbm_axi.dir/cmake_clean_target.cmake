file(REMOVE_RECURSE
  "libspnhbm_axi.a"
)
