
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arith/backend.cpp" "src/arith/CMakeFiles/spnhbm_arith.dir/backend.cpp.o" "gcc" "src/arith/CMakeFiles/spnhbm_arith.dir/backend.cpp.o.d"
  "/root/repo/src/arith/cfp.cpp" "src/arith/CMakeFiles/spnhbm_arith.dir/cfp.cpp.o" "gcc" "src/arith/CMakeFiles/spnhbm_arith.dir/cfp.cpp.o.d"
  "/root/repo/src/arith/error_analysis.cpp" "src/arith/CMakeFiles/spnhbm_arith.dir/error_analysis.cpp.o" "gcc" "src/arith/CMakeFiles/spnhbm_arith.dir/error_analysis.cpp.o.d"
  "/root/repo/src/arith/lns.cpp" "src/arith/CMakeFiles/spnhbm_arith.dir/lns.cpp.o" "gcc" "src/arith/CMakeFiles/spnhbm_arith.dir/lns.cpp.o.d"
  "/root/repo/src/arith/posit.cpp" "src/arith/CMakeFiles/spnhbm_arith.dir/posit.cpp.o" "gcc" "src/arith/CMakeFiles/spnhbm_arith.dir/posit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/spnhbm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
