file(REMOVE_RECURSE
  "libspnhbm_arith.a"
)
