# Empty dependencies file for spnhbm_arith.
# This may be replaced when dependencies are built.
