file(REMOVE_RECURSE
  "CMakeFiles/spnhbm_arith.dir/backend.cpp.o"
  "CMakeFiles/spnhbm_arith.dir/backend.cpp.o.d"
  "CMakeFiles/spnhbm_arith.dir/cfp.cpp.o"
  "CMakeFiles/spnhbm_arith.dir/cfp.cpp.o.d"
  "CMakeFiles/spnhbm_arith.dir/error_analysis.cpp.o"
  "CMakeFiles/spnhbm_arith.dir/error_analysis.cpp.o.d"
  "CMakeFiles/spnhbm_arith.dir/lns.cpp.o"
  "CMakeFiles/spnhbm_arith.dir/lns.cpp.o.d"
  "CMakeFiles/spnhbm_arith.dir/posit.cpp.o"
  "CMakeFiles/spnhbm_arith.dir/posit.cpp.o.d"
  "libspnhbm_arith.a"
  "libspnhbm_arith.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spnhbm_arith.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
