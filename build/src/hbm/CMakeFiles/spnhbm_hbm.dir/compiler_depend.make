# Empty compiler generated dependencies file for spnhbm_hbm.
# This may be replaced when dependencies are built.
