file(REMOVE_RECURSE
  "CMakeFiles/spnhbm_hbm.dir/hbm.cpp.o"
  "CMakeFiles/spnhbm_hbm.dir/hbm.cpp.o.d"
  "libspnhbm_hbm.a"
  "libspnhbm_hbm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spnhbm_hbm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
