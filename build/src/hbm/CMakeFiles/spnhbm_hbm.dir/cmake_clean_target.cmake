file(REMOVE_RECURSE
  "libspnhbm_hbm.a"
)
