file(REMOVE_RECURSE
  "CMakeFiles/spnhbm_tapasco.dir/device.cpp.o"
  "CMakeFiles/spnhbm_tapasco.dir/device.cpp.o.d"
  "libspnhbm_tapasco.a"
  "libspnhbm_tapasco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spnhbm_tapasco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
