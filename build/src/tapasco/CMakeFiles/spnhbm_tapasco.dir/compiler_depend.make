# Empty compiler generated dependencies file for spnhbm_tapasco.
# This may be replaced when dependencies are built.
