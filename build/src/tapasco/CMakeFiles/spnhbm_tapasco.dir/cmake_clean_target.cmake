file(REMOVE_RECURSE
  "libspnhbm_tapasco.a"
)
