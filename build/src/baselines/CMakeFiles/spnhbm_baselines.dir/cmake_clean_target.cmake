file(REMOVE_RECURSE
  "libspnhbm_baselines.a"
)
