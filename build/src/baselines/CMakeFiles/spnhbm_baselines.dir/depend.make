# Empty dependencies file for spnhbm_baselines.
# This may be replaced when dependencies are built.
