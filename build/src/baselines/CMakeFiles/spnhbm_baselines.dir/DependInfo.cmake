
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/cpu_engine.cpp" "src/baselines/CMakeFiles/spnhbm_baselines.dir/cpu_engine.cpp.o" "gcc" "src/baselines/CMakeFiles/spnhbm_baselines.dir/cpu_engine.cpp.o.d"
  "/root/repo/src/baselines/reference_platforms.cpp" "src/baselines/CMakeFiles/spnhbm_baselines.dir/reference_platforms.cpp.o" "gcc" "src/baselines/CMakeFiles/spnhbm_baselines.dir/reference_platforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compiler/CMakeFiles/spnhbm_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spnhbm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/spn/CMakeFiles/spnhbm_spn.dir/DependInfo.cmake"
  "/root/repo/build/src/arith/CMakeFiles/spnhbm_arith.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
