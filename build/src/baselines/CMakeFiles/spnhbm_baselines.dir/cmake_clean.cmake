file(REMOVE_RECURSE
  "CMakeFiles/spnhbm_baselines.dir/cpu_engine.cpp.o"
  "CMakeFiles/spnhbm_baselines.dir/cpu_engine.cpp.o.d"
  "CMakeFiles/spnhbm_baselines.dir/reference_platforms.cpp.o"
  "CMakeFiles/spnhbm_baselines.dir/reference_platforms.cpp.o.d"
  "libspnhbm_baselines.a"
  "libspnhbm_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spnhbm_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
