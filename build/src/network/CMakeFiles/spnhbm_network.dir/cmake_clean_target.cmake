file(REMOVE_RECURSE
  "libspnhbm_network.a"
)
