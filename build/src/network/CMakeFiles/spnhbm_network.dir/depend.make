# Empty dependencies file for spnhbm_network.
# This may be replaced when dependencies are built.
