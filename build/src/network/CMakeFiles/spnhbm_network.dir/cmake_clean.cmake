file(REMOVE_RECURSE
  "CMakeFiles/spnhbm_network.dir/streaming.cpp.o"
  "CMakeFiles/spnhbm_network.dir/streaming.cpp.o.d"
  "libspnhbm_network.a"
  "libspnhbm_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spnhbm_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
