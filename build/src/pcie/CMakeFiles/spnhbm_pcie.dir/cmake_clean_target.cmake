file(REMOVE_RECURSE
  "libspnhbm_pcie.a"
)
