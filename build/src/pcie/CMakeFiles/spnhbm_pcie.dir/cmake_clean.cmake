file(REMOVE_RECURSE
  "CMakeFiles/spnhbm_pcie.dir/pcie.cpp.o"
  "CMakeFiles/spnhbm_pcie.dir/pcie.cpp.o.d"
  "libspnhbm_pcie.a"
  "libspnhbm_pcie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spnhbm_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
