# Empty dependencies file for spnhbm_pcie.
# This may be replaced when dependencies are built.
