file(REMOVE_RECURSE
  "CMakeFiles/spnhbm_fpga.dir/accelerator.cpp.o"
  "CMakeFiles/spnhbm_fpga.dir/accelerator.cpp.o.d"
  "CMakeFiles/spnhbm_fpga.dir/resource_model.cpp.o"
  "CMakeFiles/spnhbm_fpga.dir/resource_model.cpp.o.d"
  "libspnhbm_fpga.a"
  "libspnhbm_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spnhbm_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
