file(REMOVE_RECURSE
  "libspnhbm_fpga.a"
)
