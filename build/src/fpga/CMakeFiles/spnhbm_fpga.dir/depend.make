# Empty dependencies file for spnhbm_fpga.
# This may be replaced when dependencies are built.
