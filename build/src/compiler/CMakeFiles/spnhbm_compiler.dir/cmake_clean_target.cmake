file(REMOVE_RECURSE
  "libspnhbm_compiler.a"
)
