# Empty dependencies file for spnhbm_compiler.
# This may be replaced when dependencies are built.
