file(REMOVE_RECURSE
  "CMakeFiles/spnhbm_compiler.dir/datapath.cpp.o"
  "CMakeFiles/spnhbm_compiler.dir/datapath.cpp.o.d"
  "CMakeFiles/spnhbm_compiler.dir/serialize.cpp.o"
  "CMakeFiles/spnhbm_compiler.dir/serialize.cpp.o.d"
  "libspnhbm_compiler.a"
  "libspnhbm_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spnhbm_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
