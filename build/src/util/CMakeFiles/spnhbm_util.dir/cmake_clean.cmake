file(REMOVE_RECURSE
  "CMakeFiles/spnhbm_util.dir/log.cpp.o"
  "CMakeFiles/spnhbm_util.dir/log.cpp.o.d"
  "CMakeFiles/spnhbm_util.dir/stats.cpp.o"
  "CMakeFiles/spnhbm_util.dir/stats.cpp.o.d"
  "CMakeFiles/spnhbm_util.dir/strings.cpp.o"
  "CMakeFiles/spnhbm_util.dir/strings.cpp.o.d"
  "CMakeFiles/spnhbm_util.dir/table.cpp.o"
  "CMakeFiles/spnhbm_util.dir/table.cpp.o.d"
  "CMakeFiles/spnhbm_util.dir/thread_pool.cpp.o"
  "CMakeFiles/spnhbm_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/spnhbm_util.dir/units.cpp.o"
  "CMakeFiles/spnhbm_util.dir/units.cpp.o.d"
  "libspnhbm_util.a"
  "libspnhbm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spnhbm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
