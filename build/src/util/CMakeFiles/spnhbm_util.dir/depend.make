# Empty dependencies file for spnhbm_util.
# This may be replaced when dependencies are built.
