file(REMOVE_RECURSE
  "libspnhbm_util.a"
)
