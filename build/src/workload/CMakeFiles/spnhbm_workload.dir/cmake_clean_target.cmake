file(REMOVE_RECURSE
  "libspnhbm_workload.a"
)
