# Empty dependencies file for spnhbm_workload.
# This may be replaced when dependencies are built.
