file(REMOVE_RECURSE
  "CMakeFiles/spnhbm_workload.dir/bag_of_words.cpp.o"
  "CMakeFiles/spnhbm_workload.dir/bag_of_words.cpp.o.d"
  "CMakeFiles/spnhbm_workload.dir/model_zoo.cpp.o"
  "CMakeFiles/spnhbm_workload.dir/model_zoo.cpp.o.d"
  "libspnhbm_workload.a"
  "libspnhbm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spnhbm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
