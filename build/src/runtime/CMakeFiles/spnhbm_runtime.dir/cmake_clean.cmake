file(REMOVE_RECURSE
  "CMakeFiles/spnhbm_runtime.dir/inference_runtime.cpp.o"
  "CMakeFiles/spnhbm_runtime.dir/inference_runtime.cpp.o.d"
  "CMakeFiles/spnhbm_runtime.dir/memory_manager.cpp.o"
  "CMakeFiles/spnhbm_runtime.dir/memory_manager.cpp.o.d"
  "libspnhbm_runtime.a"
  "libspnhbm_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spnhbm_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
