file(REMOVE_RECURSE
  "libspnhbm_runtime.a"
)
