# Empty compiler generated dependencies file for spnhbm_runtime.
# This may be replaced when dependencies are built.
