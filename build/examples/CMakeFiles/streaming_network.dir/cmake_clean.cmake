file(REMOVE_RECURSE
  "CMakeFiles/streaming_network.dir/streaming_network.cpp.o"
  "CMakeFiles/streaming_network.dir/streaming_network.cpp.o.d"
  "streaming_network"
  "streaming_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
