# Empty compiler generated dependencies file for streaming_network.
# This may be replaced when dependencies are built.
