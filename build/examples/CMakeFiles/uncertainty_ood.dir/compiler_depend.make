# Empty compiler generated dependencies file for uncertainty_ood.
# This may be replaced when dependencies are built.
