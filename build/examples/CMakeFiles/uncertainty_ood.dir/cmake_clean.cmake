file(REMOVE_RECURSE
  "CMakeFiles/uncertainty_ood.dir/uncertainty_ood.cpp.o"
  "CMakeFiles/uncertainty_ood.dir/uncertainty_ood.cpp.o.d"
  "uncertainty_ood"
  "uncertainty_ood.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uncertainty_ood.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
