file(REMOVE_RECURSE
  "CMakeFiles/nips_end_to_end.dir/nips_end_to_end.cpp.o"
  "CMakeFiles/nips_end_to_end.dir/nips_end_to_end.cpp.o.d"
  "nips_end_to_end"
  "nips_end_to_end.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nips_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
