// Compares a freshly produced BENCH_*.json against a committed baseline
// (bench/baselines/) so perf-sensitive refactors land against a recorded
// trajectory instead of a reviewer's memory.
//
//   bench_compare <baseline.json> <current.json>
//       [--threshold PCT] [--strict] [--ignore FIELD]...
//
// Records are matched by their "name" field when every record on both
// sides carries one (loadgen reports: "overall" plus one record per
// model), falling back to positional matching otherwise; every numeric
// field present in both sides is compared. The direction of "worse" is
// inferred from the field name: throughput-style fields (…per_s, …rps,
// …gib…) regress when they drop, latency-style fields (…latency…, …_us,
// …seconds…) regress when they rise, and anything else is flagged when it
// moves at all beyond the threshold. Default is warn-only (always exits
// 0, prints the deviations); --strict turns regressions into exit 1 for
// opt-in gating. Host-dependent fields (wall-clock CPU baselines) are
// skipped with --ignore.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "spnhbm/telemetry/json.hpp"
#include "spnhbm/util/error.hpp"
#include "spnhbm/util/strings.hpp"

namespace spnhbm {
namespace {

enum class Direction { kHigherIsBetter, kLowerIsBetter, kNeutral };

bool contains_any(const std::string& name,
                  std::initializer_list<const char*> needles) {
  for (const char* needle : needles) {
    if (name.find(needle) != std::string::npos) return true;
  }
  return false;
}

Direction field_direction(const std::string& name) {
  if (contains_any(name, {"per_s", "rps", "throughput", "gib", "gops"})) {
    return Direction::kHigherIsBetter;
  }
  if (contains_any(name, {"latency", "_us", "seconds", "cycles", "_ns"})) {
    return Direction::kLowerIsBetter;
  }
  return Direction::kNeutral;
}

telemetry::JsonValue load_report(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("bench_compare: cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  telemetry::JsonValue doc = telemetry::parse_json(text.str());
  if (!doc.is_object() || !doc.has("bench") || !doc.has("records") ||
      !doc.at("records").is_array()) {
    throw Error("bench_compare: " + path + " is not a BENCH_*.json report");
  }
  return doc;
}

struct Deviation {
  std::size_t record = 0;
  std::string field;
  double baseline = 0.0;
  double current = 0.0;
  double change = 0.0;  ///< relative, signed
  bool is_regression = false;
};

int run(int argc, char** argv) {
  std::vector<std::string> paths;
  std::set<std::string> ignored;
  double threshold = 0.10;
  bool strict = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--strict") {
      strict = true;
    } else if (arg == "--threshold" && i + 1 < argc) {
      threshold = std::stod(argv[++i]) / 100.0;
    } else if (arg == "--ignore" && i + 1 < argc) {
      ignored.insert(argv[++i]);
    } else if (!arg.empty() && arg[0] == '-') {
      throw Error("bench_compare: unknown option " + arg);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_compare <baseline.json> <current.json> "
                 "[--threshold PCT] [--strict] [--ignore FIELD]...\n");
    return 2;
  }

  const telemetry::JsonValue baseline = load_report(paths[0]);
  const telemetry::JsonValue current = load_report(paths[1]);
  const std::string bench = baseline.at("bench").string;
  if (current.at("bench").string != bench) {
    throw Error("bench_compare: reports disagree on the bench name: " +
                bench + " vs " + current.at("bench").string);
  }

  const auto& base_records = baseline.at("records").array;
  const auto& cur_records = current.at("records").array;
  std::vector<Deviation> deviations;
  bool shape_mismatch = base_records.size() != cur_records.size();

  // Prefer identity matching: when every record on both sides carries a
  // string "name", pair records by it (a reordered or grown model mix
  // then compares like against like instead of by accident of position).
  const auto record_name =
      [](const telemetry::JsonValue& record) -> const std::string* {
    if (record.is_object() && record.has("name") &&
        record.at("name").is_string()) {
      return &record.at("name").string;
    }
    return nullptr;
  };
  bool all_named = !base_records.empty() && !cur_records.empty();
  for (const auto& record : base_records) {
    if (record_name(record) == nullptr) all_named = false;
  }
  for (const auto& record : cur_records) {
    if (record_name(record) == nullptr) all_named = false;
  }
  std::vector<std::pair<const telemetry::JsonValue*,
                        const telemetry::JsonValue*>> pairs;
  if (all_named) {
    for (const auto& base : base_records) {
      const std::string& name = *record_name(base);
      const telemetry::JsonValue* match = nullptr;
      for (const auto& cur : cur_records) {
        if (*record_name(cur) == name) {
          match = &cur;
          break;
        }
      }
      if (match == nullptr) {
        shape_mismatch = true;  // a baseline record vanished
        continue;
      }
      pairs.emplace_back(&base, match);
    }
  } else {
    const std::size_t common =
        std::min(base_records.size(), cur_records.size());
    for (std::size_t i = 0; i < common; ++i) {
      pairs.emplace_back(&base_records[i], &cur_records[i]);
    }
  }

  std::size_t compared = 0;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto& base = *pairs[i].first;
    const auto& cur = *pairs[i].second;
    if (!base.is_object() || !cur.is_object()) continue;
    for (const auto& [name, base_value] : base.object) {
      if (ignored.count(name) || !cur.has(name)) continue;
      const auto& cur_value = cur.at(name);
      if (base_value.is_string() && cur_value.is_string()) {
        // Identity fields (benchmark names): any drift is a shape problem.
        if (base_value.string != cur_value.string) shape_mismatch = true;
        continue;
      }
      if (!base_value.is_number() || !cur_value.is_number()) continue;
      ++compared;
      const double from = base_value.number;
      const double to = cur_value.number;
      const double change =
          from == 0.0 ? (to == 0.0 ? 0.0 : 1.0) : (to - from) / std::fabs(from);
      if (std::fabs(change) <= threshold) continue;
      Deviation deviation{i, name, from, to, change, false};
      switch (field_direction(name)) {
        case Direction::kHigherIsBetter:
          deviation.is_regression = change < 0.0;
          break;
        case Direction::kLowerIsBetter:
          deviation.is_regression = change > 0.0;
          break;
        case Direction::kNeutral:
          deviation.is_regression = true;  // unexplained drift is suspect
          break;
      }
      deviations.push_back(deviation);
    }
  }

  std::size_t regressions = 0;
  for (const auto& deviation : deviations) {
    regressions += deviation.is_regression ? 1 : 0;
    std::printf("%s record %zu %-32s %14.4g -> %14.4g  %+7.1f%%  %s\n",
                deviation.is_regression ? "REGRESSION " : "improvement",
                deviation.record, deviation.field.c_str(), deviation.baseline,
                deviation.current, deviation.change * 100.0,
                deviation.is_regression ? "(worse than baseline)" : "");
  }
  if (shape_mismatch) {
    std::printf("SHAPE MISMATCH: %zu baseline records vs %zu current — the\n"
                "baseline is stale; regenerate bench/baselines/ (see its "
                "README).\n",
                base_records.size(), cur_records.size());
  }
  std::printf("bench_compare %s: %zu field(s) compared at ±%.0f%%, "
              "%zu regression(s), %zu improvement(s)%s\n",
              bench.c_str(), compared, threshold * 100.0, regressions,
              deviations.size() - regressions,
              strict ? " [strict]" : " [warn-only]");
  const bool failed = regressions > 0 || shape_mismatch;
  return strict && failed ? 1 : 0;
}

}  // namespace
}  // namespace spnhbm

int main(int argc, char** argv) {
  try {
    return spnhbm::run(argc, argv);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "bench_compare: %s\n", error.what());
    return 2;
  }
}
